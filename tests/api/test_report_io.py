"""RunConfig / RunReport JSON round-trips through repro.io."""

import json

from repro.api import RunConfig, solve, solve_many
from repro.core.radii import RadiusPolicy
from repro.graphs.families import get_family
from repro.io import (
    load_run_reports,
    run_config_from_dict,
    run_config_to_dict,
    run_report_from_dict,
    run_report_to_dict,
    save_run_reports,
)


def _roundtrip(report):
    return run_report_from_dict(json.loads(json.dumps(run_report_to_dict(report))))


class TestConfigRoundtrip:
    def test_default_config(self):
        config = RunConfig()
        assert run_config_from_dict(run_config_to_dict(config)) == config

    def test_config_with_policy(self):
        config = RunConfig(
            policy=RadiusPolicy.practical(2, 4),
            mode="simulate",
            validate="ratio",
            solver="bnb",
            seed=7,
        )
        back = run_config_from_dict(json.loads(json.dumps(run_config_to_dict(config))))
        assert back == config
        assert back.policy.label == config.policy.label


class TestReportRoundtrip:
    def test_full_report_roundtrip(self):
        graph = get_family("ladder").make(12, 0)
        report = solve(
            graph,
            "algorithm1",
            RunConfig(validate="ratio"),
            meta={"family": "ladder", "size": 12, "seed": 0},
        )
        back = _roundtrip(report)
        assert back.algorithm == report.algorithm
        assert back.problem == report.problem
        assert back.instance == report.instance
        assert back.solution == report.solution
        assert back.result.phases == report.result.phases
        assert back.result.round_breakdown == report.result.round_breakdown
        assert back.config == report.config
        assert back.valid == report.valid
        assert back.optimum_size == report.optimum_size
        assert back.ratio == report.ratio

    def test_unvalidated_report_roundtrip(self):
        graph = get_family("fan").make(10, 0)
        report = solve(graph, "take_all", RunConfig(validate="none"))
        back = _roundtrip(report)
        assert back.valid is None and back.ratio is None
        assert back.solution == report.solution

    def test_save_load_batch(self, tmp_path):
        instances = [
            ({"family": "fan", "size": 10}, get_family("fan").make(10, 0)),
            ({"family": "tree", "size": 9}, get_family("tree").make(9, 1)),
        ]
        reports = solve_many(instances, ["d2", "degree_two"], RunConfig(validate="ratio"))
        path = tmp_path / "reports.json"
        save_run_reports(reports, path)
        back = load_run_reports(path)
        assert [r.solution for r in back] == [r.solution for r in reports]
        assert [r.instance for r in back] == [r.instance for r in reports]
        assert [r.ratio for r in back] == [r.ratio for r in reports]
