"""Registry completeness: every consumer-visible algorithm resolves and
its spec's adapter agrees with the underlying callable."""

import pytest

from repro.api import (
    RunConfig,
    UnknownAlgorithmError,
    UnsupportedModeError,
    algorithm_names,
    get_algorithm,
    list_algorithms,
    register_algorithm,
)
from repro.core.algorithm1 import algorithm1
from repro.core.baselines import (
    degree_two_dominating_set,
    full_gather_exact,
    take_all_vertices,
)
from repro.core.d2 import d2_dominating_set
from repro.core.distributed_greedy import distributed_greedy_dominating_set
from repro.core.radii import RadiusPolicy
from repro.core.vertex_cover import d2_vertex_cover, local_cuts_vertex_cover
from repro.graphs import generators


DIRECT_CALLS = {
    "algorithm1": lambda g: algorithm1(g, RadiusPolicy.practical()),
    "d2": d2_dominating_set,
    "degree_two": degree_two_dominating_set,
    "take_all": take_all_vertices,
    "greedy": distributed_greedy_dominating_set,
    "exact": full_gather_exact,
    "d2_vc": d2_vertex_cover,
    "local_cuts_vc": lambda g: local_cuts_vertex_cover(g, RadiusPolicy.practical()),
}


class TestRegistryCompleteness:
    def test_cli_algorithm_set(self):
        names = set(algorithm_names())
        # Everything the old hand-maintained CLI dict had, and more.
        assert {
            "algorithm1", "algorithm2", "d2", "degree_two",
            "greedy", "take_all", "exact",
        } <= names
        assert {"d2_vc", "local_cuts_vc", "exact_vc"} <= names

    def test_problem_partition(self):
        mds = algorithm_names("mds")
        mvc = algorithm_names("mvc")
        assert set(mds) | set(mvc) == set(algorithm_names())
        assert not set(mds) & set(mvc)
        assert all(get_algorithm(n).problem == "mds" for n in mds)

    @pytest.mark.parametrize("name", sorted(DIRECT_CALLS))
    def test_spec_agrees_with_direct_call(self, name):
        graph = generators.fan(9)
        spec = get_algorithm(name)
        via_registry = spec.run(graph, RunConfig())
        direct = DIRECT_CALLS[name](graph)
        assert via_registry.solution == direct.solution
        assert via_registry.rounds == direct.rounds

    def test_algorithm2_is_policy_renamed_algorithm1(self):
        graph = generators.ladder(5)
        spec = get_algorithm("algorithm2")
        result = spec.run(graph, RunConfig())
        assert result.name == "algorithm2"
        assert result.solution == algorithm1(graph, RadiusPolicy.practical()).solution
        assert result.metadata["dimension"] == 1


class TestCapabilities:
    def test_simulation_flags(self):
        assert get_algorithm("algorithm1").supports_simulation
        assert get_algorithm("local_cuts_vc").supports_simulation
        assert not get_algorithm("d2").supports_simulation
        assert not get_algorithm("exact").supports_simulation

    def test_check_mode_raises_for_unsupported(self):
        with pytest.raises(UnsupportedModeError, match="does not support"):
            get_algorithm("d2").check_mode("simulate")
        get_algorithm("d2").check_mode("fast")  # no raise

    def test_describe_is_json_ready(self):
        import json

        for spec in list_algorithms():
            payload = spec.describe()
            assert json.loads(json.dumps(payload))["name"] == spec.name

    def test_default_policies(self):
        assert get_algorithm("algorithm1").default_policy() == RadiusPolicy.practical()
        assert get_algorithm("d2").default_policy is None


class TestRegistration:
    def test_unknown_name_lists_known(self):
        with pytest.raises(UnknownAlgorithmError, match="algorithm1"):
            get_algorithm("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_algorithm(name="d2", problem="mds", summary="dup")(
                lambda g, c: None
            )

    def test_bad_problem_rejected(self):
        with pytest.raises(ValueError, match="unknown problem"):
            register_algorithm(name="zzz_bad", problem="tsp", summary="x")(
                lambda g, c: None
            )
        with pytest.raises(ValueError):
            list_algorithms("tsp")
