"""A dead pool worker surfaces as a typed WorkerCrashError, not a raw
BrokenProcessPool: the error names the first unfinished chunk so the
caller knows what was lost, and points at repro.sweep for the
checkpointed alternative."""

from __future__ import annotations

import os
import signal

import pytest

from repro.api import (
    RunConfig,
    SimulationSpec,
    WorkerCrashError,
    simulate_many,
    solve_many,
)
from repro.api import runner as runner_module
from repro.api import simulation as simulation_module
from repro.graphs.families import get_family


def _instances(count=4):
    family = get_family("tree")
    return [
        ({"family": "tree", "size": 10, "seed": seed}, family.make(10, seed))
        for seed in range(count)
    ]


_REAL_SOLVE_TASK = runner_module._solve_instance_task
_REAL_SIM_TASK = simulation_module._simulate_task


def _killer_solve_task(task):
    # Module-level so the fork-started pool pickles it by reference.
    if task[0].get("seed") == 1:
        os.kill(os.getpid(), signal.SIGKILL)
    return _REAL_SOLVE_TASK(task)


def _killer_sim_task(task):
    if task[0].get("seed") == 1:
        os.kill(os.getpid(), signal.SIGKILL)
    return _REAL_SIM_TASK(task)


def test_solve_many_reports_worker_crash(monkeypatch):
    monkeypatch.setattr(runner_module, "_solve_instance_task", _killer_solve_task)
    with pytest.raises(WorkerCrashError) as excinfo:
        solve_many(_instances(), ["greedy"], RunConfig(), workers=2)
    error = excinfo.value
    assert error.kind == "solve"
    assert error.total == 4
    assert 0 <= error.completed < error.total
    # The in-flight chunk is named by its instance meta.
    assert error.in_flight["family"] == "tree"
    assert "repro.sweep" in str(error)


def test_simulate_many_reports_worker_crash(monkeypatch):
    monkeypatch.setattr(simulation_module, "_simulate_task", _killer_sim_task)
    with pytest.raises(WorkerCrashError) as excinfo:
        simulate_many(
            _instances(), [SimulationSpec(algorithm="degree_two")], workers=2
        )
    error = excinfo.value
    assert error.kind == "simulate"
    assert error.total == 4
    assert 0 <= error.completed < error.total
    assert error.in_flight["family"] == "tree"


def test_healthy_parallel_runs_are_unaffected():
    serial = solve_many(_instances(), ["greedy"], RunConfig())
    parallel = solve_many(_instances(), ["greedy"], RunConfig(), workers=2)
    assert [r.ratio for r in serial] == [r.ratio for r in parallel]
