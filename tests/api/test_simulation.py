"""Tests for the `repro.api.simulate` front door and its JSON round-trip."""

import json

import networkx as nx
import pytest

from repro.analysis.domination import is_dominating_set
from repro.api import (
    FaultPlan,
    SimulationSpec,
    UnknownAlgorithmError,
    UnsupportedModeError,
    engine_algorithm_names,
    simulate,
    simulate_many,
    solve,
)
from repro.graphs import generators as gen
from repro.io import (
    load_sim_reports,
    save_sim_reports,
    sim_report_from_dict,
    sim_report_to_dict,
    sim_spec_from_dict,
    sim_spec_to_dict,
)
from repro.local_model.engine import MessageTooLargeError


class TestSimulate:
    def test_d2_protocol_matches_fast_path(self, fan5):
        report = simulate(fan5, "d2")
        assert report.rounds == 3
        assert report.chosen == solve(fan5, "d2").solution
        assert is_dominating_set(fan5, report.chosen)

    def test_spec_capabilities_enforced(self, fan5):
        with pytest.raises(UnsupportedModeError, match="no message-passing protocol"):
            simulate(fan5, "exact")
        with pytest.raises(UnknownAlgorithmError):
            simulate(fan5, "nope")

    def test_engine_capable_registry_flags(self):
        assert set(engine_algorithm_names()) == {
            "d2",
            "degree_two",
            "greedy",
            "take_all",
        }

    def test_zero_node_graph_rejects_crash_plan(self):
        # the engine's crash-vertex validation must hold on the
        # engine-less zero-node path too
        with pytest.raises(ValueError, match="crashed vertices"):
            simulate(
                nx.Graph(),
                SimulationSpec(algorithm="d2", faults=FaultPlan(crashed=(0,))),
            )

    def test_zero_node_graph_is_empty_report(self):
        report = simulate(nx.Graph(), "d2")
        assert report.rounds == 0
        assert report.outputs == {}
        assert report.chosen == set()
        assert report.instance == {"n": 0, "m": 0}
        # and it still round-trips
        back = sim_report_from_dict(sim_report_to_dict(report))
        assert sim_report_to_dict(back) == sim_report_to_dict(report)

    def test_congest_model_budget(self, star6):
        # D2 ships closed neighborhoods: budget below Δ+2 must fail with
        # an actionable error, a degree-sized budget runs.
        with pytest.raises(MessageTooLargeError) as excinfo:
            simulate(star6, SimulationSpec(algorithm="d2", model="congest", budget=3))
        assert excinfo.value.round_index is not None
        assert excinfo.value.receiver is not None
        report = simulate(
            star6, SimulationSpec(algorithm="d2", model="congest", budget=32)
        )
        assert report.chosen == solve(star6, "d2").solution

    def test_identifier_schemes(self, ladder5):
        expected = solve(ladder5, "d2").solution
        for scheme in ("identity", "shuffled", "spread"):
            report = simulate(
                ladder5, SimulationSpec(algorithm="d2", ids=scheme, seed=3)
            )
            assert is_dominating_set(ladder5, report.chosen)
            assert len(report.chosen) == len(expected)

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="unknown model"):
            SimulationSpec(algorithm="d2", model="quantum")
        with pytest.raises(ValueError, match="trace policy"):
            SimulationSpec(algorithm="d2", trace="loud")
        with pytest.raises(ValueError, match="budget"):
            SimulationSpec(algorithm="d2", budget=0)
        with pytest.raises(ValueError, match="identifier scheme"):
            SimulationSpec(algorithm="d2", ids="random")

    def test_round_limit_trips_raising(self, path5):
        with pytest.raises(RuntimeError, match="did not halt"):
            simulate(path5, SimulationSpec(algorithm="greedy", max_rounds=2))


class TestFaultRuns:
    def test_fault_plan_completes_and_roundtrips(self, fan5, tmp_path):
        spec = SimulationSpec(
            algorithm="d2",
            seed=5,
            faults=FaultPlan(drop_probability=0.2, crashed=(0,)),
        )
        report = simulate(fan5, spec, meta={"family": "fan", "size": 5})
        assert report.rounds == 3
        assert 0 not in report.outputs
        assert report.crashed == (0,)
        assert report.dropped_messages > 0
        assert report.swallowed_messages > 0

        payload = sim_report_to_dict(report)
        back = sim_report_from_dict(json.loads(json.dumps(payload)))
        assert sim_report_to_dict(back) == payload
        assert back.spec == spec
        assert back.chosen == report.chosen

        path = tmp_path / "sim.json"
        save_sim_reports([report], path)
        assert [r.outputs for r in load_sim_reports(path)] == [report.outputs]

    def test_tuple_vertex_graph_roundtrips(self):
        # JSON has no tuples: vertex labels like grid coordinates must
        # come back hashable (lists are re-tupled on load).
        graph = nx.grid_2d_graph(3, 3)
        report = simulate(
            graph,
            SimulationSpec(algorithm="d2", faults=FaultPlan(crashed=((0, 0),))),
        )
        back = sim_report_from_dict(json.loads(json.dumps(sim_report_to_dict(report))))
        assert back.outputs == report.outputs
        assert back.crashed == ((0, 0),)
        assert back.chosen == report.chosen
        # the spec's fault plan must come back usable too
        assert back.spec.faults.crashed == ((0, 0),)
        rerun = simulate(graph, back.spec)
        assert rerun.outputs == report.outputs

    def test_spec_roundtrip(self):
        spec = SimulationSpec(
            algorithm="degree_two",
            model="congest",
            budget=6,
            max_rounds=77,
            trace="full",
            seed=9,
            faults=FaultPlan(drop_probability=0.5, crashed=(1, 2)),
            ids="spread",
        )
        assert sim_spec_from_dict(json.loads(json.dumps(sim_spec_to_dict(spec)))) == spec


class TestSimulateMany:
    def _instances(self):
        return [
            ({"family": "fan", "size": 8}, gen.fan(8)),
            ({"family": "ladder", "size": 5}, gen.ladder(5)),
            ({"family": "tree", "size": 9}, gen.caterpillar(3, 2)),
        ]

    def test_workers_byte_identical_json(self):
        specs = [
            SimulationSpec(algorithm="d2", trace="full"),
            SimulationSpec(
                algorithm="degree_two",
                seed=2,
                faults=FaultPlan(drop_probability=0.1),
            ),
        ]
        serial = simulate_many(self._instances(), specs)
        parallel = simulate_many(self._instances(), specs, workers=4)

        def dump(reports):
            return json.dumps([sim_report_to_dict(r) for r in reports])

        assert dump(serial) == dump(parallel)

    def test_single_spec_shorthand_and_order(self):
        reports = simulate_many(self._instances(), "d2")
        assert [r.instance["family"] for r in reports] == ["fan", "ladder", "tree"]
        assert all(r.algorithm == "d2" for r in reports)

    def test_capability_check_fails_fast(self):
        with pytest.raises(UnsupportedModeError):
            simulate_many(self._instances(), ["d2", "exact"])

    def test_empty_batch(self):
        assert simulate_many([], "d2") == []


class TestAdversarialSpecs:
    def _spec(self, **overrides):
        from repro.api import ByzantinePlan, ChurnEvent, ChurnPlan

        base = dict(
            algorithm="d2",
            seed=3,
            max_rounds=64,
            churn=ChurnPlan(
                events=(ChurnEvent(2, "del_edge", 0, 1),), rate=0.2, until=4
            ),
            byzantine=ByzantinePlan(((3, "lie"), (5, "silent"))),
        )
        base.update(overrides)
        return SimulationSpec(**base)

    def test_adversarial_spec_roundtrip(self):
        spec = self._spec(model="async", delay=3)
        back = sim_spec_from_dict(json.loads(json.dumps(sim_spec_to_dict(spec))))
        assert back == spec

    def test_adversarial_report_roundtrip(self):
        report = simulate(gen.fan(8), self._spec())
        payload = json.loads(json.dumps(sim_report_to_dict(report)))
        back = sim_report_from_dict(payload)
        assert sim_report_to_dict(back) == sim_report_to_dict(report)
        assert back.suspicion == report.suspicion
        assert back.failed == report.failed

    def test_trivial_plans_leave_no_trace_in_json(self):
        from repro.api import ByzantinePlan, ChurnPlan

        spec = SimulationSpec(
            algorithm="d2", churn=ChurnPlan(), byzantine=ByzantinePlan()
        )
        payload = sim_spec_to_dict(spec)
        assert "churn" not in payload
        assert "byzantine" not in payload
        assert "delay" not in payload
        report_payload = sim_report_to_dict(simulate(gen.fan(8), spec))
        for key in ("suspicion", "failed", "timed_out", "churn_events"):
            assert key not in report_payload

    def test_degradation_fault_free_twin_agrees(self):
        from repro.api import adversarial_degradation

        out = adversarial_degradation(
            gen.fan(10), SimulationSpec(algorithm="d2")
        )
        degradation = out["degradation"]
        assert degradation["agree"] is True
        assert degradation["valid"] is True
        assert degradation["ratio"] == degradation["baseline_ratio"]

    def test_degradation_measures_the_final_graph(self):
        from repro.api import ChurnEvent, ChurnPlan, adversarial_degradation

        graph = gen.path(6)
        spec = SimulationSpec(
            algorithm="d2",
            max_rounds=64,
            churn=ChurnPlan(events=(ChurnEvent(1, "leave", 5),)),
        )
        out = adversarial_degradation(graph, spec)
        assert out["degradation"]["final_n"] == 5
        # The input graph is never mutated by the measurement.
        assert graph.number_of_nodes() == 6

    def test_adversarial_batch_workers_byte_identical(self):
        specs = [self._spec(), self._spec(model="adversarial", seed=5)]
        graphs = [gen.fan(8), gen.cycle(9)]
        serial = simulate_many(graphs, specs)
        parallel = simulate_many(graphs, specs, workers=4)

        def dump(reports):
            return json.dumps([sim_report_to_dict(r) for r in reports])

        assert dump(serial) == dump(parallel)
