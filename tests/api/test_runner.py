"""`solve` / `solve_many` semantics: parity with direct calls, validation
levels, and serial-vs-parallel determinism."""

import pytest

from repro.api import (
    RunConfig,
    UnknownAlgorithmError,
    UnsupportedModeError,
    solve,
    solve_many,
)
from repro.core.algorithm1 import algorithm1
from repro.core.d2 import d2_dominating_set
from repro.core.radii import RadiusPolicy
from repro.graphs.families import get_family
from repro.solvers.exact import minimum_dominating_set


FAMILIES = [("fan", 12), ("ladder", 14), ("tree", 15)]


class TestSolve:
    @pytest.mark.parametrize("family,size", FAMILIES)
    def test_parity_with_direct_algorithm1(self, family, size):
        graph = get_family(family).make(size, 0)
        report = solve(graph, "algorithm1", RunConfig(mode="fast"))
        direct = algorithm1(graph, RadiusPolicy.practical(), mode="fast")
        assert report.solution == direct.solution
        assert report.rounds == direct.rounds

    @pytest.mark.parametrize("family,size", FAMILIES)
    def test_parity_with_direct_d2(self, family, size):
        graph = get_family(family).make(size, 0)
        assert solve(graph, "d2").solution == d2_dominating_set(graph).solution

    def test_policy_override(self):
        graph = get_family("ladder").make(16, 0)
        policy = RadiusPolicy.practical(1, 2)
        report = solve(graph, "algorithm1", RunConfig(policy=policy))
        assert report.solution == algorithm1(graph, policy).solution
        assert report.result.metadata["policy"] == policy.label

    def test_validation_levels(self):
        graph = get_family("fan").make(10, 0)
        none = solve(graph, "d2", RunConfig(validate="none"))
        assert none.valid is None and none.ratio is None
        valid = solve(graph, "d2", RunConfig(validate="valid"))
        assert valid.valid is True and valid.optimum_size is None
        ratio = solve(graph, "d2", RunConfig(validate="ratio"))
        assert ratio.optimum_size == len(minimum_dominating_set(graph))
        assert ratio.ratio == ratio.size / ratio.optimum_size

    def test_solver_backends_agree(self):
        graph = get_family("outerplanar").make(14, 1)
        milp = solve(graph, "algorithm1", RunConfig(validate="ratio", solver="milp"))
        bnb = solve(graph, "algorithm1", RunConfig(validate="ratio", solver="bnb"))
        assert milp.optimum_size == bnb.optimum_size
        assert milp.solution == bnb.solution

    def test_mvc_validation(self):
        graph = get_family("fan").make(10, 0)
        report = solve(graph, "d2_vc", RunConfig(validate="ratio"))
        assert report.problem == "mvc"
        assert report.valid is True
        assert report.ratio >= 1.0

    def test_meta_threaded_into_instance(self):
        graph = get_family("fan").make(10, 0)
        report = solve(graph, "d2", meta={"family": "fan", "seed": 0})
        assert report.instance["family"] == "fan"
        assert report.instance["n"] == graph.number_of_nodes()

    def test_unsupported_mode_raises(self):
        graph = get_family("fan").make(10, 0)
        with pytest.raises(UnsupportedModeError, match="simulate"):
            solve(graph, "d2", RunConfig(mode="simulate"))

    def test_unknown_algorithm_raises(self):
        graph = get_family("fan").make(10, 0)
        with pytest.raises(UnknownAlgorithmError):
            solve(graph, "nope")

    def test_simulate_matches_fast_where_supported(self):
        graph = get_family("cycle").make(10, 0)
        fast = solve(graph, "algorithm1")
        simulated = solve(graph, "algorithm1", RunConfig(mode="simulate"))
        assert simulated.solution == fast.solution


def _payload(reports):
    return [
        (r.algorithm, dict(r.instance), sorted(r.solution, key=repr), r.rounds,
         r.valid, r.optimum_size, r.ratio)
        for r in reports
    ]


class TestSolveMany:
    def _instances(self):
        return [
            ({"family": family, "size": size, "seed": 0},
             get_family(family).make(size, 0))
            for family, size in FAMILIES
        ]

    def test_ordering_is_instance_major(self):
        reports = solve_many(self._instances(), ["d2", "degree_two"])
        assert [(r.instance["family"], r.algorithm) for r in reports] == [
            ("fan", "d2"), ("fan", "degree_two"),
            ("ladder", "d2"), ("ladder", "degree_two"),
            ("tree", "d2"), ("tree", "degree_two"),
        ]

    def test_parallel_matches_serial_exactly(self):
        config = RunConfig(validate="ratio")
        serial = solve_many(self._instances(), ["d2", "algorithm1"], config)
        parallel = solve_many(
            self._instances(), ["d2", "algorithm1"], config, workers=2
        )
        assert _payload(serial) == _payload(parallel)

    def test_accepts_bare_graphs(self):
        graph = get_family("fan").make(10, 0)
        reports = solve_many([graph], "d2")
        assert len(reports) == 1
        assert reports[0].instance == {
            "n": graph.number_of_nodes(), "m": graph.number_of_edges(),
        }

    def test_single_algorithm_string(self):
        reports = solve_many(self._instances(), "d2")
        assert [r.algorithm for r in reports] == ["d2"] * 3

    def test_capability_check_fails_fast(self):
        # The bad mode is rejected before any instance runs.
        with pytest.raises(UnsupportedModeError):
            solve_many(
                self._instances(), ["algorithm1", "d2"],
                RunConfig(mode="simulate"),
            )

    def test_empty_batch(self):
        assert solve_many([], ["d2"]) == []
