"""Instance-major batching: OPT sharing, CSR wire, and workers never
change any reported number."""

import json

import networkx as nx

from repro.api import RunConfig, solve_many
from repro.graphs.families import get_family
from repro.graphs.kernel import graph_from_wire, kernel_for
from repro.io import run_report_to_dict
from repro.solvers.opt_cache import cache_stats, clear_opt_cache, reset_cache_stats

ALGORITHMS = ["d2", "degree_two", "greedy", "take_all"]


def _instances():
    return [
        ({"family": family, "size": size, "seed": 0},
         get_family(family).make(size, 0))
        for family, size in [("fan", 12), ("ladder", 14), ("tree", 15)]
    ]


def _stable_payload(reports):
    """Report JSON with the only nondeterministic field stripped."""
    payload = []
    for report in reports:
        data = run_report_to_dict(report)
        data.pop("wall_time", None)
        payload.append(data)
    return json.dumps(payload, sort_keys=True)


class TestOptSharing:
    def test_one_exact_solve_per_instance(self):
        clear_opt_cache()
        reset_cache_stats()
        instances = _instances()
        solve_many(instances, ALGORITHMS, RunConfig(validate="ratio"))
        stats = cache_stats()
        assert stats["misses"] == len(instances)
        assert stats["hits"] == len(instances) * (len(ALGORITHMS) - 1)

    def test_cache_never_changes_reports(self):
        config = RunConfig(validate="ratio")
        cached = solve_many(_instances(), ALGORITHMS, config)
        uncached = solve_many(_instances(), ALGORITHMS, config.with_(opt_cache=False))
        assert [r.ratio for r in cached] == [r.ratio for r in uncached]
        assert [r.optimum_size for r in cached] == [r.optimum_size for r in uncached]

    def test_bnb_backend_matches_milp_optima(self):
        milp = solve_many(_instances(), "d2", RunConfig(validate="ratio", solver="milp"))
        bnb = solve_many(_instances(), "d2", RunConfig(validate="ratio", solver="bnb"))
        assert [r.optimum_size for r in milp] == [r.optimum_size for r in bnb]
        assert [r.ratio for r in milp] == [r.ratio for r in bnb]


class TestWire:
    def test_wire_roundtrip_preserves_graph_and_kernel(self):
        for _, graph in _instances():
            wire = kernel_for(graph).to_wire()
            back = graph_from_wire(wire)
            assert set(back.nodes) == set(graph.nodes)
            assert {frozenset(e) for e in back.edges} == {
                frozenset(e) for e in graph.edges
            }
            assert kernel_for(back).closed_bits == kernel_for(graph).closed_bits

    def test_wire_roundtrip_tuple_labels(self):
        graph = nx.relabel_nodes(
            get_family("ladder").make(10, 0), lambda v: (v, f"v{v}")
        )
        back = graph_from_wire(kernel_for(graph).to_wire())
        assert set(back.nodes) == set(graph.nodes)
        assert kernel_for(back).labels == kernel_for(graph).labels

    def test_wire_roundtrip_zero_nodes_and_isolates(self):
        empty = graph_from_wire(kernel_for(nx.Graph()).to_wire())
        assert empty.number_of_nodes() == 0
        graph = nx.Graph()
        graph.add_nodes_from([0, 1, 2])
        graph.add_edge(0, 1)
        back = graph_from_wire(kernel_for(graph).to_wire())
        assert set(back.nodes) == {0, 1, 2}
        assert back.number_of_edges() == 1

    def test_wire_never_changes_reports(self):
        config = RunConfig(validate="ratio")
        direct = solve_many(_instances(), ALGORITHMS, config)
        rebuilt = solve_many(
            [
                (meta, graph_from_wire(kernel_for(graph).to_wire()))
                for meta, graph in _instances()
            ],
            ALGORITHMS,
            config,
        )
        assert _stable_payload(direct) == _stable_payload(rebuilt)


class TestWorkers:
    def test_workers_never_change_reports(self):
        config = RunConfig(validate="ratio")
        serial = solve_many(_instances(), ALGORITHMS, config)
        parallel = solve_many(_instances(), ALGORITHMS, config, workers=3)
        assert _stable_payload(serial) == _stable_payload(parallel)

    def test_workers_with_bnb_backend(self):
        config = RunConfig(validate="ratio", solver="bnb")
        serial = solve_many(_instances(), ["d2", "greedy"], config)
        parallel = solve_many(_instances(), ["d2", "greedy"], config, workers=2)
        assert _stable_payload(serial) == _stable_payload(parallel)
