"""Wire-schema tests: validation, CLI parity, and the drift guards."""

from __future__ import annotations

import pytest

from repro.api.config import (
    RunConfig,
    parse_byzantine,
    parse_churn,
    parse_faults,
    run_config_from_options,
)
from repro.graphs import generators as gen
from repro.io import (
    byzantine_plan_to_dict,
    churn_plan_to_dict,
    fault_plan_to_dict,
    graph_to_dict,
)
from repro.serve.schema import (
    FamilyRef,
    SpecError,
    WireRef,
    parse_job,
)


def _solve_payload(**overrides):
    payload = {
        "kind": "solve",
        "instances": [{"family": "fan", "size": 12, "seed": 0}],
        "algorithms": ["d2"],
    }
    payload.update(overrides)
    return payload


def _simulate_payload(**overrides):
    payload = {
        "kind": "simulate",
        "instances": [{"family": "tree", "size": 10}],
        "specs": [{"algorithm": "d2"}],
    }
    payload.update(overrides)
    return payload


class TestSolveParsing:
    def test_minimal_solve_job(self):
        parsed = parse_job(_solve_payload())
        assert parsed.kind == "solve"
        assert parsed.instances == (FamilyRef("fan", 12, 0),)
        assert parsed.algorithms == ("d2",)
        assert parsed.task_count == 1
        # Flat options mirror the CLI front doors: validate="ratio".
        assert parsed.config == run_config_from_options()

    def test_flat_options_match_cli_construction(self):
        parsed = parse_job(
            _solve_payload(validate="ratio", solver="bnb", opt_cache=False, seed=3)
        )
        assert parsed.config == run_config_from_options(
            validate="ratio", solver="bnb", opt_cache=False, seed=3
        )

    def test_config_dict_roundtrip_shape(self):
        config = RunConfig(validate="ratio", solver="bnb", opt_cache=False)
        from repro.io import run_config_to_dict

        parsed = parse_job(_solve_payload(config=run_config_to_dict(config)))
        assert parsed.config == config

    def test_task_count_is_instance_major(self):
        parsed = parse_job(
            _solve_payload(
                instances=[
                    {"family": "fan", "size": 12},
                    {"family": "ladder", "size": 8, "seed": 1},
                ],
                algorithms=["d2", "greedy", "take_all"],
            )
        )
        assert parsed.task_count == 6
        assert parsed.instances[1] == FamilyRef("ladder", 8, 1)

    def test_single_algorithm_string(self):
        parsed = parse_job(_solve_payload(algorithms="greedy"))
        assert parsed.algorithms == ("greedy",)

    def test_inline_graph_becomes_wire_ref(self):
        graph = gen.fan(6)
        payload = _solve_payload(
            instances=[{"graph": graph_to_dict(graph), "meta": {"family": "inline"}}]
        )
        parsed = parse_job(payload)
        ref = parsed.instances[0]
        assert isinstance(ref, WireRef)
        assert ref.meta == {"family": "inline"}
        # Identical graph JSON digests identically: repeat submissions
        # of the same inline graph share one resident instance.
        again = parse_job(payload).instances[0]
        assert again.digest == ref.digest

    def test_distinct_graphs_digest_differently(self):
        ref_a = parse_job(
            _solve_payload(instances=[{"graph": graph_to_dict(gen.fan(6))}])
        ).instances[0]
        ref_b = parse_job(
            _solve_payload(instances=[{"graph": graph_to_dict(gen.path(6))}])
        ).instances[0]
        assert ref_a.digest != ref_b.digest


class TestSimulateParsing:
    def test_minimal_simulate_job(self):
        parsed = parse_job(_simulate_payload())
        assert parsed.kind == "simulate"
        assert parsed.specs[0].algorithm == "d2"
        assert parsed.task_count == 1

    def test_string_faults_share_the_cli_parser(self):
        text = "drop=0.25,crash=0+3"
        via_string = parse_job(
            _simulate_payload(specs=[{"algorithm": "d2", "faults": text}])
        ).specs[0]
        via_dict = parse_job(
            _simulate_payload(
                specs=[
                    {
                        "algorithm": "d2",
                        "faults": fault_plan_to_dict(parse_faults(text)),
                    }
                ]
            )
        ).specs[0]
        assert via_string == via_dict
        assert via_string.faults.drop_probability == 0.25
        assert via_string.faults.crashed == (0, 3)

    def test_single_spec_object(self):
        parsed = parse_job(_simulate_payload(specs=None, spec={"algorithm": "greedy"}))
        assert [s.algorithm for s in parsed.specs] == ["greedy"]


class TestAdversarialParsing:
    def test_string_churn_shares_the_cli_parser(self):
        text = "rate=0.2,until=5,del:0-1@2"
        via_string = parse_job(
            _simulate_payload(specs=[{"algorithm": "d2", "churn": text}])
        ).specs[0]
        via_dict = parse_job(
            _simulate_payload(
                specs=[
                    {
                        "algorithm": "d2",
                        "churn": churn_plan_to_dict(parse_churn(text)),
                    }
                ]
            )
        ).specs[0]
        assert via_string == via_dict
        assert via_string.churn.rate == 0.2
        assert via_string.churn.until == 5
        assert [e.kind for e in via_string.churn.events] == ["del_edge"]

    def test_string_byzantine_shares_the_cli_parser(self):
        text = "lie=0+3,silent=5"
        via_string = parse_job(
            _simulate_payload(specs=[{"algorithm": "d2", "byzantine": text}])
        ).specs[0]
        via_dict = parse_job(
            _simulate_payload(
                specs=[
                    {
                        "algorithm": "d2",
                        "byzantine": byzantine_plan_to_dict(parse_byzantine(text)),
                    }
                ]
            )
        ).specs[0]
        assert via_string == via_dict
        assert via_string.byzantine.as_mapping() == {
            0: "lie",
            3: "lie",
            5: "silent",
        }

    def test_delay_and_model_pass_through(self):
        spec = parse_job(
            _simulate_payload(
                specs=[{"algorithm": "d2", "model": "adversarial", "delay": 3}]
            )
        ).specs[0]
        assert spec.model == "adversarial"
        assert spec.delay == 3

    def test_unknown_behavior_names_the_choices(self):
        with pytest.raises(SpecError, match="silent.*babble.*equivocate.*lie"):
            parse_job(
                _simulate_payload(specs=[{"algorithm": "d2", "byzantine": "wat=3"}])
            )


class TestRejections:
    @pytest.mark.parametrize(
        "payload",
        [
            "not an object",
            {"kind": "compile", "instances": [{"family": "fan", "size": 5}]},
            _solve_payload(instances=[]),
            _solve_payload(instances="fan"),
            _solve_payload(instances=[{"family": "no_such_family", "size": 5}]),
            _solve_payload(instances=[{"family": "fan"}]),
            _solve_payload(instances=[{"family": "fan", "size": "big"}]),
            _solve_payload(instances=[{"family": "fan", "size": 5, "seed": 1.5}]),
            _solve_payload(instances=[{"size": 5}]),
            _solve_payload(instances=[{"graph": {"nodes": [[1, 2]], "edges": []}}]),
            _solve_payload(algorithms=[]),
            _solve_payload(algorithms=[42]),
            _solve_payload(algorithms=["no_such_algorithm"]),
            _solve_payload(validate="extremely"),
            _solve_payload(solver="quantum"),
            _solve_payload(config="milp"),
            _solve_payload(timeout=-1),
            _solve_payload(timeout=True),
            _simulate_payload(specs=[]),
            _simulate_payload(specs=[{"model": "congest"}]),
            _simulate_payload(specs=[{"algorithm": "d2", "model": "telepathy"}]),
            _simulate_payload(specs=[{"algorithm": "d2", "faults": "warp=1"}]),
            _simulate_payload(specs=[{"algorithm": "d2", "faults": "crash=0@x"}]),
            _simulate_payload(specs=[{"algorithm": "d2", "churn": "frob:1@2"}]),
            _simulate_payload(specs=[{"algorithm": "d2", "churn": "add:0-1"}]),
            _simulate_payload(specs=[{"algorithm": "d2", "byzantine": "wat=3"}]),
            _simulate_payload(specs=[{"algorithm": "d2", "delay": -1}]),
            # `exact` ships no message-passing protocol for the engine.
            _simulate_payload(specs=[{"algorithm": "exact"}]),
        ],
    )
    def test_spec_error(self, payload):
        with pytest.raises(SpecError):
            parse_job(payload)

    def test_simulate_mode_capability_checked_at_parse(self):
        # `exact` supports only mode="fast"; a simulate-mode run config
        # must be rejected at submission, not mid-queue.
        with pytest.raises(SpecError):
            parse_job(_solve_payload(algorithms=["exact"], simulate=True))
