"""End-to-end HTTP tests: a real server socket, a real stdlib client."""

from __future__ import annotations

import json
import threading
import time
from http.client import HTTPConnection

import pytest

from repro.api import solve_many
from repro.api.config import run_config_from_options
from repro.graphs.families import get_family
from repro.io import run_report_to_dict
from repro.serve import ReproHTTPServer, ReproService


class ServeFixture:
    """A live server plus a tiny JSON client."""

    def __init__(self, service: ReproService):
        self.service = service.start()
        self.server = ReproHTTPServer(("127.0.0.1", 0), self.service)
        self.port = self.server.server_address[1]
        self.thread = threading.Thread(
            target=self.server.serve_forever, name="repro-serve-http", daemon=True
        )
        self.thread.start()

    def request(self, method, path, payload=None, raw_body=None):
        conn = HTTPConnection("127.0.0.1", self.port, timeout=30)
        try:
            body = raw_body
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
            conn.request(method, path, body=body)
            response = conn.getresponse()
            data = response.read()
            return response.status, dict(response.getheaders()), data
        finally:
            conn.close()

    def json(self, method, path, payload=None):
        status, headers, data = self.request(method, path, payload)
        return status, headers, json.loads(data)

    def poll(self, job_id, timeout=60.0):
        start = time.monotonic()
        while True:
            status, _, record = self.json("GET", f"/jobs/{job_id}")
            assert status == 200
            if record["state"] not in ("queued", "running"):
                return record
            elapsed = time.monotonic() - start
            assert elapsed < timeout, f"job {job_id} stuck in {record['state']}"
            time.sleep(0.02)

    def close(self):
        self.server.shutdown()
        self.server.server_close()
        self.thread.join(timeout=10)
        self.service.stop()


@pytest.fixture
def serve():
    fixture = ServeFixture(ReproService(workers=2, queue_depth=8))
    yield fixture
    fixture.close()


def _solve_payload(**overrides):
    payload = {
        "kind": "solve",
        "instances": [{"family": "fan", "size": 12, "seed": 0}],
        "algorithms": ["d2"],
        "validate": "ratio",
    }
    payload.update(overrides)
    return payload


class TestEndpoints:
    def test_healthz(self, serve):
        status, _, body = serve.json("GET", "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["workers"] == 2

    def test_stats_envelope(self, serve):
        status, _, body = serve.json("GET", "/stats")
        assert status == 200
        # Shared counted-payload shape with `repro lint --json`.
        assert body["queue"]["count"] == len(body["queue"]["queued"])
        assert set(body["opt_cache"]) == {"hits", "misses"}
        assert body["jobs"]["submitted"] == 0

    def test_submit_poll_result_roundtrip(self, serve):
        status, headers, job = serve.json("POST", "/jobs", _solve_payload())
        assert status == 202
        assert headers["Location"] == f"/jobs/{job['id']}"
        assert job["state"] in ("queued", "running")
        assert job["tasks"] == 1

        final = serve.poll(job["id"])
        assert final["state"] == "completed"

        status, _, data = serve.request("GET", f"/jobs/{job['id']}/result")
        assert status == 200
        served = json.loads(data)

        graph = get_family("fan").make(12, 0)
        meta = {"family": "fan", "size": 12, "seed": 0}
        direct = [
            run_report_to_dict(r)
            for r in solve_many(
                [(meta, graph)], ["d2"], run_config_from_options(validate="ratio")
            )
        ]
        # Byte identity modulo wall_time: compare the serialised bytes
        # after zeroing the one sanctioned field on both sides.
        for report in served + direct:
            report["wall_time"] = 0.0
        assert json.dumps(served, indent=1).encode() == json.dumps(
            direct, indent=1
        ).encode()

    def test_result_conflict_while_active(self, serve):
        _, _, job = serve.json("POST", "/jobs", _solve_payload(timeout=0.0))
        final = serve.poll(job["id"])
        assert final["state"] == "failed"
        status, _, body = serve.json("GET", f"/jobs/{job['id']}/result")
        assert status == 409
        assert body["job"]["state"] == "failed"
        assert "timed out" in body["job"]["error"]

    def test_delete_cancels(self):
        # No workers: the job stays queued so DELETE is deterministic.
        fixture = ServeFixture(ReproService(workers=0, queue_depth=8))
        try:
            _, _, job = fixture.json("POST", "/jobs", _solve_payload())
            status, _, body = fixture.json("DELETE", f"/jobs/{job['id']}")
            assert status == 200
            assert body["state"] == "cancelled"
            status, _, body = fixture.json("GET", f"/jobs/{job['id']}/result")
            assert status == 409
            assert body["job"]["state"] == "cancelled"
        finally:
            fixture.close()

    def test_delete_unknown_job(self, serve):
        status, _, body = serve.json("DELETE", "/jobs/j999999")
        assert status == 404
        assert "unknown job" in body["error"]


class TestErrorMapping:
    def test_invalid_json_body_is_400(self, serve):
        status, _, data = serve.request("POST", "/jobs", raw_body=b"{not json")
        assert status == 400
        assert "not valid JSON" in json.loads(data)["error"]

    def test_bad_spec_is_400(self, serve):
        status, _, body = serve.json(
            "POST", "/jobs", _solve_payload(instances=[{"family": "warp", "size": 5}])
        )
        assert status == 400
        assert "unknown family" in body["error"]

    def test_unknown_byzantine_behavior_is_400_before_queueing(self, serve):
        payload = {
            "kind": "simulate",
            "instances": [{"family": "tree", "size": 10}],
            "specs": [{"algorithm": "d2", "byzantine": "wat=3"}],
        }
        status, _, body = serve.json("POST", "/jobs", payload)
        assert status == 400
        assert "unknown byzantine behavior" in body["error"]
        # Rejected at parse time: the queue never saw the job.
        _, _, stats = serve.json("GET", "/stats")
        assert stats["jobs"]["submitted"] == 0
        assert stats["queue"]["count"] == 0

    def test_adversarial_simulate_job_completes(self, serve):
        payload = {
            "kind": "simulate",
            "instances": [{"family": "tree", "size": 10}],
            "specs": [
                {
                    "algorithm": "d2",
                    "seed": 1,
                    "max_rounds": 64,
                    "churn": "rate=0.3,until=4",
                    "byzantine": "lie=3",
                }
            ],
        }
        status, _, job = serve.json("POST", "/jobs", payload)
        assert status == 202
        record = serve.poll(job["id"])
        assert record["state"] == "completed"
        status, _, reports = serve.json("GET", f"/jobs/{job['id']}/result")
        assert status == 200
        assert len(reports) == 1
        assert reports[0]["spec"]["byzantine"]["behaviors"] == [[3, "lie"]]

    def test_unknown_job_is_404(self, serve):
        for path in ("/jobs/j999999", "/jobs/j999999/result"):
            status, _, body = serve.json("GET", path)
            assert status == 404
            assert "unknown job" in body["error"]

    def test_unknown_path_is_404(self, serve):
        status, _, body = serve.json("GET", "/nope")
        assert status == 404
        status, _, body = serve.json("POST", "/nope", {})
        assert status == 404

    def test_backpressure_is_429_with_retry_after(self):
        fixture = ServeFixture(ReproService(workers=0, queue_depth=1))
        try:
            status, _, _ = fixture.json("POST", "/jobs", _solve_payload())
            assert status == 202
            status, headers, body = fixture.json("POST", "/jobs", _solve_payload())
            assert status == 429
            assert int(headers["Retry-After"]) >= 1
            assert body["retry_after"] == int(headers["Retry-After"])
            assert "full" in body["error"]
        finally:
            fixture.close()


class TestResultDurability:
    def test_evicted_result_served_from_spill_dir(self, tmp_path):
        spill = tmp_path / "results"
        fixture = ServeFixture(
            ReproService(workers=1, result_capacity=1, result_dir=str(spill))
        )
        try:
            _, _, first = fixture.json("POST", "/jobs", _solve_payload())
            assert fixture.poll(first["id"])["state"] == "completed"
            _, _, second = fixture.json(
                "POST", "/jobs", _solve_payload(algorithms=["greedy"])
            )
            assert fixture.poll(second["id"])["state"] == "completed"
            # The first record was evicted from the ring but spilled to
            # disk; the HTTP layer still serves it.
            assert (spill / f"{first['id']}.json").exists()
            status, _, reports = fixture.json("GET", f"/jobs/{first['id']}/result")
            assert status == 200
            assert reports[0]["algorithm"] == "d2"
        finally:
            fixture.close()
