"""Unit tests for the job-lifecycle primitives (queue + result store)."""

from __future__ import annotations

import json
import threading

import pytest

from repro.serve.jobs import JobQueue, QueueFullError, ResultStore


class TestJobQueue:
    def test_fifo_order(self):
        queue = JobQueue(depth=4)
        for job_id in ("a", "b", "c"):
            queue.put(job_id)
        assert [queue.get(), queue.get(), queue.get()] == ["a", "b", "c"]

    def test_put_full_raises_with_retry_hint(self):
        queue = JobQueue(depth=2)
        queue.put("a")
        queue.put("b")
        with pytest.raises(QueueFullError) as excinfo:
            queue.put("c", retry_after=7)
        assert excinfo.value.retry_after == 7
        assert excinfo.value.depth == 2
        assert "full" in str(excinfo.value)

    def test_remove_mid_queue(self):
        queue = JobQueue(depth=4)
        queue.put("a")
        queue.put("b")
        queue.put("c")
        assert queue.remove("b") is True
        assert queue.remove("b") is False
        assert queue.snapshot() == ["a", "c"]

    def test_close_wakes_blocked_get(self):
        queue = JobQueue(depth=1)
        got = []
        thread = threading.Thread(target=lambda: got.append(queue.get()))
        thread.start()
        queue.close()
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert got == [None]

    def test_drains_before_reporting_closed(self):
        queue = JobQueue(depth=2)
        queue.put("a")
        queue.close()
        assert queue.get() == "a"
        assert queue.get() is None

    def test_depth_must_be_positive(self):
        with pytest.raises(ValueError):
            JobQueue(depth=0)


class TestResultStore:
    def _record(self, job_id, state="completed"):
        return {"job": {"id": job_id, "state": state}, "reports": [{"r": job_id}]}

    def test_get_roundtrip(self):
        store = ResultStore(capacity=4)
        store.put("j1", self._record("j1"))
        assert store.get("j1")["job"]["id"] == "j1"
        assert store.get("nope") is None

    def test_ring_eviction_without_spill(self):
        store = ResultStore(capacity=2)
        for job_id in ("j1", "j2", "j3"):
            store.put(job_id, self._record(job_id))
        assert store.get("j1") is None  # evicted, no spill dir
        assert store.get("j2") is not None
        assert store.get("j3") is not None
        assert store.stats()["stored"] == 2
        assert store.stats()["spilled"] == 0

    def test_evicted_records_spill_to_disk(self, tmp_path):
        store = ResultStore(capacity=1, spill_dir=tmp_path / "results")
        store.put("j1", self._record("j1"))
        store.put("j2", self._record("j2"))
        # j1 was evicted but survives on disk, byte-for-byte as JSON.
        assert store.get("j1")["reports"] == [{"r": "j1"}]
        spilled = tmp_path / "results" / "j1.json"
        assert spilled.exists()
        assert json.loads(spilled.read_text()) == self._record("j1")
        assert store.stats()["spilled"] == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            ResultStore(capacity=0)
