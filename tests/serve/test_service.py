"""Service-level lifecycle tests: the acceptance contract of `repro serve`.

The two load-bearing properties:

* **byte identity** — a completed job's stored reports are exactly the
  JSON the direct ``solve_many``/``simulate_many`` call produces,
  modulo the sanctioned ``wall_time`` fields;
* **residency** — a second job on the same instance family reuses the
  resident kernels and cached optima, observable as OPT-cache hits
  with zero new misses.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.api import SimulationSpec, simulate_many, solve_many
from repro.api.config import run_config_from_options
from repro.graphs.families import get_family
from repro.io import run_report_to_dict, sim_report_to_dict
from repro.serve import QueueFullError, ReproService, SpecError


def _strip_wall(obj):
    """Drop every ``wall_time`` field, recursively (the sanctioned delta)."""
    if isinstance(obj, dict):
        return {k: _strip_wall(v) for k, v in obj.items() if k != "wall_time"}
    if isinstance(obj, list):
        return [_strip_wall(v) for v in obj]
    return obj


def _run_to_completion(service, payload, timeout=60.0):
    job = service.submit(payload)
    status = service.wait(job["id"], timeout=timeout)
    assert status is not None, "job record vanished"
    return status, service.result(job["id"])


def _direct_solve_payload(instances, algorithms, config):
    pairs = [
        ({"family": f, "size": n, "seed": s}, get_family(f).make(n, s))
        for f, n, s in instances
    ]
    return [run_report_to_dict(r) for r in solve_many(pairs, algorithms, config)]


@pytest.fixture
def service():
    with ReproService(workers=2, queue_depth=16) as svc:
        yield svc


class TestSolveLifecycle:
    def test_submit_poll_result_byte_identical_to_solve_many(self, service):
        instances = [("fan", 14, 0), ("ladder", 8, 1)]
        algorithms = ["d2", "greedy"]
        payload = {
            "kind": "solve",
            "instances": [
                {"family": f, "size": n, "seed": s} for f, n, s in instances
            ],
            "algorithms": algorithms,
            "validate": "ratio",
        }
        status, record = _run_to_completion(service, payload)
        assert status["state"] == "completed"
        assert status["error"] is None
        assert status["wall_time"] > 0

        direct = _direct_solve_payload(
            instances, algorithms, run_config_from_options(validate="ratio")
        )
        served = record["reports"]
        assert json.dumps(_strip_wall(served), indent=1) == json.dumps(
            _strip_wall(direct), indent=1
        )

    def test_simulate_job_matches_simulate_many(self, service):
        spec = SimulationSpec(algorithm="d2", model="congest", budget=8, seed=2)
        payload = {
            "kind": "simulate",
            "instances": [{"family": "tree", "size": 12, "seed": 2}],
            "specs": [
                {"algorithm": "d2", "model": "congest", "budget": 8, "seed": 2}
            ],
        }
        status, record = _run_to_completion(service, payload)
        assert status["state"] == "completed"

        graph = get_family("tree").make(12, 2)
        meta = {"family": "tree", "size": 12, "seed": 2}
        direct = [
            sim_report_to_dict(r) for r in simulate_many([(meta, graph)], [spec])
        ]
        # Simulation reports carry no wall-clock fields at all, so the
        # serve payload is byte-identical, full stop.
        assert json.dumps(record["reports"], indent=1) == json.dumps(direct, indent=1)

    def test_second_job_reuses_resident_kernels(self, service):
        """Acceptance: residency observable via opt_cache stats."""
        payload = {
            "kind": "solve",
            "instances": [
                {"family": "fan", "size": 16, "seed": 0},
                {"family": "fan", "size": 20, "seed": 0},
            ],
            "algorithms": ["d2", "greedy"],
            "validate": "ratio",
        }
        status1, _ = _run_to_completion(service, payload)
        assert status1["state"] == "completed"
        cold = service.stats()["opt_cache"]
        # Two instances: one exact solve each; the second algorithm's
        # ratio is already a within-job cache hit.
        assert cold["misses"] == 2

        status2, _ = _run_to_completion(service, payload)
        assert status2["state"] == "completed"
        warm = service.stats()["opt_cache"]
        assert warm["misses"] == cold["misses"], "warm job re-solved OPT"
        assert warm["hits"] == cold["hits"] + 4, "warm job missed the resident cache"

        instances = service.stats()["instances"]
        assert instances["resident"] == 2
        assert instances["hits"] >= 2  # second job resolved resident graphs

    def test_identical_inline_and_family_instances_agree(self, service):
        from repro.io import graph_to_dict

        graph = get_family("fan").make(12, 0)
        family_payload = {
            "kind": "solve",
            "instances": [{"family": "fan", "size": 12, "seed": 0}],
            "algorithms": ["d2"],
            "validate": "ratio",
        }
        inline_payload = {
            "kind": "solve",
            "instances": [{"graph": graph_to_dict(graph)}],
            "algorithms": ["d2"],
            "validate": "ratio",
        }
        _, family_record = _run_to_completion(service, family_payload)
        _, inline_record = _run_to_completion(service, inline_payload)
        f_report, i_report = family_record["reports"][0], inline_record["reports"][0]
        # Instance metadata differs (family provenance vs bare n/m);
        # every computed field agrees.
        for key in ("result", "valid", "optimum_size", "ratio"):
            assert f_report[key] == i_report[key]


class TestFailureModes:
    def test_timeout_fails_with_reason(self, service):
        payload = {
            "kind": "solve",
            "instances": [{"family": "fan", "size": 12}],
            "algorithms": ["d2"],
            "timeout": 0.0,
        }
        status, record = _run_to_completion(service, payload)
        assert status["state"] == "failed"
        assert "timed out" in status["error"]
        assert record["reports"] is None

    def test_runtime_error_fails_with_reason(self, service):
        # A crashed vertex outside the graph passes schema validation
        # (graph-independent) but the engine rejects it at run time.
        payload = {
            "kind": "simulate",
            "instances": [{"family": "fan", "size": 10}],
            "specs": [
                {
                    "algorithm": "d2",
                    "faults": {"drop_probability": 0.0, "crashed": [999]},
                }
            ],
        }
        status, _ = _run_to_completion(service, payload)
        assert status["state"] == "failed"
        assert status["error"].startswith("ValueError")
        assert "crashed vertices" in status["error"]

    def test_malformed_spec_rejected_before_queueing(self, service):
        with pytest.raises(SpecError):
            service.submit({"kind": "solve", "instances": []})
        assert service.stats()["jobs"]["submitted"] == 0

    def test_job_default_timeout_from_service(self):
        with ReproService(workers=1, job_timeout=0.0) as svc:
            status, _ = _run_to_completion(
                svc,
                {
                    "kind": "solve",
                    "instances": [{"family": "fan", "size": 10}],
                    "algorithms": ["d2"],
                },
            )
            assert status["state"] == "failed"
            assert "timed out" in status["error"]


class TestQueueAndCancel:
    def test_cancel_mid_queue(self):
        # No workers: submissions stay queued, so cancellation is
        # deterministic.
        service = ReproService(workers=0, queue_depth=4).start()
        payload = {
            "kind": "solve",
            "instances": [{"family": "fan", "size": 10}],
            "algorithms": ["d2"],
        }
        job = service.submit(payload)
        assert service.status(job["id"])["state"] == "queued"
        cancelled = service.cancel(job["id"])
        assert cancelled["state"] == "cancelled"
        record = service.result(job["id"])
        assert record["job"]["state"] == "cancelled"
        assert record["reports"] is None
        assert service.stats()["queue"]["count"] == 0
        service.stop()

    def test_queue_full_backpressure(self):
        service = ReproService(workers=0, queue_depth=2).start()
        payload = {
            "kind": "solve",
            "instances": [{"family": "fan", "size": 10}],
            "algorithms": ["d2"],
        }
        service.submit(payload)
        service.submit(payload)
        with pytest.raises(QueueFullError) as excinfo:
            service.submit(payload)
        assert excinfo.value.retry_after >= 1
        # Backpressure rejected the job entirely: nothing was admitted.
        assert service.stats()["jobs"]["submitted"] == 2
        # Cancelling a queued job frees a slot.
        queued = service.stats()["queue"]["queued"]
        service.cancel(queued[0])
        service.submit(payload)
        service.stop()

    def test_cancel_unknown_job(self, service):
        assert service.cancel("j999999") is None


class TestConcurrentSubmitters:
    def test_isolated_results(self):
        sizes = [10, 12, 14, 16]
        with ReproService(workers=3, queue_depth=16) as service:
            results: dict[int, dict] = {}
            errors: list[BaseException] = []

            def submit_and_wait(size):
                try:
                    payload = {
                        "kind": "solve",
                        "instances": [{"family": "fan", "size": size, "seed": 0}],
                        "algorithms": ["d2", "greedy"],
                        "validate": "ratio",
                    }
                    status, record = _run_to_completion(service, payload)
                    assert status["state"] == "completed"
                    results[size] = record["reports"]
                except BaseException as exc:  # noqa: BLE001 — surfaced below
                    errors.append(exc)

            threads = [
                threading.Thread(target=submit_and_wait, args=(size,))
                for size in sizes
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert not errors
            for size in sizes:
                direct = _direct_solve_payload(
                    [("fan", size, 0)],
                    ["d2", "greedy"],
                    run_config_from_options(validate="ratio"),
                )
                assert _strip_wall(results[size]) == _strip_wall(direct)
