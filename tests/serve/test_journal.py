"""The durable job journal: accepted work survives a service crash."""

from __future__ import annotations

import json

from repro.serve import ReproService

PAYLOAD = {
    "kind": "solve",
    "instances": [{"family": "tree", "size": 10, "seed": 0}],
    "algorithms": ["greedy"],
}


def _journal_files(journal_dir):
    return sorted(p.name for p in journal_dir.glob("*.json"))


def test_journal_entry_lives_from_admission_to_terminal_state(tmp_path):
    journal = tmp_path / "journal"
    # workers=0: the job is admitted and journalled but never executes —
    # exactly the window a crash would hit.
    with ReproService(workers=0, journal_dir=str(journal)) as service:
        record = service.submit(PAYLOAD)
        assert _journal_files(journal) == [f"{record['id']}.json"]
        entry = json.loads((journal / f"{record['id']}.json").read_text())
        assert entry["schema"] == 1
        assert entry["payload"] == PAYLOAD

    with ReproService(workers=1, journal_dir=str(journal)) as service:
        status = service.wait(record["id"], timeout=30)
        assert status["state"] == "completed"
        # Terminal state clears the journal entry.
        assert _journal_files(journal) == []


def test_recovery_keeps_ids_and_sequences_after_them(tmp_path):
    journal = tmp_path / "journal"
    with ReproService(workers=0, journal_dir=str(journal)) as service:
        first = service.submit(PAYLOAD)
        second = service.submit(PAYLOAD)
    assert _journal_files(journal) == [f"{first['id']}.json", f"{second['id']}.json"]

    with ReproService(workers=1, journal_dir=str(journal)) as service:
        for job_id in (first["id"], second["id"]):
            status = service.wait(job_id, timeout=30)
            assert status["state"] == "completed"
            assert service.result(job_id)["reports"] is not None
        # New submissions continue the id sequence past the recovered ids.
        fresh = service.submit(PAYLOAD)
        assert fresh["id"] > second["id"]
        service.wait(fresh["id"], timeout=30)


def test_unreadable_or_invalid_entries_are_quarantined(tmp_path):
    journal = tmp_path / "journal"
    journal.mkdir()
    (journal / "j000001.json").write_text("{torn")
    (journal / "j000002.json").write_text(
        json.dumps({"schema": 1, "id": "j000002", "payload": {"kind": "nope"}})
    )
    with ReproService(workers=0, journal_dir=str(journal)) as service:
        assert service.stats()["jobs"]["submitted"] == 0
    assert _journal_files(journal) == []
    assert sorted(p.name for p in journal.glob("*.rejected")) == [
        "j000001.rejected",
        "j000002.rejected",
    ]


def test_full_queue_leaves_remaining_entries_for_next_start(tmp_path):
    journal = tmp_path / "journal"
    with ReproService(workers=0, queue_depth=2, journal_dir=str(journal)) as service:
        first = service.submit(PAYLOAD)
        second = service.submit(PAYLOAD)
    # A smaller queue on restart recovers what fits, keeps the rest.
    with ReproService(workers=0, queue_depth=1, journal_dir=str(journal)) as service:
        stats = service.stats()
        assert stats["queue"]["count"] == 1
    assert _journal_files(journal) == [f"{first['id']}.json", f"{second['id']}.json"]


def test_no_journal_dir_means_no_journal(tmp_path):
    with ReproService(workers=1) as service:
        record = service.submit(PAYLOAD)
        service.wait(record["id"], timeout=30)
    assert list(tmp_path.iterdir()) == []
