"""Tests for pipelined CONGEST gathering."""

import pytest

from repro.graphs import generators as gen
from repro.local_model.congest_gather import CongestGatherAlgorithm, congest_gather_views
from repro.local_model.gather import gather_views
from repro.local_model.instrumentation import payload_size


def _views_match(graph, radius, budget) -> bool:
    local_views, _ = gather_views(graph, radius)
    congest_views, _ = congest_gather_views(graph, radius, budget)
    for v in graph.nodes:
        truth = local_views[v].known_ball(radius)
        got = congest_views[v].graph
        if set(truth.nodes) != set(got.nodes):
            return False
        if set(map(frozenset, truth.edges)) != set(map(frozenset, got.edges)):
            return False
    return True


class TestExactness:
    @pytest.mark.parametrize("budget", [1, 2, 4])
    def test_cycle(self, budget):
        assert _views_match(gen.cycle(10), 2, budget)

    @pytest.mark.parametrize("budget", [1, 3])
    def test_ladder(self, budget):
        assert _views_match(gen.ladder(5), 2, budget)

    def test_star_radius_one(self):
        assert _views_match(gen.star(7), 1, 2)

    def test_tree(self):
        from repro.graphs.random_families import random_tree

        assert _views_match(random_tree(14, 3), 2, 2)


class TestRoundInflation:
    def test_smaller_budget_more_rounds(self):
        g = gen.fan(8)
        _, t1 = congest_gather_views(g, 2, 1)
        _, t4 = congest_gather_views(g, 2, 4)
        assert t1.round_count > t4.round_count

    def test_congest_slower_than_local(self):
        g = gen.ladder(6)
        _, local_trace = gather_views(g, 2)
        _, congest_trace = congest_gather_views(g, 2, 2)
        assert congest_trace.round_count > local_trace.round_count

    def test_messages_respect_budget(self):
        g = gen.ladder(6)
        budget = 2

        # budget counts facts per message; each fact is <= 3 units
        views, trace = congest_gather_views(g, 2, budget)
        worst_round = max(trace.rounds, key=lambda s: s.payload_units / max(1, s.messages))
        assert worst_round.payload_units / max(1, worst_round.messages) <= 3 * budget


class TestValidation:
    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            CongestGatherAlgorithm(-1, 2, 5)
        with pytest.raises(ValueError):
            CongestGatherAlgorithm(2, 0, 5)
        with pytest.raises(ValueError):
            CongestGatherAlgorithm(2, 2, 0)
