"""Tests for trace accounting."""

from repro.local_model.instrumentation import RoundStats, Trace, payload_size


class TestPayloadSize:
    def test_scalar(self):
        assert payload_size(42) == 1
        assert payload_size("hello") == 1

    def test_flat_list(self):
        assert payload_size([1, 2, 3]) == 3

    def test_nested(self):
        assert payload_size([{1, 2}, (3, 4, 5)]) == 5

    def test_dict_counts_keys_and_values(self):
        assert payload_size({1: 2, 3: 4}) == 4

    def test_empty_container_counts_one(self):
        assert payload_size([]) == 1
        assert payload_size({}) == 1


class TestTrace:
    def test_totals(self):
        trace = Trace(
            rounds=[
                RoundStats(round_index=1, messages=4, payload_units=10),
                RoundStats(round_index=2, messages=2, payload_units=30),
            ]
        )
        assert trace.round_count == 2
        assert trace.total_messages == 6
        assert trace.total_payload == 40

    def test_empty_trace(self):
        trace = Trace()
        assert trace.round_count == 0
        assert trace.total_messages == 0
