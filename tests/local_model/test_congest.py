"""Tests for CONGEST accounting."""

from repro.graphs import generators as gen
from repro.local_model.congest import (
    congest_budget_units,
    gather_volume_model,
    trace_congest_report,
)
from repro.local_model.gather import gather_views
from repro.local_model.network import Network
from repro.local_model.protocols import DegreeTwoProtocol
from repro.local_model.runtime import SynchronousRuntime


class TestReports:
    def test_gathering_violates_congest(self):
        g = gen.ladder(10)
        _, trace = gather_views(g, 3)
        report = trace_congest_report(g, trace)
        assert not report.congest_feasible
        assert report.overshoot > 1

    def test_degree_rule_fits_congest(self):
        g = gen.cycle(20)
        network = Network(g)
        result = SynchronousRuntime(network, max_rounds=5).run(DegreeTwoProtocol)
        report = trace_congest_report(g, result.trace, ids_per_message=3)
        assert report.congest_feasible

    def test_overshoot_grows_with_radius(self):
        g = gen.ladder(12)
        _, small = gather_views(g, 1)
        _, large = gather_views(g, 4)
        r_small = trace_congest_report(g, small)
        r_large = trace_congest_report(g, large)
        assert r_large.overshoot > r_small.overshoot


class TestModel:
    def test_budget_units(self):
        assert congest_budget_units(100) == 1.0
        assert congest_budget_units(100, ids_per_message=4) == 4.0

    def test_volume_model_monotone_in_radius(self):
        v1 = gather_volume_model(100, 1, 4)
        v3 = gather_volume_model(100, 3, 4)
        assert v3 > v1

    def test_volume_model_caps_at_n(self):
        assert gather_volume_model(10, 10, 4) <= 10 * 5

    def test_degenerate_degree(self):
        assert gather_volume_model(10, 3, 1) == 5.0
