"""Failure injection: the runtime must fail loudly, not corrupt state."""

import networkx as nx
import pytest

from repro.graphs import generators as gen
from repro.local_model.algorithm import LocalAlgorithm
from repro.local_model.network import Network
from repro.local_model.node import NodeContext
from repro.local_model.runtime import SynchronousRuntime


class BadPortSender(LocalAlgorithm):
    def on_init(self, ctx: NodeContext) -> None:
        ctx.send(ctx.degree + 5, "oops")

    def on_round(self, ctx: NodeContext) -> None:  # pragma: no cover
        ctx.halt(None)


class CrashesInRound(LocalAlgorithm):
    def on_init(self, ctx: NodeContext) -> None:
        ctx.broadcast("x")

    def on_round(self, ctx: NodeContext) -> None:
        raise RuntimeError("node crashed")


class HaltsTwice(LocalAlgorithm):
    def on_init(self, ctx: NodeContext) -> None:
        ctx.broadcast("x")

    def on_round(self, ctx: NodeContext) -> None:
        ctx.halt(1)
        ctx.halt(2)  # last call wins; must not corrupt


class SendsAfterHalt(LocalAlgorithm):
    def on_init(self, ctx: NodeContext) -> None:
        ctx.broadcast("x")

    def on_round(self, ctx: NodeContext) -> None:
        ctx.halt("done")
        ctx.broadcast("zombie")


class TestFailures:
    def test_bad_port_raises(self, cycle6):
        with pytest.raises(ValueError, match="has no port"):
            SynchronousRuntime(Network(cycle6)).run(BadPortSender)

    def test_node_exception_propagates(self, path5):
        with pytest.raises(RuntimeError, match="node crashed"):
            SynchronousRuntime(Network(path5)).run(CrashesInRound)

    def test_double_halt_keeps_last_output(self, path5):
        result = SynchronousRuntime(Network(path5)).run(HaltsTwice)
        assert all(v == 2 for v in result.outputs.values())

    def test_messages_after_halt_are_dropped(self, path5):
        # the runtime skips outboxes of halted nodes: no zombie traffic.
        result = SynchronousRuntime(Network(path5)).run(SendsAfterHalt)
        assert result.rounds == 1
        assert all(v == "done" for v in result.outputs.values())

    def test_max_rounds_zero_graph(self):
        g = nx.Graph()
        g.add_node(0)

        class Never(LocalAlgorithm):
            def on_init(self, ctx):
                pass

            def on_round(self, ctx):
                pass

        with pytest.raises(RuntimeError, match="did not halt"):
            SynchronousRuntime(Network(g), max_rounds=3).run(Never)


class TestSolverFailureModes:
    def test_infeasible_b_domination(self, path5):
        from repro.solvers.exact import minimum_b_dominating_set

        with pytest.raises(ValueError, match="cannot be dominated"):
            minimum_b_dominating_set(path5, [0], candidates=[3, 4])

    def test_insufficient_view_is_loud(self):
        from repro.core.algorithm1 import InsufficientViewError, decide_membership
        from repro.core.radii import RadiusPolicy
        from repro.local_model.gather import gather_views

        g = gen.ladder(8)
        policy = RadiusPolicy.practical()
        # radius just at detection: membership decisions needing the
        # component reconstruction must refuse rather than guess.
        views, _ = gather_views(g, policy.detection_radius)
        outcomes = []
        for view in views.values():
            try:
                outcomes.append(decide_membership(view, policy))
            except InsufficientViewError:
                outcomes.append("refused")
        assert "refused" in outcomes
