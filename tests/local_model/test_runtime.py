"""Tests for the synchronous scheduler."""

import networkx as nx
import pytest

from repro.graphs import generators as gen
from repro.local_model.algorithm import LocalAlgorithm
from repro.local_model.network import Network
from repro.local_model.node import NodeContext
from repro.local_model.runtime import SynchronousRuntime, run_algorithm


class EchoOnce(LocalAlgorithm):
    """Each node broadcasts its uid, then outputs its neighbor ids."""

    def on_init(self, ctx: NodeContext) -> None:
        ctx.broadcast(ctx.uid)

    def on_round(self, ctx: NodeContext) -> None:
        ctx.halt(sorted(ctx.inbox.values()))


class CountDown(LocalAlgorithm):
    def __init__(self, rounds: int):
        self.remaining = rounds

    def on_init(self, ctx: NodeContext) -> None:
        ctx.broadcast("tick")

    def on_round(self, ctx: NodeContext) -> None:
        self.remaining -= 1
        if self.remaining <= 0:
            ctx.halt(ctx.uid)
        else:
            ctx.broadcast("tick")


class Silent(LocalAlgorithm):
    def on_init(self, ctx: NodeContext) -> None:
        pass

    def on_round(self, ctx: NodeContext) -> None:  # pragma: no cover
        pass


class TestRuntime:
    def test_neighbor_discovery(self, cycle6):
        result = run_algorithm(Network(cycle6), EchoOnce)
        assert result.outputs[0] == [1, 5]
        assert result.rounds == 1

    def test_round_count(self, path5):
        result = run_algorithm(Network(path5), lambda: CountDown(4))
        assert result.rounds == 4

    def test_outputs_for_all_nodes(self, path5):
        result = run_algorithm(Network(path5), EchoOnce)
        assert set(result.outputs) == set(path5.nodes)

    def test_non_halting_raises(self, path5):
        runtime = SynchronousRuntime(Network(path5), max_rounds=5)
        with pytest.raises(RuntimeError, match="did not halt"):
            runtime.run(Silent)

    def test_trace_accounting(self, cycle6):
        result = run_algorithm(Network(cycle6), EchoOnce)
        # every node broadcasts once on both ports: 12 messages total
        assert result.trace.total_messages == 12
        assert result.trace.round_count == 1

    def test_single_node_network(self):
        g = nx.Graph()
        g.add_node(0)
        result = run_algorithm(Network(g), EchoOnce)
        assert result.outputs[0] == []

    def test_heterogeneous_halting(self):
        # A star where leaves halt a round before the hub would show
        # stale outboxes if halted nodes kept sending; ensure clean run.
        g = gen.star(5)

        class LeafFast(LocalAlgorithm):
            def on_init(self, ctx: NodeContext) -> None:
                ctx.broadcast(ctx.uid)

            def on_round(self, ctx: NodeContext) -> None:
                if ctx.degree == 1:
                    ctx.halt("leaf")
                elif len(ctx.state.setdefault("seen", [])) >= 1:
                    ctx.halt("hub")
                else:
                    ctx.state["seen"].append(ctx.inbox)
                    ctx.broadcast(ctx.uid)

        result = run_algorithm(Network(g), LeafFast)
        assert result.outputs[0] == "hub"
        assert all(result.outputs[v] == "leaf" for v in range(1, 5))
