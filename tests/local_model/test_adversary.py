"""Adversarial plans: churn materialization and Byzantine behaviors."""

import pytest

from repro.graphs import generators as gen
from repro.local_model.adversary import (
    BYZANTINE_BEHAVIORS,
    FAKE_UID_OFFSET,
    ByzantinePlan,
    ChurnEvent,
    ChurnPlan,
    _forge,
    churned_graph,
    materialize_churn,
)
from repro.local_model.algorithm import LocalAlgorithm
from repro.local_model.engine import FaultPlan, SimulationEngine
from repro.local_model.network import Network
from repro.local_model.protocols import D2Protocol


class TestChurnEvent:
    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown churn kind"):
            ChurnEvent(1, "frob", 0, 1)

    def test_round_starts_at_one(self):
        with pytest.raises(ValueError, match="churn rounds start at 1"):
            ChurnEvent(0, "add_edge", 0, 1)

    def test_edge_needs_both_endpoints(self):
        with pytest.raises(ValueError, match="needs both endpoints"):
            ChurnEvent(1, "del_edge", 0)

    def test_no_self_loops(self):
        with pytest.raises(ValueError, match="self-loops"):
            ChurnEvent(1, "add_edge", 3, 3)

    def test_leave_takes_single_vertex(self):
        with pytest.raises(ValueError, match="single vertex"):
            ChurnEvent(1, "leave", 0, 1)

    def test_join_anchor_is_optional(self):
        ChurnEvent(1, "join", 99)
        ChurnEvent(1, "join", 99, 0)


class TestPlans:
    def test_rate_range(self):
        with pytest.raises(ValueError, match="rate must be in"):
            ChurnPlan(rate=1.5, until=2)

    def test_rate_needs_until(self):
        with pytest.raises(ValueError, match="needs until"):
            ChurnPlan(rate=0.2)

    def test_trivial(self):
        assert ChurnPlan().is_trivial
        assert not ChurnPlan(events=(ChurnEvent(1, "leave", 0),)).is_trivial
        assert not ChurnPlan(rate=0.1, until=3).is_trivial
        assert ByzantinePlan().is_trivial
        assert not ByzantinePlan(((0, "lie"),)).is_trivial

    def test_unknown_behavior(self):
        with pytest.raises(ValueError, match="unknown byzantine behavior"):
            ByzantinePlan(((0, "gossip"),))

    def test_duplicate_vertex(self):
        with pytest.raises(ValueError, match="two byzantine behaviors"):
            ByzantinePlan(((0, "lie"), (0, "silent")))

    def test_as_mapping(self):
        plan = ByzantinePlan(((0, "lie"), (3, "babble")))
        assert plan.as_mapping() == {0: "lie", 3: "babble"}


class TestMaterializeChurn:
    def test_explicit_events_grouped_by_round(self):
        graph = gen.path(5)
        plan = ChurnPlan(
            events=(
                ChurnEvent(2, "del_edge", 0, 1),
                ChurnEvent(2, "add_edge", 0, 4),
                ChurnEvent(3, "leave", 2),
            )
        )
        rounds = materialize_churn(plan, graph, seed=0)
        assert sorted(rounds) == [2, 3]
        assert [e.kind for e in rounds[2]] == ["del_edge", "add_edge"]

    def test_random_process_is_deterministic(self):
        graph = gen.cycle(8)
        plan = ChurnPlan(rate=0.5, until=6)
        first = materialize_churn(plan, graph, seed=3)
        second = materialize_churn(plan, graph, seed=3)
        assert first == second
        assert first  # rate 0.5 over 6 rounds: this seed does flip

    def test_random_process_varies_with_seed(self):
        graph = gen.cycle(8)
        plan = ChurnPlan(rate=0.5, until=8)
        outcomes = {
            tuple(sorted(materialize_churn(plan, graph, seed=s).items()))
            for s in range(4)
        }
        assert len(outcomes) > 1

    def test_validates_against_evolving_topology(self):
        graph = gen.path(4)
        # 0-1 is deleted in round 1; deleting it again in round 2 must
        # fail against the *evolved* edge set, not the input graph.
        plan = ChurnPlan(
            events=(
                ChurnEvent(1, "del_edge", 0, 1),
                ChurnEvent(2, "del_edge", 0, 1),
            )
        )
        with pytest.raises(ValueError, match="does not exist"):
            materialize_churn(plan, graph, seed=0)

    @pytest.mark.parametrize(
        "event,match",
        [
            (ChurnEvent(1, "add_edge", 0, 1), "already exists"),
            (ChurnEvent(1, "add_edge", 0, 99), "not in the graph"),
            (ChurnEvent(1, "del_edge", 0, 3), "does not exist"),
            (ChurnEvent(1, "join", 2), "already in the graph"),
            (ChurnEvent(1, "join", 99, 98), "anchor .* not in the graph"),
            (ChurnEvent(1, "leave", 99), "not in the graph"),
        ],
    )
    def test_invalid_events_fail_before_any_round(self, event, match):
        with pytest.raises(ValueError, match=match):
            materialize_churn(ChurnPlan(events=(event,)), gen.path(4), seed=0)

    def test_cannot_remove_last_vertex(self):
        import networkx as nx

        graph = nx.Graph()
        graph.add_node(0)
        plan = ChurnPlan(events=(ChurnEvent(1, "leave", 0),))
        with pytest.raises(ValueError, match="last vertex"):
            materialize_churn(plan, graph, seed=0)


class TestChurnedGraph:
    def test_input_graph_is_never_mutated(self):
        graph = gen.path(5)
        snapshot = (set(graph.nodes), set(map(frozenset, graph.edges)))
        plan = ChurnPlan(
            events=(ChurnEvent(1, "leave", 4), ChurnEvent(2, "join", 9, 0)),
            rate=0.4,
            until=5,
        )
        churned_graph(graph, plan, seed=1, upto_round=10)
        assert (set(graph.nodes), set(map(frozenset, graph.edges))) == snapshot

    def test_replays_only_up_to_round(self):
        graph = gen.path(5)
        plan = ChurnPlan(
            events=(ChurnEvent(1, "leave", 4), ChurnEvent(5, "join", 9, 0))
        )
        mid = churned_graph(graph, plan, seed=0, upto_round=3)
        assert 4 not in mid.nodes and 9 not in mid.nodes
        final = churned_graph(graph, plan, seed=0, upto_round=5)
        assert 9 in final.nodes

    def test_trivial_plan_is_a_copy(self):
        graph = gen.path(5)
        copy = churned_graph(graph, None, seed=0, upto_round=3)
        assert copy is not graph
        assert set(copy.edges) == set(graph.edges)


class TestForge:
    def test_forges_uid_in_nested_containers(self):
        payload = (3, frozenset({(3, True), (5, False)}), [3, "x"])
        forged = _forge(payload, 3, 1003)
        assert forged == (1003, frozenset({(1003, True), (5, False)}), [1003, "x"])

    def test_bool_is_not_an_identifier(self):
        # uid 1 must not forge True (bool subclasses int).
        assert _forge((1, True), 1, 1001) == (1001, True)


class EchoUntilFullView(LocalAlgorithm):
    """Broadcasts every round; halts once every port delivered a ping.

    A neighbor that never speaks (a silent Byzantine node) therefore
    starves this protocol forever — the timeout path's test protocol.
    """

    def on_init(self, ctx):
        ctx.broadcast("ping")

    def on_round(self, ctx):
        if len(ctx.inbox) == ctx.degree:
            ctx.halt(True)
            return
        ctx.broadcast("ping")


class TestByzantineEngine:
    def _run(self, graph, byzantine, max_rounds=64, protocol=D2Protocol):
        engine = SimulationEngine(
            Network(graph),
            max_rounds=max_rounds,
            faults=FaultPlan(),
            seed=0,
            byzantine=byzantine,
        )
        return engine.run(protocol)

    def test_every_behavior_reports_suspicion(self):
        for behavior in BYZANTINE_BEHAVIORS:
            result = self._run(gen.cycle(6), {2: behavior})
            row = result.suspicion[2]
            assert row["behavior"] == behavior
            assert row["deviations"] >= 0, behavior
            assert row["detections"] <= row["deviations"], behavior

    def test_active_deviation_is_counted(self):
        # D2 broadcasts one payload to every port, so rotating it
        # (equivocate) changes nothing — but suppression, flooding, and
        # identity forgery are all visible deviations.
        for behavior in ("silent", "babble", "lie"):
            result = self._run(gen.cycle(6), {2: behavior})
            assert result.suspicion[2]["deviations"] > 0, behavior

    def test_corrupted_deliveries_are_detected(self):
        result = self._run(gen.cycle(6), {2: "babble"})
        assert result.suspicion[2]["detections"] > 0

    def test_silent_node_starves_waiters_until_timeout(self):
        result = self._run(
            gen.cycle(6), {2: "silent"}, max_rounds=12, protocol=EchoUntilFullView
        )
        assert result.timed_out
        assert result.rounds == 12
        # The silent node's neighbors never completed their view.
        assert 1 not in result.outputs and 3 not in result.outputs

    def test_benign_run_still_raises_on_round_exhaustion(self):
        engine = SimulationEngine(
            Network(gen.path(2)), max_rounds=3, faults=FaultPlan(), seed=0
        )

        class NeverHalts(LocalAlgorithm):
            def on_init(self, ctx):
                pass

            def on_round(self, ctx):
                pass

        with pytest.raises(RuntimeError, match="did not halt"):
            engine.run(NeverHalts)

    def test_unknown_byzantine_vertex_is_rejected(self):
        with pytest.raises(ValueError, match="never in the network"):
            self._run(gen.cycle(6), {99: "lie"})

    def test_byzantine_crash_overlap_is_rejected(self):
        with pytest.raises(ValueError, match="both byzantine and crashed"):
            SimulationEngine(
                Network(gen.cycle(6)),
                max_rounds=10,
                faults=FaultPlan(crashed=(2,)),
                seed=0,
                byzantine={2: "lie"},
            )

    def test_fake_uid_never_collides_with_honest_ids(self):
        result = self._run(gen.cycle(6), {2: "lie"})
        honest_uids = set(range(6))
        assert FAKE_UID_OFFSET + 2 not in honest_uids
        assert result.suspicion[2]["deviations"] > 0

    def test_adversarial_run_reproduces_exactly(self):
        first = self._run(gen.cycle(8), {1: "equivocate", 5: "silent"})
        second = self._run(gen.cycle(8), {1: "equivocate", 5: "silent"})
        assert first == second
