"""Tests for view gathering — the heart of the simulator's fidelity."""

import networkx as nx
import pytest

from repro.graphs import generators as gen
from repro.graphs.util import ball
from repro.local_model.gather import gather_views, rounds_for_radius
from repro.local_model.identifiers import shuffled_ids, spread_ids


class TestRoundsForRadius:
    def test_radius_plus_one(self):
        assert rounds_for_radius(0) == 1
        assert rounds_for_radius(3) == 4

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            rounds_for_radius(-1)


class TestGatheredKnowledge:
    def test_radius_zero_knows_neighbors(self, cycle6):
        views, trace = gather_views(cycle6, 0)
        assert trace.round_count == 1
        view = views[0]
        assert set(view.graph.nodes) == {5, 0, 1}
        # edges to neighbors known; edge 1-2 unknown at radius 0
        assert view.graph.has_edge(0, 1)
        assert not view.graph.has_edge(1, 2)

    def test_views_match_true_balls(self, small_zoo):
        for g in small_zoo:
            radius = 2
            views, _ = gather_views(g, radius)
            for v in g.nodes:
                true_ball = g.subgraph(ball(g, v, radius))
                known_ball = views[v].known_ball(radius)
                assert set(known_ball.nodes) == set(true_ball.nodes), (g, v)
                assert set(map(frozenset, known_ball.edges)) == set(
                    map(frozenset, true_ball.edges)
                ), (g, v)

    def test_rounds_charged(self, path5):
        for radius in (0, 1, 2, 3):
            _, trace = gather_views(path5, radius)
            assert trace.round_count == rounds_for_radius(radius)

    def test_view_rejects_oversized_queries(self, cycle6):
        views, _ = gather_views(cycle6, 1)
        with pytest.raises(ValueError):
            views[0].known_ball(2)

    def test_knows_whole_component(self, path5):
        views, _ = gather_views(path5, 5)
        assert views[2].knows_whole_component()
        views_small, _ = gather_views(path5, 1)
        assert not views_small[2].knows_whole_component()

    def test_distances_recorded(self, path5):
        views, _ = gather_views(path5, 3)
        assert views[0].dist[3] == 3

    def test_center_is_uid(self, path5):
        ids = shuffled_ids(path5, seed=4)
        views, _ = gather_views(path5, 2, ids)
        assert set(views) == set(range(5))

    def test_views_in_id_space(self, path5):
        # with spread ids, views must mention spread ids, not labels
        ids = spread_ids(path5)
        views, _ = gather_views(path5, 2, ids)
        some_view = next(iter(views.values()))
        assert all(uid in ids.values() for uid in some_view.graph.nodes)

    def test_message_volume_grows_with_radius(self, cycle6):
        _, small = gather_views(cycle6, 1)
        _, large = gather_views(cycle6, 3)
        assert large.total_payload > small.total_payload


class TestIdentifierInvariance:
    def test_view_isomorphic_under_relabeling(self, cycle6):
        """Gathering must commute with identifier assignment."""
        views_identity, _ = gather_views(cycle6, 2)
        ids = shuffled_ids(cycle6, seed=9)
        views_shuffled, _ = gather_views(cycle6, 2, ids)
        for v in cycle6.nodes:
            a = views_identity[v]
            b = views_shuffled[ids[v]]
            assert a.graph.number_of_nodes() == b.graph.number_of_nodes()
            assert a.graph.number_of_edges() == b.graph.number_of_edges()
            assert sorted(a.dist.values()) == sorted(b.dist.values())
