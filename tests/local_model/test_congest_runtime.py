"""Tests for the CONGEST-enforcing runtime."""

import pytest

from repro.graphs import generators as gen
from repro.local_model.congest_runtime import (
    CongestRuntime,
    MessageTooLargeError,
    runs_in_congest,
)
from repro.local_model.gather import GatherAlgorithm
from repro.local_model.network import Network
from repro.local_model.protocols import DegreeTwoProtocol, D2Protocol


class TestEnforcement:
    def test_degree_rule_fits(self, cycle6):
        fits, result = runs_in_congest(cycle6, DegreeTwoProtocol, ids_per_message=4)
        assert fits
        assert result is not None

    def test_gathering_rejected(self):
        g = gen.ladder(8)
        fits, result = runs_in_congest(g, lambda: GatherAlgorithm(3), ids_per_message=4)
        assert not fits
        assert result is None

    def test_d2_needs_neighborhood_sized_messages(self):
        # D2 sends closed neighborhoods: Θ(Δ) identifiers.  With budget
        # below Δ+2 it must fail on a star; with a degree-sized budget
        # it runs.
        g = gen.star(8)
        fits_small, _ = runs_in_congest(g, D2Protocol, ids_per_message=3)
        assert not fits_small
        fits_big, result = runs_in_congest(g, D2Protocol, ids_per_message=32)
        assert fits_big

    def test_error_carries_details(self, cycle6):
        network = Network(gen.ladder(6))
        runtime = CongestRuntime(network, ids_per_message=1)
        with pytest.raises(MessageTooLargeError) as excinfo:
            runtime.run(lambda: GatherAlgorithm(2))
        assert excinfo.value.units > excinfo.value.budget

    def test_budget_validation(self, cycle6):
        with pytest.raises(ValueError):
            CongestRuntime(Network(cycle6), ids_per_message=0)

    def test_network_restored_after_failure(self):
        g = gen.ladder(6)
        network = Network(g)
        runtime = CongestRuntime(network, ids_per_message=1)
        with pytest.raises(MessageTooLargeError):
            runtime.run(lambda: GatherAlgorithm(2))
        # the deliver shim must be removed even after failure
        assert network.deliver.__qualname__.startswith("Network.")
