"""Async + adversarial schedulers: delay streams and delivery order."""

import pytest

from repro.graphs import generators as gen
from repro.local_model.engine import FaultPlan, SimulationEngine, scheduler_for
from repro.local_model.network import Network
from repro.local_model.protocols import D2Protocol
from repro.local_model.schedulers import (
    AdversarialScheduler,
    AsyncScheduler,
    PendingMessage,
)


class TestAsyncScheduler:
    def test_negative_bound_rejected(self):
        with pytest.raises(ValueError, match="delay bound"):
            AsyncScheduler(delay_bound=-1)

    def test_delays_are_bounded_and_seeded(self):
        first = AsyncScheduler(delay_bound=3, seed=7)
        second = AsyncScheduler(delay_bound=3, seed=7)
        draws = [first.delay(1, i, 0, 1) for i in range(50)]
        assert draws == [second.delay(1, i, 0, 1) for i in range(50)]
        assert all(0 <= d <= 3 for d in draws)
        assert len(set(draws)) > 1

    def test_zero_bound_never_draws(self):
        scheduler = AsyncScheduler(delay_bound=0, seed=7)
        assert [scheduler.delay(1, i, 0, 1) for i in range(10)] == [0] * 10

    def test_order_is_fifo(self):
        due = [
            PendingMessage(2, 1, 0, 0, "late", 3),
            PendingMessage(1, 0, 0, 0, "early", 3),
            PendingMessage(2, 0, 0, 0, "mid", 3),
        ]
        assert [m.payload for m in AsyncScheduler().order(due)] == [
            "early",
            "mid",
            "late",
        ]


class TestAdversarialScheduler:
    def test_holds_messages_up_the_identifier_order(self):
        scheduler = AdversarialScheduler(delay_bound=2)
        assert scheduler.delay(1, 0, sender_uid=0, receiver_uid=5) == 2
        assert scheduler.delay(1, 0, sender_uid=5, receiver_uid=0) == 0

    def test_stalest_payload_wins_the_port_slot(self):
        due = [
            PendingMessage(1, 0, 0, 0, "stale", 3),
            PendingMessage(2, 1, 0, 0, "fresh", 3),
        ]
        # Newest delivered first, so the stale write lands last.
        assert [m.payload for m in AdversarialScheduler().order(due)] == [
            "fresh",
            "stale",
        ]

    def test_zero_bound_recovers_synchrony(self):
        graph = gen.cycle(8)
        plain = SimulationEngine(
            Network(graph), max_rounds=64, faults=FaultPlan(), seed=0
        ).run(D2Protocol)
        sync = SimulationEngine(
            Network(graph),
            AdversarialScheduler(delay_bound=0),
            max_rounds=64,
            faults=FaultPlan(),
            seed=0,
        ).run(D2Protocol)
        assert sync.outputs == plain.outputs
        assert sync.rounds == plain.rounds


class TestSchedulerFor:
    def test_async_and_adversarial_models(self):
        async_s = scheduler_for("async", delay=3, seed=11)
        assert async_s.model == "async"
        assert async_s.plans_delivery and not async_s.enforces
        assert async_s.delay_bound == 3 and async_s.seed == 11
        adv = scheduler_for("adversarial", delay=1)
        assert adv.model == "adversarial"
        assert adv.plans_delivery and adv.delay_bound == 1

    def test_local_and_congest_do_not_plan_delivery(self):
        local = scheduler_for("local")
        assert not getattr(local, "plans_delivery", False)
        congest = scheduler_for("congest", budget=4)
        assert not getattr(congest, "plans_delivery", False)

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError, match="unknown model"):
            scheduler_for("quantum")


class TestEngineWithPlannedDelivery:
    def _run(self, scheduler, seed=0):
        return SimulationEngine(
            Network(gen.cycle(8)),
            scheduler,
            max_rounds=64,
            faults=FaultPlan(),
            seed=seed,
        ).run(D2Protocol)

    def test_async_run_reproduces_exactly(self):
        first = self._run(AsyncScheduler(delay_bound=2, seed=5))
        second = self._run(AsyncScheduler(delay_bound=2, seed=5))
        assert first == second

    def test_async_delay_stream_changes_with_seed(self):
        runs = {
            self._run(AsyncScheduler(delay_bound=3, seed=s)).delayed_messages
            for s in range(4)
        }
        assert len(runs) > 1

    def test_delayed_messages_are_counted(self):
        result = self._run(AdversarialScheduler(delay_bound=2))
        assert result.delayed_messages > 0

    def test_stale_inputs_shield_instead_of_crash(self):
        # D2's phase payloads can arrive out of phase under delays; the
        # engine must record the victims as failed, not blow up.
        result = self._run(AdversarialScheduler(delay_bound=2))
        assert set(result.failed) <= set(range(8))
        assert result.outputs or result.failed
