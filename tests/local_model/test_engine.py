"""Tests for the unified simulation engine: schedulers, faults, traces."""

import pytest

from repro.graphs import generators as gen
from repro.local_model.algorithm import LocalAlgorithm
from repro.local_model.engine import (
    CongestScheduler,
    FaultPlan,
    LocalScheduler,
    MessageTooLargeError,
    SimulationEngine,
    scheduler_for,
)
from repro.local_model.gather import GatherAlgorithm
from repro.local_model.network import Network
from repro.local_model.node import NodeContext
from repro.local_model.protocols import D2Protocol
from repro.local_model.runtime import SynchronousRuntime


class EchoOnce(LocalAlgorithm):
    def on_init(self, ctx: NodeContext) -> None:
        ctx.broadcast(ctx.uid)

    def on_round(self, ctx: NodeContext) -> None:
        ctx.halt(sorted(ctx.inbox.values()))


class SendsExactly(LocalAlgorithm):
    """Broadcast a payload of exactly ``units`` identifier units."""

    def __init__(self, units: int):
        self.units = units

    def on_init(self, ctx: NodeContext) -> None:
        ctx.broadcast(tuple(range(self.units)))

    def on_round(self, ctx: NodeContext) -> None:
        ctx.halt(None)


class Never(LocalAlgorithm):
    def on_init(self, ctx: NodeContext) -> None:
        pass

    def on_round(self, ctx: NodeContext) -> None:
        pass


class TestSchedulers:
    def test_engine_matches_legacy_runtime(self, cycle6):
        engine = SimulationEngine(Network(cycle6)).run(EchoOnce)
        legacy = SynchronousRuntime(Network(cycle6)).run(EchoOnce)
        assert engine.outputs == legacy.outputs
        assert engine.rounds == legacy.rounds
        assert engine.round_stats == legacy.trace.rounds

    def test_congest_boundary_exact_budget_passes(self, cycle6):
        budget = 5
        engine = SimulationEngine(Network(cycle6), CongestScheduler(budget))
        result = engine.run(lambda: SendsExactly(budget))
        assert result.rounds == 1

    def test_congest_boundary_one_over_fails(self, cycle6):
        budget = 5
        engine = SimulationEngine(Network(cycle6), CongestScheduler(budget))
        with pytest.raises(MessageTooLargeError) as excinfo:
            engine.run(lambda: SendsExactly(budget + 1))
        assert excinfo.value.units == budget + 1
        assert excinfo.value.budget == budget

    def test_congest_error_reports_round_and_receiver(self):
        engine = SimulationEngine(Network(gen.ladder(6)), CongestScheduler(1))
        with pytest.raises(MessageTooLargeError) as excinfo:
            engine.run(lambda: GatherAlgorithm(2))
        error = excinfo.value
        assert error.round_index is not None
        assert error.receiver is not None
        assert f"in round {error.round_index}" in str(error)
        assert f"to node {error.receiver}" in str(error)

    def test_scheduler_for(self):
        assert isinstance(scheduler_for("local"), LocalScheduler)
        congest = scheduler_for("congest", 7)
        assert isinstance(congest, CongestScheduler)
        assert congest.ids_per_message == 7
        with pytest.raises(ValueError, match="unknown model"):
            scheduler_for("quantum")

    def test_round_limit_trips_raising(self, path5):
        engine = SimulationEngine(Network(path5), max_rounds=4)
        with pytest.raises(RuntimeError, match="did not halt within 4 rounds"):
            engine.run(Never)

    def test_custom_enforcing_scheduler_sees_every_message(self, cycle6):
        """The extension contract: enforces=True gets admit() per queued
        message even when needs_units=False (units arrive as 0 when no
        one asks for payload sizes)."""
        calls = []

        class CountingScheduler:
            model = "local"
            enforces = True
            needs_units = False

            def admit(self, round_index, sender, receiver, units):
                calls.append((round_index, sender, receiver, units))

        engine = SimulationEngine(Network(cycle6), CountingScheduler(), trace="off")
        engine.run(EchoOnce)
        assert len(calls) == 12  # one admit per queued message
        assert all(units == 0 for *_, units in calls)


class TestTracePolicies:
    def test_full_keeps_round_stats(self, cycle6):
        result = SimulationEngine(Network(cycle6), trace="full").run(EchoOnce)
        assert result.round_stats is not None
        assert len(result.round_stats) == result.rounds
        assert result.total_messages == 12

    def test_stats_keeps_totals_only(self, cycle6):
        result = SimulationEngine(Network(cycle6), trace="stats").run(EchoOnce)
        assert result.round_stats is None
        assert result.total_messages == 12
        assert result.total_payload > 0

    def test_off_records_nothing(self, cycle6):
        result = SimulationEngine(Network(cycle6), trace="off").run(EchoOnce)
        assert result.round_stats is None
        assert result.total_messages == 0
        assert result.total_payload == 0
        # outputs and round counting still work
        assert set(result.outputs) == set(range(6))
        assert result.rounds == 1

    def test_unknown_policy_rejected(self, cycle6):
        with pytest.raises(ValueError, match="trace policy"):
            SimulationEngine(Network(cycle6), trace="verbose")


class TestFaults:
    def test_drop_all_messages(self, cycle6):
        plan = FaultPlan(drop_probability=1.0)
        result = SimulationEngine(Network(cycle6), faults=plan).run(D2Protocol)
        assert result.dropped_messages == result.total_messages > 0
        # D2 still halts: with an empty inbox every node sees itself as
        # its own twin class and joins.
        assert len(result.outputs) == 6

    def test_drops_are_seeded_and_deterministic(self, ladder5):
        plan = FaultPlan(drop_probability=0.3)

        def run():
            return SimulationEngine(
                Network(ladder5), faults=plan, seed=11
            ).run(D2Protocol)

        first, second = run(), run()
        assert first.outputs == second.outputs
        assert first.dropped_messages == second.dropped_messages > 0

    def test_crashed_nodes_never_participate(self, star6):
        plan = FaultPlan(crashed=(0,))
        result = SimulationEngine(Network(star6), faults=plan).run(D2Protocol)
        assert 0 not in result.outputs
        assert set(result.outputs) == set(range(1, 6))
        assert result.crashed == (0,)
        # messages addressed to the crashed hub are swallowed, and the
        # tally is separate from probabilistic drops (none configured)
        assert result.swallowed_messages > 0
        assert result.dropped_messages == 0

    def test_unknown_crash_vertex_rejected(self, path5):
        with pytest.raises(ValueError, match="crashed vertices"):
            SimulationEngine(Network(path5), faults=FaultPlan(crashed=(99,)))

    def test_drop_probability_validated(self):
        with pytest.raises(ValueError, match="drop_probability"):
            FaultPlan(drop_probability=1.5)

    def test_all_crashed_ends_immediately(self, path5):
        plan = FaultPlan(crashed=tuple(path5.nodes))
        result = SimulationEngine(Network(path5), faults=plan).run(D2Protocol)
        assert result.rounds == 0
        assert result.outputs == {}


class TestDeliveryContract:
    def test_payloads_move_by_reference(self, path5):
        """The immutable-by-convention contract: no defensive copies."""
        sent = {}
        received = {}

        class Probe(LocalAlgorithm):
            def on_init(self, ctx: NodeContext) -> None:
                payload = ("probe", ctx.uid)
                sent[ctx.uid] = payload
                ctx.broadcast(payload)

            def on_round(self, ctx: NodeContext) -> None:
                received[ctx.uid] = list(ctx.inbox.values())
                ctx.halt(None)

        SimulationEngine(Network(path5)).run(Probe)
        arrived = {id(p) for payloads in received.values() for p in payloads}
        assert arrived <= {id(p) for p in sent.values()}

    def test_inbox_snapshot_survives_later_rounds(self, star6):
        """Holding an inbox mapping across rounds is safe: the engine
        rebinds fresh dicts instead of clearing in place."""

        class Hoarder(LocalAlgorithm):
            def on_init(self, ctx: NodeContext) -> None:
                ctx.broadcast(ctx.uid)

            def on_round(self, ctx: NodeContext) -> None:
                boxes = ctx.state.setdefault("boxes", [])
                boxes.append(ctx.inbox)
                if len(boxes) == 2:
                    ctx.halt([sorted(b.values()) for b in boxes])
                else:
                    ctx.broadcast(-ctx.uid)

        result = SimulationEngine(Network(star6)).run(Hoarder)
        first, second = result.outputs[0]
        assert first == [1, 2, 3, 4, 5]
        assert second == [-5, -4, -3, -2, -1]
