"""Tests: hand-rolled protocols agree with centralized references."""

import networkx as nx
import pytest

from repro.analysis.domination import is_dominating_set
from repro.core.baselines import degree_two_dominating_set
from repro.core.d2 import d2_dominating_set
from repro.graphs import generators as gen
from repro.graphs.random_families import random_outerplanar, random_tree
from repro.graphs.twins import remove_true_twins, true_twin_classes
from repro.local_model.identifiers import shuffled_ids
from repro.local_model.network import Network
from repro.local_model.protocols import (
    D2Protocol,
    DegreeTwoProtocol,
    TwinElectionProtocol,
    run_protocol_dominating_set,
)
from repro.local_model.runtime import SynchronousRuntime


class TestDegreeTwoProtocol:
    def test_matches_centralized(self, small_zoo):
        for g in small_zoo:
            chosen, rounds = run_protocol_dominating_set(g, DegreeTwoProtocol)
            assert chosen == degree_two_dominating_set(g).solution, g
            assert rounds == 1  # one message round after init

    def test_k2_component(self):
        g = nx.path_graph(2)
        chosen, _ = run_protocol_dominating_set(g, DegreeTwoProtocol)
        assert chosen == {0}

    def test_isolated_vertex(self):
        g = nx.Graph()
        g.add_node(7)
        chosen, _ = run_protocol_dominating_set(g, DegreeTwoProtocol)
        assert chosen == {7}

    def test_dominates_trees(self):
        for seed in range(4):
            g = random_tree(15, seed)
            chosen, _ = run_protocol_dominating_set(g, DegreeTwoProtocol)
            assert is_dominating_set(g, chosen)


class TestTwinElection:
    def test_detects_twin_classes(self, small_zoo):
        for g in small_zoo:
            network = Network(g)
            result = SynchronousRuntime(network, max_rounds=5).run(TwinElectionProtocol)
            reps = {v for v, (is_rep, _) in result.outputs.items() if is_rep}
            expected = {min(cls, key=repr) for cls in true_twin_classes(g)}
            assert reps == expected, g

    def test_clique_single_representative(self):
        g = nx.complete_graph(5)
        network = Network(g)
        result = SynchronousRuntime(network, max_rounds=5).run(TwinElectionProtocol)
        reps = {v for v, (is_rep, _) in result.outputs.items() if is_rep}
        assert reps == {0}

    def test_representative_uid_consistent(self, cycle6):
        network = Network(cycle6)
        result = SynchronousRuntime(network, max_rounds=5).run(TwinElectionProtocol)
        for v, (is_rep, rep) in result.outputs.items():
            assert is_rep == (rep == v)

    def test_two_rounds(self, path5):
        network = Network(path5)
        result = SynchronousRuntime(network, max_rounds=5).run(TwinElectionProtocol)
        assert result.rounds == 2


class TestD2Protocol:
    def test_matches_centralized_on_zoo(self, small_zoo):
        for g in small_zoo:
            chosen, rounds = run_protocol_dominating_set(g, D2Protocol)
            assert chosen == d2_dominating_set(g).solution, g
            assert rounds == 3

    def test_matches_on_random_families(self):
        for seed in range(4):
            for g in (random_tree(16, seed), random_outerplanar(11, seed)):
                chosen, _ = run_protocol_dominating_set(g, D2Protocol)
                assert chosen == d2_dominating_set(g).solution

    def test_matches_on_twin_heavy_graphs(self):
        for g in (
            nx.complete_graph(6),
            gen.clique_with_pendants(5),
            nx.complete_bipartite_graph(2, 4),
        ):
            chosen, _ = run_protocol_dominating_set(g, D2Protocol)
            assert chosen == d2_dominating_set(g).solution, g

    def test_dominates(self, small_zoo):
        for g in small_zoo:
            chosen, _ = run_protocol_dominating_set(g, D2Protocol)
            assert is_dominating_set(g, chosen)

    def test_identifier_scheme_changes_only_tie_breaks(self, cycle6):
        # On C6 nothing is a twin and gamma >= 2 everywhere: output is
        # the full vertex set under every identifier assignment.
        for seed in (0, 1, 2):
            ids = shuffled_ids(cycle6, seed)
            chosen, _ = run_protocol_dominating_set(cycle6, D2Protocol, ids)
            assert chosen == set(cycle6.nodes)

    def test_single_vertex(self):
        g = nx.Graph()
        g.add_node(3)
        chosen, _ = run_protocol_dominating_set(g, D2Protocol)
        assert chosen == {3}


class TestOnePassTwinRemovalSuffices:
    def test_second_pass_is_noop(self, small_zoo):
        """True-twin removal converges in one pass (the protocol's and
        the paper's 2-round claim rely on this)."""
        for g in small_zoo:
            reduced, _ = remove_true_twins(g)
            again, _ = remove_true_twins(reduced)
            assert again.number_of_nodes() == reduced.number_of_nodes()

    def test_one_pass_equals_iterated_on_twin_rich_graphs(self):
        for g in (
            nx.complete_graph(7),
            gen.clique_with_pendants(6),
            nx.complete_multipartite_graph(2, 2, 2),
        ):
            reduced, _ = remove_true_twins(g)
            classes = true_twin_classes(g)
            one_pass_size = len(classes)
            assert reduced.number_of_nodes() == one_pass_size
