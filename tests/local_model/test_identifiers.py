"""Tests for identifier assignment schemes."""

import networkx as nx
import pytest

from repro.graphs import generators as gen
from repro.local_model.identifiers import identity_ids, shuffled_ids, spread_ids


class TestSchemes:
    def test_identity_on_integer_labels(self, path5):
        assert identity_ids(path5) == {v: v for v in path5.nodes}

    def test_identity_on_non_integer_labels(self):
        g = nx.Graph()
        g.add_edge("a", "b")
        ids = identity_ids(g)
        assert set(ids.values()) == {0, 1}

    def test_shuffled_is_permutation(self, cycle6):
        ids = shuffled_ids(cycle6, seed=5)
        assert sorted(ids.values()) == list(range(6))

    def test_shuffled_deterministic_per_seed(self, cycle6):
        assert shuffled_ids(cycle6, seed=5) == shuffled_ids(cycle6, seed=5)
        assert shuffled_ids(cycle6, seed=5) != shuffled_ids(cycle6, seed=6)

    def test_spread_ids_noncontiguous(self, path5):
        ids = spread_ids(path5, stride=10, offset=3)
        assert sorted(ids.values()) == [3, 13, 23, 33, 43]

    def test_spread_rejects_bad_stride(self, path5):
        with pytest.raises(ValueError):
            spread_ids(path5, stride=0)


class TestAlgorithmsUnderIdSchemes:
    def test_d2_output_independent_of_ids(self, small_zoo):
        """D2 membership is structural: identifier schemes must not
        change which *vertices* are selected."""
        from repro.core.d2 import d2_dominating_set

        for g in small_zoo:
            base = d2_dominating_set(g).solution
            assert d2_dominating_set(g).solution == base  # deterministic

    def test_gather_under_spread_ids(self, cycle6):
        from repro.local_model.gather import gather_views

        ids = spread_ids(cycle6)
        views, _ = gather_views(cycle6, 2, ids)
        assert len(views) == 6
