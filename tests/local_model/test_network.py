"""Tests for the port-numbered network."""

import networkx as nx
import pytest

from repro.graphs import generators as gen
from repro.local_model.identifiers import shuffled_ids
from repro.local_model.network import Network


class TestConstruction:
    def test_ports_sorted(self, cycle6):
        net = Network(cycle6)
        assert net.nodes[0].ports == [1, 5]

    def test_size(self, path5):
        assert Network(path5).size == 5

    def test_default_identity_ids(self, path5):
        net = Network(path5)
        assert all(net.nodes[v].uid == v for v in path5.nodes)

    def test_custom_ids(self, path5):
        ids = shuffled_ids(path5, seed=1)
        net = Network(path5, ids)
        assert {net.nodes[v].uid for v in path5.nodes} == set(range(5))

    def test_rejects_empty_graph(self):
        with pytest.raises(ValueError):
            Network(nx.Graph())

    def test_rejects_self_loop(self):
        g = nx.Graph()
        g.add_edge(0, 0)
        g.add_edge(0, 1)
        with pytest.raises(ValueError):
            Network(g)

    def test_rejects_partial_ids(self, path5):
        with pytest.raises(ValueError):
            Network(path5, {0: 0, 1: 1})

    def test_rejects_duplicate_ids(self, path5):
        with pytest.raises(ValueError):
            Network(path5, {v: 0 for v in path5.nodes})


class TestDelivery:
    def test_port_toward_inverse(self, cycle6):
        net = Network(cycle6)
        for v in cycle6.nodes:
            for u in net.nodes[v].ports:
                assert net.nodes[u].ports[net.port_toward(u, v)] == v

    def test_message_arrives_at_back_port(self, path5):
        net = Network(path5)
        # vertex 0 sends on its only port (to 1)
        delivered = net.deliver({0: {0: "hello"}})
        assert delivered == 1
        # vertex 1's ports are [0, 2]; port 0 leads back to vertex 0
        assert net.nodes[1].inbox == {0: "hello"}

    def test_inboxes_cleared_each_round(self, path5):
        net = Network(path5)
        net.deliver({0: {0: "x"}})
        net.deliver({})
        assert net.nodes[1].inbox == {}

    def test_simultaneous_exchange(self, path5):
        net = Network(path5)
        net.deliver({0: {0: "from0"}, 1: {0: "from1"}})
        assert net.nodes[1].inbox[0] == "from0"
        assert net.nodes[0].inbox[0] == "from1"

    def test_uid_to_vertex_roundtrip(self, path5):
        ids = shuffled_ids(path5, seed=2)
        net = Network(path5, ids)
        back = net.uid_to_vertex()
        assert all(back[ids[v]] == v for v in path5.nodes)
