"""Tests for the View knowledge object."""

import networkx as nx
import pytest

from repro.graphs import generators as gen
from repro.local_model.gather import gather_views
from repro.local_model.views import View


class TestView:
    def test_neighbors(self, cycle6):
        views, _ = gather_views(cycle6, 2)
        assert views[0].neighbors() == {1, 5}

    def test_known_ball_zero_is_center(self, path5):
        views, _ = gather_views(path5, 2)
        ball0 = views[2].known_ball(0)
        assert set(ball0.nodes) == {2}

    def test_known_ball_rejects_beyond_radius(self, path5):
        views, _ = gather_views(path5, 1)
        with pytest.raises(ValueError):
            views[0].known_ball(2)

    def test_component_knowledge_flag(self):
        g = gen.star(5)
        small, _ = gather_views(g, 1)
        # radius 1 from a leaf: hub at distance 1 == radius -> unsure
        assert not small[1].knows_whole_component()
        large, _ = gather_views(g, 3)
        assert large[1].knows_whole_component()

    def test_manual_view_construction(self):
        g = nx.path_graph(3)
        view = View(center=0, graph=g, complete_radius=2, dist={0: 0, 1: 1, 2: 2})
        assert view.known_ball(1).number_of_nodes() == 2

    def test_dist_contains_center(self, cycle6):
        views, _ = gather_views(cycle6, 2)
        for view in views.values():
            assert view.dist[view.center] == 0
