"""End-to-end integration: every algorithm against every family,
cross-validated on ratio, validity, and mode agreement."""

import networkx as nx
import pytest

from repro.analysis.domination import is_dominating_set
from repro.analysis.ratio import measure_ratio
from repro.core.algorithm1 import algorithm1
from repro.core.baselines import degree_two_dominating_set, full_gather_exact
from repro.core.d2 import d2_dominating_set
from repro.core.radii import RadiusPolicy
from repro.core.vertex_cover import d2_vertex_cover, local_cuts_vertex_cover
from repro.graphs.families import FAMILIES
from repro.solvers.exact import minimum_dominating_set
from repro.solvers.vc import is_vertex_cover


ALGORITHMS = {
    "algorithm1": lambda g: algorithm1(g),
    "algorithm1_wide": lambda g: algorithm1(g, RadiusPolicy.practical(3, 4)),
    "d2": d2_dominating_set,
    "degree_two": degree_two_dominating_set,
    "exact": full_gather_exact,
}


@pytest.mark.parametrize("family_name", sorted(FAMILIES))
@pytest.mark.parametrize("algorithm_name", sorted(ALGORITHMS))
def test_every_algorithm_on_every_family(family_name, algorithm_name):
    graph = FAMILIES[family_name].make(18, 0)
    result = ALGORITHMS[algorithm_name](graph)
    assert is_dominating_set(graph, result.solution), (family_name, algorithm_name)


@pytest.mark.parametrize("family_name", sorted(FAMILIES))
def test_algorithm1_ratio_below_bound_everywhere(family_name):
    graph = FAMILIES[family_name].make(20, 1)
    result = algorithm1(graph)
    report = measure_ratio(graph, result.solution)
    assert report.valid
    assert report.ratio <= result.metadata["ratio_bound"]


@pytest.mark.parametrize("family_name", ["tree", "cycle", "fan", "ladder", "cactus"])
def test_simulation_agreement_per_family(family_name):
    graph = FAMILIES[family_name].make(14, 2)
    fast = algorithm1(graph, mode="fast")
    simulated = algorithm1(graph, mode="simulate")
    assert fast.solution == simulated.solution


@pytest.mark.parametrize("family_name", sorted(FAMILIES))
def test_vertex_cover_variants_per_family(family_name):
    graph = FAMILIES[family_name].make(16, 0)
    for runner in (local_cuts_vertex_cover, d2_vertex_cover):
        result = runner(graph)
        assert is_vertex_cover(graph, result.solution), (family_name, runner)


def test_exact_is_never_beaten():
    for family in FAMILIES.values():
        graph = family.make(15, 0)
        optimum = minimum_dominating_set(graph)
        for name, runner in ALGORITHMS.items():
            result = runner(graph)
            assert len(result.solution) >= len(optimum), (family.name, name)


def test_full_pipeline_report_scales():
    from repro.experiments.report import full_report

    text = full_report("tiny")
    assert "Table 1" in text
    assert "crossover" in text
