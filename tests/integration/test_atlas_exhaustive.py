"""Exhaustive invariant checks over *all* small connected graphs.

The networkx Graph Atlas enumerates every graph on up to 7 vertices; we
run the library's core invariants over every connected graph on 2–6
vertices (~140 graphs).  Anything that survives this sweep is unlikely
to break on a structured family.
"""

import networkx as nx
import pytest

from repro.analysis.domination import is_dominating_set
from repro.core.algorithm1 import algorithm1
from repro.core.d2 import d2_dominating_set
from repro.core.distributed_greedy import distributed_greedy_dominating_set
from repro.core.vertex_cover import d2_vertex_cover, local_cuts_vertex_cover
from repro.graphs.twins import has_true_twins, remove_true_twins
from repro.solvers.branch_and_bound import bnb_minimum_dominating_set
from repro.solvers.exact import domination_number, minimum_dominating_set
from repro.solvers.vc import is_vertex_cover


def _atlas_graphs(max_nodes: int = 6) -> list[nx.Graph]:
    out = []
    for graph in nx.graph_atlas_g():
        n = graph.number_of_nodes()
        if 2 <= n <= max_nodes and nx.is_connected(graph):
            out.append(graph)
    return out


ATLAS = _atlas_graphs()


def test_atlas_has_expected_coverage():
    assert len(ATLAS) > 120
    assert max(g.number_of_nodes() for g in ATLAS) == 6


def test_exact_solvers_agree_everywhere():
    for graph in ATLAS:
        assert len(bnb_minimum_dominating_set(graph)) == domination_number(graph), (
            sorted(graph.edges)
        )


def test_algorithm1_valid_everywhere():
    for graph in ATLAS:
        result = algorithm1(graph)
        assert is_dominating_set(graph, result.solution), sorted(graph.edges)
        union = set().union(*result.phases.values())
        assert union == result.solution


def test_d2_valid_everywhere():
    for graph in ATLAS:
        result = d2_dominating_set(graph)
        assert is_dominating_set(graph, result.solution), sorted(graph.edges)


def test_distributed_greedy_valid_everywhere():
    for graph in ATLAS:
        result = distributed_greedy_dominating_set(graph)
        assert is_dominating_set(graph, result.solution), sorted(graph.edges)


def test_vertex_cover_variants_valid_everywhere():
    for graph in ATLAS:
        for runner in (local_cuts_vertex_cover, d2_vertex_cover):
            result = runner(graph)
            assert is_vertex_cover(graph, result.solution), (
                runner.__name__,
                sorted(graph.edges),
            )


def test_twin_reduction_sound_everywhere():
    for graph in ATLAS:
        reduced, mapping = remove_true_twins(graph)
        assert not has_true_twins(reduced)
        assert domination_number(reduced) == domination_number(graph)
        assert set(mapping) == set(graph.nodes)


def test_optimum_never_beaten():
    for graph in ATLAS:
        optimum = domination_number(graph)
        assert len(algorithm1(graph).solution) >= optimum
        assert len(d2_dominating_set(graph).solution) >= optimum
