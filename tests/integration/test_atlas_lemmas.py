"""Counting-lemma budgets checked across the small-graph atlas.

Lemmas 3.2/3.3 are proven for the paper's radii on bounded-asdim
classes; here we measure the same quantities on *every* connected graph
with at most 6 vertices at practical radii.  Tiny graphs cannot break
the budgets (their MDS is small but so is everything else) — the sweep
is a regression net for the counting code itself: counts must be
consistent, monotone where monotonicity is guaranteed, and the
simulate/fast agreement must hold on a sample.
"""

import networkx as nx
import pytest

from repro.analysis.lemmas import lemma_3_2_report, lemma_3_3_report
from repro.core.algorithm1 import algorithm1
from repro.graphs.local_cuts import (
    interesting_vertices,
    local_one_cuts,
    local_two_cuts,
)


def _atlas(max_nodes: int = 6) -> list[nx.Graph]:
    out = []
    for graph in nx.graph_atlas_g():
        n = graph.number_of_nodes()
        if 3 <= n <= max_nodes and nx.is_connected(graph):
            out.append(graph)
    return out


ATLAS = _atlas()


def test_local_one_cut_counts_consistent():
    for graph in ATLAS:
        report = lemma_3_2_report(graph, r=2)
        assert report.count == len(local_one_cuts(graph, 2))
        assert report.count <= graph.number_of_nodes()


def test_interesting_counts_consistent():
    for graph in ATLAS[:60]:
        report = lemma_3_3_report(graph, r=2)
        assert report.count == len(interesting_vertices(graph, 2))


def test_interesting_subset_of_two_cut_vertices():
    for graph in ATLAS[:60]:
        cuts = local_two_cuts(graph, 2, minimal=True)
        cut_vertices = set().union(*cuts) if cuts else set()
        assert interesting_vertices(graph, 2) <= cut_vertices


def test_budgets_hold_at_atlas_scale():
    for graph in ATLAS:
        one = lemma_3_2_report(graph, r=2)
        assert one.within_budget, sorted(graph.edges)


def test_simulate_fast_agreement_on_atlas_sample():
    # every 7th atlas graph: keeps runtime low, covers diverse shapes.
    for graph in ATLAS[::7]:
        fast = algorithm1(graph, mode="fast")
        simulated = algorithm1(graph, mode="simulate")
        assert simulated.solution == fast.solution, sorted(graph.edges)
