"""Shared fixtures: a zoo of small graphs with known properties."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.graphs import generators as gen


@pytest.fixture
def path5() -> nx.Graph:
    return gen.path(5)


@pytest.fixture
def cycle6() -> nx.Graph:
    return gen.cycle(6)


@pytest.fixture
def star6() -> nx.Graph:
    """Star on 6 vertices: hub 0, leaves 1..5."""
    return gen.star(6)


@pytest.fixture
def fan5() -> nx.Graph:
    """Fan with apex 0 over path 1..5."""
    return gen.fan(5)


@pytest.fixture
def ladder5() -> nx.Graph:
    return gen.ladder(5)


@pytest.fixture
def theta3() -> nx.Graph:
    """Two terminals joined by three length-3 paths: has a K_{2,3} minor."""
    return gen.theta(3, 3)


@pytest.fixture
def clique_pendants5() -> nx.Graph:
    """The Section 4 example on a 5-clique."""
    return gen.clique_with_pendants(5)


@pytest.fixture
def two_triangles_bridge() -> nx.Graph:
    """Two triangles joined by a bridge: 1-cuts at the bridge endpoints."""
    g = nx.Graph()
    g.add_edges_from([(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)])
    return g


@pytest.fixture
def small_zoo() -> list[nx.Graph]:
    """A varied batch for smoke-coverage loops."""
    return [
        gen.path(6),
        gen.cycle(7),
        gen.star(7),
        gen.fan(6),
        gen.ladder(4),
        gen.caterpillar(4, 2),
        gen.spider(3, 3),
        gen.maximal_outerplanar(8),
        gen.cactus_chain(2, 4),
        gen.clique_with_pendants(4),
    ]
