"""Remaining harness coverage: paper-mode sweep and family sampling."""

import pytest

from repro.experiments.paper_mode import (
    full_table_sweep,
    paper_mode_on_cycles,
    summarise_full_table,
)
from repro.graphs.random_families import sample_family


class TestPaperMode:
    def test_rows_fields(self):
        rows = paper_mode_on_cycles(ns=(180,), t=2)
        row = rows[0]
        assert row["m32_radius"] == 43 * 2 + 2
        assert row["all_vertices_are_local_1_cuts"]
        assert row["ratio"] <= row["ratio_bound"]

    def test_short_cycle_guard(self):
        with pytest.raises(ValueError, match="must exceed"):
            paper_mode_on_cycles(ns=(50,), t=2)


class TestFullTableSweep:
    def test_checkpointed_sweep_and_summary(self, tmp_path):
        result = full_table_sweep(
            tmp_path / "table", algorithms=["d2"], shard_size=4, workers=2
        )
        assert result.complete
        rows = summarise_full_table(result.report_dicts())
        # One row per (family, algorithm); the tiny suite has 11 families.
        assert len(rows) == 11
        assert {row["algorithm"] for row in rows} == {"d2"}
        for row in rows:
            assert row["instances"] == 2
            assert row["all_valid"]
            assert row["ratio_max"] >= 1.0

        # Re-invoking on the same directory resumes (here: a no-op) and
        # reproduces the same merged reports instead of starting over.
        again = full_table_sweep(tmp_path / "table", workers=2)
        assert again.complete
        assert again.executed == []
        assert summarise_full_table(again.report_dicts()) == rows


class TestSampleFamily:
    def test_k2t_free_branch(self):
        graphs = sample_family("k2t_free", [8], t=4)
        assert graphs[0].number_of_nodes() == 8

    def test_sizes_respected(self):
        graphs = sample_family("outerplanar", [6, 9, 12], t=3)
        assert [g.number_of_nodes() for g in graphs] == [6, 9, 12]

    def test_seed_determinism(self):
        a = sample_family("ding", [20], t=8, seed=5)
        b = sample_family("ding", [20], t=8, seed=5)
        assert sorted(a[0].edges) == sorted(b[0].edges)
