"""Remaining harness coverage: paper-mode sweep and family sampling."""

import pytest

from repro.experiments.paper_mode import paper_mode_on_cycles
from repro.graphs.random_families import sample_family


class TestPaperMode:
    def test_rows_fields(self):
        rows = paper_mode_on_cycles(ns=(180,), t=2)
        row = rows[0]
        assert row["m32_radius"] == 43 * 2 + 2
        assert row["all_vertices_are_local_1_cuts"]
        assert row["ratio"] <= row["ratio_bound"]

    def test_short_cycle_guard(self):
        with pytest.raises(ValueError, match="must exceed"):
            paper_mode_on_cycles(ns=(50,), t=2)


class TestSampleFamily:
    def test_k2t_free_branch(self):
        graphs = sample_family("k2t_free", [8], t=4)
        assert graphs[0].number_of_nodes() == 8

    def test_sizes_respected(self):
        graphs = sample_family("outerplanar", [6, 9, 12], t=3)
        assert [g.number_of_nodes() for g in graphs] == [6, 9, 12]

    def test_seed_determinism(self):
        a = sample_family("ding", [20], t=8, seed=5)
        b = sample_family("ding", [20], t=8, seed=5)
        assert sorted(a[0].edges) == sorted(b[0].edges)
