"""Tests for the experiment harnesses (tiny scale)."""

import pytest

from repro.experiments.figures import figure1_rows, figure2_rows
from repro.experiments.sweeps import (
    _k2t_stress_instance,
    crossover_table,
    lemma_constants_sweep,
    ratio_vs_n,
    ratio_vs_t,
    render_rows,
    rounds_vs_n,
)
from repro.experiments.table1 import table1_report, table1_rows
from repro.experiments.workloads import make_workload, standard_suite


class TestWorkloads:
    def test_standard_suite_scales(self):
        suite = standard_suite("tiny")
        assert "tree" in suite
        assert all(w.instances for w in suite.values())

    def test_unknown_scale(self):
        with pytest.raises(ValueError):
            standard_suite("galactic")

    def test_make_workload_sizes(self):
        w = make_workload("path", [5, 8])
        assert w.sizes == [5, 8]


class TestTable1:
    def test_rows_structure(self):
        rows = table1_rows("tiny")
        assert len(rows) >= 6
        classes = {r.graph_class for r in rows}
        assert "trees (K_3)" in classes

    def test_all_solutions_valid(self):
        for row in table1_rows("tiny"):
            assert row.all_valid, row

    def test_measured_respects_paper_bounds(self):
        # the quantitative reproduction claim for the numeric rows
        for row in table1_rows("tiny"):
            if row.paper_ratio.isdigit():
                assert row.measured_ratio_max <= float(row.paper_ratio) + 1e-9, row

    def test_rounds_constant_rows(self):
        for row in table1_rows("tiny"):
            if row.paper_rounds.isdigit():
                assert row.measured_rounds_max <= int(row.paper_rounds), row

    def test_report_renders(self):
        text = table1_report("tiny")
        assert "Algorithm 1" in text


class TestSweeps:
    def test_stress_instance_shape(self):
        g = _k2t_stress_instance(4, blocks=2)
        assert g.number_of_nodes() > 8

    def test_stress_instance_rejects_small_t(self):
        with pytest.raises(ValueError):
            _k2t_stress_instance(2)

    def test_ratio_vs_t_monotone_d2(self):
        rows = ratio_vs_t(ts=(3, 6, 9))
        d2 = [r["d2_ratio"] for r in rows]
        assert d2[0] < d2[-1]
        # while Algorithm 1 stays flat-ish
        alg1 = [r["alg1_ratio"] for r in rows]
        assert max(alg1) - min(alg1) < 1.0

    def test_ratio_vs_t_within_bounds(self):
        for row in ratio_vs_t(ts=(3, 5)):
            assert row["d2_ratio"] <= row["d2_bound"]
            assert row["alg1_ratio"] <= row["alg1_bound"]

    def test_rounds_vs_n_constant_vs_linear(self):
        rows = rounds_vs_n(sizes=(8, 16, 24))
        alg1 = {r["alg1_rounds"] for r in rows}
        assert len(alg1) == 1
        gather = [r["full_gather_rounds"] for r in rows]
        assert gather[0] < gather[-1]

    def test_ratio_vs_n_flat(self):
        rows = ratio_vs_n(sizes=(16, 32))
        assert all(r["alg1_ratio"] <= 4 for r in rows)

    def test_lemma_constants_within_budgets(self):
        for row in lemma_constants_sweep(seeds=(0,)):
            assert row["c32_used"] <= row["c32_budget"]
            assert row["c33_used"] <= row["c33_budget"]

    def test_crossover_at_25(self):
        rows = {r["t"]: r["winner"] for r in crossover_table()}
        assert rows[25] == "Thm 4.4"
        assert rows[26] == "Thm 4.1"

    def test_render_rows(self):
        assert "t" in render_rows(crossover_table(ts=(3,)))
        assert render_rows([]) == "(no data)"


class TestFigures:
    def test_figure1_all_checks_pass(self):
        for row in figure1_rows(seeds=(0,)):
            assert row["A_edgeless"]
            assert row["degrees_ok"]
            assert row["half_of_D2_ok"]
            assert row["ineq_|A|<=(t-1)|B|"]

    def test_figure2_charge_bounded(self):
        for row in figure2_rows(seeds=(0,)):
            assert row["max_dist_to_dominator"] <= row["claim_5_11_bound"]


class TestAdversarialDegradationSweep:
    def test_fault_free_column_agrees(self):
        from repro.experiments.sweeps import adversarial_degradation_sweep

        rows = adversarial_degradation_sweep(
            churn_rates=(0.0, 0.3), byz_fractions=(0.0, 0.25)
        )
        assert {row["algorithm"] for row in rows} == {"d2", "degree_two", "greedy"}
        fault_free = [
            row
            for row in rows
            if row["churn_rate"] == 0.0 and row["byz_fraction"] == 0.0
        ]
        assert fault_free
        assert all(row["agree"] for row in fault_free)

    def test_byzantine_cells_degrade_something(self):
        from repro.experiments.sweeps import adversarial_degradation_sweep

        rows = adversarial_degradation_sweep(
            churn_rates=(0.0,), byz_fractions=(0.0, 0.5)
        )
        attacked = [row for row in rows if row["byz_fraction"] > 0.0]
        assert any(not row["agree"] for row in attacked)

    def test_rows_reproduce_exactly(self):
        from repro.experiments.sweeps import adversarial_degradation_sweep

        first = adversarial_degradation_sweep(
            churn_rates=(0.3,), byz_fractions=(0.25,), algorithms=("d2",)
        )
        second = adversarial_degradation_sweep(
            churn_rates=(0.3,), byz_fractions=(0.25,), algorithms=("d2",)
        )
        assert first == second

    def test_renders(self):
        from repro.experiments.sweeps import adversarial_degradation_sweep

        rows = adversarial_degradation_sweep(
            churn_rates=(0.0,), byz_fractions=(0.0,), algorithms=("d2",)
        )
        table = render_rows(rows)
        assert "churn_rate" in table and "agree" in table
