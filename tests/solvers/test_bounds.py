"""Tests for domination lower bounds."""

import networkx as nx

from repro.graphs import generators as gen
from repro.solvers.bounds import (
    degree_lower_bound,
    exact_two_packing,
    lp_lower_bound,
    two_packing_lower_bound,
)
from repro.solvers.exact import domination_number


class TestDegreeBound:
    def test_star(self, star6):
        assert degree_lower_bound(star6) == 1

    def test_cycle(self):
        assert degree_lower_bound(gen.cycle(9)) == 3

    def test_empty(self):
        assert degree_lower_bound(nx.Graph()) == 0

    def test_is_lower_bound(self, small_zoo):
        for g in small_zoo:
            assert degree_lower_bound(g) <= domination_number(g)


class TestTwoPacking:
    def test_is_lower_bound(self, small_zoo):
        for g in small_zoo:
            assert two_packing_lower_bound(g) <= domination_number(g)

    def test_exact_at_least_greedy(self, small_zoo):
        for g in small_zoo:
            assert exact_two_packing(g) >= two_packing_lower_bound(g)

    def test_exact_is_lower_bound(self, small_zoo):
        for g in small_zoo:
            assert exact_two_packing(g) <= domination_number(g)

    def test_path_packing(self):
        # On P_9, vertices {0, 3, 6} (and more spaced) pack: value 3.
        assert exact_two_packing(gen.path(9)) == 3

    def test_complete_graph(self):
        assert exact_two_packing(nx.complete_graph(5)) == 1

    def test_empty_graph(self):
        assert exact_two_packing(nx.Graph()) == 0


class TestLpBound:
    def test_is_lower_bound(self, small_zoo):
        for g in small_zoo:
            assert lp_lower_bound(g) <= domination_number(g) + 1e-9

    def test_cycle_lp_value(self):
        # LP optimum of C_n domination is n/3 (uniform 1/3).
        assert abs(lp_lower_bound(gen.cycle(9)) - 3.0) < 1e-6

    def test_star_lp(self, star6):
        assert lp_lower_bound(star6) <= 1 + 1e-9

    def test_empty(self):
        assert lp_lower_bound(nx.Graph()) == 0.0
