"""Tests for the MILP exact solver."""

import networkx as nx
import pytest

from repro.analysis.domination import is_b_dominating_set, is_dominating_set
from repro.graphs import generators as gen
from repro.solvers.exact import (
    domination_number,
    minimum_b_dominating_set,
    minimum_dominating_set,
)


class TestKnownOptima:
    @pytest.mark.parametrize(
        "graph,expected",
        [
            (gen.path(1), 1),
            (gen.path(2), 1),
            (gen.path(3), 1),
            (gen.path(4), 2),
            (gen.path(7), 3),
            (gen.cycle(3), 1),
            (gen.cycle(6), 2),
            (gen.cycle(9), 3),
            (gen.star(8), 1),
            (gen.fan(6), 1),
            (nx.complete_graph(5), 1),
            (nx.complete_bipartite_graph(2, 5), 2),
            (gen.clique_with_pendants(5), 1),
        ],
    )
    def test_domination_number(self, graph, expected):
        assert domination_number(graph) == expected

    def test_path_formula(self):
        # gamma(P_n) = ceil(n / 3)
        for n in range(1, 16):
            assert domination_number(gen.path(n)) == -(-n // 3)

    def test_cycle_formula(self):
        for n in range(3, 16):
            assert domination_number(gen.cycle(n)) == -(-n // 3)


class TestValidity:
    def test_solutions_dominate(self, small_zoo):
        for g in small_zoo:
            solution = minimum_dominating_set(g)
            assert is_dominating_set(g, solution)

    def test_deterministic(self, small_zoo):
        for g in small_zoo:
            assert minimum_dominating_set(g) == minimum_dominating_set(g)

    def test_disconnected_graph(self):
        g = nx.Graph()
        g.add_edge(0, 1)
        g.add_edge(5, 6)
        solution = minimum_dominating_set(g)
        assert is_dominating_set(g, solution)
        assert len(solution) == 2


class TestBDomination:
    def test_empty_targets(self, path5):
        assert minimum_b_dominating_set(path5, []) == set()

    def test_single_target(self, path5):
        solution = minimum_b_dominating_set(path5, [2])
        assert len(solution) == 1
        assert solution <= {1, 2, 3}

    def test_targets_subset_cheaper(self, cycle6):
        partial = minimum_b_dominating_set(cycle6, [0, 1])
        assert len(partial) == 1

    def test_candidates_restriction(self, path5):
        solution = minimum_b_dominating_set(path5, [0], candidates=[1])
        assert solution == {1}

    def test_infeasible_raises(self, path5):
        with pytest.raises(ValueError, match="cannot be dominated"):
            minimum_b_dominating_set(path5, [0], candidates=[4])

    def test_b_domination_validity(self, small_zoo):
        for g in small_zoo:
            targets = sorted(g.nodes)[::2]
            solution = minimum_b_dominating_set(g, targets)
            assert is_b_dominating_set(g, solution, targets)

    def test_matches_full_mds_when_b_is_v(self, small_zoo):
        for g in small_zoo:
            if not nx.is_connected(g):
                continue
            full = minimum_dominating_set(g)
            restricted = minimum_b_dominating_set(g, g.nodes)
            assert len(full) == len(restricted)
