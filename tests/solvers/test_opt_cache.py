"""Per-instance OPT cache: sharing, bypass, and invalidation semantics."""

import networkx as nx
import pytest

from repro.analysis.ratio import measure_ratio
from repro.graphs import generators as gen
from repro.graphs.kernel import invalidate_kernel
from repro.solvers.exact import domination_number
from repro.solvers.opt_cache import (
    cache_stats,
    clear_opt_cache,
    optimum_size,
    optimum_solution,
    reset_cache_stats,
)


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_opt_cache()
    reset_cache_stats()
    yield
    clear_opt_cache()


def _misses():
    return cache_stats()["misses"]


def _hits():
    return cache_stats()["hits"]


class TestSharing:
    def test_second_call_hits(self):
        graph = gen.ladder(8)
        first = optimum_solution(graph)
        assert (_misses(), _hits()) == (1, 0)
        second = optimum_solution(graph)
        assert (_misses(), _hits()) == (1, 1)
        assert first is second  # the literal cached object

    def test_backends_and_problems_key_separately(self):
        graph = gen.fan(8)
        optimum_solution(graph, "mds", "milp")
        optimum_solution(graph, "mds", "bnb")
        optimum_solution(graph, "mvc", "milp")
        assert _misses() == 3
        optimum_solution(graph, "mds", "bnb")
        assert _hits() == 1

    def test_backends_agree_on_size(self):
        graph = gen.ladder(7)
        assert optimum_size(graph, "mds", "milp") == optimum_size(graph, "mds", "bnb")

    def test_use_cache_false_bypasses(self):
        graph = gen.fan(9)
        a = optimum_solution(graph, use_cache=False)
        b = optimum_solution(graph, use_cache=False)
        assert cache_stats() == {"hits": 0, "misses": 0}
        assert a == b  # deterministic backend: bypassing never changes the answer
        assert a == optimum_solution(graph)

    def test_domination_number_routes_through_cache(self):
        graph = gen.cycle(9)
        assert domination_number(graph) == 3
        assert domination_number(graph) == 3
        assert (_misses(), _hits()) == (1, 1)

    def test_measure_ratio_routes_through_cache(self):
        graph = gen.ladder(6)
        solution = set(graph.nodes)
        first = measure_ratio(graph, solution)
        second = measure_ratio(graph, solution)
        assert first.optimum_size == second.optimum_size
        assert (_misses(), _hits()) == (1, 1)

    def test_mvc_requires_milp(self):
        with pytest.raises(ValueError, match="MVC"):
            optimum_solution(gen.path(5), "mvc", "bnb")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            optimum_solution(gen.path(5), "mds", "simplex")


class TestInvalidation:
    def test_invalidate_kernel_clears_entry(self):
        graph = gen.path(6)  # gamma = 2
        assert optimum_size(graph) == 2
        # Equal-node-count mutation: the kernel contract requires an
        # explicit invalidate, which must also drop the cached optimum.
        graph.remove_edge(2, 3)
        graph.add_edge(0, 3)
        invalidate_kernel(graph)
        fresh = optimum_size(graph)
        assert fresh == len(optimum_solution(graph, use_cache=False))
        assert _misses() == 2  # the post-invalidate call re-solved

    def test_node_count_change_invalidates_transparently(self):
        graph = gen.path(3)
        assert optimum_size(graph) == 1
        graph.add_edge(2, 3)
        graph.add_edge(3, 4)
        graph.add_edge(4, 5)  # now P6: gamma = 2, no invalidate called
        assert optimum_size(graph) == 2

    def test_clear_opt_cache(self):
        graph = gen.star(6)
        optimum_size(graph)
        clear_opt_cache()
        optimum_size(graph)
        assert _misses() == 2
