"""Tests for the branch-and-bound solver (cross-checked against MILP
and against the pre-bitset legacy implementation, kept verbatim below)."""

import networkx as nx
import pytest

from repro.analysis.domination import is_b_dominating_set, is_dominating_set
from repro.graphs import generators as gen
from repro.graphs.families import get_family
from repro.graphs.random_families import random_ding_augmentation, random_tree
from repro.graphs.util import closed_neighborhood, closed_neighborhood_of_set
from repro.solvers.branch_and_bound import (
    bnb_minimum_b_dominating_set,
    bnb_minimum_dominating_set,
)
from repro.solvers.exact import minimum_b_dominating_set, minimum_dominating_set
from repro.solvers.greedy import greedy_b_dominating_set


# -- pre-bitset reference implementation (verbatim) ------------------------


def legacy_bnb_minimum_b_dominating_set(graph, targets, candidates=None):
    target_set = set(targets)
    if not target_set:
        return set()
    if candidates is None:
        candidate_set = closed_neighborhood_of_set(graph, target_set)
    else:
        candidate_set = set(candidates)

    coverers = {}
    covers = {c: closed_neighborhood(graph, c) & target_set for c in candidate_set}
    for b in target_set:
        options = sorted(
            (c for c in closed_neighborhood(graph, b) if c in candidate_set), key=repr
        )
        if not options:
            raise ValueError(f"target {b!r} cannot be dominated by any candidate")
        coverers[b] = options

    incumbent = greedy_b_dominating_set(graph, target_set, candidate_set)
    best = [set(incumbent)]

    def packing_bound(remaining):
        bound = 0
        blocked = set()
        for b in sorted(remaining, key=lambda v: (len(coverers[v]), repr(v))):
            if b in blocked:
                continue
            bound += 1
            for c in coverers[b]:
                blocked |= covers[c]
        return bound

    def search(chosen, remaining):
        if not remaining:
            if len(chosen) < len(best[0]):
                best[0] = set(chosen)
            return
        if len(chosen) + packing_bound(remaining) >= len(best[0]):
            return
        pivot = min(remaining, key=lambda v: (len(coverers[v]), repr(v)))
        for c in coverers[pivot]:
            search(chosen | {c}, remaining - covers[c])

    search(set(), set(target_set))
    return best[0]


def legacy_bnb_minimum_dominating_set(graph):
    solution = set()
    for component in nx.connected_components(graph):
        sub = graph.subgraph(component)
        solution |= legacy_bnb_minimum_b_dominating_set(sub, component)
    return solution


def _tuple_labelled(graph):
    return nx.relabel_nodes(graph, {v: (v, f"v{v}") for v in graph.nodes})


class TestAgainstMilp:
    def test_same_sizes_on_zoo(self, small_zoo):
        for g in small_zoo:
            assert len(bnb_minimum_dominating_set(g)) == len(minimum_dominating_set(g))

    def test_same_sizes_on_random_instances(self):
        for seed in range(5):
            g = random_tree(14, seed)
            assert len(bnb_minimum_dominating_set(g)) == len(minimum_dominating_set(g))
        for seed in range(3):
            g = random_ding_augmentation(3, 2, seed)
            assert len(bnb_minimum_dominating_set(g)) == len(minimum_dominating_set(g))

    def test_b_domination_agreement(self, small_zoo):
        for g in small_zoo:
            targets = sorted(g.nodes)[1::2]
            if not targets:
                continue
            a = bnb_minimum_b_dominating_set(g, targets)
            b = minimum_b_dominating_set(g, targets)
            assert len(a) == len(b)
            assert is_b_dominating_set(g, a, targets)


class TestAgainstLegacy:
    """Differential pinning: bitset B&B vs the verbatim pre-bitset search
    vs MILP, across every graph class the batch runner ships."""

    def _check(self, graph):
        bitset = bnb_minimum_dominating_set(graph)
        legacy = legacy_bnb_minimum_dominating_set(graph)
        milp = minimum_dominating_set(graph)
        assert len(bitset) == len(legacy) == len(milp)
        assert is_dominating_set(graph, bitset) or not graph.number_of_nodes()

    def test_random_graphs(self):
        for seed in range(8):
            n = 6 + 2 * seed
            self._check(nx.gnm_random_graph(n, 2 * n, seed=seed))

    def test_family_graphs(self):
        for family in ("fan", "ladder", "tree", "outerplanar", "ding", "cactus"):
            self._check(get_family(family).make(14, 0))

    def test_tuple_labelled(self):
        self._check(_tuple_labelled(gen.ladder(6)))
        graph = _tuple_labelled(gen.fan(7))
        targets = sorted(graph.nodes)[::2]
        a = bnb_minimum_b_dominating_set(graph, targets)
        b = legacy_bnb_minimum_b_dominating_set(graph, targets)
        assert len(a) == len(b)
        assert is_b_dominating_set(graph, a, targets)

    def test_zero_node_graph(self):
        assert bnb_minimum_dominating_set(nx.Graph()) == set()
        assert legacy_bnb_minimum_dominating_set(nx.Graph()) == set()

    def test_isolated_vertices(self):
        graph = gen.path(5)
        graph.add_nodes_from(["iso_a", "iso_b"])
        self._check(graph)
        # Each isolate must dominate itself.
        assert {"iso_a", "iso_b"} <= bnb_minimum_dominating_set(graph)

    def test_b_domination_on_restricted_candidates(self, small_zoo):
        for g in small_zoo:
            targets = sorted(g.nodes)[::2]
            candidates = sorted(g.nodes)
            if not targets:
                continue
            a = bnb_minimum_b_dominating_set(g, targets, candidates)
            b = legacy_bnb_minimum_b_dominating_set(g, targets, candidates)
            assert len(a) == len(b)


class TestBehaviour:
    def test_validity(self, small_zoo):
        for g in small_zoo:
            assert is_dominating_set(g, bnb_minimum_dominating_set(g))

    def test_deterministic(self, cycle6):
        assert bnb_minimum_dominating_set(cycle6) == bnb_minimum_dominating_set(cycle6)

    def test_empty_targets(self, path5):
        assert bnb_minimum_b_dominating_set(path5, []) == set()

    def test_infeasible_raises(self, path5):
        with pytest.raises(ValueError):
            bnb_minimum_b_dominating_set(path5, [0], candidates=[4])

    def test_candidate_restriction(self, path5):
        assert bnb_minimum_b_dominating_set(path5, [0], candidates=[0, 1]) in ({0}, {1})
