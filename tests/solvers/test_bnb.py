"""Tests for the branch-and-bound solver (cross-checked against MILP)."""

import networkx as nx
import pytest

from repro.analysis.domination import is_b_dominating_set, is_dominating_set
from repro.graphs import generators as gen
from repro.graphs.random_families import random_ding_augmentation, random_tree
from repro.solvers.branch_and_bound import (
    bnb_minimum_b_dominating_set,
    bnb_minimum_dominating_set,
)
from repro.solvers.exact import minimum_b_dominating_set, minimum_dominating_set


class TestAgainstMilp:
    def test_same_sizes_on_zoo(self, small_zoo):
        for g in small_zoo:
            assert len(bnb_minimum_dominating_set(g)) == len(minimum_dominating_set(g))

    def test_same_sizes_on_random_instances(self):
        for seed in range(5):
            g = random_tree(14, seed)
            assert len(bnb_minimum_dominating_set(g)) == len(minimum_dominating_set(g))
        for seed in range(3):
            g = random_ding_augmentation(3, 2, seed)
            assert len(bnb_minimum_dominating_set(g)) == len(minimum_dominating_set(g))

    def test_b_domination_agreement(self, small_zoo):
        for g in small_zoo:
            targets = sorted(g.nodes)[1::2]
            if not targets:
                continue
            a = bnb_minimum_b_dominating_set(g, targets)
            b = minimum_b_dominating_set(g, targets)
            assert len(a) == len(b)
            assert is_b_dominating_set(g, a, targets)


class TestBehaviour:
    def test_validity(self, small_zoo):
        for g in small_zoo:
            assert is_dominating_set(g, bnb_minimum_dominating_set(g))

    def test_deterministic(self, cycle6):
        assert bnb_minimum_dominating_set(cycle6) == bnb_minimum_dominating_set(cycle6)

    def test_empty_targets(self, path5):
        assert bnb_minimum_b_dominating_set(path5, []) == set()

    def test_infeasible_raises(self, path5):
        with pytest.raises(ValueError):
            bnb_minimum_b_dominating_set(path5, [0], candidates=[4])

    def test_candidate_restriction(self, path5):
        assert bnb_minimum_b_dominating_set(path5, [0], candidates=[0, 1]) in ({0}, {1})
