"""Tests for the greedy baseline."""

import pytest

from repro.analysis.domination import is_b_dominating_set, is_dominating_set
from repro.graphs import generators as gen
from repro.solvers.exact import domination_number
from repro.solvers.greedy import greedy_b_dominating_set, greedy_dominating_set


class TestGreedy:
    def test_validity(self, small_zoo):
        for g in small_zoo:
            assert is_dominating_set(g, greedy_dominating_set(g))

    def test_star_takes_hub(self, star6):
        assert greedy_dominating_set(star6) == {0}

    def test_fan_takes_apex(self, fan5):
        assert greedy_dominating_set(fan5) == {0}

    def test_never_better_than_optimum(self, small_zoo):
        for g in small_zoo:
            assert len(greedy_dominating_set(g)) >= domination_number(g)

    def test_ln_delta_quality_on_zoo(self, small_zoo):
        # crude sanity: greedy is within H(Delta+1) of optimal
        import math

        for g in small_zoo:
            delta = max(dict(g.degree).values())
            bound = (1 + math.log(delta + 1)) * domination_number(g)
            assert len(greedy_dominating_set(g)) <= bound + 1

    def test_b_variant_validity(self, cycle6):
        targets = [0, 2]
        solution = greedy_b_dominating_set(cycle6, targets)
        assert is_b_dominating_set(cycle6, solution, targets)

    def test_b_variant_empty(self, cycle6):
        assert greedy_b_dominating_set(cycle6, []) == set()

    def test_infeasible_raises(self, path5):
        with pytest.raises(ValueError):
            greedy_b_dominating_set(path5, [0], candidates=[4])

    def test_deterministic_tie_break(self, cycle6):
        assert greedy_dominating_set(cycle6) == greedy_dominating_set(cycle6)
