"""Tests for the linear-time tree MDS DP."""

import networkx as nx

from repro.analysis.domination import is_dominating_set
from repro.graphs import generators as gen
from repro.graphs.random_families import random_caterpillar, random_tree
from repro.solvers.exact import domination_number
from repro.solvers.tree_dp import tree_minimum_dominating_set


class TestTreeDp:
    def test_single_vertex(self):
        g = nx.Graph()
        g.add_node(0)
        assert tree_minimum_dominating_set(g) == {0}

    def test_single_edge(self):
        g = nx.path_graph(2)
        assert len(tree_minimum_dominating_set(g)) == 1

    def test_path_values(self):
        for n in range(1, 14):
            g = gen.path(n)
            solution = tree_minimum_dominating_set(g)
            assert is_dominating_set(g, solution)
            assert len(solution) == -(-n // 3)

    def test_star(self, star6):
        assert tree_minimum_dominating_set(star6) == {0}

    def test_spider(self):
        g = gen.spider(4, 3)
        solution = tree_minimum_dominating_set(g)
        assert is_dominating_set(g, solution)
        assert len(solution) == domination_number(g)

    def test_matches_milp_on_random_trees(self):
        for seed in range(8):
            g = random_tree(25, seed)
            solution = tree_minimum_dominating_set(g)
            assert is_dominating_set(g, solution)
            assert len(solution) == domination_number(g)

    def test_matches_milp_on_caterpillars(self):
        for seed in range(4):
            g = random_caterpillar(6, 3, seed)
            solution = tree_minimum_dominating_set(g)
            assert is_dominating_set(g, solution)
            assert len(solution) == domination_number(g)

    def test_forest(self):
        g = nx.Graph()
        g.add_edges_from([(0, 1), (1, 2)])
        g.add_edges_from([(10, 11)])
        solution = tree_minimum_dominating_set(g)
        assert is_dominating_set(g, solution)
        assert len(solution) == 2

    def test_empty_graph(self):
        assert tree_minimum_dominating_set(nx.Graph()) == set()

    def test_explicit_root_same_size(self):
        g = random_tree(15, 3)
        for root in list(g.nodes)[:5]:
            assert len(tree_minimum_dominating_set(g, root)) == domination_number(g)
