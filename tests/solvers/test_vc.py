"""Tests for vertex-cover solvers."""

import networkx as nx
import pytest

from repro.graphs import generators as gen
from repro.solvers.vc import (
    all_vertices_cover,
    is_vertex_cover,
    matching_vertex_cover,
    minimum_vertex_cover,
    vertex_cover_number,
)


class TestExactVc:
    @pytest.mark.parametrize(
        "graph,expected",
        [
            (gen.path(2), 1),
            (gen.path(5), 2),
            (gen.cycle(6), 3),
            (gen.cycle(7), 4),
            (gen.star(7), 1),
            (nx.complete_graph(5), 4),
            (nx.complete_bipartite_graph(2, 6), 2),
        ],
    )
    def test_known_values(self, graph, expected):
        assert vertex_cover_number(graph) == expected

    def test_validity(self, small_zoo):
        for g in small_zoo:
            assert is_vertex_cover(g, minimum_vertex_cover(g))

    def test_edgeless_graph(self):
        g = nx.Graph()
        g.add_nodes_from(range(4))
        assert minimum_vertex_cover(g) == set()

    def test_koenig_on_bipartite(self):
        # König: VC = max matching on bipartite graphs.
        for n in (4, 6, 8):
            g = gen.ladder(n // 2)
            matching = nx.max_weight_matching(g, maxcardinality=True)
            assert vertex_cover_number(g) == len(matching)


class TestApproximations:
    def test_matching_cover_validity(self, small_zoo):
        for g in small_zoo:
            assert is_vertex_cover(g, matching_vertex_cover(g))

    def test_matching_cover_factor_two(self, small_zoo):
        for g in small_zoo:
            assert len(matching_vertex_cover(g)) <= 2 * vertex_cover_number(g)

    def test_all_vertices_cover(self, cycle6):
        cover = all_vertices_cover(cycle6)
        assert is_vertex_cover(cycle6, cover)
        # on 2-regular graphs taking everything is a 2-approximation
        assert len(cover) <= 2 * vertex_cover_number(cycle6)

    def test_is_vertex_cover_rejects(self, path5):
        assert not is_vertex_cover(path5, {0})
