"""RPR003: nondeterminism leaks in report-producing modules."""

from __future__ import annotations

import textwrap

from repro.lint import lint_source

REPORT_PATH = "src/repro/experiments/demo.py"
PLAIN_PATH = "src/repro/solvers/demo.py"


def rpr003(source: str, path: str = REPORT_PATH) -> list[str]:
    findings = lint_source(textwrap.dedent(source), path, select=("RPR003",))
    return [f.rule for f in findings]


# -- unsorted set iteration --------------------------------------------------


def test_set_loop_fires_in_report_module():
    src = """
        def report(graph):
            chosen = minimum_dominating_set(graph)
            for v in chosen:
                print(v)
    """
    assert rpr003(src) == ["RPR003"]


def test_sorted_set_loop_is_quiet():
    src = """
        def report(graph):
            chosen = minimum_dominating_set(graph)
            for v in sorted(chosen):
                print(v)
    """
    assert rpr003(src) == []


def test_set_literal_comprehension_fires():
    src = """
        def report():
            return [v for v in {3, 1, 2}]
    """
    assert rpr003(src) == ["RPR003"]


def test_list_conversion_of_set_fires():
    src = """
        def report(result):
            return list(result.solution)
    """
    assert rpr003(src) == ["RPR003"]


def test_join_over_set_fires():
    src = """
        def report(names):
            return ", ".join(set(names))
    """
    assert rpr003(src) == ["RPR003"]


def test_set_loop_allowed_outside_report_modules():
    src = """
        def solver_internal(graph):
            chosen = minimum_dominating_set(graph)
            best = None
            for v in chosen:
                best = v if best is None else min(best, v)
            return best
    """
    assert rpr003(src, path=PLAIN_PATH) == []


# -- wall-clock reads --------------------------------------------------------


def test_unsanctioned_time_read_fires():
    src = """
        import time

        def report():
            stamp = time.time()
            return {"stamp": stamp}
    """
    assert rpr003(src) == ["RPR003"]


def test_time_into_wall_time_slot_is_quiet():
    src = """
        import time

        def report():
            start = time.perf_counter()
            work()
            return {"wall_time": time.perf_counter() - start}
    """
    assert rpr003(src) == []


def test_time_keyword_argument_slot_is_quiet():
    src = """
        import time

        def report():
            return Row(wall_time=time.perf_counter())
    """
    assert rpr003(src) == []


# -- unseeded RNG (checked in every module) ----------------------------------


def test_global_rng_call_fires_everywhere():
    src = """
        import random

        def scramble(items):
            random.shuffle(items)
    """
    assert rpr003(src, path=PLAIN_PATH) == ["RPR003"]


def test_seedless_random_instance_fires():
    src = """
        import random

        def fresh_rng():
            return random.Random()
    """
    assert rpr003(src, path=PLAIN_PATH) == ["RPR003"]


def test_seeded_random_instance_is_quiet():
    src = """
        import random

        def rng_for(seed):
            return random.Random(seed)
    """
    assert rpr003(src, path=PLAIN_PATH) == []


# -- adversarial-layer modules are report modules ----------------------------


def test_adversary_and_scheduler_modules_are_report_modules():
    # Suspicion/degradation tallies flow straight into SimReports, so
    # the set-iteration check must cover the adversarial layer too.
    src = """
        def tally(changed):
            return [port for port in set(changed)]
    """
    for path in (
        "src/repro/local_model/adversary.py",
        "src/repro/local_model/schedulers.py",
    ):
        assert rpr003(src, path) == ["RPR003"]


def test_other_local_model_modules_stay_unmarked():
    src = """
        def tally(changed):
            return [port for port in set(changed)]
    """
    assert rpr003(src, "src/repro/local_model/engine.py") == []
