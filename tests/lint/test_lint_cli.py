"""The `repro lint` CLI: exit codes, --json, --select, --list-rules."""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.cli import main

BAD_SOURCE = textwrap.dedent(
    """
    def widen(graph, u, v):
        graph.add_edge(u, v)
        return graph
    """
)

CLEAN_SOURCE = textwrap.dedent(
    """
    def widen(graph, u, v):
        graph.add_edge(u, v)
        invalidate_kernel(graph)
        return graph
    """
)


@pytest.fixture
def bad_file(tmp_path):
    path = tmp_path / "bad.py"
    path.write_text(BAD_SOURCE)
    return path


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.py"
    path.write_text(CLEAN_SOURCE)
    return path


def test_findings_exit_2_with_rendered_lines(bad_file, capsys):
    assert main(["lint", str(bad_file)]) == 2
    out = capsys.readouterr().out
    assert "RPR001" in out
    assert f"{bad_file}:" in out
    assert "repro: ignore" in out  # the suppression hint


def test_clean_file_exits_0(clean_file, capsys):
    assert main(["lint", str(clean_file)]) == 0
    assert "clean" in capsys.readouterr().out


def test_json_output_round_trips(bad_file, capsys):
    assert main(["lint", "--json", str(bad_file)]) == 2
    payload = json.loads(capsys.readouterr().out)
    assert payload["count"] == len(payload["findings"]) == 1
    finding = payload["findings"][0]
    assert finding["rule"] == "RPR001"
    assert finding["path"] == str(bad_file)
    assert finding["line"] > 0


def test_json_clean_output(clean_file, capsys):
    assert main(["lint", "--json", str(clean_file)]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload == {"findings": [], "count": 0}


def test_select_limits_rules(bad_file, capsys):
    assert main(["lint", "--select", "RPR005", str(bad_file)]) == 0
    capsys.readouterr()


def test_unknown_rule_id_is_an_error(bad_file, capsys):
    assert main(["lint", "--select", "RPR999", str(bad_file)]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_missing_path_is_an_error(tmp_path, capsys):
    assert main(["lint", str(tmp_path / "nope")]) == 2
    assert "no such path" in capsys.readouterr().err


def test_list_rules_prints_catalogue(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("RPR001", "RPR002", "RPR003", "RPR004", "RPR005"):
        assert rule_id in out


def test_directory_walk_finds_nested_files(tmp_path, capsys):
    nested = tmp_path / "pkg" / "sub"
    nested.mkdir(parents=True)
    (nested / "bad.py").write_text(BAD_SOURCE)
    (tmp_path / "pkg" / "ok.py").write_text(CLEAN_SOURCE)
    assert main(["lint", "--json", str(tmp_path / "pkg")]) == 2
    payload = json.loads(capsys.readouterr().out)
    assert payload["count"] == 1
    assert payload["findings"][0]["path"].endswith("bad.py")


def test_shipped_tree_is_lint_clean(capsys):
    """Acceptance gate: `repro lint src/repro` runs clean from the repo root."""
    import pathlib

    import repro

    src_root = pathlib.Path(repro.__file__).resolve().parent
    assert main(["lint", "--json", str(src_root)]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["count"] == 0
