"""Suppression comments and the lint engine's file-level behavior."""

from __future__ import annotations

import textwrap

from repro.lint import (
    PARSE_ERROR_RULE,
    Suppressions,
    all_rules,
    lint_source,
)


def dedent(source: str) -> str:
    return textwrap.dedent(source)


# -- Suppressions unit behavior ----------------------------------------------


def test_same_line_suppression():
    sup = Suppressions("x = 1  # repro: ignore[RPR001] caller rebuilds\n")
    assert sup.is_suppressed(1, "RPR001")
    assert not sup.is_suppressed(1, "RPR002")
    assert not sup.is_suppressed(2, "RPR001")


def test_standalone_comment_covers_next_code_line():
    sup = Suppressions("# repro: ignore[RPR002] documented exception\nx = 1\n")
    assert sup.is_suppressed(1, "RPR002")
    assert sup.is_suppressed(2, "RPR002")


def test_multi_line_comment_block_reaches_code():
    source = dedent(
        """
        # repro: ignore[RPR002] the primary cache itself — registering it
        # as a derived cache would be circular.
        _KERNELS = weakref.WeakKeyDictionary()
        """
    ).lstrip()
    sup = Suppressions(source)
    assert sup.is_suppressed(3, "RPR002")


def test_multiple_rule_ids_in_one_comment():
    sup = Suppressions("x = f()  # repro: ignore[RPR001, RPR003]\n")
    assert sup.is_suppressed(1, "RPR001")
    assert sup.is_suppressed(1, "RPR003")
    assert not sup.is_suppressed(1, "RPR005")


# -- engine integration ------------------------------------------------------

_FIRING = """
    def widen(graph, u, v):
        graph.add_edge(u, v)
        return graph
"""


def test_suppression_silences_finding():
    src = dedent(
        """
        def widen(graph, u, v):
            graph.add_edge(u, v)  # repro: ignore[RPR001] caller invalidates
            return graph
        """
    )
    assert lint_source(src, "demo.py", select=("RPR001",)) == []


def test_suppression_of_other_rule_does_not_silence():
    src = dedent(
        """
        def widen(graph, u, v):
            graph.add_edge(u, v)  # repro: ignore[RPR005] wrong rule id
            return graph
        """
    )
    findings = lint_source(src, "demo.py", select=("RPR001",))
    assert [f.rule for f in findings] == ["RPR001"]


def test_select_filters_rules():
    findings = lint_source(dedent(_FIRING), "demo.py", select=("RPR002",))
    assert findings == []


def test_parse_error_yields_rpr000():
    findings = lint_source("def broken(:\n", "demo.py")
    assert [f.rule for f in findings] == [PARSE_ERROR_RULE]


def test_findings_are_sorted_and_renderable():
    src = dedent(
        """
        import weakref

        _CACHE = weakref.WeakKeyDictionary()

        def widen(graph, u, v):
            graph.add_edge(u, v)
            return graph
        """
    )
    findings = lint_source(src, "demo.py")
    assert findings == sorted(findings)
    assert {f.rule for f in findings} == {"RPR001", "RPR002"}
    for finding in findings:
        assert finding.render().startswith("demo.py:")
        payload = finding.to_dict()
        assert payload["rule"] == finding.rule
        assert payload["line"] == finding.line


def test_rule_catalogue_is_complete():
    assert list(all_rules()) == [
        "RPR001",
        "RPR002",
        "RPR003",
        "RPR004",
        "RPR005",
        "RPR006",
    ]
    assert all(summary for summary in all_rules().values())
