"""RPR006: durable writes in sweep/serve must use the atomic helpers."""

from __future__ import annotations

import textwrap

from repro.lint import lint_source

DURABLE_PATH = "src/repro/sweep/demo.py"
SERVE_PATH = "src/repro/serve/demo.py"
PLAIN_PATH = "src/repro/solvers/demo.py"


def rpr006(source: str, path: str = DURABLE_PATH) -> list[str]:
    findings = lint_source(textwrap.dedent(source), path, select=("RPR006",))
    return [f.rule for f in findings]


def test_write_text_fires_in_sweep_and_serve():
    src = """
        def checkpoint(path, payload):
            path.write_text(payload)
    """
    assert rpr006(src) == ["RPR006"]
    assert rpr006(src, path=SERVE_PATH) == ["RPR006"]


def test_write_bytes_fires():
    src = """
        def checkpoint(path, blob):
            path.write_bytes(blob)
    """
    assert rpr006(src) == ["RPR006"]


def test_json_dump_to_handle_fires():
    src = """
        import json
        def checkpoint(handle, payload):
            json.dump(payload, handle)
    """
    assert rpr006(src) == ["RPR006"]


def test_open_for_writing_fires():
    src = """
        def checkpoint(path, text):
            with open(path, "w") as handle:
                handle.write(text)
    """
    assert rpr006(src) == ["RPR006"]


def test_path_open_for_writing_fires():
    src = """
        def checkpoint(path, text):
            with path.open(mode="w") as handle:
                handle.write(text)
    """
    assert rpr006(src) == ["RPR006"]


def test_reads_are_quiet():
    src = """
        import json
        def load(path):
            with open(path) as handle:
                first = handle.read()
            with open(path, "r") as handle:
                second = json.load(handle)
            return path.read_text(), first, second
    """
    assert rpr006(src) == []


def test_atomic_helpers_are_quiet():
    src = """
        from repro.io import write_json_atomic, write_text_atomic
        def checkpoint(path, payload):
            write_json_atomic(path, payload)
            write_text_atomic(path, "done")
    """
    assert rpr006(src) == []


def test_other_modules_are_exempt():
    src = """
        def save(path, text):
            path.write_text(text)
    """
    assert rpr006(src, path=PLAIN_PATH) == []


def test_suppression_documents_deliberate_damage():
    src = """
        def damage(path, blob):
            path.write_bytes(  # repro: ignore[RPR006] fault harness
                blob
            )
    """
    assert rpr006(src) == []
