"""RPR004: @register_algorithm capability flags vs. adapter body."""

from __future__ import annotations

import textwrap

from repro.lint import lint_source


def rpr004(source: str) -> list[str]:
    findings = lint_source(
        textwrap.dedent(source), "src/repro/api/demo.py", select=("RPR004",)
    )
    return [f.rule for f in findings]


def test_consistent_fast_only_registration_is_quiet():
    src = """
        @register_algorithm(name="demo", problem="mds", modes=("fast",))
        def adapter(graph, config):
            return solve(graph)
    """
    assert rpr004(src) == []


def test_consistent_simulate_registration_is_quiet():
    src = """
        @register_algorithm(name="demo", problem="mds", modes=("fast", "simulate"))
        def adapter(graph, config):
            if config.mode == "simulate":
                return simulate(graph, config)
            return solve(graph)
    """
    assert rpr004(src) == []


def test_declared_simulate_without_mode_routing_fires():
    src = """
        @register_algorithm(name="demo", problem="mds", modes=("fast", "simulate"))
        def adapter(graph, config):
            return solve(graph)
    """
    assert rpr004(src) == ["RPR004"]


def test_mode_routing_without_declared_simulate_fires():
    src = """
        @register_algorithm(name="demo", problem="mds", modes=("fast",))
        def adapter(graph, config):
            if config.mode == "simulate":
                return simulate(graph, config)
            return solve(graph)
    """
    assert rpr004(src) == ["RPR004"]


def test_policy_flag_without_policy_read_fires():
    src = """
        @register_algorithm(
            name="demo", problem="mds", modes=("fast",), default_policy="greedy"
        )
        def adapter(graph, config):
            return solve(graph)
    """
    assert rpr004(src) == ["RPR004"]


def test_policy_read_without_policy_flag_fires():
    src = """
        @register_algorithm(name="demo", problem="mds", modes=("fast",))
        def adapter(graph, config):
            return solve(graph, policy=config.policy)
    """
    assert rpr004(src) == ["RPR004"]


def test_policy_flag_with_policy_read_is_quiet():
    src = """
        @register_algorithm(
            name="demo", problem="mds", modes=("fast",), default_policy="greedy"
        )
        def adapter(graph, config):
            return solve(graph, policy=config.policy)
    """
    assert rpr004(src) == []


def test_duplicate_name_fires():
    src = """
        @register_algorithm(name="demo", problem="mds", modes=("fast",))
        def adapter_a(graph, config):
            return solve(graph)

        @register_algorithm(name="demo", problem="mvc", modes=("fast",))
        def adapter_b(graph, config):
            return solve(graph)
    """
    assert rpr004(src) == ["RPR004"]


def test_unknown_problem_fires():
    src = """
        @register_algorithm(name="demo", problem="tsp", modes=("fast",))
        def adapter(graph, config):
            return solve(graph)
    """
    assert rpr004(src) == ["RPR004"]


def test_invalid_mode_fires():
    src = """
        @register_algorithm(name="demo", problem="mds", modes=("turbo",))
        def adapter(graph, config):
            return solve(graph)
    """
    assert rpr004(src) == ["RPR004"]


def test_real_registry_module_is_clean():
    """The shipped registrations must satisfy their own declared flags."""
    from pathlib import Path

    import repro.api.algorithms as algorithms_module

    path = Path(algorithms_module.__file__)
    findings = lint_source(path.read_text(), str(path), select=("RPR004",))
    assert findings == []
