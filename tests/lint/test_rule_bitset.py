"""RPR005: int bitsets treated as containers, mask/label slot mixups."""

from __future__ import annotations

import textwrap

from repro.lint import lint_source


def rpr005(source: str) -> list[str]:
    findings = lint_source(
        textwrap.dedent(source), "src/repro/solvers/demo.py", select=("RPR005",)
    )
    return [f.rule for f in findings]


def test_len_of_mask_fires():
    src = """
        def size(mask):
            return len(mask)
    """
    assert rpr005(src) == ["RPR005"]


def test_bit_count_is_quiet():
    src = """
        def size(mask):
            return mask.bit_count()
    """
    assert rpr005(src) == []


def test_iterating_mask_fires():
    src = """
        def walk(mask):
            for v in mask:
                yield v
    """
    assert rpr005(src) == ["RPR005"]


def test_comprehension_over_mask_fires():
    src = """
        def labels(dom_mask):
            return [v for v in dom_mask]
    """
    assert rpr005(src) == ["RPR005"]


def test_sorted_mask_fires():
    src = """
        def ordered(mask):
            return sorted(mask)
    """
    assert rpr005(src) == ["RPR005"]


def test_iterating_decoded_labels_is_quiet():
    src = """
        def walk(kernel, mask):
            for v in kernel.labels_of(mask):
                yield v
    """
    assert rpr005(src) == []


def test_membership_against_mask_fires():
    src = """
        def covered(v, mask):
            return v in mask
    """
    assert rpr005(src) == ["RPR005"]


def test_bit_test_is_quiet():
    src = """
        def covered(i, mask):
            return bool(mask >> i & 1)
    """
    assert rpr005(src) == []


def test_mask_into_label_parameter_fires():
    src = """
        def rebits(kernel, mask):
            return kernel.bits_of(mask)
    """
    assert rpr005(src) == ["RPR005"]


def test_label_container_into_mask_parameter_fires():
    src = """
        def decode(kernel):
            return kernel.labels_of({1, 2})
    """
    assert rpr005(src) == ["RPR005"]


def test_mask_into_mask_parameter_is_quiet():
    src = """
        def decode(kernel, mask):
            return kernel.labels_of(mask)
    """
    assert rpr005(src) == []


def test_mask_inferred_from_kernel_primitive_assignment():
    src = """
        def closed(kernel, vertices):
            cover = kernel.union_closed_bits(vertices)
            return len(cover)
    """
    assert rpr005(src) == ["RPR005"]
