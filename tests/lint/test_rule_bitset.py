"""RPR005: int bitsets treated as containers, mask/label slot mixups."""

from __future__ import annotations

import textwrap

from repro.lint import lint_source


def rpr005(source: str) -> list[str]:
    findings = lint_source(
        textwrap.dedent(source), "src/repro/solvers/demo.py", select=("RPR005",)
    )
    return [f.rule for f in findings]


def test_len_of_mask_fires():
    src = """
        def size(mask):
            return len(mask)
    """
    assert rpr005(src) == ["RPR005"]


def test_bit_count_is_quiet():
    src = """
        def size(mask):
            return mask.bit_count()
    """
    assert rpr005(src) == []


def test_iterating_mask_fires():
    src = """
        def walk(mask):
            for v in mask:
                yield v
    """
    assert rpr005(src) == ["RPR005"]


def test_comprehension_over_mask_fires():
    src = """
        def labels(dom_mask):
            return [v for v in dom_mask]
    """
    assert rpr005(src) == ["RPR005"]


def test_sorted_mask_fires():
    src = """
        def ordered(mask):
            return sorted(mask)
    """
    assert rpr005(src) == ["RPR005"]


def test_iterating_decoded_labels_is_quiet():
    src = """
        def walk(kernel, mask):
            for v in kernel.labels_of(mask):
                yield v
    """
    assert rpr005(src) == []


def test_membership_against_mask_fires():
    src = """
        def covered(v, mask):
            return v in mask
    """
    assert rpr005(src) == ["RPR005"]


def test_bit_test_is_quiet():
    src = """
        def covered(i, mask):
            return bool(mask >> i & 1)
    """
    assert rpr005(src) == []


def test_mask_into_label_parameter_fires():
    src = """
        def rebits(kernel, mask):
            return kernel.bits_of(mask)
    """
    assert rpr005(src) == ["RPR005"]


def test_label_container_into_mask_parameter_fires():
    src = """
        def decode(kernel):
            return kernel.labels_of({1, 2})
    """
    assert rpr005(src) == ["RPR005"]


def test_mask_into_mask_parameter_is_quiet():
    src = """
        def decode(kernel, mask):
            return kernel.labels_of(mask)
    """
    assert rpr005(src) == []


def test_mask_inferred_from_kernel_primitive_assignment():
    src = """
        def closed(kernel, vertices):
            cover = kernel.union_closed_bits(vertices)
            return len(cover)
    """
    assert rpr005(src) == ["RPR005"]


# -- packed/int mask mixing (two-backend discipline) ------------------------


def test_packed_and_shift_mix_fires():
    src = """
        def hit(kernel, i):
            pmask = PackedMask.zeros(kernel.n)
            return pmask & (1 << i)
    """
    assert rpr005(src) == ["RPR005"]


def test_int_accumulator_oring_packed_fires():
    src = """
        def cover(packed_masks):
            acc = 0
            for current_pmask in packed_masks:
                acc |= current_pmask
            return acc
    """
    assert rpr005(src) == ["RPR005"]


def test_packed_compared_to_int_literal_fires():
    src = """
        def empty(dom_pmask):
            return dom_pmask == 0
    """
    assert rpr005(src) == ["RPR005"]


def test_packed_with_packed_is_quiet():
    src = """
        def both(kernel, items):
            pmask = PackedMask.from_indices(kernel.n, items)
            other_pmask = PackedMask.zeros(kernel.n)
            return pmask & other_pmask
    """
    assert rpr005(src) == []


def test_int_mask_with_shift_is_quiet():
    src = """
        def bitset(kernel, items):
            mask = kernel.bits_of(items)
            return mask | (1 << 3)
    """
    assert rpr005(src) == []


def test_packed_truthiness_is_quiet():
    src = """
        def nonempty(pmask):
            return bool(pmask)
    """
    assert rpr005(src) == []


def test_maskhandle_alias_factory_fires_on_mix():
    src = """
        def seed(kernel):
            handle_pmask = MaskHandle.full(kernel.n)
            return handle_pmask ^ (1 << 0)
    """
    assert rpr005(src) == ["RPR005"]
