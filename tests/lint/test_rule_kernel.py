"""RPR001 (mutation without invalidate) and RPR002 (unregistered cache)."""

from __future__ import annotations

import textwrap

from repro.lint import lint_source


def rules(source: str, select: tuple[str, ...]) -> list[str]:
    findings = lint_source(
        textwrap.dedent(source), "src/repro/graphs/demo.py", select=select
    )
    return [f.rule for f in findings]


# -- RPR001: mutation without invalidate_kernel ------------------------------


def test_rpr001_fires_on_parameter_mutation():
    src = """
        def widen(graph, u, v):
            graph.add_edge(u, v)
            return graph
    """
    assert rules(src, ("RPR001",)) == ["RPR001"]


def test_rpr001_quiet_when_invalidated():
    src = """
        def widen(graph, u, v):
            graph.add_edge(u, v)
            invalidate_kernel(graph)
            return graph
    """
    assert rules(src, ("RPR001",)) == []


def test_rpr001_quiet_on_locally_built_graph():
    src = """
        def build(n):
            graph = nx.path_graph(n)
            graph.add_edge(0, n - 1)
            return graph
    """
    assert rules(src, ("RPR001",)) == []


def test_rpr001_quiet_on_copy():
    src = """
        def without_hub(graph):
            local = graph.copy()
            local.remove_node(0)
            return local
    """
    assert rules(src, ("RPR001",)) == []


def test_rpr001_fires_when_only_one_branch_invalidates():
    src = """
        def widen(graph, u, v, flag):
            graph.add_edge(u, v)
            if flag:
                invalidate_kernel(graph)
            return graph
    """
    assert rules(src, ("RPR001",)) == ["RPR001"]


def test_rpr001_quiet_when_every_branch_invalidates():
    src = """
        def widen(graph, u, v, flag):
            graph.add_edge(u, v)
            if flag:
                invalidate_kernel(graph)
            else:
                invalidate_kernel(graph)
            return graph
    """
    assert rules(src, ("RPR001",)) == []


def test_rpr001_fires_on_early_return_before_invalidate():
    src = """
        def widen(graph, u, v, flag):
            graph.add_edge(u, v)
            if flag:
                return None
            invalidate_kernel(graph)
            return graph
    """
    assert rules(src, ("RPR001",)) == ["RPR001"]


def test_rpr001_closure_over_fresh_local_is_quiet():
    src = """
        def random_outerplanar(n):
            graph = nx.cycle_graph(n)

            def triangulate(lo, hi):
                graph.add_edge(lo, hi)

            triangulate(0, 2)
            return graph
    """
    assert rules(src, ("RPR001",)) == []


def test_rpr001_closure_over_parameter_still_fires():
    src = """
        def mutator(graph):
            def tweak():
                graph.add_edge(0, 1)

            tweak()
    """
    assert rules(src, ("RPR001",)) == ["RPR001"]


def test_rpr001_fires_on_attribute_receiver():
    src = """
        class Runner:
            def drop(self, v):
                self.graph.remove_node(v)
    """
    assert rules(src, ("RPR001",)) == ["RPR001"]


def test_rpr001_ignores_non_graph_container_methods():
    # add/update/remove are generic container verbs, not graph mutators.
    src = """
        def collect(graph, chosen):
            chosen.add(0)
            chosen.update({1, 2})
            chosen.remove(1)
            return chosen
    """
    assert rules(src, ("RPR001",)) == []


# -- RPR002: unregistered module-level WeakKeyDictionary ---------------------


def test_rpr002_fires_on_unregistered_cache():
    src = """
        import weakref

        _CACHE = weakref.WeakKeyDictionary()
    """
    assert rules(src, ("RPR002",)) == ["RPR002"]


def test_rpr002_quiet_when_registered():
    src = """
        import weakref

        from repro.graphs.kernel import register_derived_cache

        _CACHE = weakref.WeakKeyDictionary()
        register_derived_cache(_CACHE)
    """
    assert rules(src, ("RPR002",)) == []


def test_rpr002_ignores_function_local_caches():
    src = """
        import weakref

        def scratch():
            local = weakref.WeakKeyDictionary()
            return local
    """
    assert rules(src, ("RPR002",)) == []
