"""Simulate-vs-fast agreement for the MVC variant."""

import pytest

from repro.core.radii import RadiusPolicy
from repro.core.vertex_cover import local_cuts_vertex_cover
from repro.graphs import generators as gen
from repro.graphs.random_families import random_outerplanar, random_tree
from repro.solvers.vc import is_vertex_cover


CASES = [
    gen.path(8),
    gen.cycle(9),
    gen.star(7),
    gen.fan(6),
    gen.ladder(5),
    gen.caterpillar(3, 2),
    gen.cactus_chain(2, 4),
    gen.clique_with_pendants(4),
]


@pytest.mark.parametrize(
    "graph", CASES, ids=lambda g: f"n{g.number_of_nodes()}m{g.number_of_edges()}"
)
def test_vc_simulate_equals_fast(graph):
    fast = local_cuts_vertex_cover(graph, mode="fast")
    simulated = local_cuts_vertex_cover(graph, mode="simulate")
    assert simulated.solution == fast.solution
    assert is_vertex_cover(graph, simulated.solution)


@pytest.mark.parametrize("seed", range(3))
def test_vc_simulate_equals_fast_random(seed):
    for g in (random_tree(12, seed), random_outerplanar(10, seed)):
        fast = local_cuts_vertex_cover(g, mode="fast")
        simulated = local_cuts_vertex_cover(g, mode="simulate")
        assert simulated.solution == fast.solution


def test_unknown_mode_rejected(path5):
    with pytest.raises(ValueError, match="unknown mode"):
        local_cuts_vertex_cover(path5, mode="warp")


def test_wider_policy_also_agrees():
    g = gen.ladder(5)
    policy = RadiusPolicy.practical(3, 4)
    fast = local_cuts_vertex_cover(g, policy, mode="fast")
    simulated = local_cuts_vertex_cover(g, policy, mode="simulate")
    assert simulated.solution == fast.solution
