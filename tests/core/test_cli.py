"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_run_algorithm1(self, capsys):
        code = main(["run", "--family", "fan", "--size", "12", "--algorithm", "algorithm1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "valid: True" in out
        assert "ratio" in out

    def test_run_d2(self, capsys):
        code = main(["run", "--family", "tree", "--size", "15", "--algorithm", "d2"])
        assert code == 0
        assert "rounds=3" in capsys.readouterr().out

    def test_run_simulate(self, capsys):
        code = main(
            [
                "run", "--family", "cycle", "--size", "10",
                "--algorithm", "algorithm1", "--simulate",
            ]
        )
        assert code == 0

    def test_compare(self, capsys):
        code = main(["compare", "--family", "ladder", "--size", "12"])
        assert code == 0
        out = capsys.readouterr().out
        assert "algorithm1" in out
        assert "exact" in out

    def test_families(self, capsys):
        code = main(["families"])
        assert code == 0
        out = capsys.readouterr().out
        assert "clique_pendants" in out

    def test_report_tiny(self, capsys):
        code = main(["report", "--scale", "tiny"])
        assert code == 0
        assert "Table 1" in capsys.readouterr().out

    def test_unknown_family_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--family", "nope", "--algorithm", "d2"])

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--family", "fan", "--algorithm", "nope"])
