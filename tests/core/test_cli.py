"""Tests for the command-line interface."""

import json

import pytest

from repro.api import algorithm_names
from repro.cli import main


class TestCli:
    def test_run_algorithm1(self, capsys):
        code = main(["run", "--family", "fan", "--size", "12", "--algorithm", "algorithm1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "valid: True" in out
        assert "ratio" in out

    def test_run_d2(self, capsys):
        code = main(["run", "--family", "tree", "--size", "15", "--algorithm", "d2"])
        assert code == 0
        assert "rounds=3" in capsys.readouterr().out

    def test_run_simulate(self, capsys):
        code = main(
            [
                "run", "--family", "cycle", "--size", "10",
                "--algorithm", "algorithm1", "--simulate",
            ]
        )
        assert code == 0

    def test_run_simulate_unsupported_is_clear_error(self, capsys):
        code = main(
            ["run", "--family", "tree", "--size", "12", "--algorithm", "d2", "--simulate"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "does not support mode 'simulate'" in err
        assert "repro algorithms" in err

    def test_run_json(self, capsys):
        code = main(
            ["run", "--family", "fan", "--size", "12", "--algorithm", "d2", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["algorithm"] == "d2"
        assert payload["valid"] is True
        assert payload["instance"]["family"] == "fan"

    def test_simulate(self, capsys):
        code = main(["simulate", "--family", "tree", "--size", "15", "--algorithm", "d2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "model=local" in out
        assert "rounds=3" in out
        assert "chosen" in out

    def test_simulate_congest_json(self, capsys):
        code = main(
            [
                "simulate", "--family", "tree", "--size", "8",
                "--algorithm", "degree_two", "--model", "congest", "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["model"] == "congest"
        assert payload["spec"]["budget"] == 4
        assert payload["outputs"]

    def test_simulate_congest_rejection_is_actionable(self, capsys):
        code = main(
            [
                "simulate", "--family", "star", "--size", "8",
                "--algorithm", "d2", "--model", "congest",
            ]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "in round" in err and "to node" in err
        assert "--budget" in err

    def test_simulate_faults(self, capsys):
        code = main(
            [
                "simulate", "--family", "fan", "--size", "12",
                "--algorithm", "d2", "--faults", "drop=0.2,crash=0", "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["crashed"] == [0]
        assert payload["dropped_messages"] > 0
        assert payload["spec"]["faults"]["drop_probability"] == 0.2

    def test_simulate_bad_faults_is_clear_error(self, capsys):
        code = main(
            [
                "simulate", "--family", "fan", "--size", "10",
                "--algorithm", "d2", "--faults", "sabotage=1",
            ]
        )
        assert code == 2
        assert "unknown fault knob" in capsys.readouterr().err

    def test_simulate_round_limit_is_clean_error(self, capsys):
        code = main(
            [
                "simulate", "--family", "tree", "--size", "15",
                "--algorithm", "d2", "--max-rounds", "1",
            ]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "did not halt within 1 rounds" in err
        assert "--max-rounds" in err

    def test_simulate_choices_are_engine_capable_only(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--family", "fan", "--size", "10", "--algorithm", "exact"])

    def test_simulate_churn_json(self, capsys):
        code = main(
            [
                "simulate", "--family", "tree", "--size", "12",
                "--algorithm", "d2", "--seed", "1",
                "--churn", "rate=0.5,until=4", "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spec"]["churn"]["rate"] == 0.5
        assert payload["spec"]["churn"]["until"] == 4
        assert payload["churn_events"] >= 1

    def test_simulate_byzantine_human_output(self, capsys):
        code = main(
            [
                "simulate", "--family", "fan", "--size", "12",
                "--algorithm", "d2", "--byzantine", "lie=3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "byzantine 3: behavior=lie" in out
        assert "deviations=" in out and "detections=" in out

    def test_simulate_adversarial_model_with_delay(self, capsys):
        code = main(
            [
                "simulate", "--family", "tree", "--size", "12",
                "--algorithm", "d2", "--model", "adversarial",
                "--delay", "1", "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["model"] == "adversarial"
        assert payload["delayed_messages"] > 0

    def test_simulate_scheduled_crash(self, capsys):
        code = main(
            [
                "simulate", "--family", "fan", "--size", "12",
                "--algorithm", "d2", "--faults", "crash=5@2", "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["crashed"] == [5]
        assert payload["spec"]["faults"]["crash_schedule"] == [[5, 2]]

    def test_simulate_bad_churn_is_clear_error(self, capsys):
        code = main(
            [
                "simulate", "--family", "fan", "--size", "10",
                "--algorithm", "d2", "--churn", "add:0-1",
            ]
        )
        assert code == 2
        assert "@<round>" in capsys.readouterr().err

    def test_simulate_bad_byzantine_is_clear_error(self, capsys):
        code = main(
            [
                "simulate", "--family", "fan", "--size", "10",
                "--algorithm", "d2", "--byzantine", "wat=3",
            ]
        )
        assert code == 2
        assert "unknown byzantine behavior" in capsys.readouterr().err

    def test_simulate_bad_crash_round_is_clear_error(self, capsys):
        code = main(
            [
                "simulate", "--family", "fan", "--size", "10",
                "--algorithm", "d2", "--faults", "crash=0@x",
            ]
        )
        assert code == 2
        assert "non-negative integer round" in capsys.readouterr().err

    def test_compare(self, capsys):
        code = main(["compare", "--family", "ladder", "--size", "12"])
        assert code == 0
        out = capsys.readouterr().out
        assert "algorithm1" in out
        assert "exact" in out

    def test_compare_derives_choices_from_registry(self, capsys):
        code = main(["compare", "--family", "fan", "--size", "10"])
        assert code == 0
        out = capsys.readouterr().out
        for name in algorithm_names("mds"):
            assert name in out

    def test_compare_workers_matches_serial(self, capsys):
        assert main(["compare", "--family", "fan", "--size", "12", "--json"]) == 0
        serial = capsys.readouterr().out
        assert main(
            ["compare", "--family", "fan", "--size", "12", "--json", "--workers", "2"]
        ) == 0
        parallel = capsys.readouterr().out

        def strip_walltime(text):
            return [
                {k: v for k, v in report.items() if k != "wall_time"}
                for report in json.loads(text)
            ]

        assert strip_walltime(serial) == strip_walltime(parallel)

    def test_compare_mvc(self, capsys):
        code = main(["compare", "--family", "fan", "--size", "10", "--problem", "mvc"])
        assert code == 0
        out = capsys.readouterr().out
        assert "d2_vc" in out
        assert "local_cuts_vc" in out

    def test_algorithms_table(self, capsys):
        code = main(["algorithms"])
        assert code == 0
        out = capsys.readouterr().out
        for name in algorithm_names():
            assert name in out
        assert "fast+simulate" in out

    def test_algorithms_json(self, capsys):
        code = main(["algorithms", "--problem", "mds", "--json"])
        assert code == 0
        specs = json.loads(capsys.readouterr().out)
        assert sorted(s["name"] for s in specs) == algorithm_names("mds")
        by_name = {s["name"]: s for s in specs}
        assert "simulate" in by_name["algorithm1"]["modes"]
        assert "simulate" not in by_name["d2"]["modes"]

    def test_families(self, capsys):
        code = main(["families"])
        assert code == 0
        out = capsys.readouterr().out
        assert "clique_pendants" in out

    def test_report_tiny(self, capsys):
        code = main(["report", "--scale", "tiny"])
        assert code == 0
        assert "Table 1" in capsys.readouterr().out

    def test_unknown_family_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--family", "nope", "--algorithm", "d2"])

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--family", "fan", "--algorithm", "nope"])

    def test_algorithms_dict_shim_deprecated(self):
        import warnings

        import repro.cli as cli

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            algorithms = cli.ALGORITHMS
        assert any(issubclass(w.category, DeprecationWarning) for w in caught)
        assert set(algorithm_names("mds")) == set(algorithms)
