"""Tests for the MVC variants."""

import networkx as nx

from repro.core.vertex_cover import d2_vertex_cover, local_cuts_vertex_cover
from repro.graphs import generators as gen
from repro.graphs.random_families import random_outerplanar, random_tree
from repro.solvers.vc import is_vertex_cover, vertex_cover_number


class TestLocalCutsVc:
    def test_valid_on_zoo(self, small_zoo):
        for g in small_zoo:
            result = local_cuts_vertex_cover(g)
            assert is_vertex_cover(g, result.solution), g

    def test_valid_on_random(self):
        for seed in range(4):
            for g in (random_tree(16, seed), random_outerplanar(11, seed)):
                result = local_cuts_vertex_cover(g)
                assert is_vertex_cover(g, result.solution)

    def test_edgeless(self):
        g = nx.Graph()
        g.add_nodes_from(range(3))
        assert local_cuts_vertex_cover(g).solution == set()

    def test_phases_cover_solution(self, fan5):
        result = local_cuts_vertex_cover(fan5)
        union = set().union(*result.phases.values())
        assert union == result.solution

    def test_takes_all_two_cut_vertices(self):
        # unlike the MDS variant there is no interesting filter
        g = gen.ladder(6)
        result = local_cuts_vertex_cover(g)
        from repro.graphs.local_cuts import local_two_cuts
        from repro.core.radii import RadiusPolicy

        policy = RadiusPolicy.practical()
        expected = set().union(
            *local_two_cuts(g, policy.two_cut_radius, minimal=True)
        )
        assert expected <= result.solution

    def test_ratio_on_paper_families(self):
        for seed in range(3):
            g = random_outerplanar(10, seed)
            result = local_cuts_vertex_cover(g)
            assert len(result.solution) <= 50 * vertex_cover_number(g)


class TestD2Vc:
    def test_valid_on_zoo(self, small_zoo):
        for g in small_zoo:
            result = d2_vertex_cover(g)
            assert is_vertex_cover(g, result.solution), g

    def test_valid_on_cliques(self):
        for n in (3, 5, 7):
            g = nx.complete_graph(n)
            result = d2_vertex_cover(g)
            assert is_vertex_cover(g, result.solution)

    def test_t_approx_shape_on_k2t(self):
        # on K_{2,t} (K_{2,t+1}-free) the measured ratio stays below t+1.
        for t in (3, 5):
            g = nx.complete_bipartite_graph(2, t)
            result = d2_vertex_cover(g)
            assert len(result.solution) <= (t + 1) * vertex_cover_number(g)

    def test_edgeless(self):
        g = nx.Graph()
        g.add_nodes_from(range(3))
        assert d2_vertex_cover(g).solution == set()

    def test_rounds_constant(self, small_zoo):
        assert {d2_vertex_cover(g).rounds for g in small_zoo} == {4}

    def test_patch_metadata(self, small_zoo):
        for g in small_zoo:
            result = d2_vertex_cover(g)
            assert "patched_vertices" in result.metadata
