"""Edge cases and defensive paths across the core algorithms."""

import networkx as nx
import pytest

from repro.analysis.domination import is_dominating_set
from repro.core.algorithm1 import algorithm1
from repro.core.algorithm2 import algorithm2
from repro.core.baselines import full_gather_exact, take_all_vertices
from repro.core.d2 import d2_dominating_set
from repro.core.radii import RadiusPolicy
from repro.core.vertex_cover import d2_vertex_cover, local_cuts_vertex_cover
from repro.graphs import generators as gen


class TestDegenerateInputs:
    def test_all_algorithms_on_single_vertex(self):
        g = nx.Graph()
        g.add_node(42)
        for runner in (algorithm1, d2_dominating_set, take_all_vertices, full_gather_exact):
            result = runner(g)
            assert result.solution == {42}, runner

    def test_all_algorithms_on_k2(self):
        g = nx.path_graph(2)
        for runner in (algorithm1, d2_dominating_set, full_gather_exact):
            result = runner(g)
            assert is_dominating_set(g, result.solution)
            assert len(result.solution) == 1, runner

    def test_triangle(self):
        g = nx.complete_graph(3)
        assert len(algorithm1(g).solution) == 1
        assert len(d2_dominating_set(g).solution) == 1

    def test_many_components(self):
        g = nx.Graph()
        for i in range(4):
            base = 10 * i
            g.add_edges_from([(base, base + 1), (base + 1, base + 2)])
        for runner in (algorithm1, d2_dominating_set):
            result = runner(g)
            assert is_dominating_set(g, result.solution), runner

    def test_isolated_vertices_mixed_in(self):
        g = gen.path(5)
        g.add_node(100)
        g.add_node(200)
        result = algorithm1(g)
        assert {100, 200} <= result.solution
        assert is_dominating_set(g, result.solution)


class TestPolicyEdges:
    def test_minimum_legal_policy(self):
        policy = RadiusPolicy(one_cut_radius=1, two_cut_radius=2)
        g = gen.ladder(5)
        result = algorithm1(g, policy)
        assert is_dominating_set(g, result.solution)

    def test_asymmetric_radii(self):
        policy = RadiusPolicy(one_cut_radius=5, two_cut_radius=2)
        assert policy.detection_radius == 5
        g = gen.cycle(13)
        result = algorithm1(g, policy)
        assert is_dominating_set(g, result.solution)

    def test_algorithm2_with_constant_control(self):
        # dimension-0 classes admit constant control functions.
        g = gen.fan(6)
        result = algorithm2(g, dimension=0, control=lambda r: 7)
        assert is_dominating_set(g, result.solution)


class TestVcEdges:
    def test_vc_on_single_edge(self):
        g = nx.path_graph(2)
        assert len(local_cuts_vertex_cover(g).solution) == 1
        # the D2 variant keeps non-representative twins: on K_2 it takes
        # both endpoints (valid, factor 2 — still within the t-approx).
        d2 = d2_vertex_cover(g).solution
        from repro.solvers.vc import is_vertex_cover

        assert is_vertex_cover(g, d2)
        assert len(d2) <= 2

    def test_vc_on_triangle(self):
        g = nx.complete_graph(3)
        from repro.solvers.vc import is_vertex_cover

        assert is_vertex_cover(g, local_cuts_vertex_cover(g).solution)

    def test_vc_policy_and_t_exclusive(self, path5):
        with pytest.raises(ValueError):
            local_cuts_vertex_cover(path5, RadiusPolicy.practical(), t=3)


class TestCliGreedy:
    def test_cli_greedy_runs(self, capsys):
        from repro.cli import main

        assert main(["run", "--family", "tree", "--size", "14", "--algorithm", "greedy"]) == 0
        assert "valid: True" in capsys.readouterr().out
