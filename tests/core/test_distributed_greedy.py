"""Tests for the distributed greedy baseline (centralized + protocol)."""

import networkx as nx

from repro.analysis.domination import is_dominating_set
from repro.core.distributed_greedy import (
    distributed_greedy_dominating_set,
    run_distributed_greedy,
)
from repro.graphs import generators as gen
from repro.graphs.random_families import random_outerplanar, random_tree
from repro.local_model.identifiers import shuffled_ids
from repro.solvers.exact import domination_number


class TestCentralized:
    def test_valid_on_zoo(self, small_zoo):
        for g in small_zoo:
            result = distributed_greedy_dominating_set(g)
            assert is_dominating_set(g, result.solution)

    def test_star_one_phase(self, star6):
        result = distributed_greedy_dominating_set(star6)
        assert result.solution == {0}
        assert result.metadata["phases"] == 1

    def test_quality_near_greedy(self, small_zoo):
        import math

        for g in small_zoo:
            result = distributed_greedy_dominating_set(g)
            delta = max(dict(g.degree).values())
            assert len(result.solution) <= (2 + math.log(delta + 1)) * domination_number(g)

    def test_phases_grow_on_paths(self):
        # A long path needs several phases (local maxima thin out).
        short = distributed_greedy_dominating_set(gen.path(6))
        long_ = distributed_greedy_dominating_set(gen.path(40))
        assert long_.metadata["phases"] >= short.metadata["phases"]

    def test_rounds_are_four_per_phase(self, fan5):
        result = distributed_greedy_dominating_set(fan5)
        assert result.rounds == 4 * result.metadata["phases"]


class TestProtocol:
    def test_agrees_with_centralized(self, small_zoo):
        for g in small_zoo:
            central = distributed_greedy_dominating_set(g)
            proto = run_distributed_greedy(g)
            assert proto.solution == central.solution, g

    def test_agrees_on_random_families(self):
        for seed in range(3):
            for g in (random_tree(16, seed), random_outerplanar(12, seed)):
                assert (
                    run_distributed_greedy(g).solution
                    == distributed_greedy_dominating_set(g).solution
                )

    def test_single_vertex(self):
        g = nx.Graph()
        g.add_node(0)
        assert run_distributed_greedy(g).solution == {0}

    def test_complete_graph(self):
        g = nx.complete_graph(7)
        result = run_distributed_greedy(g)
        assert len(result.solution) == 1

    def test_identifier_dependence_is_tie_break_only(self, cycle6):
        # shuffling ids may rotate which vertices win ties, but the
        # output size class and validity are invariant.
        base = run_distributed_greedy(cycle6)
        for seed in (1, 2):
            ids = shuffled_ids(cycle6, seed)
            other = run_distributed_greedy(cycle6, ids)
            assert is_dominating_set(cycle6, other.solution)
            assert abs(len(other.solution) - len(base.solution)) <= 1

    def test_rounds_recorded(self, path5):
        assert run_distributed_greedy(path5).rounds >= 4
