"""Tests for Algorithm 1 (Theorem 4.1)."""

import networkx as nx
import pytest

from repro.analysis.domination import is_dominating_set
from repro.core.algorithm1 import algorithm1
from repro.core.radii import RadiusPolicy
from repro.graphs import generators as gen
from repro.graphs.random_families import (
    random_cactus,
    random_ding_augmentation,
    random_outerplanar,
    random_tree,
)
from repro.solvers.exact import domination_number


class TestValidity:
    def test_zoo_valid(self, small_zoo):
        for g in small_zoo:
            result = algorithm1(g)
            assert is_dominating_set(g, result.solution), g

    def test_random_families_valid(self):
        instances = (
            [random_tree(20, s) for s in range(3)]
            + [random_cactus(3, 5, s) for s in range(3)]
            + [random_outerplanar(12, s) for s in range(3)]
            + [random_ding_augmentation(3, 2, s) for s in range(3)]
        )
        for g in instances:
            result = algorithm1(g)
            assert is_dominating_set(g, result.solution)

    def test_empty_graph(self):
        result = algorithm1(nx.Graph())
        assert result.solution == set()
        assert result.rounds == 0

    def test_single_vertex(self):
        g = nx.Graph()
        g.add_node(0)
        result = algorithm1(g)
        assert result.solution == {0}

    def test_single_edge(self):
        result = algorithm1(nx.path_graph(2))
        assert len(result.solution) == 1

    def test_disconnected_graph(self):
        g = nx.Graph()
        g.add_edges_from([(0, 1), (1, 2)])
        g.add_edges_from([(10, 11), (11, 12)])
        result = algorithm1(g)
        assert is_dominating_set(g, result.solution)


class TestPhases:
    def test_long_cycle_all_in_x(self):
        # every vertex of a long cycle is a 2-local 1-cut
        result = algorithm1(gen.cycle(14), RadiusPolicy.practical())
        assert result.phases["local_1_cuts"] == set(range(14))
        assert result.phases["brute_force"] == set()

    def test_clique_pendants_brute_force_only(self, clique_pendants5):
        # the Section 4 example: no local cuts qualify; brute force
        # finds the single dominator.
        result = algorithm1(clique_pendants5)
        assert result.phases["local_1_cuts"] == set()
        assert result.phases["interesting_2_cuts"] == set()
        assert result.solution == {0}

    def test_ladder_interesting_vertices_taken(self):
        result = algorithm1(gen.ladder(8), RadiusPolicy.practical())
        assert result.phases["interesting_2_cuts"]

    def test_phases_partition_solution(self, small_zoo):
        for g in small_zoo:
            result = algorithm1(g)
            union = (
                result.phases["local_1_cuts"]
                | result.phases["interesting_2_cuts"]
                | result.phases["brute_force"]
            )
            assert union == result.solution

    def test_metadata_fields(self, fan5):
        result = algorithm1(fan5)
        for key in (
            "policy",
            "ratio_bound",
            "mode",
            "residual_components",
            "residual_span",
            "view_radius",
        ):
            assert key in result.metadata


class TestRatio:
    def test_never_exceeds_paper_bound_on_families(self):
        # measured ratio must stay below the proven 50 on every family —
        # in practice far below.
        instances = (
            [random_tree(18, s) for s in range(3)]
            + [random_outerplanar(12, s) for s in range(3)]
            + [gen.ladder(7), gen.fan(8), gen.cycle(12)]
        )
        for g in instances:
            result = algorithm1(g)
            assert len(result.solution) <= 50 * domination_number(g)

    def test_reasonable_on_cycles(self):
        # cycles: all n vertices taken vs opt n/3 -> ratio exactly 3.
        g = gen.cycle(15)
        result = algorithm1(g)
        assert len(result.solution) == 15
        assert domination_number(g) == 5

    def test_optimal_on_fans(self, fan5):
        assert algorithm1(fan5).solution == {0}


class TestPolicies:
    def test_paper_policy_small_graph_degenerates_gracefully(self):
        # Paper radii dwarf a small graph, so local 1-cuts coincide with
        # global cut vertices: on a path every interior vertex is taken.
        g = gen.path(8)
        result = algorithm1(g, t=2)
        assert is_dominating_set(g, result.solution)
        assert result.phases["local_1_cuts"] == {1, 2, 3, 4, 5, 6}
        assert len(result.solution) <= result.metadata["ratio_bound"] * domination_number(g)

    def test_paper_policy_on_2_connected_graph_is_exact(self):
        # With no cut structure at all (a clique of pendant-free
        # 3-connected shape), paper radii reduce to global brute force.
        g = gen.clique_with_pendants(4)
        result = algorithm1(g, t=4)
        assert result.solution == {0}

    def test_policy_and_t_mutually_exclusive(self, path5):
        with pytest.raises(ValueError):
            algorithm1(path5, RadiusPolicy.practical(), t=3)

    def test_unknown_mode(self, path5):
        with pytest.raises(ValueError, match="unknown mode"):
            algorithm1(path5, mode="warp")

    def test_larger_radius_shrinks_x(self):
        g = gen.cycle(14)
        small = algorithm1(g, RadiusPolicy.practical(2, 3))
        large = algorithm1(g, RadiusPolicy.practical(7, 8))
        assert len(large.phases["local_1_cuts"]) <= len(small.phases["local_1_cuts"])


class TestRounds:
    def test_rounds_positive(self, small_zoo):
        for g in small_zoo:
            assert algorithm1(g).rounds > 0

    def test_rounds_breakdown_sums(self, fan5):
        result = algorithm1(fan5)
        assert result.rounds == sum(result.round_breakdown.values())

    def test_rounds_independent_of_n_on_ladders(self):
        rounds = {algorithm1(gen.ladder(n)).rounds for n in (6, 10, 14)}
        assert len(rounds) == 1

    def test_twin_rounds_charged(self, fan5):
        result = algorithm1(fan5)
        assert result.round_breakdown["twin_reduction"] == 2
