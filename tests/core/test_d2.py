"""Tests for Theorem 4.4's D2 algorithm."""

import networkx as nx
import pytest

from repro.analysis.domination import is_dominating_set
from repro.core.d2 import d2_dominating_set, d2_set, gamma
from repro.graphs import generators as gen
from repro.graphs.random_families import random_outerplanar, random_tree
from repro.graphs.twins import remove_true_twins
from repro.solvers.exact import domination_number


class TestGamma:
    def test_leaf_has_gamma_one(self, path5):
        # N[0] = {0,1} is inside N[1].
        assert gamma(path5, 0) == 1

    def test_interior_path_vertex(self, path5):
        assert gamma(path5, 2) == 2

    def test_star_hub(self, star6):
        assert gamma(star6, 0) == 2

    def test_star_leaf(self, star6):
        assert gamma(star6, 1) == 1

    def test_isolated_vertex(self):
        g = nx.Graph()
        g.add_node(0)
        assert gamma(g, 0) == 2  # nobody else can dominate N[v]


class TestD2Set:
    def test_path_interior(self, path5):
        assert d2_set(path5) == {1, 2, 3}

    def test_star(self, star6):
        assert d2_set(star6) == {0}

    def test_fan_apex_only(self, fan5):
        # every path vertex's closed neighborhood is inside the apex's
        assert d2_set(fan5) == {0}

    def test_k2t_all_pages_in_d2(self):
        # K_{2,t} with non-adjacent hubs: every page needs two dominators.
        g = nx.complete_bipartite_graph(2, 5)
        assert d2_set(g) == set(g.nodes)

    def test_cycle_all(self, cycle6):
        assert d2_set(cycle6) == set(cycle6.nodes)


class TestAlgorithm:
    def test_valid_on_zoo(self, small_zoo):
        for g in small_zoo:
            result = d2_dominating_set(g)
            assert is_dominating_set(g, result.solution), g

    def test_valid_on_random_families(self):
        for seed in range(4):
            for g in (random_tree(20, seed), random_outerplanar(12, seed)):
                result = d2_dominating_set(g)
                assert is_dominating_set(g, result.solution)

    def test_rounds_constant(self, small_zoo):
        for g in small_zoo:
            assert d2_dominating_set(g).rounds == 3

    def test_clique_reduces_to_one(self):
        result = d2_dominating_set(nx.complete_graph(6))
        assert len(result.solution) == 1

    def test_outerplanar_five_approx(self):
        # Table 1 row: D2 at t=3 is the 5-approx on outerplanar graphs.
        for seed in range(5):
            g = random_outerplanar(12, seed)
            result = d2_dominating_set(g)
            assert len(result.solution) <= 5 * domination_number(g)

    def test_k2t_bound_on_ladders(self):
        # ladders are K_{2,3}-minor-free: bound is 2*3 - 1 = 5.
        for n in (5, 8, 11):
            g = gen.ladder(n)
            result = d2_dominating_set(g)
            assert len(result.solution) <= 5 * domination_number(g)

    def test_k2t_bound_on_k2t_itself(self):
        for t in (3, 5, 7):
            g = nx.complete_bipartite_graph(2, t)
            result = d2_dominating_set(g)
            # graph is K_{2,t+1}-minor-free: bound 2(t+1) - 1
            assert len(result.solution) <= (2 * (t + 1) - 1) * domination_number(g)

    def test_empty_graph(self):
        assert d2_dominating_set(nx.Graph()).solution == set()

    def test_trees_better_than_three(self):
        # On trees D2 behaves like the support-vertex rule: ratio <= 3.
        for seed in range(5):
            g = random_tree(20, seed)
            result = d2_dominating_set(g)
            assert len(result.solution) <= 3 * domination_number(g)

    def test_lemma_5_19_dominates_after_twin_removal(self, small_zoo):
        # D2 of the twin-free graph dominates the twin-free graph.
        for g in small_zoo:
            reduced, _ = remove_true_twins(g)
            assert is_dominating_set(reduced, d2_set(reduced))
