"""Tests for the Table 1 folklore baselines."""

import networkx as nx

from repro.analysis.domination import is_dominating_set
from repro.core.baselines import (
    degree_two_dominating_set,
    full_gather_exact,
    take_all_vertices,
)
from repro.graphs import generators as gen
from repro.graphs.random_families import random_tree
from repro.solvers.exact import domination_number


class TestDegreeTwo:
    def test_valid_on_trees(self):
        for seed in range(5):
            g = random_tree(18, seed)
            result = degree_two_dominating_set(g)
            assert is_dominating_set(g, result.solution)

    def test_three_approx_on_trees(self):
        for seed in range(6):
            g = random_tree(18, seed)
            result = degree_two_dominating_set(g)
            assert len(result.solution) <= 3 * domination_number(g)

    def test_two_rounds(self, path5):
        assert degree_two_dominating_set(path5).rounds == 2

    def test_path_takes_interior(self, path5):
        assert degree_two_dominating_set(path5).solution == {1, 2, 3}

    def test_single_edge_component(self):
        g = nx.path_graph(2)
        result = degree_two_dominating_set(g)
        assert result.solution == {0}

    def test_valid_on_general_graphs(self, small_zoo):
        for g in small_zoo:
            assert is_dominating_set(g, degree_two_dominating_set(g).solution)


class TestTakeAll:
    def test_zero_rounds(self, star6):
        assert take_all_vertices(star6).rounds == 0

    def test_t_approx_on_stars(self):
        # stars are K_{1,t}-minor-free for t = degree + 1; footnote 4.
        g = gen.star(9)
        result = take_all_vertices(g)
        delta = max(dict(g.degree).values())
        assert len(result.solution) <= (delta + 1) * domination_number(g)


class TestFullGatherExact:
    def test_optimal(self, small_zoo):
        for g in small_zoo:
            result = full_gather_exact(g)
            assert len(result.solution) == domination_number(g)

    def test_rounds_are_diameter_plus_one(self, path5):
        assert full_gather_exact(path5).rounds == 5

    def test_rounds_grow_with_n(self):
        r = [full_gather_exact(gen.path(n)).rounds for n in (5, 10, 20)]
        assert r[0] < r[1] < r[2]
