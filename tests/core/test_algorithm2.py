"""Tests for Algorithm 2 (Theorem 4.3)."""

from repro.analysis.domination import is_dominating_set
from repro.core.algorithm1 import algorithm1
from repro.core.algorithm2 import algorithm2
from repro.core.radii import RadiusPolicy
from repro.graphs import generators as gen
from repro.graphs.asdim import control_function_k2t


class TestAlgorithm2:
    def test_valid_on_zoo(self, small_zoo):
        for g in small_zoo:
            result = algorithm2(g, dimension=1, control=lambda r: r)
            assert is_dominating_set(g, result.solution)

    def test_equals_algorithm1_with_same_radii(self, fan5):
        control = lambda r: r
        policy = RadiusPolicy.from_asdim(1, control)
        a1 = algorithm1(fan5, policy)
        a2 = algorithm2(fan5, dimension=1, control=control)
        assert a1.solution == a2.solution

    def test_paper_control_function_matches_theorem41(self, cycle6):
        t = 3
        control = lambda r: control_function_k2t(r, t)
        a2 = algorithm2(cycle6, dimension=1, control=control)
        a1 = algorithm1(cycle6, t=t)
        assert a1.solution == a2.solution

    def test_metadata(self, fan5):
        result = algorithm2(fan5, dimension=2, control=lambda r: r)
        assert result.name == "algorithm2"
        assert result.metadata["dimension"] == 2
        assert result.metadata["ratio_bound"] == 75

    def test_dimension_zero_class(self, path5):
        # finite classes have dimension 0: ratio bound 25.
        result = algorithm2(path5, dimension=0, control=lambda r: 4 * r)
        assert is_dominating_set(path5, result.solution)
        assert result.metadata["ratio_bound"] == 25
