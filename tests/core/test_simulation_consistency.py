"""The key fidelity test: per-node simulated decisions equal the
centralized computation of Algorithm 1, vertex for vertex."""

import pytest

from repro.analysis.domination import is_dominating_set
from repro.core.algorithm1 import algorithm1, decide_membership, InsufficientViewError
from repro.core.radii import RadiusPolicy
from repro.graphs import generators as gen
from repro.graphs.random_families import (
    random_cactus,
    random_ding_augmentation,
    random_outerplanar,
    random_tree,
)
from repro.local_model.gather import gather_views


CASES = [
    gen.path(9),
    gen.cycle(8),
    gen.cycle(11),
    gen.star(8),
    gen.fan(6),
    gen.ladder(5),
    gen.caterpillar(4, 2),
    gen.maximal_outerplanar(9),
    gen.cactus_chain(2, 5),
    gen.clique_with_pendants(4),
    gen.fan_chain(2, 4),
]


@pytest.mark.parametrize("graph", CASES, ids=lambda g: f"n{g.number_of_nodes()}m{g.number_of_edges()}")
def test_simulate_equals_fast(graph):
    fast = algorithm1(graph, mode="fast")
    simulated = algorithm1(graph, mode="simulate")
    assert simulated.solution == fast.solution
    assert is_dominating_set(graph, simulated.solution)


@pytest.mark.parametrize("seed", range(3))
def test_simulate_equals_fast_random(seed):
    for g in (
        random_tree(14, seed),
        random_cactus(2, 5, seed),
        random_outerplanar(10, seed),
        random_ding_augmentation(3, 1, seed),
    ):
        fast = algorithm1(g, mode="fast")
        simulated = algorithm1(g, mode="simulate")
        assert simulated.solution == fast.solution


def test_insufficient_view_raises():
    # A view too small for the detection radius must fail loudly, not
    # silently decide.
    g = gen.cycle(12)
    policy = RadiusPolicy.practical(2, 3)
    views, _ = gather_views(g, policy.detection_radius - 1)
    with pytest.raises(InsufficientViewError):
        decide_membership(views[0], policy)


def test_decisions_depend_only_on_views():
    # Two vertices of a vertex-transitive graph have isomorphic views
    # and must decide identically.
    g = gen.cycle(10)
    result = algorithm1(g, mode="simulate")
    decisions = {v: (v in result.solution) for v in g.nodes}
    assert len(set(decisions.values())) == 1
