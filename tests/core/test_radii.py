"""Tests for radius policies."""

import pytest

from repro.core.radii import RadiusPolicy


class TestPaperConstants:
    def test_paper_radii_formulas(self):
        # m_3.2 = f(5) + 2 = 43t + 2;  m_3.3 = f(11) + 5 = 73t + 5.
        for t in (2, 3, 5):
            policy = RadiusPolicy.paper(t)
            assert policy.one_cut_radius == 43 * t + 2
            assert policy.two_cut_radius == 73 * t + 5

    def test_paper_ratio_is_fifty(self):
        assert RadiusPolicy.paper(4).ratio_bound == 50

    def test_linear_in_t(self):
        r3, r6 = RadiusPolicy.paper(3), RadiusPolicy.paper(6)
        assert r6.one_cut_radius - 2 == 2 * (r3.one_cut_radius - 2)


class TestAsdimPolicy:
    def test_dimension_changes_ratio(self):
        policy = RadiusPolicy.from_asdim(2, lambda r: 10 * r)
        assert policy.ratio_bound == 25 * 3

    def test_control_function_applied(self):
        policy = RadiusPolicy.from_asdim(1, lambda r: r + 1)
        assert policy.one_cut_radius == 6 + 2
        assert policy.two_cut_radius == 12 + 5


class TestPracticalPolicy:
    def test_defaults(self):
        policy = RadiusPolicy.practical()
        assert policy.one_cut_radius == 2
        assert policy.two_cut_radius == 3
        assert policy.dimension == 1

    def test_detection_radius(self):
        policy = RadiusPolicy.practical(4, 3)
        assert policy.detection_radius == max(4, 6)

    def test_validation(self):
        with pytest.raises(ValueError):
            RadiusPolicy(one_cut_radius=0, two_cut_radius=3)
        with pytest.raises(ValueError):
            RadiusPolicy(one_cut_radius=2, two_cut_radius=1)
        with pytest.raises(ValueError):
            RadiusPolicy(one_cut_radius=2, two_cut_radius=3, dimension=-1)

    def test_labels(self):
        assert "paper" in RadiusPolicy.paper(3).label
        assert "practical" in RadiusPolicy.practical().label
