"""Tests for the global interesting-vertex vocabulary (Section 5.3)."""

import networkx as nx

from repro.core.interesting import (
    almost_interesting_vertices,
    covering_noncrossing_families,
    friends,
    globally_interesting_vertices,
    interesting_cuts,
    is_globally_interesting,
)
from repro.graphs import generators as gen


class TestGlobalInteresting:
    def test_clique_pendants_not_interesting(self, clique_pendants5):
        # the Section 4 motivating example
        assert globally_interesting_vertices(clique_pendants5) == set()

    def test_c6_all_interesting(self, cycle6):
        assert globally_interesting_vertices(cycle6) == set(cycle6.nodes)

    def test_ladder_rungs_interesting(self):
        g = gen.ladder(6)
        interesting = globally_interesting_vertices(g)
        assert {4, 5, 6, 7} <= interesting

    def test_star_nothing_interesting(self, star6):
        assert globally_interesting_vertices(star6) == set()

    def test_is_globally_interesting_specific_cut(self, cycle6):
        assert is_globally_interesting(cycle6, 0, frozenset({0, 3}))

    def test_wrong_cut_shape_rejected(self, cycle6):
        assert not is_globally_interesting(cycle6, 0, frozenset({1, 3}))
        assert not is_globally_interesting(cycle6, 0, frozenset({0}))


class TestAlmostInteresting:
    def test_superset_of_interesting(self, small_zoo):
        for g in small_zoo:
            interesting = globally_interesting_vertices(g)
            almost = almost_interesting_vertices(g)
            assert interesting <= almost | interesting

    def test_clique_pendants_also_not_almost(self, clique_pendants5):
        # every cut component is adjacent to the partner hub
        assert almost_interesting_vertices(clique_pendants5) == set()


class TestFriends:
    def test_c6_friends_are_opposites(self, cycle6):
        assert friends(cycle6, 0) == {3}

    def test_no_friends_without_cuts(self, star6):
        assert friends(star6, 0) == set()


class TestInterestingCuts:
    def test_c6_has_three(self, cycle6):
        cuts = interesting_cuts(cycle6)
        assert len(cuts) == 3

    def test_covering_families_cover_all_interesting(self, small_zoo):
        for g in small_zoo:
            interesting = globally_interesting_vertices(g)
            families = covering_noncrossing_families(g)
            covered = set()
            for family in families:
                for cut in family:
                    covered |= set(cut)
            assert interesting <= covered
