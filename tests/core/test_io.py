"""Tests for JSON persistence of graphs, results, and corpora."""

import networkx as nx
import pytest

from repro.core.algorithm1 import algorithm1
from repro.graphs import generators as gen
from repro.io import (
    graph_from_dict,
    graph_to_dict,
    load_graph,
    load_rows,
    read_corpus,
    result_from_dict,
    result_to_dict,
    save_graph,
    save_rows,
    write_corpus,
)


class TestGraphRoundTrip:
    def test_dict_round_trip(self, fan5):
        restored = graph_from_dict(graph_to_dict(fan5))
        assert set(restored.nodes) == set(fan5.nodes)
        assert set(map(frozenset, restored.edges)) == set(map(frozenset, fan5.edges))

    def test_file_round_trip(self, tmp_path, ladder5):
        path = tmp_path / "g.json"
        save_graph(ladder5, path, meta={"family": "ladder"})
        restored = load_graph(path)
        assert restored.number_of_edges() == ladder5.number_of_edges()

    def test_stable_serialisation(self, cycle6):
        assert graph_to_dict(cycle6) == graph_to_dict(cycle6)

    def test_isolated_nodes_preserved(self):
        g = nx.Graph()
        g.add_nodes_from([3, 1])
        g.add_edge(1, 3)
        g.add_node(9)
        restored = graph_from_dict(graph_to_dict(g))
        assert 9 in restored.nodes


class TestResultRoundTrip:
    def test_algorithm_result(self, fan5):
        result = algorithm1(fan5)
        restored = result_from_dict(result_to_dict(result))
        assert restored.solution == result.solution
        assert restored.rounds == result.rounds
        assert restored.phases.keys() == result.phases.keys()

    def test_unjsonable_metadata_dropped(self, fan5):
        result = algorithm1(fan5)
        result.metadata["weird"] = object()
        data = result_to_dict(result)
        assert "weird" not in data["metadata"]


class TestRows:
    def test_rows_round_trip(self, tmp_path):
        rows = [{"t": 3, "ratio": 2.5}, {"t": 4, "ratio": 2.0}]
        path = tmp_path / "rows.json"
        save_rows(rows, path)
        assert load_rows(path) == rows


class TestCorpus:
    def test_write_and_read(self, tmp_path):
        written = write_corpus(tmp_path / "corpus", ["path", "fan"], [8, 12], seeds=(0,))
        assert len(written) == 4
        loaded = read_corpus(tmp_path / "corpus")
        assert len(loaded) == 4
        metas = {(m["family"], m["size"]) for m, _ in loaded}
        assert ("fan", 12) in metas

    def test_instances_usable(self, tmp_path):
        write_corpus(tmp_path / "c", ["ladder"], [10])
        from repro.analysis.domination import is_dominating_set

        for _meta, graph in read_corpus(tmp_path / "c"):
            result = algorithm1(graph)
            assert is_dominating_set(graph, result.solution)
