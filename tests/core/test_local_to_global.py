"""Tests for the Proposition 3.1 lifting framework."""

import pytest

from repro.core.algorithm1 import algorithm1
from repro.core.d2 import d2_dominating_set
from repro.core.local_to_global import (
    lifted_bound,
    local_guarantee_holds,
    probe_sets_from_balls,
    verify_lifting,
)
from repro.graphs import generators as gen
from repro.graphs.asdim import bfs_layered_cover, tree_cover
from repro.graphs.random_families import random_tree


class TestLiftedBound:
    def test_formula(self):
        assert lifted_bound(5, 1) == 10
        assert lifted_bound(3, 2) == 9

    def test_validation(self):
        with pytest.raises(ValueError):
            lifted_bound(0, 1)
        with pytest.raises(ValueError):
            lifted_bound(2, -1)


class TestLocalGuarantee:
    def test_d2_satisfies_local_guarantee_on_trees(self):
        # Corollary 5.20's shape: |D2 ∩ S| <= (2t-1) MDS(N[S]); trees
        # are K_{2,3}-free so alpha = 5 with k = 1.
        for seed in range(3):
            g = random_tree(18, seed)
            solution = d2_dominating_set(g).solution
            probes = probe_sets_from_balls(g, radius=2)
            assert local_guarantee_holds(g, solution, probes, alpha=5, k=1)

    def test_probe_sets_cover_spread(self, cycle6):
        probes = probe_sets_from_balls(cycle6, radius=1, count=3)
        assert len(probes) == 3
        assert all(probes)

    def test_violated_guarantee_detected(self, star6):
        # taking everything in a star blows any alpha < n bound for the
        # probe {hub-ball} whose local optimum is 1.
        solution = set(star6.nodes)
        probes = [set(star6.nodes)]
        assert not local_guarantee_holds(star6, solution, probes, alpha=2, k=1)


class TestVerifyLifting:
    def test_d2_lifting_on_trees(self):
        for seed in range(3):
            g = random_tree(20, seed)
            solution = d2_dominating_set(g).solution
            cover = tree_cover(g, r=5)  # 2k+3 = 5 components needed
            report = verify_lifting(g, solution, cover, alpha=5, r=5, k=1)
            assert report.per_part_ok
            assert report.conclusion_holds
            assert report.lifted_ratio_bound == 10

    def test_algorithm1_lifting_on_families(self):
        for g in (gen.fan(10), gen.ladder(6), gen.cycle(12)):
            solution = algorithm1(g).solution
            cover = bfs_layered_cover(g, r=5)
            report = verify_lifting(g, solution, cover, alpha=25, r=5, k=1)
            assert report.per_part_ok
            assert report.conclusion_holds

    def test_report_counts_components(self, path5):
        cover = [set(path5.nodes)]
        report = verify_lifting(path5, {1, 3}, cover, alpha=3, r=5, k=1)
        assert report.parts_checked == 1
        assert report.cover_parts == 1
        assert report.dimension == 0
