"""Hypothesis strategies for graphs used by the property-based tests."""

from __future__ import annotations

import networkx as nx
from hypothesis import strategies as st


@st.composite
def random_trees(draw, min_nodes: int = 1, max_nodes: int = 24) -> nx.Graph:
    """Uniform-ish random trees via random parent pointers."""
    n = draw(st.integers(min_nodes, max_nodes))
    graph = nx.Graph()
    graph.add_node(0)
    for v in range(1, n):
        parent = draw(st.integers(0, v - 1))
        graph.add_edge(parent, v)
    return graph


@st.composite
def connected_graphs(draw, min_nodes: int = 2, max_nodes: int = 14) -> nx.Graph:
    """Connected graphs: a random tree plus random extra edges."""
    graph = draw(random_trees(min_nodes, max_nodes))
    n = graph.number_of_nodes()
    extra = draw(st.integers(0, max(0, n)))
    for _ in range(extra):
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1))
        if u != v:
            graph.add_edge(u, v)
    return graph


@st.composite
def sparse_connected_graphs(draw, min_nodes: int = 3, max_nodes: int = 16) -> nx.Graph:
    """Connected graphs with at most n/3 extra edges (cut-rich)."""
    graph = draw(random_trees(min_nodes, max_nodes))
    n = graph.number_of_nodes()
    extra = draw(st.integers(0, max(1, n // 3)))
    for _ in range(extra):
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1))
        if u != v:
            graph.add_edge(u, v)
    return graph
