"""Property tests for the adversarial layer's two core contracts.

1. *Transparency*: empty churn/Byzantine plans must be invisible — the
   report serializes byte-identically to a plain run's.
2. *Cache safety*: random churn under ``REPRO_KERNEL_GUARD=1`` never
   trips :class:`StaleKernelError` — every topology change goes through
   the invalidation contract before any kernel consumer runs.

Plus the batch determinism contract extended to adversarial specs:
``simulate_many(workers=4)`` stays byte-identical to serial.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (
    ByzantinePlan,
    ChurnPlan,
    SimulationSpec,
    simulate,
    simulate_many,
)
from repro.graphs.kernel import set_kernel_guard
from repro.io import sim_report_to_dict

from tests.property.strategies import connected_graphs

ADVERSARIAL_KEYS = (
    "delayed_messages",
    "churn_events",
    "churn_lost_messages",
    "suspicion",
    "failed",
    "timed_out",
)


def _dump(report) -> str:
    return json.dumps(sim_report_to_dict(report), sort_keys=True)


@settings(max_examples=25, deadline=None)
@given(connected_graphs(min_nodes=2, max_nodes=10), st.integers(0, 3))
def test_empty_plans_are_byte_transparent(graph, seed):
    plain = SimulationSpec(algorithm="d2", seed=seed)
    decayed = SimulationSpec(
        algorithm="d2",
        seed=seed,
        churn=ChurnPlan(),
        byzantine=ByzantinePlan(),
    )
    left = simulate(graph, plain)
    right = simulate(graph, decayed)
    assert _dump(left) == _dump(right)
    payload = sim_report_to_dict(left)
    for key in ADVERSARIAL_KEYS:
        assert key not in payload


@settings(max_examples=25, deadline=None)
@given(
    connected_graphs(min_nodes=3, max_nodes=10),
    st.integers(0, 7),
    st.floats(0.1, 0.9),
    st.integers(1, 6),
)
def test_random_churn_never_serves_a_stale_kernel(graph, seed, rate, until):
    spec = SimulationSpec(
        algorithm="d2",
        seed=seed,
        max_rounds=64,
        churn=ChurnPlan(rate=round(rate, 2), until=until),
    )
    previous = set_kernel_guard(True)
    try:
        # The assertion is the absence of StaleKernelError: under the
        # guard every post-churn kernel hit re-verifies its fingerprint.
        report = simulate(graph, spec)
    finally:
        set_kernel_guard(previous)
    assert report.rounds >= 1
    # Rerunning materializes the same churn and the same report.
    assert _dump(simulate(graph, spec)) == _dump(report)


@settings(max_examples=15, deadline=None)
@given(connected_graphs(min_nodes=4, max_nodes=10), st.integers(0, 3))
def test_byzantine_runs_reproduce(graph, seed):
    nodes = sorted(graph.nodes, key=repr)
    spec = SimulationSpec(
        algorithm="d2",
        seed=seed,
        max_rounds=64,
        byzantine=ByzantinePlan(((nodes[0], "lie"), (nodes[-1], "silent"))),
    )
    assert _dump(simulate(graph, spec)) == _dump(simulate(graph, spec))


def test_adversarial_batch_is_byte_identical_across_workers():
    from repro.graphs import generators as gen

    graphs = [gen.cycle(9), gen.path(7), gen.star(8)]
    specs = [
        SimulationSpec(
            algorithm="d2",
            seed=2,
            max_rounds=64,
            churn=ChurnPlan(rate=0.4, until=4),
        ),
        SimulationSpec(
            algorithm="greedy",
            seed=2,
            max_rounds=64,
            byzantine=ByzantinePlan(((0, "babble"),)),
        ),
        SimulationSpec(
            algorithm="degree_two",
            model="adversarial",
            delay=2,
            seed=2,
            max_rounds=64,
        ),
    ]
    serial = [_dump(r) for r in simulate_many(graphs, specs, workers=1)]
    pooled = [_dump(r) for r in simulate_many(graphs, specs, workers=4)]
    assert serial == pooled
