"""Property tests for the sweep subsystem's resume invariant.

However a run is interrupted — any subset of shards checkpointed, any
subset of those corrupted afterwards — finishing the remainder and
merging never duplicates and never drops a report, and reproduces the
serial batch byte-for-byte modulo ``wall_time``.  Shard execution here
is in-process (the dispatcher's pool mechanics have their own tests);
the property under test is the manifest/store algebra that resume
relies on.
"""

from __future__ import annotations

import copy
import json

from hypothesis import given, settings, strategies as st

from repro.api import RunConfig, solve_many
from repro.io import run_report_to_dict
from repro.sweep import CheckpointStore, plan_sweep
from repro.sweep.worker import execute_shard, shard_task

from tests.sweep.conftest import make_instances

ALGORITHMS = ["greedy", "degree_two"]


def _canonical(report_dicts):
    stripped = copy.deepcopy(report_dicts)
    for report in stripped:
        report.pop("wall_time", None)
    return json.dumps(stripped, sort_keys=True)


def _execute(manifest, shard):
    """One shard, in-process (same code path the pool workers run)."""
    _, reports = execute_shard(
        shard_task(manifest.to_dict(), shard.to_dict(), attempt=0, fault_dict=None)
    )
    return reports


@settings(max_examples=25, deadline=None)
@given(
    instance_count=st.integers(min_value=1, max_value=6),
    shard_size=st.integers(min_value=1, max_value=4),
    data=st.data(),
)
def test_resume_from_any_interruption_never_dups_or_drops(
    tmp_path_factory, instance_count, shard_size, data
):
    instances = make_instances(instance_count, size=8)
    serial = _canonical(
        [run_report_to_dict(r) for r in solve_many(instances, ALGORITHMS, RunConfig())]
    )
    manifest = plan_sweep(instances, algorithms=ALGORITHMS, shard_size=shard_size)
    store = CheckpointStore(tmp_path_factory.mktemp("sweep"))

    # Interrupt anywhere: an arbitrary subset of shards got checkpointed...
    survived = data.draw(
        st.sets(st.sampled_from(manifest.shard_ids)), label="checkpointed"
    )
    for shard in manifest.shards:
        if shard.id in survived:
            store.write_checkpoint(shard.id, shard.digest, _execute(manifest, shard))
    # ...and an arbitrary subset of those was damaged on disk afterwards.
    damaged = data.draw(
        st.sets(st.sampled_from(sorted(survived))) if survived else st.just(set()),
        label="damaged",
    )
    for shard_id in damaged:
        path = store.checkpoint_path(shard_id)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])

    # Resume's first step: only intact, digest-verified checkpoints count.
    completed = store.completed_ids(manifest)
    assert completed == survived - damaged

    # Resume's second step: execute exactly the incomplete shards.
    for shard in manifest.shards:
        if shard.id not in completed:
            store.write_checkpoint(shard.id, shard.digest, _execute(manifest, shard))

    merged = store.merge_report_dicts(manifest)
    # No dup, no drop: exactly one report per instance x algorithm, in
    # serial order, byte-identical to the uninterrupted batch.
    assert len(merged) == instance_count * len(ALGORITHMS)
    assert _canonical(merged) == serial


@settings(max_examples=20, deadline=None)
@given(
    instance_count=st.integers(min_value=1, max_value=5),
    shard_size=st.integers(min_value=1, max_value=3),
)
def test_shard_execution_is_idempotent(tmp_path_factory, instance_count, shard_size):
    instances = make_instances(instance_count, size=8)
    manifest = plan_sweep(instances, algorithms=ALGORITHMS, shard_size=shard_size)
    for shard in manifest.shards:
        first = _canonical(_execute(manifest, shard))
        again = _canonical(_execute(manifest, shard))
        assert first == again, "re-running a shard must reproduce its reports"
