"""Property-based tests: minor detection consistency."""

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.minors import (
    edge_density_certificate,
    largest_k2t_minor,
    largest_k2t_minor_singleton_hubs,
    max_connectors,
)

from tests.property.strategies import connected_graphs, sparse_connected_graphs


@given(connected_graphs(max_nodes=10))
@settings(max_examples=25, deadline=None)
def test_singleton_hub_is_lower_bound(graph):
    singleton = largest_k2t_minor_singleton_hubs(graph)
    exact = largest_k2t_minor(graph, node_limit=10)
    assert singleton <= exact


@given(sparse_connected_graphs(max_nodes=10))
@settings(max_examples=25, deadline=None)
def test_minor_monotone_under_edge_deletion(graph):
    """Deleting an edge cannot create a larger minor."""
    base = largest_k2t_minor_singleton_hubs(graph)
    edges = sorted(graph.edges)
    if not edges:
        return
    smaller = graph.copy()
    smaller.remove_edge(*edges[0])
    assert largest_k2t_minor_singleton_hubs(smaller) <= base


@given(connected_graphs(max_nodes=10))
@settings(max_examples=25, deadline=None)
def test_density_certificate_sound(graph):
    """The density certificate may only fire when a minor truly exists."""
    for t in (2, 3):
        if edge_density_certificate(graph, t):
            assert largest_k2t_minor(graph, node_limit=10) >= t


@given(connected_graphs(max_nodes=10), st.integers(0, 9), st.integers(0, 9))
@settings(max_examples=25, deadline=None)
def test_connectors_bounded_by_degree(graph, a, b):
    n = graph.number_of_nodes()
    a, b = a % n, b % n
    if a == b:
        return
    flow = max_connectors(graph, {a}, {b})
    assert flow <= min(graph.degree(a), graph.degree(b))
