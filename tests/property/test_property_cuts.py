"""Property-based tests: cut and twin invariants."""

import networkx as nx
from hypothesis import given, settings

from repro.graphs.cuts import (
    cut_vertices,
    cut_vertices_by_definition,
    is_minimal_cut,
    minimal_two_cuts,
)
from repro.graphs.local_cuts import local_one_cuts, local_two_cuts
from repro.graphs.twins import has_true_twins, remove_true_twins
from repro.solvers.exact import domination_number

from tests.property.strategies import connected_graphs, sparse_connected_graphs

COMMON = {"max_examples": 40, "deadline": None}


@given(connected_graphs())
@settings(**COMMON)
def test_articulation_matches_definition(graph):
    assert cut_vertices(graph) == cut_vertices_by_definition(graph)


@given(sparse_connected_graphs())
@settings(**COMMON)
def test_minimal_two_cuts_are_minimal(graph):
    for cut in minimal_two_cuts(graph):
        assert is_minimal_cut(graph, cut)


@given(sparse_connected_graphs(max_nodes=12))
@settings(max_examples=30, deadline=None)
def test_global_cut_vertices_are_local_cuts_at_large_radius(graph):
    """A global 1-cut is an r-local 1-cut once r covers the graph."""
    r = graph.number_of_nodes()
    assert cut_vertices(graph) <= local_one_cuts(graph, r)


@given(sparse_connected_graphs(max_nodes=12))
@settings(max_examples=30, deadline=None)
def test_local_cuts_at_full_radius_are_global(graph):
    """At radius >= n, local and global 1-cuts coincide."""
    r = graph.number_of_nodes()
    assert local_one_cuts(graph, r) == cut_vertices(graph)


@given(sparse_connected_graphs(max_nodes=10))
@settings(max_examples=20, deadline=None)
def test_local_two_cuts_disconnect_their_arena(graph):
    from repro.graphs.cuts import is_cut
    from repro.graphs.local_cuts import local_cut_subgraph

    for cut in local_two_cuts(graph, 2, minimal=False):
        arena = local_cut_subgraph(graph, set(cut), 2)
        assert is_cut(arena, set(cut))


@given(connected_graphs())
@settings(**COMMON)
def test_twin_removal_idempotent(graph):
    reduced, _ = remove_true_twins(graph)
    assert not has_true_twins(reduced)
    again, mapping = remove_true_twins(reduced)
    assert again.number_of_nodes() == reduced.number_of_nodes()


@given(connected_graphs())
@settings(max_examples=25, deadline=None)
def test_twin_removal_preserves_domination_number(graph):
    reduced, _ = remove_true_twins(graph)
    assert domination_number(reduced) == domination_number(graph)


@given(connected_graphs())
@settings(**COMMON)
def test_twin_mapping_covers_all_vertices(graph):
    reduced, mapping = remove_true_twins(graph)
    assert set(mapping) == set(graph.nodes)
    assert set(mapping.values()) == set(reduced.nodes)
