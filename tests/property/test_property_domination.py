"""Property-based tests: domination invariants on random graphs."""

from hypothesis import given, settings

from repro.analysis.domination import is_dominating_set
from repro.core.algorithm1 import algorithm1
from repro.core.baselines import degree_two_dominating_set
from repro.core.d2 import d2_dominating_set
from repro.solvers.branch_and_bound import bnb_minimum_dominating_set
from repro.solvers.exact import minimum_dominating_set
from repro.solvers.greedy import greedy_dominating_set
from repro.solvers.tree_dp import tree_minimum_dominating_set

from tests.property.strategies import connected_graphs, random_trees

COMMON = {"max_examples": 40, "deadline": None}


@given(connected_graphs())
@settings(**COMMON)
def test_exact_solution_dominates(graph):
    assert is_dominating_set(graph, minimum_dominating_set(graph))


@given(connected_graphs())
@settings(**COMMON)
def test_bnb_matches_milp(graph):
    assert len(bnb_minimum_dominating_set(graph)) == len(minimum_dominating_set(graph))


@given(random_trees(min_nodes=2))
@settings(**COMMON)
def test_tree_dp_matches_milp(graph):
    dp = tree_minimum_dominating_set(graph)
    assert is_dominating_set(graph, dp)
    assert len(dp) == len(minimum_dominating_set(graph))


@given(connected_graphs())
@settings(**COMMON)
def test_greedy_dominates_and_is_not_better_than_opt(graph):
    greedy = greedy_dominating_set(graph)
    assert is_dominating_set(graph, greedy)
    assert len(greedy) >= len(minimum_dominating_set(graph))


@given(connected_graphs())
@settings(max_examples=25, deadline=None)
def test_algorithm1_always_dominates(graph):
    result = algorithm1(graph)
    assert is_dominating_set(graph, result.solution)


@given(connected_graphs())
@settings(**COMMON)
def test_d2_always_dominates(graph):
    result = d2_dominating_set(graph)
    assert is_dominating_set(graph, result.solution)


@given(connected_graphs())
@settings(**COMMON)
def test_degree_two_rule_dominates_connected_graphs(graph):
    result = degree_two_dominating_set(graph)
    assert is_dominating_set(graph, result.solution)


@given(random_trees(min_nodes=3))
@settings(**COMMON)
def test_degree_two_rule_three_approx_on_trees(graph):
    result = degree_two_dominating_set(graph)
    assert len(result.solution) <= 3 * len(minimum_dominating_set(graph))
