"""Property tests: the packed kernel backend is indistinguishable from int.

Hypothesis drives random graphs (plus family/tuple-labelled/degenerate
shapes) through both backends and pins every shared primitive and every
rewired pipeline to identical output.  This is the contract that lets
``kernel_for`` switch backends by node count without any caller
noticing.
"""

from __future__ import annotations

import networkx as nx
from hypothesis import given, settings, strategies as st

from repro.analysis.domination import is_b_dominating_set, is_dominating_set
from repro.core.d2 import d2_dominating_set, d2_set
from repro.graphs.kernel import GraphKernel, wire_digest
from repro.graphs.packed import PackedGraphKernel, PackedMask
from repro.graphs.twins import true_twin_classes
from repro.solvers.bounds import greedy_cover_mask, two_packing_lower_bound
from repro.solvers.greedy import greedy_dominating_set

from tests.property.strategies import connected_graphs


def int_mask(pmask: PackedMask) -> int:
    return sum(1 << int(i) for i in pmask.indices())


@st.composite
def arbitrary_graphs(draw) -> nx.Graph:
    """Graphs across the shapes the backends must agree on.

    Mixes hypothesis-built sparse/dense random graphs with the
    degenerate cases a node-count switch must survive: the zero-node
    graph, edgeless graphs (every vertex isolated), tuple-labelled
    grids, and graphs with trailing isolated vertices.
    """
    kind = draw(st.sampled_from(["random", "grid", "empty", "isolated", "family"]))
    if kind == "random":
        return draw(connected_graphs(min_nodes=2, max_nodes=24))
    if kind == "grid":
        rows = draw(st.integers(1, 4))
        cols = draw(st.integers(1, 4))
        return nx.grid_2d_graph(rows, cols)
    if kind == "empty":
        graph = nx.Graph()
        graph.add_nodes_from(range(draw(st.integers(0, 6))))
        return graph
    if kind == "isolated":
        graph = draw(connected_graphs(min_nodes=2, max_nodes=12))
        n = graph.number_of_nodes()
        graph.add_nodes_from(range(n + 1, n + 1 + draw(st.integers(1, 4))))
        return graph
    side = draw(st.integers(2, 5))
    return nx.star_graph(side) if draw(st.booleans()) else nx.cycle_graph(side + 1)


@settings(max_examples=80, deadline=None)
@given(arbitrary_graphs(), st.data())
def test_primitives_pin_across_backends(graph, data):
    ik = GraphKernel(graph)
    pk = PackedGraphKernel.from_graph(graph)
    assert tuple(pk.labels) == tuple(ik.labels)
    subset = data.draw(st.sets(st.sampled_from(sorted(graph.nodes, key=repr)))
                       if graph.number_of_nodes() else st.just(set()))
    imask = ik.bits_of(subset)
    pmask = pk.bits_of(subset)
    assert int_mask(pmask) == imask
    assert pk.labels_of(pmask) == ik.labels_of(imask)
    assert int_mask(pk.closed_neighborhood_bits(pmask)) == (
        ik.closed_neighborhood_bits(imask)
    )
    assert int_mask(pk.undominated(pmask)) == ik.undominated(imask)
    assert pk.dominates(pmask) == ik.dominates(imask)
    assert pk.span_counts(pmask).tolist() == ik.span_counts(imask)
    radius = data.draw(st.integers(0, 3))
    assert int_mask(pk.ball_bits_from_mask(pmask, radius)) == (
        ik.ball_bits_from_mask(imask, radius)
    )
    assert [int_mask(c) for c in pk.components_of_mask(pmask)] == list(
        ik.components_of_mask(imask)
    )
    assert wire_digest(pk.to_wire()) == wire_digest(ik.to_wire())


@settings(max_examples=60, deadline=None)
@given(arbitrary_graphs(), st.data())
def test_pipelines_pin_across_backends(graph, data):
    ik = GraphKernel(graph)
    pk = PackedGraphKernel.from_graph(graph)
    # greedy cover over random target/candidate masks
    nodes = sorted(graph.nodes, key=repr)
    if nodes:
        candidates = set(
            data.draw(st.sets(st.sampled_from(nodes), min_size=1))
        )
        # targets limited to what the candidates can reach, so the
        # cover exists on both backends
        reachable = ik.labels_of(ik.union_closed_bits(candidates))
        targets = {v for v in data.draw(st.sets(st.sampled_from(nodes)))
                   if v in reachable}
        want = greedy_cover_mask(ik, ik.bits_of(targets), ik.bits_of(candidates))
        got = greedy_cover_mask(pk, pk.bits_of(targets), pk.bits_of(candidates))
        assert int_mask(got) == want
    assert _on("packed", greedy_dominating_set, graph) == _on(
        "int", greedy_dominating_set, graph
    )
    assert _on("packed", d2_set, graph) == _on("int", d2_set, graph)
    got_d2 = _on("packed", d2_dominating_set, graph)
    want_d2 = _on("int", d2_dominating_set, graph)
    assert got_d2.solution == want_d2.solution
    assert _on("packed", two_packing_lower_bound, graph) == _on(
        "int", two_packing_lower_bound, graph
    )
    assert _on("packed", true_twin_classes, graph) == _on(
        "int", true_twin_classes, graph
    )
    solution = want_d2.solution
    assert _on("packed", is_dominating_set, graph, solution) == _on(
        "int", is_dominating_set, graph, solution
    )
    some = set(nodes[:3])
    assert _on("packed", is_b_dominating_set, graph, solution, some) == _on(
        "int", is_b_dominating_set, graph, solution, some
    )


def _on(backend: str, fn, graph: nx.Graph, *args):
    """Run ``fn(graph, *args)`` with the kernel backend forced globally.

    Forcing the *global* selection (not just pre-seeding the cache)
    matters: ``kernel_for`` rebuilds a cached kernel whose backend does
    not match the current selection, so a pre-seeded kernel alone would
    silently revert to the auto choice mid-call.
    """
    from repro.graphs.kernel import invalidate_kernel, kernel_for, set_kernel_backend

    previous = set_kernel_backend(backend)
    try:
        invalidate_kernel(graph)
        result = fn(graph, *args)
        assert kernel_for(graph).backend == backend
        return result
    finally:
        set_kernel_backend(previous[0], threshold=previous[1])
        invalidate_kernel(graph)


@settings(max_examples=40, deadline=None)
@given(arbitrary_graphs())
def test_mask_roundtrips(graph):
    pk = PackedGraphKernel.from_graph(graph)
    full = pk.full_mask
    assert PackedMask.from_bool(full.to_bool()) == full
    assert PackedMask.from_indices(pk.n, full.indices()) == full
    assert (~full) == PackedMask.zeros(pk.n)
    assert full.bit_count() == pk.n
