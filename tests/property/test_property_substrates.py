"""Property-based tests for the newer substrates."""

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.domination import is_dominating_set
from repro.core.d2 import d2_dominating_set
from repro.core.distributed_greedy import distributed_greedy_dominating_set
from repro.graphs.operations import attach_pendants, graph_power, subdivide
from repro.graphs.treewidth import is_valid_decomposition, min_fill_decomposition, width
from repro.graphs.util import ball
from repro.local_model.protocols import D2Protocol, run_protocol_dominating_set

from tests.property.strategies import connected_graphs, random_trees

COMMON = {"max_examples": 30, "deadline": None}


@given(connected_graphs(max_nodes=12))
@settings(**COMMON)
def test_min_fill_always_valid(graph):
    assert is_valid_decomposition(graph, min_fill_decomposition(graph))


@given(random_trees(min_nodes=2, max_nodes=20))
@settings(**COMMON)
def test_trees_always_width_one(graph):
    assert width(min_fill_decomposition(graph)) == 1


@given(connected_graphs(max_nodes=12))
@settings(**COMMON)
def test_subdivision_preserves_node_growth(graph):
    once = subdivide(graph)
    assert once.number_of_nodes() == graph.number_of_nodes() + graph.number_of_edges()
    assert once.number_of_edges() == 2 * graph.number_of_edges()
    assert nx.is_connected(once)


@given(connected_graphs(max_nodes=10))
@settings(**COMMON)
def test_pendants_never_reduce_domination(graph):
    from repro.solvers.exact import domination_number

    bushy = attach_pendants(graph, 1)
    assert domination_number(bushy) >= domination_number(graph)


@given(connected_graphs(max_nodes=10), st.integers(1, 3))
@settings(max_examples=25, deadline=None)
def test_graph_power_edges_match_balls(graph, k):
    powered = graph_power(graph, k)
    for v in graph.nodes:
        expected = ball(graph, v, k) - {v}
        assert set(powered.neighbors(v)) == expected


@given(connected_graphs(max_nodes=10))
@settings(max_examples=20, deadline=None)
def test_d2_protocol_matches_centralized(graph):
    chosen, _ = run_protocol_dominating_set(graph, D2Protocol)
    assert chosen == d2_dominating_set(graph).solution


@given(connected_graphs(max_nodes=10))
@settings(max_examples=20, deadline=None)
def test_distributed_greedy_always_dominates(graph):
    result = distributed_greedy_dominating_set(graph)
    assert is_dominating_set(graph, result.solution)
