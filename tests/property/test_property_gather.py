"""Property-based tests: view gathering exactness."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.util import ball
from repro.local_model.gather import gather_views
from repro.local_model.identifiers import shuffled_ids

from tests.property.strategies import connected_graphs


@given(connected_graphs(max_nodes=12), st.integers(0, 3))
@settings(max_examples=30, deadline=None)
def test_views_equal_true_balls(graph, radius):
    views, _ = gather_views(graph, radius)
    for v in graph.nodes:
        true_ball = graph.subgraph(ball(graph, v, radius))
        known = views[v].known_ball(radius)
        assert set(known.nodes) == set(true_ball.nodes)
        assert set(map(frozenset, known.edges)) == set(map(frozenset, true_ball.edges))


@given(connected_graphs(max_nodes=12), st.integers(0, 100))
@settings(max_examples=25, deadline=None)
def test_gather_identifier_equivariance(graph, seed):
    """Relabeling identifiers relabels views, nothing else."""
    ids = shuffled_ids(graph, seed=seed)
    views_plain, _ = gather_views(graph, 2)
    views_shuffled, _ = gather_views(graph, 2, ids)
    for v in graph.nodes:
        a, b = views_plain[v], views_shuffled[ids[v]]
        mapped_nodes = {ids[u] for u in a.graph.nodes}
        assert mapped_nodes == set(b.graph.nodes)
        mapped_edges = {frozenset((ids[x], ids[y])) for x, y in a.graph.edges}
        assert mapped_edges == set(map(frozenset, b.graph.edges))


@given(connected_graphs(max_nodes=12))
@settings(max_examples=25, deadline=None)
def test_distances_exact_within_radius(graph):
    radius = 2
    views, _ = gather_views(graph, radius)
    for v in graph.nodes:
        view = views[v]
        true_ball_dists = {
            u: d for u, d in view.dist.items() if d <= radius
        }
        for u, d in true_ball_dists.items():
            assert u in ball(graph, v, d)
            assert u not in ball(graph, v, d - 1)
