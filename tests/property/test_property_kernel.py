"""Property tests: kernel-backed hot paths agree with set-walking BFS.

Complements ``tests/graphs/test_kernel.py``'s fixed differential cases
with hypothesis-generated graphs and vertex subsets.
"""

from __future__ import annotations

from collections import deque

from hypothesis import given, settings, strategies as st

from repro.analysis.domination import is_dominating_set, undominated_vertices
from repro.core.distributed_greedy import distributed_greedy_dominating_set
from repro.graphs.kernel import kernel_for
from repro.graphs.util import ball, closed_neighborhood_of_set

from tests.property.strategies import connected_graphs


def bfs_ball(graph, center, radius):
    seen = {center}
    frontier = deque([(center, 0)])
    while frontier:
        vertex, dist = frontier.popleft()
        if dist == radius:
            continue
        for neighbor in graph.neighbors(vertex):
            if neighbor not in seen:
                seen.add(neighbor)
                frontier.append((neighbor, dist + 1))
    return seen


@settings(max_examples=60, deadline=None)
@given(connected_graphs(), st.integers(0, 4), st.data())
def test_ball_matches_bfs(graph, radius, data):
    center = data.draw(st.sampled_from(sorted(graph.nodes)))
    assert ball(graph, center, radius) == bfs_ball(graph, center, radius)


@settings(max_examples=60, deadline=None)
@given(connected_graphs(), st.data())
def test_neighborhood_and_domination_match_sets(graph, data):
    nodes = sorted(graph.nodes)
    subset = data.draw(st.sets(st.sampled_from(nodes)))
    expected = set(subset)
    for v in subset:
        expected.update(graph.neighbors(v))
    assert closed_neighborhood_of_set(graph, subset) == expected
    assert undominated_vertices(graph, subset) == set(nodes) - expected
    assert is_dominating_set(graph, subset) == (set(nodes) <= expected)


@settings(max_examples=40, deadline=None)
@given(connected_graphs(), st.data())
def test_span_counts_match_sets(graph, data):
    kernel = kernel_for(graph)
    undominated = data.draw(st.sets(st.sampled_from(sorted(graph.nodes))))
    spans = kernel.span_counts(kernel.bits_of(undominated))
    for v in graph.nodes:
        closed = set(graph.neighbors(v)) | {v}
        assert spans[kernel.index(v)] == len(closed & undominated)


@settings(max_examples=25, deadline=None)
@given(connected_graphs(max_nodes=10))
def test_distributed_greedy_output_is_dominating(graph):
    result = distributed_greedy_dominating_set(graph)
    assert is_dominating_set(graph, result.solution)
    assert result.rounds == 4 * result.metadata["phases"]
