"""Property tests for the exact/batch layer: the bitset branch-and-bound
always matches the MILP optimum, and neither the OPT cache nor the CSR
wire format can change a measured number."""

from hypothesis import given, settings

from repro.analysis.domination import is_dominating_set
from repro.graphs.kernel import GraphKernel, graph_from_wire
from repro.solvers.branch_and_bound import bnb_minimum_dominating_set
from repro.solvers.exact import minimum_dominating_set
from repro.solvers.opt_cache import optimum_size, optimum_solution

from tests.property.strategies import connected_graphs, random_trees


@settings(max_examples=40, deadline=None)
@given(connected_graphs(min_nodes=2, max_nodes=12))
def test_bnb_matches_milp_optimum(graph):
    bitset = bnb_minimum_dominating_set(graph)
    assert len(bitset) == len(minimum_dominating_set(graph))
    assert is_dominating_set(graph, bitset)


@settings(max_examples=40, deadline=None)
@given(random_trees(min_nodes=1, max_nodes=20))
def test_bnb_matches_milp_on_trees(graph):
    assert len(bnb_minimum_dominating_set(graph)) == len(minimum_dominating_set(graph))


@settings(max_examples=40, deadline=None)
@given(connected_graphs(min_nodes=2, max_nodes=12))
def test_cache_and_backends_agree(graph):
    cached_milp = optimum_size(graph, "mds", "milp")
    cached_bnb = optimum_size(graph, "mds", "bnb")
    uncached = len(optimum_solution(graph, "mds", "milp", use_cache=False))
    assert cached_milp == cached_bnb == uncached
    # Second lookups serve the same sizes from the cache.
    assert optimum_size(graph, "mds", "milp") == cached_milp
    assert optimum_size(graph, "mds", "bnb") == cached_bnb


@settings(max_examples=40, deadline=None)
@given(connected_graphs(min_nodes=2, max_nodes=14))
def test_wire_roundtrip_is_lossless(graph):
    kernel = GraphKernel(graph)
    back = graph_from_wire(kernel.to_wire())
    assert set(back.nodes) == set(graph.nodes)
    assert {frozenset(e) for e in back.edges} == {frozenset(e) for e in graph.edges}
    rebuilt = GraphKernel(back)
    assert rebuilt.labels == kernel.labels
    assert rebuilt.closed_bits == kernel.closed_bits
    assert optimum_size(back) == optimum_size(graph)
