"""Property-based pinning: bitset local-cut pipeline vs legacy semantics.

Reuses the verbatim legacy implementations from
``tests.graphs.test_local_cuts_legacy`` over randomized cut-rich graphs,
so hypothesis explores shapes the hand-picked differential zoo misses.
"""

from hypothesis import given, settings

from repro.core.algorithm1 import _phase_sets
from repro.core.radii import RadiusPolicy
from repro.graphs.cuts import components_after_removal, minimal_two_cuts
from repro.graphs.local_cuts import interesting_vertices, local_one_cuts, local_two_cuts
from repro.graphs.twins import remove_true_twins
from repro.graphs.util import weak_diameter

from tests.graphs.test_local_cuts_legacy import (
    legacy_components_after_removal,
    legacy_interesting_vertices,
    legacy_local_one_cuts,
    legacy_local_two_cuts,
    legacy_minimal_two_cuts,
    legacy_phase_sets,
    legacy_remove_true_twins,
    legacy_weak_diameter,
)
from tests.property.strategies import connected_graphs, sparse_connected_graphs

COMMON = {"max_examples": 30, "deadline": None}


@given(sparse_connected_graphs())
@settings(**COMMON)
def test_local_cut_enumerations_match_legacy(graph):
    assert local_one_cuts(graph, 2) == legacy_local_one_cuts(graph, 2)
    assert local_two_cuts(graph, 2) == legacy_local_two_cuts(graph, 2)
    assert local_two_cuts(graph, 2, minimal=False) == (
        legacy_local_two_cuts(graph, 2, minimal=False)
    )


@given(sparse_connected_graphs(max_nodes=12))
@settings(**COMMON)
def test_interesting_vertices_match_legacy(graph):
    assert interesting_vertices(graph, 2) == legacy_interesting_vertices(graph, 2)


@given(sparse_connected_graphs())
@settings(**COMMON)
def test_global_cut_enumerations_match_legacy(graph):
    assert minimal_two_cuts(graph) == legacy_minimal_two_cuts(graph)
    cut = set(list(graph.nodes)[:2])
    assert components_after_removal(graph, cut) == (
        legacy_components_after_removal(graph, cut)
    )


@given(connected_graphs())
@settings(**COMMON)
def test_twin_removal_matches_legacy(graph):
    reduced, mapping = remove_true_twins(graph)
    legacy_reduced, legacy_mapping = legacy_remove_true_twins(graph)
    assert set(reduced.nodes) == set(legacy_reduced.nodes)
    assert {frozenset(e) for e in reduced.edges} == (
        {frozenset(e) for e in legacy_reduced.edges}
    )
    assert mapping == legacy_mapping


@given(connected_graphs())
@settings(**COMMON)
def test_weak_diameter_matches_legacy(graph):
    vertices = list(graph.nodes)[::2]
    assert weak_diameter(graph, vertices) == legacy_weak_diameter(graph, vertices)


@given(sparse_connected_graphs(max_nodes=12))
@settings(max_examples=20, deadline=None)
def test_phase_sets_match_legacy(graph):
    policy = RadiusPolicy.practical()
    reduced, _ = remove_true_twins(graph)
    assert _phase_sets(reduced, policy) == legacy_phase_sets(reduced, policy)
