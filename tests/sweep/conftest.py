"""Shared fixtures for the sweep subsystem tests.

The canonical baseline everywhere is the *serial* ``solve_many`` run:
the sweep's crash-safety contract is that any interrupted-and-resumed
execution merges to reports byte-identical to that baseline, modulo the
sanctioned ``wall_time`` fields.
"""

from __future__ import annotations

import copy
import json

import pytest

from repro.api import RunConfig, solve_many
from repro.graphs.families import get_family
from repro.io import run_report_to_dict

ALGORITHMS = ["greedy", "degree_two"]


def make_instances(count: int = 4, size: int = 10):
    family = get_family("tree")
    return [
        ({"family": "tree", "size": size, "seed": seed}, family.make(size, seed))
        for seed in range(count)
    ]


def canonical(report_dicts: list[dict]) -> str:
    """Reports as comparable JSON, the ``wall_time`` slots stripped."""
    stripped = copy.deepcopy(report_dicts)
    for report in stripped:
        report.pop("wall_time", None)
    return json.dumps(stripped, sort_keys=True)


@pytest.fixture()
def instances():
    return make_instances()


@pytest.fixture()
def algorithms():
    return list(ALGORITHMS)


@pytest.fixture(scope="session")
def serial_canonical() -> str:
    """The uninterrupted serial baseline for the default fixtures."""
    reports = solve_many(make_instances(), ALGORITHMS, RunConfig())
    return canonical([run_report_to_dict(r) for r in reports])


@pytest.fixture()
def canon():
    return canonical
