"""Shard planning and the durable manifest: shapes, digests, round-trips."""

from __future__ import annotations

import json

import pytest

from repro.api import RunConfig, SimulationSpec
from repro.sweep import (
    MANIFEST_NAME,
    MANIFEST_SCHEMA,
    ManifestError,
    load_manifest,
    plan_sweep,
)

from tests.sweep.conftest import make_instances


def test_plan_partitions_instance_major():
    manifest = plan_sweep(
        make_instances(5), algorithms=["greedy", "degree_two"], shard_size=2
    )
    assert manifest.kind == "solve"
    assert manifest.shard_ids == ["s00000", "s00001", "s00002"]
    assert [len(s.instances) for s in manifest.shards] == [2, 2, 1]
    # Every shard carries the whole algorithm list (instance-major).
    assert manifest.algorithms == ("greedy", "degree_two")
    # The planner preserves instance order across the shard boundary.
    seeds = [
        ref.meta["seed"] for shard in manifest.shards for ref in shard.instances
    ]
    assert seeds == [0, 1, 2, 3, 4]


def test_plan_is_deterministic():
    first = plan_sweep(make_instances(3), algorithms=["greedy"], shard_size=2)
    second = plan_sweep(make_instances(3), algorithms=["greedy"], shard_size=2)
    assert [s.digest for s in first.shards] == [s.digest for s in second.shards]
    assert first.to_dict() == second.to_dict()


def test_shard_digest_covers_the_workload():
    base = plan_sweep(make_instances(2), algorithms=["greedy"], shard_size=2)
    other_algorithms = plan_sweep(
        make_instances(2), algorithms=["degree_two"], shard_size=2
    )
    other_config = plan_sweep(
        make_instances(2),
        algorithms=["greedy"],
        config=RunConfig(validate="none"),
        shard_size=2,
    )
    other_instances = plan_sweep(
        make_instances(2, size=12), algorithms=["greedy"], shard_size=2
    )
    digests = {
        plan.shards[0].digest
        for plan in (base, other_algorithms, other_config, other_instances)
    }
    assert len(digests) == 4, "any workload change must change the digest"


def test_plan_rejects_bad_arguments():
    with pytest.raises(ValueError, match="either 'algorithms' or 'specs'"):
        plan_sweep(make_instances(1))
    with pytest.raises(ValueError, match="either 'algorithms' or 'specs'"):
        plan_sweep(make_instances(1), algorithms=["greedy"], specs=["greedy"])
    with pytest.raises(ValueError, match="shard_size"):
        plan_sweep(make_instances(1), algorithms=["greedy"], shard_size=0)
    with pytest.raises(ValueError, match="zero instances"):
        plan_sweep([], algorithms=["greedy"])
    with pytest.raises(ValueError, match="no algorithms"):
        plan_sweep(make_instances(1), algorithms=[])


def test_write_load_roundtrip(tmp_path):
    manifest = plan_sweep(
        make_instances(3),
        algorithms="greedy",  # bare string promotes to a one-element list
        config=RunConfig(validate="ratio"),
        shard_size=2,
        seed=7,
    )
    manifest.write(tmp_path)
    loaded = load_manifest(tmp_path)
    assert loaded.kind == "solve"
    assert loaded.seed == 7
    assert loaded.algorithms == ("greedy",)
    assert loaded.config.validate == "ratio"
    assert loaded.shard_ids == manifest.shard_ids
    assert [s.digest for s in loaded.shards] == [s.digest for s in manifest.shards]
    # Embedded wires materialise back into equivalent graphs.
    meta, graph = loaded.shards[0].instances[0].materialise()
    assert meta["seed"] == 0
    assert graph.number_of_nodes() == 10


def test_simulate_plan_roundtrip(tmp_path):
    manifest = plan_sweep(
        make_instances(2),
        specs=[SimulationSpec(algorithm="degree_two")],
        shard_size=1,
    )
    assert manifest.kind == "simulate"
    manifest.write(tmp_path)
    loaded = load_manifest(tmp_path)
    assert loaded.kind == "simulate"
    assert [spec.algorithm for spec in loaded.specs] == ["degree_two"]


def test_load_rejects_missing_torn_and_future_manifests(tmp_path):
    with pytest.raises(ManifestError, match="no sweep manifest"):
        load_manifest(tmp_path)
    path = tmp_path / MANIFEST_NAME
    path.write_text('{"schema": 1, "kind": "solve"')
    with pytest.raises(ManifestError, match="unreadable"):
        load_manifest(tmp_path)
    path.write_text(json.dumps({"schema": MANIFEST_SCHEMA + 1, "kind": "solve"}))
    with pytest.raises(ManifestError, match="schema"):
        load_manifest(tmp_path)
    path.write_text(json.dumps({"schema": MANIFEST_SCHEMA, "kind": "mystery"}))
    with pytest.raises(ManifestError, match="unknown kind"):
        load_manifest(tmp_path)
