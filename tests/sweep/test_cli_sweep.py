"""`repro sweep run/resume/status`: exit codes and the chaos env gate."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.sweep import FAULT_ENV_VAR


def _run_args(tmp_path, *extra):
    return [
        "sweep", "run",
        "--dir", str(tmp_path / "run"),
        "--families", "tree",
        "--sizes", "10,12",
        "--seeds", "0",
        "--algorithms", "greedy,degree_two",
        "--shard-size", "2",
        "--workers", "2",
        *extra,
    ]


def test_run_status_resume_roundtrip(tmp_path, capsys, monkeypatch):
    monkeypatch.delenv(FAULT_ENV_VAR, raising=False)
    assert main(_run_args(tmp_path)) == 0
    out = capsys.readouterr().out
    assert "1/1 shards complete" in out
    assert (tmp_path / "run" / "reports.json").exists()

    assert main(["sweep", "status", "--dir", str(tmp_path / "run"), "--json"]) == 0
    status = json.loads(capsys.readouterr().out)
    assert status["merged"] is True
    assert status["pending"] == []

    assert main(["sweep", "resume", "--dir", str(tmp_path / "run"), "--json"]) == 0
    result = json.loads(capsys.readouterr().out)
    assert result["complete"] is True
    assert result["executed"] == []


def test_run_refuses_existing_dir_and_unknown_algorithm(tmp_path, capsys, monkeypatch):
    monkeypatch.delenv(FAULT_ENV_VAR, raising=False)
    assert main(_run_args(tmp_path)) == 0
    capsys.readouterr()
    assert main(_run_args(tmp_path)) == 2
    assert "resume" in capsys.readouterr().err

    other = tmp_path / "other"
    assert (
        main(
            [
                "sweep", "run", "--dir", str(other),
                "--families", "tree", "--sizes", "10",
                "--algorithms", "not_an_algorithm",
            ]
        )
        == 2
    )
    assert "unknown algorithm" in capsys.readouterr().err


def test_status_on_a_missing_run_dir_errors(tmp_path, capsys):
    assert main(["sweep", "status", "--dir", str(tmp_path / "nope")]) == 2
    assert "no sweep manifest" in capsys.readouterr().err


def test_chaos_env_drives_injection_and_resume_recovers(
    tmp_path, capsys, monkeypatch
):
    # Driver death is exit 3 (distinct from quarantine's 1), and the
    # run directory it leaves behind is resumable to completion.
    monkeypatch.setenv(FAULT_ENV_VAR, "die=1.0")
    assert main(_run_args(tmp_path, "--shard-size", "1", "--workers", "1")) == 3
    assert "injected driver death" in capsys.readouterr().err

    monkeypatch.delenv(FAULT_ENV_VAR)
    assert main(["sweep", "resume", "--dir", str(tmp_path / "run")]) == 0
    assert "merged reports" in capsys.readouterr().out


def test_quarantine_exit_code(tmp_path, capsys, monkeypatch):
    # A fault that never stops firing quarantines its shards: exit 1.
    monkeypatch.setenv(FAULT_ENV_VAR, "raise=1.0,attempts=99")
    assert (
        main(_run_args(tmp_path, "--max-attempts", "2"))
        == 1
    )
    out = capsys.readouterr().out
    assert "quarantined" in out
