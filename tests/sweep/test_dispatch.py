"""The dispatcher end-to-end: clean runs, every failure mode, resume.

These tests run real process pools and real injected faults (SIGKILLed
workers, corrupted checkpoints, simulated driver death).  The invariant
checked everywhere: however a run is interrupted, resumed work merges to
reports byte-identical to the uninterrupted serial baseline, modulo
``wall_time``.
"""

from __future__ import annotations

import pytest

from repro.api import RunConfig, SimulationSpec, simulate_many
from repro.io import sim_report_to_dict
from repro.sweep import (
    CheckpointStore,
    FaultInjector,
    ShardDispatcher,
    SimulatedProcessDeath,
    load_manifest,
    parse_fault_spec,
    plan_sweep,
    resume_sweep,
    run_sweep,
    sweep_status,
)

from tests.sweep.conftest import ALGORITHMS, make_instances

NO_SLEEP = {"sleep": lambda seconds: None}


def _run(tmp_path, instances, *, faults=None, **options):
    injector = FaultInjector(parse_fault_spec(faults)) if faults else None
    options.setdefault("workers", 2)
    options.setdefault("shard_size", 2)
    return run_sweep(
        instances,
        run_dir=tmp_path / "run",
        algorithms=ALGORITHMS,
        config=RunConfig(),
        injector=injector,
        **NO_SLEEP,
        **options,
    )


def test_clean_run_matches_serial(tmp_path, instances, serial_canonical, canon):
    result = _run(tmp_path, instances)
    assert result.complete
    assert result.retries == 0
    assert result.quarantined == []
    assert result.reports_path is not None
    assert canon(result.report_dicts()) == serial_canonical
    # Every shard completed on its first attempt.
    assert set(result.attempts.values()) == {1}


def test_run_refuses_an_existing_run_dir(tmp_path, instances):
    _run(tmp_path, instances)
    with pytest.raises(ValueError, match="resume"):
        _run(tmp_path, instances)


def test_injected_task_failure_retries(
    tmp_path, instances, serial_canonical, canon
):
    result = _run(tmp_path, instances, faults="raise=1.0,attempts=1")
    assert result.complete
    assert result.retries > 0
    assert any("InjectedFault" in msg for msgs in result.errors.values() for msg in msgs)
    assert canon(result.report_dicts()) == serial_canonical


def test_sigkilled_worker_rebuilds_pool_and_retries(
    tmp_path, instances, serial_canonical, canon
):
    result = _run(tmp_path, instances, faults="kill=1.0,attempts=1")
    assert result.complete
    assert result.retries > 0
    assert any(
        "pool broken" in msg for msgs in result.errors.values() for msg in msgs
    )
    assert canon(result.report_dicts()) == serial_canonical


def test_hung_shard_times_out_and_retries(
    tmp_path, instances, serial_canonical, canon
):
    result = _run(
        tmp_path,
        instances,
        faults="hang=1.0,attempts=1,hang_s=1.5",
        shard_timeout=0.3,
    )
    assert result.complete
    assert result.retries > 0
    assert any("timed out" in msg for msgs in result.errors.values() for msg in msgs)
    assert canon(result.report_dicts()) == serial_canonical


def test_poison_shard_is_quarantined_without_aborting(tmp_path, instances):
    # attempts=99: the fault never stops firing, so the shard exhausts
    # its budget; the other shard must still complete.
    result = _run(
        tmp_path, instances, faults="raise=1.0,attempts=99", max_attempts=2
    )
    assert not result.complete
    assert result.quarantined == ["s00000", "s00001"]
    store = CheckpointStore(tmp_path / "run")
    for shard_id in result.quarantined:
        record = store.quarantined()[shard_id]
        assert record["attempts"] == 2
        assert len(record["errors"]) == 2
    # Resume without the fault gives quarantined shards fresh attempts.
    resumed = resume_sweep(tmp_path / "run", workers=2, **NO_SLEEP)
    assert resumed.complete
    assert store.quarantined() == {}


def test_corrupted_checkpoints_fail_completion_then_resume(
    tmp_path, instances, serial_canonical, canon
):
    result = _run(tmp_path, instances, faults="corrupt=1.0,attempts=1")
    # The shards executed, but their checkpoints were damaged after the
    # rename: completion is re-proved from disk, so the run is incomplete.
    assert not result.complete
    assert result.reports_path is None
    resumed = resume_sweep(tmp_path / "run", workers=2, **NO_SLEEP)
    assert resumed.complete
    assert canon(resumed.report_dicts()) == serial_canonical


def test_truncated_checkpoints_fail_completion_then_resume(tmp_path, instances):
    result = _run(tmp_path, instances, faults="truncate=1.0,attempts=1")
    assert not result.complete
    resumed = resume_sweep(tmp_path / "run", workers=2, **NO_SLEEP)
    assert resumed.complete


def test_driver_death_resumes_without_recomputing(
    tmp_path, instances, serial_canonical, canon
):
    with pytest.raises(SimulatedProcessDeath):
        _run(tmp_path, instances, faults="die=1.0", workers=1)
    run_dir = tmp_path / "run"
    manifest = load_manifest(run_dir)
    survived = CheckpointStore(run_dir).completed_ids(manifest)
    assert len(survived) == 1, "died right after the first checkpoint"
    resumed = resume_sweep(run_dir, workers=2, **NO_SLEEP)
    assert resumed.complete
    # Only the missing shard re-executed; the survivor was served from disk.
    assert sorted(resumed.executed) == sorted(
        shard.id for shard in manifest.shards if shard.id not in survived
    )
    assert canon(resumed.report_dicts()) == serial_canonical


def test_resume_of_a_complete_run_is_a_no_op(tmp_path, instances):
    _run(tmp_path, instances)
    resumed = resume_sweep(tmp_path / "run", workers=2, **NO_SLEEP)
    assert resumed.complete
    assert resumed.executed == []
    assert resumed.retries == 0


def test_simulate_sweep_matches_simulate_many(tmp_path, canon):
    instances = make_instances(3)
    specs = [SimulationSpec(algorithm="degree_two")]
    serial = canon(
        [sim_report_to_dict(r) for r in simulate_many(instances, specs)]
    )
    result = run_sweep(
        instances,
        run_dir=tmp_path / "run",
        specs=specs,
        shard_size=2,
        workers=2,
        **NO_SLEEP,
    )
    assert result.complete
    assert result.kind == "simulate"
    assert canon(result.report_dicts()) == serial


def test_sweep_status_reports_progress(tmp_path, instances):
    with pytest.raises(SimulatedProcessDeath):
        _run(
            tmp_path,
            instances,
            faults="die=1.0",
            workers=1,
        )
    status = sweep_status(tmp_path / "run")
    assert status["kind"] == "solve"
    assert status["shards"] == 2
    assert status["instances"] == 4
    assert len(status["completed"]) == 1
    assert len(status["pending"]) == 1
    assert status["merged"] is False
    resume_sweep(tmp_path / "run", workers=2, **NO_SLEEP)
    status = sweep_status(tmp_path / "run")
    assert status["pending"] == []
    assert status["merged"] is True


def test_duplicate_wire_digests_keep_their_own_meta(tmp_path):
    # Fan graphs ignore the seed, so these two instances share a wire
    # digest.  The worker may deduplicate the graph bytes, but each
    # report must carry its own instance's provenance (regression: the
    # shared-graph cache once returned the first instance's meta).
    from repro.graphs.families import get_family

    fan = get_family("fan")
    instances = [
        ({"family": "fan", "size": 10, "seed": seed}, fan.make(10, seed))
        for seed in (0, 1)
    ]
    result = _run(tmp_path, instances, shard_size=2)
    assert result.complete
    seeds = sorted(
        r["instance"]["seed"] for r in result.report_dicts() if r["algorithm"] == "greedy"
    )
    assert seeds == [0, 1]


def test_backoff_is_seeded_and_exponential(tmp_path, instances):
    manifest = plan_sweep(instances, algorithms=ALGORITHMS, seed=5)
    store = CheckpointStore(tmp_path)
    dispatcher = ShardDispatcher(manifest, store, **NO_SLEEP)
    again = ShardDispatcher(manifest, store, **NO_SLEEP)
    delays = [dispatcher.backoff_delay("s00000", attempt) for attempt in range(3)]
    assert delays == [again.backoff_delay("s00000", attempt) for attempt in range(3)]
    # Exponential envelope with jitter in [0.5x, 1x] of base * 2^attempt.
    for attempt, delay in enumerate(delays):
        ceiling = dispatcher.backoff_base * (2**attempt)
        assert ceiling / 2 <= delay <= ceiling
    assert delays[2] > delays[0]
