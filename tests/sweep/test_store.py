"""Checkpoint store: atomic persistence, proof-of-completion, merge."""

from __future__ import annotations

import json

import pytest

from repro.sweep import CheckpointCorruptError, CheckpointStore, plan_sweep

from tests.sweep.conftest import make_instances


@pytest.fixture()
def manifest():
    return plan_sweep(make_instances(3), algorithms=["greedy"], shard_size=1)


@pytest.fixture()
def store(tmp_path):
    return CheckpointStore(tmp_path)


def _fill(store, manifest):
    for index, shard in enumerate(manifest.shards):
        store.write_checkpoint(shard.id, shard.digest, [{"report": index}])


def test_checkpoint_roundtrip(store, manifest):
    shard = manifest.shards[0]
    store.write_checkpoint(shard.id, shard.digest, [{"report": 1}])
    assert store.read_checkpoint(shard.id, shard.digest) == [{"report": 1}]
    assert store.completed_ids(manifest) == {shard.id}


def test_checkpoint_must_prove_completion(store, manifest):
    shard = manifest.shards[0]
    # Missing file.
    assert store.read_checkpoint(shard.id, shard.digest) is None
    # Digest mismatch: a checkpoint from a different plan does not count.
    store.write_checkpoint(shard.id, "0" * 64, [{"report": 1}])
    assert store.read_checkpoint(shard.id, shard.digest) is None
    # Torn JSON.
    store.write_checkpoint(shard.id, shard.digest, [{"report": 1}])
    path = store.checkpoint_path(shard.id)
    path.write_text(path.read_text()[: len(path.read_text()) // 2])
    assert store.read_checkpoint(shard.id, shard.digest) is None
    # Wrong schema.
    data = {
        "schema": 999,
        "shard": shard.id,
        "spec_digest": shard.digest,
        "reports": [],
    }
    path.write_text(json.dumps(data))
    assert store.read_checkpoint(shard.id, shard.digest) is None
    assert store.completed_ids(manifest) == set()


def test_rewrite_overwrites_atomically(store, manifest):
    shard = manifest.shards[0]
    store.write_checkpoint(shard.id, shard.digest, [{"attempt": 1}])
    store.write_checkpoint(shard.id, shard.digest, [{"attempt": 2}])
    assert store.read_checkpoint(shard.id, shard.digest) == [{"attempt": 2}]
    # No temp-file litter from the atomic writes.
    litter = [p.name for p in store.checkpoint_dir.iterdir() if p.suffix == ".tmp"]
    assert litter == []


def test_merge_preserves_shard_order(store, manifest):
    _fill(store, manifest)
    merged = store.merge_report_dicts(manifest)
    assert merged == [{"report": 0}, {"report": 1}, {"report": 2}]
    path = store.write_merged(manifest)
    assert json.loads(path.read_text()) == merged


def test_merge_names_the_offending_shard(store, manifest):
    _fill(store, manifest)
    missing = manifest.shards[1]
    store.checkpoint_path(missing.id).unlink()
    with pytest.raises(CheckpointCorruptError, match=f"{missing.id} is missing"):
        store.merge_report_dicts(manifest)
    store.write_checkpoint(missing.id, missing.digest, [{"report": 1}])
    corrupt = manifest.shards[2]
    store.checkpoint_path(corrupt.id).write_text("{garbage")
    with pytest.raises(
        CheckpointCorruptError, match=f"{corrupt.id} is corrupt or stale"
    ):
        store.merge_report_dicts(manifest)


def test_quarantine_records(store):
    record = {"shard": "s00001", "attempts": 3, "errors": ["boom"]}
    store.write_failure("s00001", record)
    assert store.quarantined() == {"s00001": record}
    store.clear_failure("s00001")
    assert store.quarantined() == {}
    store.clear_failure("s00001")  # idempotent on a missing record
    # An unreadable record still marks the shard as quarantined.
    store.failure_dir.mkdir(parents=True, exist_ok=True)
    (store.failure_dir / "s00002.json").write_text("{torn")
    assert store.quarantined()["s00002"]["error"] == "unreadable record"
