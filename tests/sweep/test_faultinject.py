"""The seeded fault harness: grammar, determinism, injection sites."""

from __future__ import annotations

import json

import pytest

from repro.sweep import (
    FAULT_ENV_VAR,
    FaultInjector,
    FaultSpec,
    InjectedFault,
    SimulatedProcessDeath,
    injector_from_env,
    parse_fault_spec,
)


def test_parse_grammar():
    spec = parse_fault_spec("kill=1.0,corrupt=0.5,seed=7,attempts=2,hang_s=1.5")
    assert spec.kill == 1.0
    assert spec.corrupt == 0.5
    assert spec.seed == 7
    assert spec.attempts == 2
    assert spec.hang_s == 1.5
    # "raise" is a keyword, so the field is raise_ but the knob is raise.
    assert parse_fault_spec("raise=0.25").raise_ == 0.25
    assert parse_fault_spec("raise=0.25").probability("raise") == 0.25
    assert parse_fault_spec(None) is None
    assert parse_fault_spec("") is None


def test_parse_rejects_unknown_and_malformed_knobs():
    with pytest.raises(ValueError, match="unknown fault knob"):
        parse_fault_spec("explode=1.0")
    with pytest.raises(ValueError, match="key=value"):
        parse_fault_spec("kill")


def test_spec_dict_roundtrip():
    spec = parse_fault_spec("kill=0.5,raise=0.25,seed=3")
    assert FaultSpec.from_dict(spec.to_dict()) == spec


def test_env_gating(monkeypatch):
    monkeypatch.delenv(FAULT_ENV_VAR, raising=False)
    assert injector_from_env().active is False
    monkeypatch.setenv(FAULT_ENV_VAR, "die=1.0,seed=9")
    injector = injector_from_env()
    assert injector.active is True
    assert injector.spec.die == 1.0
    assert injector.spec.seed == 9


def test_decisions_are_seeded_and_attempt_gated():
    first = FaultInjector(parse_fault_spec("kill=0.5,seed=11,attempts=1"))
    second = FaultInjector(parse_fault_spec("kill=0.5,seed=11,attempts=1"))
    keys = [f"s{i:05d}" for i in range(50)]
    decisions = [first.should("kill", key, 0) for key in keys]
    # Same spec => same decisions, in this process or any other.
    assert decisions == [second.should("kill", key, 0) for key in keys]
    # Probability 0.5 over 50 shards actually fires sometimes, not always.
    assert any(decisions) and not all(decisions)
    # attempts=1 means retries (attempt >= 1) never fault: chaos runs end.
    assert not any(first.should("kill", key, 1) for key in keys)
    # A different seed decides differently somewhere.
    reseeded = FaultInjector(parse_fault_spec("kill=0.5,seed=12,attempts=1"))
    assert decisions != [reseeded.should("kill", key, 0) for key in keys]


def test_inactive_injector_is_a_no_op(tmp_path):
    injector = FaultInjector(None)
    assert injector.active is False
    path = tmp_path / "checkpoint.json"
    path.write_text("{}")
    injector.maybe_kill("s00000", 0)
    injector.maybe_raise("s00000", 0)
    injector.maybe_hang("s00000", 0)
    injector.maybe_die(1)
    assert injector.maybe_damage_checkpoint(path, "s00000", 0) is None
    assert path.read_text() == "{}"


def test_maybe_raise_and_maybe_die():
    injector = FaultInjector(parse_fault_spec("raise=1.0,die=1.0"))
    with pytest.raises(InjectedFault, match="s00003"):
        injector.maybe_raise("s00003", 0)
    with pytest.raises(SimulatedProcessDeath, match="after 2 checkpointed"):
        injector.maybe_die(2)


def test_checkpoint_damage_defeats_json(tmp_path):
    payload = json.dumps({"schema": 1, "reports": [[1, 2, 3]] * 10})
    corrupt_path = tmp_path / "corrupt.json"
    corrupt_path.write_text(payload)
    corrupter = FaultInjector(parse_fault_spec("corrupt=1.0"))
    assert corrupter.maybe_damage_checkpoint(corrupt_path, "s00000", 0) == "corrupt"
    with pytest.raises(json.JSONDecodeError):
        json.loads(corrupt_path.read_bytes())

    truncate_path = tmp_path / "truncate.json"
    truncate_path.write_text(payload)
    truncator = FaultInjector(parse_fault_spec("truncate=1.0"))
    assert (
        truncator.maybe_damage_checkpoint(truncate_path, "s00000", 0) == "truncate"
    )
    assert len(truncate_path.read_bytes()) < len(payload)
    with pytest.raises(json.JSONDecodeError):
        json.loads(truncate_path.read_bytes())
