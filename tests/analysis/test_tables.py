"""Tests for table formatting and summary stats."""

from repro.analysis.stats import summarize
from repro.analysis.tables import format_table


class TestFormatTable:
    def test_basic_alignment(self):
        text = format_table(["name", "x"], [["a", 1], ["bb", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")

    def test_float_formatting(self):
        text = format_table(["v"], [[1.23456]])
        assert "1.23" in text

    def test_numeric_right_alignment(self):
        text = format_table(["n"], [[1], [100]])
        lines = text.splitlines()
        assert lines[2].endswith("  1") or lines[2].strip() == "1"

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text


class TestSummarize:
    def test_basic(self):
        s = summarize([1, 2, 3])
        assert s.count == 3
        assert abs(s.mean - 2.0) < 1e-9
        assert s.maximum == 3
        assert s.minimum == 1

    def test_empty(self):
        s = summarize([])
        assert s.count == 0
        assert s.mean == 0.0

    def test_stddev(self):
        s = summarize([2, 2, 2])
        assert s.stddev == 0.0

    def test_str_rendering(self):
        assert "mean=" in str(summarize([1.0, 2.0]))
