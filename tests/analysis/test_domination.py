"""Tests for domination validity checkers."""

import networkx as nx

from repro.analysis.domination import (
    is_b_dominating_set,
    is_dominating_set,
    undominated_vertices,
)
from repro.graphs import generators as gen


class TestIsDominatingSet:
    def test_full_vertex_set(self, cycle6):
        assert is_dominating_set(cycle6, cycle6.nodes)

    def test_empty_set_fails_nonempty_graph(self, cycle6):
        assert not is_dominating_set(cycle6, set())

    def test_empty_graph_trivially_dominated(self):
        assert is_dominating_set(nx.Graph(), set())

    def test_star_hub(self, star6):
        assert is_dominating_set(star6, {0})
        assert not is_dominating_set(star6, {1})

    def test_cycle_spacing(self):
        g = gen.cycle(9)
        assert is_dominating_set(g, {0, 3, 6})
        assert not is_dominating_set(g, {0, 3})


class TestUndominated:
    def test_reports_exact_set(self, path5):
        assert undominated_vertices(path5, {0}) == {2, 3, 4}

    def test_empty_candidate(self, path5):
        assert undominated_vertices(path5, set()) == set(path5.nodes)


class TestBDomination:
    def test_subset_targets(self, path5):
        assert is_b_dominating_set(path5, {1}, [0, 1, 2])
        assert not is_b_dominating_set(path5, {1}, [0, 4])

    def test_empty_targets_always_ok(self, path5):
        assert is_b_dominating_set(path5, set(), [])
