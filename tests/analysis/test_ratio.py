"""Tests for ratio measurement."""

import networkx as nx
import pytest

from repro.analysis.ratio import RatioReport, measure_ratio, measure_vc_ratio
from repro.graphs import generators as gen


class TestRatioReport:
    def test_simple_ratio(self):
        report = RatioReport(algorithm_size=6, optimum_size=2, valid=True)
        assert report.ratio == 3.0

    def test_zero_optimum_zero_algorithm(self):
        report = RatioReport(algorithm_size=0, optimum_size=0, valid=True)
        assert report.ratio == 1.0

    def test_zero_optimum_nonzero_algorithm(self):
        report = RatioReport(algorithm_size=3, optimum_size=0, valid=True)
        assert report.ratio == float("inf")


class TestMeasure:
    def test_optimal_solution_ratio_one(self, star6):
        report = measure_ratio(star6, {0})
        assert report.ratio == 1.0
        assert report.valid

    def test_invalid_solution_flagged(self, star6):
        report = measure_ratio(star6, {1})
        assert not report.valid

    def test_precomputed_optimum_reused(self, cycle6):
        report = measure_ratio(cycle6, set(cycle6.nodes), optimum={0, 3})
        assert report.ratio == 3.0

    def test_vc_measure(self, cycle6):
        report = measure_vc_ratio(cycle6, set(cycle6.nodes))
        assert report.valid
        assert report.ratio == 2.0

    def test_vc_invalid_flagged(self, cycle6):
        report = measure_vc_ratio(cycle6, {0})
        assert not report.valid
