"""Tests for the MVC variants of the counting lemmas."""

from repro.analysis.lemmas import vc_one_cut_report, vc_two_cut_report
from repro.graphs import generators as gen
from repro.graphs.random_families import random_cactus, random_outerplanar


class TestVcTwoCuts:
    def test_budget_on_ladders(self):
        for n in (6, 9, 12):
            report = vc_two_cut_report(gen.ladder(n), r=3)
            assert report.within_budget, (n, report)

    def test_budget_on_outerplanar(self):
        for seed in range(3):
            report = vc_two_cut_report(random_outerplanar(12, seed), r=3)
            assert report.within_budget

    def test_clique_pendants_counts_cut_vertices(self, clique_pendants5):
        # MVC of the example is large (the clique), so counting all
        # 2-cut vertices is fine *for vertex cover* — the reason the MVC
        # variant can skip the interesting filter.
        report = vc_two_cut_report(clique_pendants5, r=3)
        assert report.within_budget

    def test_measured_constant_recorded(self):
        report = vc_two_cut_report(gen.ladder(8), r=3)
        assert report.constant_used >= 0


class TestVcOneCuts:
    def test_budget_on_cacti(self):
        for seed in range(3):
            report = vc_one_cut_report(random_cactus(3, 5, seed), r=2)
            assert report.within_budget

    def test_cycle(self):
        report = vc_one_cut_report(gen.cycle(15), r=2)
        # 15 local 1-cuts vs MVC = 8: constant < 2 <= budget 6.
        assert report.count == 15
        assert report.within_budget
