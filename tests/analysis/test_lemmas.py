"""Tests for the executable lemma verifications."""

import networkx as nx

from repro.analysis.lemmas import (
    lemma_3_2_report,
    lemma_3_3_report,
    lemma_4_2_report,
    lemma_5_17_minor,
    verify_lemma_5_18,
)
from repro.core.radii import RadiusPolicy
from repro.graphs import generators as gen
from repro.graphs.random_families import random_cactus, random_outerplanar


class TestLemma32:
    def test_budget_on_cut_rich_families(self):
        # Lemma 3.2: #local-1-cuts <= 3(d+1) MDS on asdim-1 classes.
        # Our radii are far below the paper's, yet the budget holds on
        # these families — the experiment EXPERIMENTS.md reports.
        for seed in range(3):
            g = random_cactus(3, 5, seed)
            report = lemma_3_2_report(g, r=2)
            assert report.within_budget, (seed, report)

    def test_cycle_extreme_case(self):
        # a long cycle maximises local 1-cuts: n of them vs MDS = n/3,
        # constant 3 <= budget 6.
        report = lemma_3_2_report(gen.cycle(15), r=2)
        assert report.count == 15
        assert report.mds == 5
        assert report.within_budget

    def test_constant_used(self):
        report = lemma_3_2_report(gen.cycle(15), r=2)
        assert abs(report.constant_used - 3.0) < 1e-9

    def test_no_cuts_no_count(self):
        report = lemma_3_2_report(nx.complete_graph(6), r=2)
        assert report.count == 0


class TestLemma33:
    def test_budget_on_ladders(self):
        for n in (6, 9, 12):
            report = lemma_3_3_report(gen.ladder(n), r=3)
            assert report.within_budget

    def test_budget_on_outerplanar(self):
        for seed in range(3):
            g = random_outerplanar(12, seed)
            report = lemma_3_3_report(g, r=3)
            assert report.within_budget

    def test_clique_pendants_zero_interesting(self, clique_pendants5):
        report = lemma_3_3_report(clique_pendants5, r=3)
        assert report.count == 0


class TestLemma42:
    def test_residual_components_bounded(self, small_zoo):
        policy = RadiusPolicy.practical()
        for g in small_zoo:
            report = lemma_4_2_report(g, policy)
            assert report.max_diameter <= g.number_of_nodes()
            assert report.component_count == len(report.component_sizes)

    def test_cycle_leaves_nothing(self):
        # all vertices are local 1-cuts: residual graph is empty.
        report = lemma_4_2_report(gen.cycle(14), RadiusPolicy.practical())
        assert report.component_count == 0


class TestLemma517:
    def test_construction_properties(self):
        for seed in range(3):
            g = random_outerplanar(12, seed)
            report = lemma_5_17_minor(g)
            assert report.a_edgeless
            assert report.min_degree_ok, (seed, report.part_a)
            assert report.size_guarantee_ok

    def test_ladder_construction(self):
        report = lemma_5_17_minor(gen.ladder(6))
        assert report.a_edgeless
        assert report.min_degree_ok

    def test_star_trivial(self, star6):
        report = lemma_5_17_minor(star6)
        # D = {hub}; D2 = {hub}: A is empty, trivially fine.
        assert report.part_a == set()
        assert report.a_edgeless


class TestLemma518:
    def test_inequality_on_constructions(self):
        for seed in range(3):
            g = random_outerplanar(12, seed)
            report = lemma_5_17_minor(g)
            check = verify_lemma_5_18(report.minor, report.part_a, report.part_b, t=3)
            assert check.inequality_ok

    def test_synthetic_tight_instance(self):
        # K_{2,t}: A = pages (t of them, edgeless, degree 2), B = hubs:
        # |A| = t <= (t+1-1)*|B|/... with t' = t+1: t <= t * 2. OK.
        t = 5
        g = nx.complete_bipartite_graph(2, t)
        part_b = {0, 1}
        part_a = set(range(2, t + 2))
        check = verify_lemma_5_18(g, part_a, part_b, t=t + 1)
        assert check.premises_ok
        assert check.inequality_ok

    def test_premise_violation_detected(self):
        g = nx.complete_graph(4)
        check = verify_lemma_5_18(g, {0, 1}, {2, 3}, t=3)
        assert not check.premises_ok  # A not edgeless
