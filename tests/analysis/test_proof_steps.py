"""Tests for the executable proof steps (Lemma 5.2, Claim 5.3)."""

import networkx as nx
import pytest

from repro.analysis.lemmas import claim_5_3_report, lemma_5_2_check
from repro.graphs import generators as gen
from repro.graphs.random_families import random_cactus, random_tree
from repro.graphs.util import ball


class TestLemma52:
    def test_far_apart_balls_on_path(self):
        g = gen.path(20)
        regions = [ball(g, 2, 1), ball(g, 10, 1), ball(g, 17, 1)]
        assert lemma_5_2_check(g, regions)

    def test_premise_enforced(self):
        g = gen.path(10)
        with pytest.raises(ValueError, match="intersect"):
            lemma_5_2_check(g, [{2, 3}, {4, 5}])  # N[.] overlap at 3/4

    def test_on_random_trees(self):
        for seed in range(3):
            g = random_tree(30, seed)
            # pick three spread vertices; keep only those with disjoint N^2
            nodes = sorted(g.nodes)
            regions = [{nodes[0]}]
            for v in nodes[1:]:
                candidate = {v}
                n_candidate = ball(g, v, 1)
                if all(
                    not (n_candidate & ball(g, next(iter(r)), 1)) for r in regions
                ):
                    regions.append(candidate)
                if len(regions) == 3:
                    break
            if len(regions) >= 2:
                assert lemma_5_2_check(g, regions)

    def test_single_region_trivial(self, cycle6):
        assert lemma_5_2_check(cycle6, [{0}])

    def test_empty_regions(self, cycle6):
        assert lemma_5_2_check(cycle6, [])


class TestClaim53:
    def test_budget_on_cacti(self):
        for seed in range(3):
            g = random_cactus(4, 5, seed)
            report = claim_5_3_report(g, set(g.nodes))
            assert report.within_budget, (seed, report)

    def test_budget_on_trees(self):
        for seed in range(3):
            g = random_tree(25, seed)
            report = claim_5_3_report(g, set(g.nodes))
            assert report.within_budget

    def test_probe_restriction(self):
        g = gen.path(15)
        probe = set(range(5))
        report = claim_5_3_report(g, probe)
        # cut vertices inside the probe: 1..4; local optimum covers N[S]
        assert report.count == 4
        assert report.within_budget

    def test_two_connected_graph_has_zero(self, cycle6):
        report = claim_5_3_report(cycle6, set(cycle6.nodes))
        assert report.count == 0

    def test_star_single_cut(self, star6):
        report = claim_5_3_report(star6, set(star6.nodes))
        assert report.count == 1
        assert report.mds == 1
