"""Tests for the explicit Lemma 3.3 charging function."""

from repro.analysis.charging import build_charging, charging_profile
from repro.graphs import generators as gen
from repro.graphs.random_families import random_outerplanar
from repro.solvers.exact import minimum_dominating_set


class TestBuildCharging:
    def test_every_interesting_vertex_charges(self, cycle6):
        charging = build_charging(cycle6)
        from repro.core.interesting import globally_interesting_vertices

        assert set(charging) == globally_interesting_vertices(cycle6)

    def test_charges_land_on_dominators(self, cycle6):
        dominating = minimum_dominating_set(cycle6)
        charging = build_charging(cycle6, dominating)
        assert set(charging.values()) <= dominating | set(charging)

    def test_self_charge_for_dominators(self):
        g = gen.ladder(6)
        dominating = minimum_dominating_set(g)
        charging = build_charging(g, dominating)
        for u, d in charging.items():
            if u in dominating:
                assert d == u

    def test_empty_when_no_interesting(self, star6):
        assert build_charging(star6) == {}


class TestProfile:
    def test_distance_bound_claim_5_11(self):
        # Claim 5.11: a charged dominator lies within distance 5.
        for g in (
            gen.cycle(6),
            gen.ladder(8),
            random_outerplanar(14, 0),
            random_outerplanar(14, 1),
        ):
            profile = charging_profile(g)
            assert profile.max_distance <= 5, g

    def test_charge_bound_claim_5_10(self):
        # Claim 5.10/5.12 allow 6 per tree (19 overall); measured
        # charges on the paper's families sit far below.
        for g in (gen.ladder(10), random_outerplanar(16, 2)):
            profile = charging_profile(g)
            assert profile.max_charge <= 6, g

    def test_average_charge(self, cycle6):
        profile = charging_profile(cycle6)
        assert profile.average_charge == profile.interesting_count / profile.dominator_count

    def test_zero_profile(self, star6):
        profile = charging_profile(star6)
        assert profile.interesting_count == 0
        assert profile.max_charge == 0
        assert profile.average_charge == 0.0
