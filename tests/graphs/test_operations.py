"""Tests for graph surgery and its minor-freeness contracts."""

import networkx as nx
import pytest

from repro.graphs import generators as gen
from repro.graphs.minors import largest_k2t_minor_singleton_hubs
from repro.graphs.operations import (
    attach_pendants,
    bridge_join,
    disjoint_union_relabel,
    graph_power,
    subdivide,
)
from repro.graphs.util import r_components


class TestSubdivide:
    def test_counts(self, cycle6):
        once = subdivide(cycle6)
        assert once.number_of_nodes() == 12
        assert once.number_of_edges() == 12

    def test_zero_copies(self, path5):
        copy = subdivide(path5, 0)
        assert sorted(copy.edges) == sorted(path5.edges)
        copy.add_edge(0, 4)
        assert not path5.has_edge(0, 4)

    def test_preserves_k2t_freeness(self):
        g = gen.theta(3, 2)
        assert largest_k2t_minor_singleton_hubs(g) == 3
        assert largest_k2t_minor_singleton_hubs(subdivide(g)) == 3

    def test_negative_rejected(self, path5):
        with pytest.raises(ValueError):
            subdivide(path5, -1)


class TestPendants:
    def test_counts(self, path5):
        bushy = attach_pendants(path5, 2)
        assert bushy.number_of_nodes() == 5 + 10

    def test_minor_inert(self, cycle6):
        assert largest_k2t_minor_singleton_hubs(
            attach_pendants(cycle6, 2)
        ) == largest_k2t_minor_singleton_hubs(cycle6)

    def test_zero_is_copy(self, cycle6):
        assert attach_pendants(cycle6, 0).number_of_nodes() == 6


class TestBridgeJoin:
    def test_connects(self):
        joined = bridge_join(gen.cycle(5), gen.cycle(7))
        assert nx.is_connected(joined)
        assert joined.number_of_nodes() == 12
        assert joined.number_of_edges() == 13

    def test_bridge_preserves_minors(self):
        left, right = gen.book(3), gen.cycle(6)
        joined = bridge_join(left, right)
        assert largest_k2t_minor_singleton_hubs(joined) == 3

    def test_disjoint_union_offset(self):
        joined, offset = disjoint_union_relabel(gen.path(3), gen.path(4))
        assert offset == 3
        assert joined.number_of_nodes() == 7
        assert not nx.is_connected(joined)


class TestGraphPower:
    def test_square_of_path(self, path5):
        squared = graph_power(path5, 2)
        assert squared.has_edge(0, 2)
        assert not squared.has_edge(0, 3)

    def test_power_one_is_same(self, cycle6):
        assert sorted(map(sorted, graph_power(cycle6, 1).edges)) == sorted(
            map(sorted, cycle6.edges)
        )

    def test_r_components_match_power_components(self, path5):
        # Section 3: r-components of S are components of G^r restricted
        # to S — verify the two formulations agree.
        subset = {0, 2, 4}
        via_power = [
            set(c) & subset
            for c in nx.connected_components(graph_power(path5, 2).subgraph(subset))
        ]
        direct = r_components(path5, subset, 2)
        assert sorted(map(sorted, via_power)) == sorted(map(sorted, direct))

    def test_bad_power(self, path5):
        with pytest.raises(ValueError):
            graph_power(path5, 0)
