"""Tests for r-local cuts and interesting vertices (Definition 2.1)."""

import networkx as nx

from repro.graphs import generators as gen
from repro.graphs.cuts import cut_vertices
from repro.graphs.local_cuts import (
    interesting_vertices,
    interesting_vertices_of_cuts,
    is_interesting_vertex,
    is_local_one_cut,
    is_local_two_cut,
    is_locally_k_connected,
    local_cut_subgraph,
    local_one_cuts,
    local_two_cuts,
)


class TestLocalOneCuts:
    def test_long_cycle_every_vertex_is_local_one_cut(self):
        # The paper's example: on a long cycle every vertex is a local
        # 1-cut though none is a global cut vertex.
        g = gen.cycle(12)
        assert local_one_cuts(g, 2) == set(g.nodes)
        assert cut_vertices(g) == set()

    def test_short_cycle_no_local_one_cut(self):
        # With radius r, a cycle of length <= 2r + 1 closes up in the
        # arena, so the vertex no longer separates it.
        g = gen.cycle(5)
        assert local_one_cuts(g, 2) == set()

    def test_threshold_cycle_length(self):
        # C6 with r=2: arena around v is a 5-path, v is its center: cut.
        g = gen.cycle(6)
        assert local_one_cuts(g, 2) == set(g.nodes)

    def test_global_cut_vertices_are_local(self, two_triangles_bridge):
        assert {2, 3} <= local_one_cuts(two_triangles_bridge, 3)

    def test_path_interior(self, path5):
        assert local_one_cuts(path5, 1) == {1, 2, 3}

    def test_star_hub_only(self, star6):
        assert local_one_cuts(star6, 1) == {0}

    def test_monotone_in_radius(self):
        # No r-local cuts implies no r'-local cuts for r' > r is FALSE;
        # the true monotonicity: an r'-local cut may disappear for
        # larger r (arenas grow).  Check the paper's direction on C12.
        g = gen.cycle(12)
        assert local_one_cuts(g, 5) == set(g.nodes)
        assert local_one_cuts(g, 6) == set()


class TestLocalTwoCuts:
    def test_ladder_rungs(self, ladder5):
        cuts = set(local_two_cuts(ladder5, 2))
        assert frozenset({4, 5}) in cuts

    def test_cycle_pairs_cut_but_not_minimally(self):
        # On a long cycle the arena of {0, 2} is a path: the pair cuts
        # it, but 0 alone already does, so the pair is not minimal.
        g = gen.cycle(12)
        assert frozenset({0, 2}) in set(local_two_cuts(g, 2, minimal=False))
        assert frozenset({0, 2}) not in set(local_two_cuts(g, 2, minimal=True))

    def test_short_cycle_distance2_pair_is_minimal(self):
        # On C6 with r=2 the arena of {0, 2} is the whole cycle: a
        # minimal local 2-cut (no single vertex cuts a cycle).  The
        # opposite pair {0, 3} is too far apart for radius 2.
        g = gen.cycle(6)
        cuts = set(local_two_cuts(g, 2, minimal=True))
        assert frozenset({0, 2}) in cuts
        assert frozenset({0, 3}) not in cuts
        assert frozenset({0, 3}) in set(local_two_cuts(g, 3, minimal=True))

    def test_minimal_excludes_one_cut_pairs(self, path5):
        cuts = local_two_cuts(path5, 2, minimal=True)
        for cut in cuts:
            for v in cut:
                arena = local_cut_subgraph(path5, set(cut), 2)
                assert not is_local_one_cut(path5, v, 2) or True
        # On a path, pairs of interior vertices contain 1-cuts: the
        # minimal filter inside the arena must reject pairs whose single
        # vertex already cuts the arena.
        for cut in cuts:
            u, v = tuple(cut)
            assert is_local_two_cut(path5, u, v, 2, minimal=True)

    def test_is_local_two_cut_rejects_far_pairs(self):
        g = gen.cycle(12)
        assert not is_local_two_cut(g, 0, 6, 2)  # distance 6 > r = 2

    def test_is_local_two_cut_rejects_same_vertex(self, cycle6):
        assert not is_local_two_cut(cycle6, 0, 0, 2)

    def test_complete_graph_locally_3_connected(self):
        g = nx.complete_graph(6)
        assert is_locally_k_connected(g, 2, 1)
        assert is_locally_k_connected(g, 2, 2)

    def test_cycle_not_locally_1_connected(self):
        assert not is_locally_k_connected(gen.cycle(12), 2, 1)


class TestInterestingVertices:
    def test_clique_with_pendants_has_no_interesting_vertices(self, clique_pendants5):
        # The Section 4 example: every clique vertex v is in the 2-cut
        # {0, v} but N[v] ⊆ N[0], and 0's cut components are all adjacent
        # to the partner — nothing is interesting.
        assert interesting_vertices(clique_pendants5, 3) == set()

    def test_ladder_interior_rungs_interesting(self):
        g = gen.ladder(7)
        interesting = interesting_vertices(g, 2)
        # middle rung vertices (columns 2..4) are interesting
        assert {4, 5, 6, 7, 8, 9} <= interesting

    def test_c6_interesting_only_with_opposite_pairs(self):
        # At r=2 only distance-2 cuts exist; each leaves one singleton
        # component adjacent to the partner, so nothing is interesting.
        # At r=3 the opposite cuts {i, i+3} qualify and, by symmetry,
        # every vertex becomes interesting (the Section 5.3 C6 example).
        g = gen.cycle(6)
        assert interesting_vertices(g, 2) == set()
        assert interesting_vertices(g, 3) == set(g.nodes)

    def test_long_cycle_has_no_interesting_vertices(self):
        # On C12 with r=3 every candidate pair's arena is a path, where
        # single vertices already cut — no *minimal* local 2-cut exists,
        # hence no interesting vertex (the 1-cut rule handles cycles).
        g = gen.cycle(12)
        assert interesting_vertices(g, 3) == set()

    def test_star_leaves_not_interesting(self, star6):
        assert interesting_vertices(star6, 2) == set()

    def test_of_cuts_matches_direct_enumeration(self, small_zoo):
        for g in small_zoo:
            cuts = local_two_cuts(g, 2, minimal=True)
            via_cuts = interesting_vertices_of_cuts(g, cuts, 2)
            direct = interesting_vertices(g, 2)
            assert via_cuts == direct

    def test_is_interesting_single_vertex(self):
        g = gen.ladder(7)
        assert is_interesting_vertex(g, 6, 2)
