"""Tests for global cut machinery."""

import networkx as nx

from repro.graphs import generators as gen
from repro.graphs.cuts import (
    attached_components,
    components_after_removal,
    crossing_two_cuts,
    cut_vertices,
    cut_vertices_by_definition,
    is_cut,
    is_minimal_cut,
    minimal_two_cuts,
    two_cuts,
)


class TestIsCut:
    def test_path_interior_is_cut(self, path5):
        assert is_cut(path5, {2})

    def test_path_endpoint_is_not_cut(self, path5):
        assert not is_cut(path5, {0})

    def test_cycle_single_vertex_not_cut(self, cycle6):
        assert not is_cut(cycle6, {0})

    def test_cycle_opposite_pair_is_cut(self, cycle6):
        assert is_cut(cycle6, {0, 3})

    def test_cycle_adjacent_pair_not_cut(self, cycle6):
        assert not is_cut(cycle6, {0, 1})

    def test_empty_set_not_cut(self, path5):
        assert not is_cut(path5, set())

    def test_whole_graph_not_cut(self, path5):
        assert not is_cut(path5, set(path5.nodes))


class TestMinimality:
    def test_one_cut_always_minimal(self, path5):
        assert is_minimal_cut(path5, {2})

    def test_pair_containing_cut_vertex_not_minimal(self, path5):
        # {1, 2}: {1} alone is already a cut.
        assert not is_minimal_cut(path5, {1, 2})

    def test_cycle_pair_minimal(self, cycle6):
        assert is_minimal_cut(cycle6, {0, 3})

    def test_non_cut_not_minimal(self, cycle6):
        assert not is_minimal_cut(cycle6, {0, 1})


class TestCutVertices:
    def test_path_interior_vertices(self, path5):
        assert cut_vertices(path5) == {1, 2, 3}

    def test_cycle_has_none(self, cycle6):
        assert cut_vertices(cycle6) == set()

    def test_star_hub(self, star6):
        assert cut_vertices(star6) == {0}

    def test_bridge_endpoints(self, two_triangles_bridge):
        assert cut_vertices(two_triangles_bridge) == {2, 3}

    def test_agrees_with_definition(self, small_zoo):
        for g in small_zoo:
            assert cut_vertices(g) == cut_vertices_by_definition(g)


class TestTwoCuts:
    def test_cycle_two_cuts_are_nonadjacent_pairs(self, cycle6):
        cuts = set(two_cuts(cycle6))
        expected = {
            frozenset(p)
            for p in [(0, 2), (0, 3), (0, 4), (1, 3), (1, 4), (1, 5), (2, 4), (2, 5), (3, 5)]
        }
        assert cuts == expected

    def test_minimal_filters_cut_vertices(self, path5):
        # On a path, any pair with an interior vertex contains a 1-cut.
        assert minimal_two_cuts(path5) == []

    def test_ladder_rungs_are_minimal_two_cuts(self, ladder5):
        cuts = set(minimal_two_cuts(ladder5))
        for i in range(1, 4):
            assert frozenset({2 * i, 2 * i + 1}) in cuts

    def test_complete_graph_has_no_two_cuts(self):
        assert two_cuts(nx.complete_graph(5)) == []


class TestCrossing:
    def test_c6_opposite_cuts_cross(self, cycle6):
        assert crossing_two_cuts(cycle6, {0, 3}, {1, 4})

    def test_nested_cuts_do_not_cross(self):
        g = gen.cycle(8)
        assert not crossing_two_cuts(g, {0, 4}, {1, 3})

    def test_sharing_vertex_never_crosses(self, cycle6):
        assert not crossing_two_cuts(cycle6, {0, 3}, {3, 5})

    def test_paper_c6_example_three_pairwise_crossing(self, cycle6):
        # Section 5.3: the three "opposite" cuts of C6 pairwise cross,
        # which is why three non-crossing families are needed.
        cuts = [{0, 3}, {1, 4}, {2, 5}]
        for i in range(3):
            for j in range(i + 1, 3):
                assert crossing_two_cuts(cycle6, cuts[i], cuts[j])


class TestComponents:
    def test_components_after_removal(self, cycle6):
        comps = components_after_removal(cycle6, {0, 3})
        assert sorted(map(sorted, comps)) == [[1, 2], [4, 5]]

    def test_attached_components_all_for_minimal_cut(self, cycle6):
        comps = attached_components(cycle6, {0, 3})
        assert len(comps) == 2
