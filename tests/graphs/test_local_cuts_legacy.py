"""Differential tests: bitset local-cut pipeline vs verbatim legacy code.

The reference implementations below are the pre-kernel subgraph-walking
versions of ``repro.graphs.cuts``, ``repro.graphs.local_cuts``,
``repro.graphs.twins``, ``repro.core.interesting`` and
``repro.graphs.util.weak_diameter``, kept verbatim (modulo a ``legacy_``
prefix and plain-BFS neighborhood helpers) so every rewritten function
can be pinned against the semantics the repo shipped with — including
output *order* where the contract is a list.
"""

from __future__ import annotations

from collections import deque
from itertools import combinations

import networkx as nx
import pytest

from repro.core.algorithm1 import _phase_sets, _residual_components, algorithm1
from repro.core.interesting import (
    almost_interesting_vertices,
    friends,
    globally_interesting_vertices,
    interesting_cuts,
    is_globally_interesting,
)
from repro.core.radii import RadiusPolicy
from repro.graphs import generators as gen
from repro.graphs.cuts import (
    attached_components,
    components_after_removal,
    crossing_two_cuts,
    cut_vertices_by_definition,
    is_cut,
    is_minimal_cut,
    minimal_two_cuts,
    two_cuts,
)
from repro.graphs.kernel import invalidate_kernel
from repro.graphs.local_cuts import (
    interesting_vertices,
    interesting_vertices_of_cuts,
    is_interesting_vertex,
    is_local_one_cut,
    is_local_two_cut,
    local_one_cuts,
    local_two_cuts,
)
from repro.graphs.twins import remove_true_twins, true_twin_classes
from repro.graphs.util import weak_diameter


# -- legacy neighborhood/ball helpers (plain BFS, no kernel) ---------------


def legacy_closed_neighborhood(graph, v):
    result = set(graph.neighbors(v))
    result.add(v)
    return result


def legacy_closed_neighborhood_of_set(graph, vertices):
    result = set()
    for v in vertices:
        result.add(v)
        result.update(graph.neighbors(v))
    return result


def legacy_ball(graph, center, radius):
    if radius < 0:
        return set()
    seen = {center}
    frontier = deque([(center, 0)])
    while frontier:
        vertex, dist = frontier.popleft()
        if dist == radius:
            continue
        for neighbor in graph.neighbors(vertex):
            if neighbor not in seen:
                seen.add(neighbor)
                frontier.append((neighbor, dist + 1))
    return seen


def legacy_ball_of_set(graph, centers, radius):
    if radius < 0:
        return set()
    seen = set(centers)
    frontier = deque((v, 0) for v in seen)
    while frontier:
        vertex, dist = frontier.popleft()
        if dist == radius:
            continue
        for neighbor in graph.neighbors(vertex):
            if neighbor not in seen:
                seen.add(neighbor)
                frontier.append((neighbor, dist + 1))
    return seen


def legacy_distances_from(graph, source):
    dist = {source: 0}
    frontier = deque([source])
    while frontier:
        vertex = frontier.popleft()
        d = dist[vertex]
        for neighbor in graph.neighbors(vertex):
            if neighbor not in dist:
                dist[neighbor] = d + 1
                frontier.append(neighbor)
    return dist


def legacy_weak_diameter(graph, vertices):
    vertex_list = list(vertices)
    if len(vertex_list) <= 1:
        return 0
    best = 0
    targets = set(vertex_list)
    for v in vertex_list:
        dist = legacy_distances_from(graph, v)
        for u in targets:
            if u not in dist:
                raise ValueError(f"vertices {v!r} and {u!r} are disconnected in G")
            if dist[u] > best:
                best = dist[u]
    return best


# -- legacy global cut machinery (graphs/cuts.py, pre-rewrite) -------------


def legacy_component_count(graph):
    return nx.number_connected_components(graph)


def legacy_is_cut(graph, cut):
    cut_set = set(cut)
    if not cut_set or not set(graph.nodes) - cut_set:
        return False
    before = legacy_component_count(graph)
    after = legacy_component_count(graph.subgraph(set(graph.nodes) - cut_set))
    return after > before


def legacy_is_minimal_cut(graph, cut):
    cut_set = set(cut)
    if not legacy_is_cut(graph, cut_set):
        return False
    for size in range(1, len(cut_set)):
        for subset in combinations(sorted(cut_set, key=repr), size):
            if legacy_is_cut(graph, subset):
                return False
    return True


def legacy_cut_vertices_by_definition(graph):
    return {v for v in graph.nodes if legacy_is_cut(graph, {v})}


def legacy_two_cuts(graph):
    nodes = sorted(graph.nodes, key=repr)
    result = []
    base = legacy_component_count(graph)
    for u, v in combinations(nodes, 2):
        rest = set(graph.nodes) - {u, v}
        if rest and legacy_component_count(graph.subgraph(rest)) > base:
            result.append(frozenset({u, v}))
    return result


def legacy_minimal_two_cuts(graph):
    ones = set(nx.articulation_points(graph))
    return [cut for cut in legacy_two_cuts(graph) if not (cut & ones)]


def legacy_components_after_removal(graph, cut):
    rest = set(graph.nodes) - set(cut)
    return [set(c) for c in nx.connected_components(graph.subgraph(rest))]


def legacy_crossing_two_cuts(graph, c1, c2):
    c1_set, c2_set = set(c1), set(c2)
    if len(c1_set) != 2 or len(c2_set) != 2 or c1_set & c2_set:
        return False

    def separated(cut, pair):
        comps = legacy_components_after_removal(graph, cut)
        homes = []
        for v in pair:
            home = next((i for i, comp in enumerate(comps) if v in comp), None)
            if home is None:
                return False
            homes.append(home)
        return homes[0] != homes[1]

    return separated(c2_set, c1_set) and separated(c1_set, c2_set)


def legacy_attached_components(graph, cut):
    cut_set = set(cut)
    boundary = set()
    for v in cut_set:
        boundary.update(graph.neighbors(v))
    return [
        comp
        for comp in legacy_components_after_removal(graph, cut_set)
        if comp & boundary
    ]


# -- legacy local cuts (graphs/local_cuts.py, pre-rewrite) -----------------


def legacy_local_cut_subgraph(graph, cut, r):
    return graph.subgraph(legacy_ball_of_set(graph, cut, r))


def legacy_is_local_one_cut(graph, v, r):
    arena = legacy_local_cut_subgraph(graph, {v}, r)
    return legacy_is_cut(arena, {v})


def legacy_local_one_cuts(graph, r):
    return {v for v in graph.nodes if legacy_is_local_one_cut(graph, v, r)}


def legacy_is_local_two_cut(graph, u, v, r, *, minimal=True):
    if u == v:
        return False
    if v not in legacy_ball(graph, u, r):
        return False
    cut = {u, v}
    arena = legacy_local_cut_subgraph(graph, cut, r)
    if minimal:
        return legacy_is_minimal_cut(arena, cut)
    return legacy_is_cut(arena, cut)


def legacy_local_two_cuts(graph, r, *, minimal=True):
    seen = set()
    result = []
    for u in sorted(graph.nodes, key=repr):
        for v in sorted(legacy_ball(graph, u, r), key=repr):
            if v == u:
                continue
            pair = frozenset({u, v})
            if pair in seen:
                continue
            seen.add(pair)
            if legacy_is_local_two_cut(graph, u, v, r, minimal=minimal):
                result.append(pair)
    return result


def legacy_certifies_interesting(graph, u, v, r):
    n_u = legacy_closed_neighborhood(graph, u)
    n_v = legacy_closed_neighborhood(graph, v)
    if n_v <= n_u:
        return False
    arena = legacy_local_cut_subgraph(graph, {u, v}, r)
    rest = set(arena.nodes) - {u, v}
    witnesses = 0
    for comp in nx.connected_components(arena.subgraph(rest)):
        if any(w not in n_u for w in comp):
            witnesses += 1
            if witnesses >= 2:
                return True
    return False


def legacy_is_interesting_vertex(graph, v, r):
    for u in sorted(legacy_ball(graph, v, r), key=repr):
        if u == v:
            continue
        if not legacy_is_local_two_cut(graph, u, v, r, minimal=True):
            continue
        if legacy_certifies_interesting(graph, u, v, r):
            return True
    return False


def legacy_interesting_vertices(graph, r):
    return {v for v in graph.nodes if legacy_is_interesting_vertex(graph, v, r)}


def legacy_interesting_vertices_of_cuts(graph, cuts, r):
    result = set()
    for cut in cuts:
        u, v = sorted(cut, key=repr)
        if v not in result and legacy_certifies_interesting(graph, u, v, r):
            result.add(v)
        if u not in result and legacy_certifies_interesting(graph, v, u, r):
            result.add(u)
    return result


# -- legacy twins (graphs/twins.py, pre-rewrite) ---------------------------


def legacy_true_twin_classes(graph):
    buckets = {}
    for v in graph.nodes:
        key = frozenset(legacy_closed_neighborhood(graph, v))
        buckets.setdefault(key, set()).add(v)
    classes = list(buckets.values())
    classes.sort(key=lambda cls: repr(min(cls, key=repr)))
    return classes


def legacy_remove_true_twins(graph):
    mapping = {v: v for v in graph.nodes}
    current = graph.copy()
    while True:
        classes = legacy_true_twin_classes(current)
        removable = [cls for cls in classes if len(cls) > 1]
        if not removable:
            break
        for cls in removable:
            rep = min(cls, key=repr)
            for v in cls:
                if v != rep:
                    current.remove_node(v)
                    mapping[v] = rep
    for v in list(mapping):
        rep = mapping[v]
        while mapping[rep] != rep:
            rep = mapping[rep]
        mapping[v] = rep
    return current, mapping


# -- legacy global interesting (core/interesting.py, pre-rewrite) ----------


def legacy_second_condition(graph, u, cut):
    n_u = legacy_closed_neighborhood(graph, u)
    witnesses = 0
    for component in legacy_components_after_removal(graph, cut):
        if any(w not in n_u for w in component):
            witnesses += 1
            if witnesses >= 2:
                return True
    return False


def legacy_is_globally_interesting(graph, v, cut):
    if v not in cut or len(cut) != 2:
        return False
    (u,) = cut - {v}
    if legacy_closed_neighborhood(graph, v) <= legacy_closed_neighborhood(graph, u):
        return False
    return legacy_second_condition(graph, u, cut)


def legacy_globally_interesting_vertices(graph):
    result = set()
    for cut in legacy_minimal_two_cuts(graph):
        for v in cut:
            if v not in result and legacy_is_globally_interesting(graph, v, cut):
                result.add(v)
    return result


def legacy_interesting_cuts(graph):
    return [
        cut
        for cut in legacy_minimal_two_cuts(graph)
        if any(legacy_is_globally_interesting(graph, v, cut) for v in cut)
    ]


def legacy_almost_interesting_vertices(graph):
    result = set()
    for cut in legacy_minimal_two_cuts(graph):
        for v in cut:
            (u,) = cut - {v}
            if legacy_second_condition(graph, u, cut):
                result.add(v)
    return result


def legacy_friends(graph, u):
    result = set()
    for cut in legacy_minimal_two_cuts(graph):
        if u in cut:
            (v,) = cut - {u}
            if legacy_is_globally_interesting(graph, u, cut):
                result.add(v)
    return result


# -- graph cases -----------------------------------------------------------


def _tuple_labelled(graph):
    return nx.relabel_nodes(graph, {v: ("node", v) for v in graph.nodes}, copy=True)


def _unsortable_mixed():
    graph = nx.Graph()
    graph.add_edge(("a", 1), "b")
    graph.add_edge("b", 3)
    graph.add_edge(3, ("a", 1))
    graph.add_edge("b", "c")
    graph.add_edge("c", ("d", 2))
    graph.add_edge(("d", 2), 3)
    graph.add_node(frozenset({9}))
    return graph


def _isolated_vertices():
    graph = gen.ladder(3)
    graph.add_nodes_from([100, 101])
    return graph


def diff_graphs():
    """The differential zoo: random, family, odd-label, degenerate."""
    cases = [
        ("gnp10", nx.gnp_random_graph(10, 0.3, seed=2)),
        ("gnp14", nx.gnp_random_graph(14, 0.25, seed=5)),
        ("gnp18", nx.gnp_random_graph(18, 0.15, seed=9)),
        ("gnp22-disconnected", nx.gnp_random_graph(22, 0.08, seed=13)),
        ("cycle12", gen.cycle(12)),
        ("ladder6", gen.ladder(6)),
        ("theta33", gen.theta(3, 3)),
        ("clique-pendants4", gen.clique_with_pendants(4)),
        ("cactus24", gen.cactus_chain(2, 4)),
        ("book3", gen.book(3)),
        ("tuple-ladder", _tuple_labelled(gen.ladder(4))),
        ("unsortable-mixed", _unsortable_mixed()),
        ("zero-node", nx.Graph()),
        ("isolated", _isolated_vertices()),
    ]
    return cases


GRAPHS = diff_graphs()
IDS = [name for name, _ in GRAPHS]
JUST_GRAPHS = [g for _, g in GRAPHS]


# -- differential: local cuts ----------------------------------------------


class TestLocalCutsAgainstLegacy:
    @pytest.mark.parametrize("graph", JUST_GRAPHS, ids=IDS)
    def test_local_one_cuts(self, graph):
        for r in (1, 2, 3):
            assert local_one_cuts(graph, r) == legacy_local_one_cuts(graph, r)

    @pytest.mark.parametrize("graph", JUST_GRAPHS, ids=IDS)
    def test_local_two_cuts_order_and_content(self, graph):
        for r in (2, 3):
            for minimal in (True, False):
                assert local_two_cuts(graph, r, minimal=minimal) == (
                    legacy_local_two_cuts(graph, r, minimal=minimal)
                )

    @pytest.mark.parametrize("graph", JUST_GRAPHS, ids=IDS)
    def test_pairwise_two_cut_tests(self, graph):
        nodes = sorted(graph.nodes, key=repr)[:8]
        for u in nodes:
            for v in nodes:
                assert is_local_two_cut(graph, u, v, 2) == (
                    legacy_is_local_two_cut(graph, u, v, 2)
                )

    @pytest.mark.parametrize("graph", JUST_GRAPHS, ids=IDS)
    def test_interesting_vertices(self, graph):
        for r in (2, 3):
            assert interesting_vertices(graph, r) == legacy_interesting_vertices(
                graph, r
            )

    @pytest.mark.parametrize("graph", JUST_GRAPHS, ids=IDS)
    def test_interesting_of_cuts_matches_legacy_on_legacy_cuts(self, graph):
        cuts = legacy_local_two_cuts(graph, 2, minimal=True)
        assert interesting_vertices_of_cuts(graph, cuts, 2) == (
            legacy_interesting_vertices_of_cuts(graph, cuts, 2)
        )

    @pytest.mark.parametrize("graph", JUST_GRAPHS, ids=IDS)
    def test_single_vertex_probes(self, graph):
        for v in sorted(graph.nodes, key=repr)[:6]:
            assert is_local_one_cut(graph, v, 2) == legacy_is_local_one_cut(
                graph, v, 2
            )
            assert is_interesting_vertex(graph, v, 2) == (
                legacy_is_interesting_vertex(graph, v, 2)
            )


# -- differential: global cuts ---------------------------------------------


class TestCutsAgainstLegacy:
    @pytest.mark.parametrize("graph", JUST_GRAPHS, ids=IDS)
    def test_is_cut_samples(self, graph):
        nodes = sorted(graph.nodes, key=repr)
        samples = [set(nodes[:k]) for k in (0, 1, 2, len(nodes))]
        samples += [{v} for v in nodes[:6]]
        samples += [set(pair) for pair in combinations(nodes[:6], 2)]
        for cut in samples:
            assert is_cut(graph, cut) == legacy_is_cut(graph, cut)
            assert is_minimal_cut(graph, cut) == legacy_is_minimal_cut(graph, cut)

    @pytest.mark.parametrize("graph", JUST_GRAPHS, ids=IDS)
    def test_cut_vertex_enumerations(self, graph):
        assert cut_vertices_by_definition(graph) == (
            legacy_cut_vertices_by_definition(graph)
        )

    @pytest.mark.parametrize("graph", JUST_GRAPHS, ids=IDS)
    def test_two_cut_enumerations_ordered(self, graph):
        assert two_cuts(graph) == legacy_two_cuts(graph)
        assert minimal_two_cuts(graph) == legacy_minimal_two_cuts(graph)

    @pytest.mark.parametrize("graph", JUST_GRAPHS, ids=IDS)
    def test_components_after_removal_ordered(self, graph):
        nodes = sorted(graph.nodes, key=repr)
        samples = [set(), set(nodes[:1]), set(nodes[:2]), set(nodes[::3])]
        for cut in samples:
            assert components_after_removal(graph, cut) == (
                legacy_components_after_removal(graph, cut)
            )
            assert attached_components(graph, cut) == (
                legacy_attached_components(graph, cut)
            )

    @pytest.mark.parametrize("graph", JUST_GRAPHS, ids=IDS)
    def test_crossing_pairs(self, graph):
        cuts = legacy_minimal_two_cuts(graph)[:8]
        for c1, c2 in combinations(cuts, 2):
            assert crossing_two_cuts(graph, c1, c2) == (
                legacy_crossing_two_cuts(graph, c1, c2)
            )


# -- differential: twins + weak diameter -----------------------------------


class TestTwinsAgainstLegacy:
    @pytest.mark.parametrize("graph", JUST_GRAPHS, ids=IDS)
    def test_twin_classes_ordered(self, graph):
        assert true_twin_classes(graph) == legacy_true_twin_classes(graph)

    @pytest.mark.parametrize("graph", JUST_GRAPHS, ids=IDS)
    def test_remove_true_twins(self, graph):
        reduced, mapping = remove_true_twins(graph)
        legacy_reduced, legacy_mapping = legacy_remove_true_twins(graph)
        assert set(reduced.nodes) == set(legacy_reduced.nodes)
        assert {frozenset(e) for e in reduced.edges} == (
            {frozenset(e) for e in legacy_reduced.edges}
        )
        assert mapping == legacy_mapping
        assert list(reduced.nodes) == list(legacy_reduced.nodes)  # same order

    def test_twin_rich_iteration(self):
        graph = nx.complete_graph(6)
        graph.add_edge(0, 10)
        graph.add_edge(10, 11)
        reduced, mapping = remove_true_twins(graph)
        legacy_reduced, legacy_mapping = legacy_remove_true_twins(graph)
        assert set(reduced.nodes) == set(legacy_reduced.nodes)
        assert mapping == legacy_mapping


class TestWeakDiameterAgainstLegacy:
    @pytest.mark.parametrize("graph", JUST_GRAPHS, ids=IDS)
    def test_weak_diameter_samples(self, graph):
        nodes = sorted(graph.nodes, key=repr)
        samples = [nodes[:1], nodes[:3], nodes[: len(nodes) // 2], nodes]
        for subset in samples:
            try:
                expected = legacy_weak_diameter(graph, subset)
            except ValueError:
                with pytest.raises(ValueError):
                    weak_diameter(graph, subset)
            else:
                assert weak_diameter(graph, subset) == expected

    def test_absent_vertex_is_value_error_and_d_bounded_false(self):
        # A stale vertex set must stay a ValueError (not KeyError), so
        # is_d_bounded reports False instead of crashing.
        from repro.graphs.util import is_d_bounded

        graph = gen.path(4)
        with pytest.raises(ValueError):
            weak_diameter(graph, [0, "ghost"])
        assert not is_d_bounded(graph, [0, "ghost"], 10)
        assert weak_diameter(graph, ["ghost"]) == 0  # ≤1 vertex: no lookup


# -- differential: global interesting vocabulary ---------------------------


class TestGlobalInterestingAgainstLegacy:
    @pytest.mark.parametrize("graph", JUST_GRAPHS, ids=IDS)
    def test_global_sets(self, graph):
        assert globally_interesting_vertices(graph) == (
            legacy_globally_interesting_vertices(graph)
        )
        assert interesting_cuts(graph) == legacy_interesting_cuts(graph)
        assert almost_interesting_vertices(graph) == (
            legacy_almost_interesting_vertices(graph)
        )

    @pytest.mark.parametrize("graph", JUST_GRAPHS, ids=IDS)
    def test_per_cut_orientations(self, graph):
        for cut in legacy_minimal_two_cuts(graph)[:10]:
            for v in cut:
                assert is_globally_interesting(graph, v, cut) == (
                    legacy_is_globally_interesting(graph, v, cut)
                )

    @pytest.mark.parametrize("graph", JUST_GRAPHS, ids=IDS)
    def test_friends(self, graph):
        for u in sorted(graph.nodes, key=repr)[:6]:
            assert friends(graph, u) == legacy_friends(graph, u)

    def test_friends_of_absent_vertex_is_empty(self):
        # Legacy contract: a label outside the graph has no cuts, hence
        # no friends — it must not raise.
        graph = gen.ladder(4)
        assert friends(graph, "ghost") == legacy_friends(graph, "ghost") == set()


# -- algorithm1: phase sets byte-identical, modes agree --------------------


def legacy_phase_sets(graph, policy):
    """The pre-rewrite `_phase_sets`, composed from the legacy pieces."""
    x_set = legacy_local_one_cuts(graph, policy.one_cut_radius)
    cuts = legacy_local_two_cuts(graph, policy.two_cut_radius, minimal=True)
    i_set = legacy_interesting_vertices_of_cuts(graph, cuts, policy.two_cut_radius)
    taken = x_set | i_set
    dominated = legacy_closed_neighborhood_of_set(graph, taken) if taken else set()
    undominated = set(graph.nodes) - dominated
    u_set = {
        u
        for u in dominated - taken
        if legacy_closed_neighborhood(graph, u) <= dominated
    }
    return x_set, i_set, u_set, undominated


def legacy_residual_components(graph, x_set, i_set, u_set, undominated):
    residual_nodes = set(graph.nodes) - x_set - i_set - u_set
    components = []
    for component in nx.connected_components(graph.subgraph(residual_nodes)):
        targets = undominated & set(component)
        if targets:
            components.append((set(component), targets))
    components.sort(key=lambda pair: repr(min(pair[0], key=repr)))
    return components


class TestAlgorithm1Pinned:
    @pytest.mark.parametrize("graph", JUST_GRAPHS, ids=IDS)
    def test_phase_sets_byte_identical(self, graph):
        policy = RadiusPolicy.practical()
        reduced, _ = legacy_remove_true_twins(graph)
        expected = legacy_phase_sets(reduced, policy)
        actual = _phase_sets(reduced, policy)
        assert actual == expected
        assert _residual_components(reduced, *actual) == (
            legacy_residual_components(reduced, *expected)
        )

    def test_fast_and_simulate_modes_agree(self):
        for graph in (gen.cycle(6), gen.ladder(4), gen.clique_with_pendants(4)):
            fast = algorithm1(graph, mode="fast")
            simulated = algorithm1(graph, mode="simulate")
            assert fast.solution == simulated.solution


# -- cache invalidation ----------------------------------------------------


class TestDerivedCacheInvalidation:
    def test_ball_mask_cache_cleared_by_invalidate(self):
        graph = gen.cycle(8)
        assert local_one_cuts(graph, 2) == set(graph.nodes)  # cache warm
        graph.remove_edge(0, 1)
        graph.add_edge(0, 2)  # same node and edge count
        invalidate_kernel(graph)
        assert local_one_cuts(graph, 2) == legacy_local_one_cuts(graph, 2)
        assert local_two_cuts(graph, 2) == legacy_local_two_cuts(graph, 2)

    def test_minimal_two_cuts_cache_cleared_by_invalidate(self):
        graph = gen.cycle(6)
        assert minimal_two_cuts(graph) == legacy_minimal_two_cuts(graph)
        graph.remove_edge(0, 1)
        graph.add_edge(0, 3)
        invalidate_kernel(graph)
        assert minimal_two_cuts(graph) == legacy_minimal_two_cuts(graph)

    def test_minimal_two_cuts_cached_list_is_private(self):
        graph = gen.cycle(6)
        first = minimal_two_cuts(graph)
        first.clear()  # mutating the returned list must not poison the memo
        assert minimal_two_cuts(graph) == legacy_minimal_two_cuts(graph)

    def test_ball_masks_distinct_per_radius(self):
        graph = gen.cycle(12)
        assert local_one_cuts(graph, 5) == set(graph.nodes)
        assert local_one_cuts(graph, 6) == set()
