"""Tests for tree decompositions and treewidth."""

import networkx as nx
import pytest

from repro.graphs import generators as gen
from repro.graphs.random_families import random_outerplanar, random_tree
from repro.graphs.treewidth import (
    decomposition_cover,
    is_valid_decomposition,
    measured_cover_control,
    min_fill_decomposition,
    treewidth_exact_small,
    width,
)


class TestValidity:
    def test_min_fill_valid_on_zoo(self, small_zoo):
        for g in small_zoo:
            tree = min_fill_decomposition(g)
            assert is_valid_decomposition(g, tree), g

    def test_min_fill_valid_on_random(self):
        for seed in range(4):
            for g in (random_tree(18, seed), random_outerplanar(12, seed)):
                assert is_valid_decomposition(g, min_fill_decomposition(g))

    def test_empty_graph(self):
        tree = min_fill_decomposition(nx.Graph())
        assert is_valid_decomposition(nx.Graph(), tree)
        assert width(tree) == -1

    def test_axioms_rejected_when_edge_uncovered(self, cycle6):
        bad = nx.Graph()
        bad.add_node(frozenset(range(5)))  # misses vertex 5 and edge 4-5
        assert not is_valid_decomposition(cycle6, bad)


class TestWidth:
    def test_trees_have_width_one(self):
        for seed in range(4):
            g = random_tree(15, seed)
            assert width(min_fill_decomposition(g)) == 1

    def test_cycle_width_two(self, cycle6):
        assert width(min_fill_decomposition(cycle6)) == 2

    def test_outerplanar_width_two(self):
        for seed in range(3):
            g = random_outerplanar(10, seed)
            assert width(min_fill_decomposition(g)) == 2

    def test_complete_graph(self):
        assert width(min_fill_decomposition(nx.complete_graph(5))) == 4

    def test_heuristic_matches_exact_on_small(self):
        cases = [gen.cycle(6), gen.fan(5), gen.ladder(4), gen.grid(2, 4)]
        for g in cases:
            exact = treewidth_exact_small(g)
            heuristic = width(min_fill_decomposition(g))
            assert heuristic == exact, g

    def test_exact_guard(self):
        with pytest.raises(ValueError):
            treewidth_exact_small(gen.cycle(20))

    def test_k2t_free_families_bounded_width(self):
        # the paper's chain: K_{2,t}-free => bounded treewidth.
        # Ladders/fans/outerplanar all have width <= 2; Ding
        # augmentations stay <= 3 at our scales.
        from repro.graphs.random_families import random_ding_augmentation

        for seed in range(3):
            g = random_ding_augmentation(3, 3, seed)
            assert width(min_fill_decomposition(g)) <= 3


class TestCover:
    def test_cover_covers(self, small_zoo):
        for g in small_zoo:
            tree = min_fill_decomposition(g)
            cover = decomposition_cover(g, tree, 2)
            assert cover[0] | cover[1] == set(g.nodes)

    def test_control_scales_with_r(self):
        g = gen.ladder(15)
        c1 = measured_cover_control(g, 1)
        c3 = measured_cover_control(g, 3)
        assert c3 >= c1

    def test_control_bounded_on_paths(self):
        g = gen.path(60)
        for r in (1, 2, 3):
            assert measured_cover_control(g, r) <= 8 * r

    def test_invalid_radius(self, cycle6):
        tree = min_fill_decomposition(cycle6)
        with pytest.raises(ValueError):
            decomposition_cover(cycle6, tree, 0)
