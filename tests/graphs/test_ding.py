"""Tests for Ding's structure components (fans, strips, augmentations)."""

import networkx as nx
import pytest

from repro.graphs.ding import (
    Attachment,
    Fan,
    Strip,
    augment,
    chords_cross,
    chords_of,
    fan_flower,
    is_type_one,
    make_fan,
    make_strip,
    strip_radius,
    type_one_graph,
)
from repro.graphs.minors import is_k2t_minor_free
from repro.graphs.validation import check_simple_connected


class TestTypeOne:
    def test_plain_cycle_is_type_one(self):
        g = nx.cycle_graph(8)
        assert is_type_one(g, list(range(8)))

    def test_non_crossing_chords_ok(self):
        g = type_one_graph(8, [(0, 2), (4, 6)])
        assert is_type_one(g, list(range(8)))

    def test_allowed_crossing_pattern(self):
        # chords {0,2} and {1,3} cross with 01 and 23 cycle edges: allowed.
        g = type_one_graph(8, [(0, 2), (1, 3)])
        assert is_type_one(g, list(range(8)))

    def test_forbidden_far_crossing(self):
        g = nx.cycle_graph(8)
        g.add_edge(0, 4)
        g.add_edge(2, 6)
        assert not is_type_one(g, list(range(8)))

    def test_triple_crossing_rejected(self):
        g = nx.cycle_graph(10)
        g.add_edges_from([(0, 5), (1, 6), (2, 7)])
        assert not is_type_one(g, list(range(10)))

    def test_type_one_graph_rejects_bad_chords(self):
        with pytest.raises(ValueError):
            type_one_graph(8, [(0, 4), (2, 6)])

    def test_chords_of(self):
        g = type_one_graph(8, [(0, 2)])
        assert [tuple(sorted(c)) for c in chords_of(g, list(range(8)))] == [(0, 2)]

    def test_chords_cross_detection(self):
        order = list(range(8))
        assert chords_cross(order, (0, 4), (2, 6))
        assert not chords_cross(order, (0, 2), (4, 6))
        assert not chords_cross(order, (0, 4), (4, 6))  # share a vertex


class TestFan:
    def test_make_fan_shape(self):
        fan = make_fan(3)
        assert isinstance(fan, Fan)
        assert fan.length == 3
        assert fan.graph.degree(fan.center) == 5  # length + 2 path vertices

    def test_corners(self):
        fan = make_fan(2, label_offset=10)
        assert fan.corners == (10, 11, 14)

    def test_fan_k23_free(self):
        fan = make_fan(5)
        assert is_k2t_minor_free(fan.graph, 3, node_limit=10)

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            make_fan(0)


class TestStrip:
    def test_make_strip_shape(self):
        strip = make_strip(4)
        assert isinstance(strip, Strip)
        assert strip.graph.number_of_nodes() == 8
        assert len(strip.corners) == 4

    def test_strip_min_degree_two(self):
        strip = make_strip(5)
        assert min(d for _, d in strip.graph.degree) >= 2

    def test_crossed_strip_is_type_one(self):
        strip = make_strip(6, crossed=True)
        rungs = 6
        top = list(range(rungs))
        bottom = list(range(rungs, 2 * rungs))
        cycle_order = top + list(reversed(bottom))
        assert is_type_one(strip.graph, cycle_order)

    def test_plain_strip_k25_free(self):
        strip = make_strip(5)
        assert is_k2t_minor_free(strip.graph, 5, node_limit=10)

    def test_strip_radius_grows_with_length(self):
        assert strip_radius(make_strip(8)) > strip_radius(make_strip(3))

    def test_invalid_rungs(self):
        with pytest.raises(ValueError):
            make_strip(1)


class TestAugment:
    def test_fan_glued_by_center(self):
        core = nx.complete_graph(3)
        fan = make_fan(2, label_offset=50)
        g = augment(core, [Attachment(piece=fan, glue={fan.center: 0})])
        check_simple_connected(g)
        assert g.number_of_nodes() == 3 + fan.graph.number_of_nodes() - 1

    def test_strip_glued_by_two_corners(self):
        core = nx.complete_graph(3)
        strip = make_strip(3, label_offset=50)
        a, b, _, _ = strip.corners
        g = augment(core, [Attachment(piece=strip, glue={a: 0, b: 1})])
        check_simple_connected(g)

    def test_two_fan_centers_may_share(self):
        core = nx.complete_graph(3)
        f1 = make_fan(2, label_offset=50)
        f2 = make_fan(2, label_offset=90)
        g = augment(
            core,
            [
                Attachment(piece=f1, glue={f1.center: 0}),
                Attachment(piece=f2, glue={f2.center: 0}),
            ],
        )
        check_simple_connected(g)

    def test_two_strip_corners_may_not_share(self):
        core = nx.complete_graph(3)
        s1 = make_strip(3, label_offset=50)
        s2 = make_strip(3, label_offset=90)
        with pytest.raises(ValueError):
            augment(
                core,
                [
                    Attachment(piece=s1, glue={s1.corners[0]: 0}),
                    Attachment(piece=s2, glue={s2.corners[0]: 0}),
                ],
            )

    def test_glue_must_target_corners(self):
        core = nx.complete_graph(3)
        fan = make_fan(3, label_offset=50)
        middle_path_vertex = 53
        with pytest.raises(ValueError):
            augment(core, [Attachment(piece=fan, glue={middle_path_vertex: 0})])

    def test_glue_to_missing_core_vertex(self):
        core = nx.complete_graph(3)
        fan = make_fan(2, label_offset=50)
        with pytest.raises(ValueError):
            augment(core, [Attachment(piece=fan, glue={fan.center: 99})])

    def test_fan_flower(self):
        g = fan_flower(4, 3)
        check_simple_connected(g)
        assert g.number_of_nodes() > 3
