"""Tests for block-cut trees."""

import networkx as nx
import pytest

from repro.graphs import generators as gen
from repro.graphs.blockcut import (
    BLOCK,
    CUT,
    biconnected_blocks,
    block_cut_tree,
    blocks_containing,
    is_valid_block_cut_tree,
)


class TestBlocks:
    def test_cycle_is_single_block(self, cycle6):
        assert biconnected_blocks(cycle6) == [frozenset(cycle6.nodes)]

    def test_path_blocks_are_edges(self, path5):
        blocks = biconnected_blocks(path5)
        assert sorted(sorted(b) for b in blocks) == [[0, 1], [1, 2], [2, 3], [3, 4]]

    def test_isolated_vertex_is_block(self):
        g = nx.Graph()
        g.add_node(3)
        assert biconnected_blocks(g) == [frozenset({3})]

    def test_two_triangles(self, two_triangles_bridge):
        blocks = {frozenset(b) for b in biconnected_blocks(two_triangles_bridge)}
        assert frozenset({0, 1, 2}) in blocks
        assert frozenset({3, 4, 5}) in blocks
        assert frozenset({2, 3}) in blocks


class TestTree:
    def test_is_tree(self, small_zoo):
        for g in small_zoo:
            tree = block_cut_tree(g)
            assert nx.is_tree(tree)

    def test_valid_structure(self, small_zoo):
        for g in small_zoo:
            assert is_valid_block_cut_tree(g, block_cut_tree(g))

    def test_leaves_are_blocks(self, path5):
        tree = block_cut_tree(path5)
        for node in tree.nodes:
            if tree.degree(node) == 1:
                assert tree.nodes[node]["kind"] == BLOCK

    def test_cut_nodes_match_articulation_points(self, two_triangles_bridge):
        tree = block_cut_tree(two_triangles_bridge)
        cuts = {
            data["vertex"]
            for _, data in tree.nodes(data=True)
            if data["kind"] == CUT
        }
        assert cuts == {2, 3}

    def test_disconnected_raises(self):
        g = nx.Graph()
        g.add_edge(0, 1)
        g.add_edge(2, 3)
        with pytest.raises(ValueError):
            block_cut_tree(g)

    def test_empty_graph(self):
        tree = block_cut_tree(nx.Graph())
        assert tree.number_of_nodes() == 0

    def test_blocks_containing(self, two_triangles_bridge):
        tree = block_cut_tree(two_triangles_bridge)
        homes = blocks_containing(tree, 2)
        assert len(homes) == 2  # the triangle and the bridge

    def test_star_tree_shape(self, star6):
        # star: hub is the single cut vertex, one block per edge.
        tree = block_cut_tree(star6)
        cut_nodes = [n for n, d in tree.nodes(data=True) if d["kind"] == CUT]
        assert len(cut_nodes) == 1
        assert tree.degree(cut_nodes[0]) == 5
