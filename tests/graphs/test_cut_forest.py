"""Tests for the Proposition 5.8 rules and the nesting forest."""

import networkx as nx
import pytest

from repro.graphs import generators as gen
from repro.graphs.cut_forest import (
    covered_indices,
    cycle_node_families,
    displayed_vertices,
    families_noncrossing_on_cycle,
    forest_depth,
    indices_cross,
    nesting_forest,
)


class TestCycleNodeFamilies:
    def test_c6_paper_case(self):
        families = cycle_node_families(6)
        assert families["P1"] == [frozenset({0, 3})]
        assert families["P2"] == [frozenset({1, 4})]
        assert families["P3"] == [frozenset({2, 5})]

    def test_c7_paper_case(self):
        families = cycle_node_families(7)
        assert frozenset({0, 3}) in families["P1"]
        assert frozenset({0, 4}) in families["P1"]
        assert families["P2"] == [frozenset({1, 5})]
        assert families["P3"] == [frozenset({2, 6})]

    def test_even_large_cycles_cover_everything(self):
        for k in (8, 10, 12):
            families = cycle_node_families(k)
            assert covered_indices(families) == set(range(k)), k

    def test_odd_large_cycles_cover_everything(self):
        for k in (9, 11, 13):
            families = cycle_node_families(k)
            assert covered_indices(families) == set(range(k)), k

    def test_all_families_noncrossing(self):
        for k in range(6, 16):
            families = cycle_node_families(k)
            assert families_noncrossing_on_cycle(k, families), k

    def test_single_virtual_edge_case_k5(self):
        families = cycle_node_families(5, [(0, 1)])
        assert frozenset({0, 1}) in families["P1"]
        assert frozenset({0, 2}) in families["P1"]
        assert families["P2"] == [frozenset({1, 4})]

    def test_two_virtual_edges_case(self):
        families = cycle_node_families(5, [(0, 1), (0, 4)])
        assert frozenset({0, 2}) in families["P1"]
        assert frozenset({0, 3}) in families["P1"]
        assert frozenset({1, 4}) in families["P2"]
        assert families_noncrossing_on_cycle(5, families)

    def test_plain_small_cycle_has_no_cuts(self):
        families = cycle_node_families(5)
        assert all(not cuts for cuts in families.values())

    def test_tiny_cycle_guard(self):
        with pytest.raises(ValueError):
            cycle_node_families(2)

    def test_indices_cross(self):
        assert indices_cross(6, frozenset({0, 3}), frozenset({1, 4}))
        assert not indices_cross(8, frozenset({0, 4}), frozenset({1, 3}))
        assert not indices_cross(6, frozenset({0, 3}), frozenset({3, 5}))


class TestNestingForest:
    def test_ladder_rungs_form_a_chain(self):
        g = gen.ladder(6)
        rungs = [frozenset({2 * i, 2 * i + 1}) for i in range(1, 5)]
        forest = nesting_forest(g, rungs)
        assert forest.number_of_nodes() == 4
        # rungs nest linearly away from the anchor (vertex 0)
        assert forest_depth(forest) == 4
        roots = [c for c in forest.nodes if forest.in_degree(c) == 0]
        assert roots == [frozenset({2, 3})]

    def test_crossing_cuts_rejected(self, cycle6):
        with pytest.raises(ValueError, match="cross"):
            nesting_forest(cycle6, [frozenset({0, 3}), frozenset({1, 4})])

    def test_disjoint_cuts_are_siblings(self):
        # a spider of three legs with 2-cuts in different legs: no nesting
        g = gen.spider(3, 4)
        # vertices along legs: build cuts {leg vertices at positions 2,3}
        # use consecutive path pairs, which are 2-cuts of the spider
        cuts = [frozenset({1, 2}), frozenset({5, 6})]
        forest = nesting_forest(g, cuts)
        assert forest.number_of_edges() == 0

    def test_displayed_vertices(self):
        g = gen.ladder(5)
        rungs = [frozenset({2, 3}), frozenset({4, 5})]
        forest = nesting_forest(g, rungs)
        assert displayed_vertices(forest) == {2, 3, 4, 5}

    def test_empty_forest(self, cycle6):
        forest = nesting_forest(cycle6, [])
        assert forest_depth(forest) == 0
