"""Tests for deterministic graph generators."""

import networkx as nx
import pytest

from repro.graphs import generators as gen
from repro.graphs.minors import is_k2t_minor_free, largest_k2t_minor_singleton_hubs
from repro.graphs.validation import check_simple_connected


class TestBasicShapes:
    def test_path(self):
        g = gen.path(6)
        assert g.number_of_nodes() == 6
        assert g.number_of_edges() == 5

    def test_cycle(self):
        g = gen.cycle(7)
        assert all(g.degree(v) == 2 for v in g.nodes)
        assert nx.is_connected(g)

    def test_star(self):
        g = gen.star(8)
        assert g.degree(0) == 7
        assert sum(1 for v in g if g.degree(v) == 1) == 7

    def test_spider(self):
        g = gen.spider(3, 4)
        assert g.number_of_nodes() == 1 + 3 * 4
        assert g.degree(0) == 3

    def test_caterpillar(self):
        g = gen.caterpillar(4, 2)
        assert g.number_of_nodes() == 4 + 8
        assert nx.is_tree(g)

    def test_binary_tree(self):
        g = gen.complete_binary_tree(3)
        assert g.number_of_nodes() == 2 ** 4 - 1
        assert nx.is_tree(g)

    def test_binary_tree_depth_zero(self):
        g = gen.complete_binary_tree(0)
        assert g.number_of_nodes() == 1
        assert g.number_of_edges() == 0


class TestPaperFamilies:
    def test_fan_structure(self):
        g = gen.fan(5)
        assert g.degree(0) == 5
        assert nx.is_connected(g)
        # maximal outerplanar: 2n - 3 edges
        assert g.number_of_edges() == 2 * 6 - 3

    def test_fan_is_k23_free(self):
        assert is_k2t_minor_free(gen.fan(6), 3, node_limit=7)

    def test_wheel_minor_value(self):
        # hub + a rim vertex at rim-distance 2 see three disjoint
        # connectors (the middle vertex, the long arc, nothing more —
        # every connector must touch the rim vertex's two neighbors).
        assert largest_k2t_minor_singleton_hubs(gen.wheel(8)) == 3

    def test_theta_minor_value(self):
        for t in (3, 4):
            g = gen.theta(t, 3)
            assert largest_k2t_minor_singleton_hubs(g) == t

    def test_theta_rejects_parallel_edges(self):
        with pytest.raises(ValueError):
            gen.theta(3, 1)

    def test_book_contains_k2t_subgraph(self):
        g = gen.book(5)
        assert largest_k2t_minor_singleton_hubs(g) == 5

    def test_clique_with_pendants_domination(self):
        from repro.solvers.exact import minimum_dominating_set

        g = gen.clique_with_pendants(5)
        assert minimum_dominating_set(g) == {0}

    def test_clique_with_pendants_two_cuts(self):
        from repro.graphs.cuts import minimal_two_cuts

        g = gen.clique_with_pendants(5)
        cuts = set(minimal_two_cuts(g))
        for v in range(1, 5):
            assert frozenset({0, v}) in cuts

    def test_maximal_outerplanar_edge_count(self):
        g = gen.maximal_outerplanar(9)
        assert g.number_of_edges() == 2 * 9 - 3

    def test_maximal_outerplanar_k23_free(self):
        assert is_k2t_minor_free(gen.maximal_outerplanar(9), 3, node_limit=9)

    def test_cactus_chain(self):
        g = gen.cactus_chain(3, 5)
        check_simple_connected(g)
        # cacti: every edge in at most one cycle => m < 3(n-1)/2
        assert g.number_of_edges() <= 3 * (g.number_of_nodes() - 1) // 2

    def test_ladder_shape(self):
        g = gen.ladder(5)
        assert g.number_of_nodes() == 10
        assert g.number_of_edges() == 5 + 2 * 4

    def test_fan_chain_cut_vertices(self):
        from repro.graphs.cuts import cut_vertices

        g = gen.fan_chain(3, 4)
        assert len(cut_vertices(g)) >= 2

    def test_long_cycle_with_chords_type_one(self):
        from repro.graphs.ding import is_type_one

        g = gen.long_cycle_with_chords(12, 3)
        assert is_type_one(g, list(range(12)))

    def test_grid(self):
        g = gen.grid(3, 4)
        assert g.number_of_nodes() == 12
        assert g.number_of_edges() == 3 * 3 + 2 * 4

    def test_complete_bipartite(self):
        g = gen.complete_bipartite(2, 5)
        assert g.number_of_edges() == 10


class TestInvariants:
    def test_all_generators_simple_connected(self, small_zoo):
        for g in small_zoo:
            check_simple_connected(g)

    def test_integer_labels(self, small_zoo):
        from repro.graphs.validation import assert_vertices_are_integers

        for g in small_zoo:
            assert_vertices_are_integers(g)

    def test_bad_arguments(self):
        with pytest.raises(ValueError):
            gen.path(0)
        with pytest.raises(ValueError):
            gen.cycle(2)
        with pytest.raises(ValueError):
            gen.fan(0)
        with pytest.raises(ValueError):
            gen.ladder(0)
        with pytest.raises(ValueError):
            gen.book(0)
        with pytest.raises(ValueError):
            gen.grid(0, 3)
