"""Differential tests: kernel primitives vs plain-networkx references.

The reference implementations below are the pre-kernel set-walking
code, kept verbatim so every kernel primitive (and every rewired hot
path) can be checked against the semantics the repo shipped with.
"""

from __future__ import annotations

from collections import deque

import networkx as nx
import pytest

from repro.analysis.domination import (
    is_b_dominating_set,
    is_dominating_set,
    undominated_vertices,
)
from repro.core.d2 import d2_set, gamma
from repro.graphs.kernel import GraphKernel, invalidate_kernel, iter_bits, kernel_for
from repro.graphs.util import ball, ball_of_set, closed_neighborhood_of_set
from repro.solvers.greedy import greedy_b_dominating_set


# -- pre-kernel reference implementations ---------------------------------


def nx_closed_neighborhood_of_set(graph, vertices):
    result = set()
    for v in vertices:
        result.add(v)
        result.update(graph.neighbors(v))
    return result


def nx_ball(graph, center, radius):
    if radius < 0:
        return set()
    seen = {center}
    frontier = deque([(center, 0)])
    while frontier:
        vertex, dist = frontier.popleft()
        if dist == radius:
            continue
        for neighbor in graph.neighbors(vertex):
            if neighbor not in seen:
                seen.add(neighbor)
                frontier.append((neighbor, dist + 1))
    return seen


def nx_undominated(graph, candidate):
    return set(graph.nodes) - nx_closed_neighborhood_of_set(graph, candidate)


def nx_gamma(graph, v):
    n_v = nx_closed_neighborhood_of_set(graph, [v])
    for u in graph.neighbors(v):
        if n_v <= nx_closed_neighborhood_of_set(graph, [u]):
            return 1
    return 2


def nx_greedy_b_dominating_set(graph, targets, candidates=None):
    remaining = set(targets)
    if not remaining:
        return set()
    if candidates is None:
        candidate_set = nx_closed_neighborhood_of_set(graph, remaining)
    else:
        candidate_set = set(candidates)
    covers = {
        c: nx_closed_neighborhood_of_set(graph, [c]) & remaining for c in candidate_set
    }
    chosen = set()
    while remaining:
        gain, pick = 0, None
        for c in sorted(candidate_set - chosen, key=repr):
            value = len(covers[c] & remaining)
            if value > gain:
                gain, pick = value, c
        if pick is None:
            raise ValueError("some target cannot be dominated by any candidate")
        chosen.add(pick)
        remaining -= covers[pick]
    return chosen


def random_graphs():
    """A spread of random instances, including disconnected ones."""
    cases = []
    for seed, (n, p) in enumerate([(1, 0.5), (7, 0.4), (16, 0.2), (25, 0.1), (40, 0.05)]):
        cases.append(nx.gnp_random_graph(n, p, seed=seed))
    return cases


# -- kernel structure -----------------------------------------------------


class TestKernelStructure:
    def test_zero_node_graph(self):
        kernel = GraphKernel(nx.Graph())
        assert kernel.n == 0
        assert kernel.full_mask == 0
        assert kernel.dominates(0)
        assert kernel.undominated(0) == 0
        assert kernel.span_counts(0) == []

    def test_isolated_vertices(self):
        graph = nx.Graph()
        graph.add_nodes_from([0, 1, 2])
        graph.add_edge(0, 1)
        kernel = kernel_for(graph)
        assert kernel.labels_of(
            kernel.closed_neighborhood_bits(kernel.bits_of([2]))
        ) == {2}
        assert not kernel.dominates(kernel.bits_of([0]))
        assert kernel.dominates(kernel.bits_of([0, 2]))

    def test_tuple_and_mixed_unsortable_labels(self):
        graph = nx.Graph()
        graph.add_edge(("a", 1), "b")
        graph.add_edge("b", 3)
        graph.add_node(frozenset({9}))
        with pytest.raises(TypeError):
            sorted(graph.nodes)  # labels are genuinely unsortable
        kernel = kernel_for(graph)
        assert set(kernel.labels) == set(graph.nodes)
        assert kernel.labels_of(kernel.ball_bits("b", 1)) == {("a", 1), "b", 3}
        assert is_dominating_set(graph, ["b", frozenset({9})])
        assert undominated_vertices(graph, [("a", 1)]) == {3, frozenset({9})}

    def test_csr_rows_sorted_and_symmetric(self):
        for graph in random_graphs():
            kernel = kernel_for(graph)
            for i in range(kernel.n):
                row = list(kernel.neighbor_row(i))
                assert row == sorted(row)
                assert {kernel.labels[j] for j in row} == set(
                    graph.neighbors(kernel.labels[i])
                )

    def test_back_ports_invert_ports(self):
        for graph in random_graphs():
            kernel = kernel_for(graph)
            back = kernel.back_ports()
            indptr, indices = kernel.indptr, kernel.indices
            for u in range(kernel.n):
                for s in range(indptr[u], indptr[u + 1]):
                    v = indices[s]
                    assert indices[indptr[v] + back[s]] == u

    def test_unknown_label_raises(self):
        kernel = kernel_for(nx.path_graph(3))
        with pytest.raises(KeyError):
            kernel.bits_of([99])

    def test_b_domination_foreign_target_is_false(self):
        graph = nx.path_graph(3)
        assert not is_b_dominating_set(graph, {1}, [0, 99])
        assert is_b_dominating_set(graph, {1}, [0, 2])
        with pytest.raises(KeyError):  # unknown *candidate* is an error
            is_b_dominating_set(graph, {99}, [0])

    def test_ball_sparse_dense_paths_agree(self):
        # Straddle the dense cut: a graph big enough that radius-2 balls
        # stay sparse while radius-8 balls go dense mid-walk.
        graph = nx.random_regular_graph(3, 400, seed=5)
        for radius in (1, 2, 4, 8, 12):
            assert ball(graph, 0, radius) == nx_ball(graph, 0, radius)

    def test_iter_bits(self):
        assert list(iter_bits(0)) == []
        assert list(iter_bits(0b101001)) == [0, 3, 5]


class TestKernelCache:
    def test_cache_hit_is_same_object(self):
        graph = nx.path_graph(5)
        assert kernel_for(graph) is kernel_for(graph)

    def test_node_mutation_rebuilds(self):
        graph = nx.path_graph(5)
        before = kernel_for(graph)
        graph.add_edge(4, 5)  # node count changed: O(1) guard catches it
        after = kernel_for(graph)
        assert after is not before
        assert 5 in after.index_of

    def test_edge_mutation_needs_invalidate(self):
        graph = nx.path_graph(5)
        before = kernel_for(graph)
        graph.add_edge(0, 4)  # same node count: contract requires invalidate
        invalidate_kernel(graph)
        after = kernel_for(graph)
        assert after is not before
        assert is_dominating_set(graph, [0, 2])  # 4 now dominated via 0

    def test_distinct_graphs_distinct_kernels(self):
        assert kernel_for(nx.path_graph(4)) is not kernel_for(nx.path_graph(4))

    def test_invalidate_clears_derived_caches(self):
        from repro.graphs.structure import is_outerplanar

        graph = nx.cycle_graph(6)
        assert is_outerplanar(graph)
        graph.remove_edges_from(list(graph.edges))
        graph.add_edges_from(nx.complete_graph(4).edges)  # n, m unchanged
        invalidate_kernel(graph)
        assert not is_outerplanar(graph)  # K4 verdict, not the stale C6 one


# -- differential: primitives vs references -------------------------------


class TestKernelAgainstNetworkx:
    @pytest.mark.parametrize("graph", random_graphs(), ids=lambda g: f"n{len(g)}")
    def test_closed_neighborhoods(self, graph):
        nodes = list(graph.nodes)
        for size in (0, 1, len(nodes) // 2, len(nodes)):
            subset = nodes[:size]
            assert closed_neighborhood_of_set(graph, subset) == (
                nx_closed_neighborhood_of_set(graph, subset)
            )

    @pytest.mark.parametrize("graph", random_graphs(), ids=lambda g: f"n{len(g)}")
    def test_balls(self, graph):
        for v in graph.nodes:
            for radius in (-1, 0, 1, 2, 3, len(graph)):
                assert ball(graph, v, radius) == nx_ball(graph, v, radius)
        centers = list(graph.nodes)[:3]
        for radius in (0, 1, 2):
            expected = set()
            for c in centers:
                expected |= nx_ball(graph, c, radius)
            assert ball_of_set(graph, centers, radius) == expected

    @pytest.mark.parametrize("graph", random_graphs(), ids=lambda g: f"n{len(g)}")
    def test_domination_checks(self, graph):
        nodes = list(graph.nodes)
        candidates = [nodes[:1], nodes[: len(nodes) // 2], nodes]
        for candidate in candidates:
            assert undominated_vertices(graph, candidate) == nx_undominated(
                graph, candidate
            )
            assert is_dominating_set(graph, candidate) == (
                not nx_undominated(graph, candidate)
            )
            targets = nodes[::2]
            assert is_b_dominating_set(graph, candidate, targets) == (
                set(targets) <= nx_closed_neighborhood_of_set(graph, candidate)
            )

    @pytest.mark.parametrize("graph", random_graphs(), ids=lambda g: f"n{len(g)}")
    def test_span_counts(self, graph):
        kernel = kernel_for(graph)
        nodes = list(graph.nodes)
        undominated = set(nodes[::3])
        spans = kernel.span_counts(kernel.bits_of(undominated))
        for v in nodes:
            expected = len(nx_closed_neighborhood_of_set(graph, [v]) & undominated)
            assert spans[kernel.index(v)] == expected

    @pytest.mark.parametrize("graph", random_graphs(), ids=lambda g: f"n{len(g)}")
    def test_gamma_and_d2(self, graph):
        for v in graph.nodes:
            assert gamma(graph, v) == nx_gamma(graph, v)
        assert d2_set(graph) == {v for v in graph.nodes if nx_gamma(graph, v) >= 2}

    @pytest.mark.parametrize("graph", random_graphs(), ids=lambda g: f"n{len(g)}")
    def test_greedy_matches_reference(self, graph):
        if graph.number_of_nodes() == 0:
            return
        assert greedy_b_dominating_set(graph, graph.nodes) == (
            nx_greedy_b_dominating_set(graph, graph.nodes)
        )
        targets = list(graph.nodes)[::2]
        assert greedy_b_dominating_set(graph, targets) == (
            nx_greedy_b_dominating_set(graph, targets)
        )
