"""Tests for true-twin detection and removal."""

import networkx as nx

from repro.graphs import generators as gen
from repro.graphs.twins import (
    has_true_twins,
    remove_true_twins,
    true_twin_classes,
    twin_representative,
)
from repro.analysis.domination import is_dominating_set
from repro.solvers.exact import domination_number


class TestTwinClasses:
    def test_path_has_no_twins(self, path5):
        assert not has_true_twins(path5)
        assert all(len(c) == 1 for c in true_twin_classes(path5))

    def test_clique_is_one_class(self):
        g = nx.complete_graph(4)
        classes = true_twin_classes(g)
        assert classes == [{0, 1, 2, 3}]

    def test_leaves_of_star_are_not_twins(self, star6):
        # Leaves share the hub but are not adjacent to each other:
        # N[l1] = {l1, hub} != {l2, hub} = N[l2].
        assert not has_true_twins(star6)

    def test_triangle_with_pendant(self):
        g = nx.Graph([(0, 1), (1, 2), (2, 0), (0, 3)])
        classes = {frozenset(c) for c in true_twin_classes(g)}
        assert frozenset({1, 2}) in classes

    def test_representative_is_minimum(self):
        assert twin_representative({3, 1, 2}) == 1


class TestRemoval:
    def test_clique_collapses_to_single_vertex(self):
        g = nx.complete_graph(5)
        reduced, mapping = remove_true_twins(g)
        assert reduced.number_of_nodes() == 1
        assert set(mapping.values()) == {0}

    def test_mapping_is_identity_without_twins(self, path5):
        reduced, mapping = remove_true_twins(path5)
        assert reduced.number_of_nodes() == 5
        assert all(mapping[v] == v for v in path5.nodes)

    def test_result_is_twin_free(self, small_zoo):
        for g in small_zoo:
            reduced, _ = remove_true_twins(g)
            assert not has_true_twins(reduced)

    def test_iterated_removal(self):
        # K5 plus a pendant: clique classes shrink over iterations.
        g = nx.complete_graph(5)
        g.add_edge(0, 9)
        reduced, _ = remove_true_twins(g)
        assert not has_true_twins(reduced)
        # Vertices 1..4 are mutual twins (all adjacent to 0 and each
        # other); 0 is distinguished by the pendant.
        assert reduced.number_of_nodes() == 3

    def test_domination_number_preserved(self, small_zoo):
        for g in small_zoo:
            reduced, _ = remove_true_twins(g)
            assert domination_number(reduced) == domination_number(g)

    def test_reduced_mds_dominates_original(self, small_zoo):
        from repro.solvers.exact import minimum_dominating_set

        for g in small_zoo:
            reduced, _ = remove_true_twins(g)
            solution = minimum_dominating_set(reduced)
            assert is_dominating_set(g, solution)

    def test_original_graph_untouched(self):
        g = nx.complete_graph(4)
        remove_true_twins(g)
        assert g.number_of_nodes() == 4

    def test_mapping_path_compressed(self):
        g = nx.complete_graph(6)
        _, mapping = remove_true_twins(g)
        for rep in mapping.values():
            assert mapping[rep] == rep
