"""Tests for neighborhood/ball/diameter utilities."""

import networkx as nx
import pytest

from repro.graphs import generators as gen
from repro.graphs.util import (
    ball,
    ball_of_set,
    closed_neighborhood,
    closed_neighborhood_of_set,
    connected_components_of_subset,
    distances_from,
    induced_ball,
    induced_ball_of_set,
    is_d_bounded,
    r_components,
    relabel_to_integers,
    weak_diameter,
)


class TestClosedNeighborhood:
    def test_includes_vertex_itself(self, path5):
        assert 2 in closed_neighborhood(path5, 2)

    def test_path_interior(self, path5):
        assert closed_neighborhood(path5, 2) == {1, 2, 3}

    def test_path_endpoint(self, path5):
        assert closed_neighborhood(path5, 0) == {0, 1}

    def test_isolated_vertex(self):
        g = nx.Graph()
        g.add_node(7)
        assert closed_neighborhood(g, 7) == {7}

    def test_of_set_union(self, path5):
        assert closed_neighborhood_of_set(path5, [0, 4]) == {0, 1, 3, 4}

    def test_of_empty_set(self, path5):
        assert closed_neighborhood_of_set(path5, []) == set()


class TestBall:
    def test_radius_zero(self, cycle6):
        assert ball(cycle6, 0, 0) == {0}

    def test_negative_radius_empty(self, cycle6):
        assert ball(cycle6, 0, -1) == set()

    def test_radius_one_equals_closed_neighborhood(self, cycle6):
        assert ball(cycle6, 3, 1) == closed_neighborhood(cycle6, 3)

    def test_radius_covers_cycle(self, cycle6):
        assert ball(cycle6, 0, 3) == set(cycle6.nodes)

    def test_radius_two_on_path(self, path5):
        assert ball(path5, 0, 2) == {0, 1, 2}

    def test_ball_of_set_multi_source(self, path5):
        assert ball_of_set(path5, [0, 4], 1) == {0, 1, 3, 4}

    def test_large_radius_saturates(self, path5):
        assert ball(path5, 2, 100) == set(path5.nodes)


class TestInducedBall:
    def test_induced_ball_edges(self, cycle6):
        sub = induced_ball(cycle6, 0, 1)
        assert set(sub.nodes) == {5, 0, 1}
        assert sub.number_of_edges() == 2

    def test_induced_ball_of_set(self, path5):
        sub = induced_ball_of_set(path5, [0, 4], 1)
        assert set(sub.nodes) == {0, 1, 3, 4}
        assert sub.number_of_edges() == 2

    def test_induced_ball_is_copy(self, cycle6):
        sub = induced_ball(cycle6, 0, 1)
        sub.remove_node(0)
        assert 0 in cycle6.nodes


class TestDistances:
    def test_distances_from_source(self, path5):
        assert distances_from(path5, 0) == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_cutoff_truncates(self, path5):
        assert distances_from(path5, 0, cutoff=2) == {0: 0, 1: 1, 2: 2}

    def test_disconnected_unreached(self):
        g = nx.Graph()
        g.add_edge(0, 1)
        g.add_node(2)
        assert 2 not in distances_from(g, 0)


class TestWeakDiameter:
    def test_full_path(self, path5):
        assert weak_diameter(path5, path5.nodes) == 4

    def test_subset_uses_graph_distances(self, cycle6):
        # {0, 3} are opposite on C6: distance 3 through the graph.
        assert weak_diameter(cycle6, [0, 3]) == 3

    def test_weak_vs_induced(self):
        # On a cycle, endpoints of a long arc are close through the rest
        # of the graph even though the induced subgraph is disconnected.
        g = gen.cycle(8)
        assert weak_diameter(g, [0, 2]) == 2

    def test_singleton_zero(self, path5):
        assert weak_diameter(path5, [3]) == 0

    def test_disconnected_raises(self):
        g = nx.Graph()
        g.add_edge(0, 1)
        g.add_edge(2, 3)
        with pytest.raises(ValueError):
            weak_diameter(g, [0, 2])

    def test_is_d_bounded(self, path5):
        assert is_d_bounded(path5, [0, 2], 2)
        assert not is_d_bounded(path5, [0, 4], 3)

    def test_is_d_bounded_disconnected_false(self):
        g = nx.Graph()
        g.add_edge(0, 1)
        g.add_edge(2, 3)
        assert not is_d_bounded(g, [0, 2], 100)


class TestRComponents:
    def test_single_component_when_r_large(self, path5):
        comps = r_components(path5, {0, 2, 4}, 2)
        assert comps == [{0, 2, 4}]

    def test_splits_when_r_small(self, path5):
        comps = r_components(path5, {0, 4}, 2)
        assert sorted(map(sorted, comps)) == [[0], [4]]

    def test_r_one_is_induced_components(self, path5):
        comps = r_components(path5, {0, 1, 3}, 1)
        assert sorted(map(sorted, comps)) == [[0, 1], [3]]

    def test_empty_set(self, path5):
        assert r_components(path5, set(), 3) == []

    def test_hops_measured_in_host_graph(self, cycle6):
        # 0 and 2 are two apart through vertex 1 even if 1 is not in the set.
        comps = r_components(cycle6, {0, 2}, 2)
        assert comps == [{0, 2}]


class TestRelabel:
    def test_relabel_to_integers(self):
        g = nx.Graph()
        g.add_edge("b", "a")
        relabelled, mapping = relabel_to_integers(g)
        assert set(relabelled.nodes) == {0, 1}
        assert relabelled.has_edge(mapping["a"], mapping["b"])

    def test_connected_components_of_subset(self, path5):
        comps = connected_components_of_subset(path5, [0, 1, 3])
        assert sorted(map(sorted, comps)) == [[0, 1], [3]]
