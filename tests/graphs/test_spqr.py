"""Tests for the triconnected decomposition and non-crossing families."""

import networkx as nx
import pytest

from repro.graphs import generators as gen
from repro.graphs.cuts import minimal_two_cuts
from repro.graphs.spqr import (
    SkeletonNode,
    crossing_graph,
    decomposition_two_cuts,
    noncrossing_families,
    triconnected_decomposition,
)
from repro.core.interesting import interesting_cuts


class TestDecomposition:
    def test_cycle_is_s_leaf(self, cycle6):
        root = triconnected_decomposition(cycle6)
        assert root.kind == "S"
        assert not root.children

    def test_three_connected_is_r_leaf(self):
        root = triconnected_decomposition(nx.complete_graph(5))
        assert root.kind == "R"

    def test_edge_is_q_leaf(self):
        root = triconnected_decomposition(nx.path_graph(2))
        assert root.kind == "Q"

    def test_ladder_splits_on_rungs(self, ladder5):
        root = triconnected_decomposition(ladder5)
        assert root.children
        cuts = decomposition_two_cuts(root)
        assert cuts  # at least one virtual edge recorded

    def test_leaves_are_basic(self, small_zoo):
        for g in small_zoo:
            if not nx.is_connected(g):
                continue
            root = triconnected_decomposition(g)
            for leaf in root.leaves():
                sk = leaf.skeleton
                assert leaf.kind in ("S", "R", "Q", "P")
                if leaf.kind == "S":
                    assert all(sk.degree(v) == 2 for v in sk.nodes)

    def test_disconnected_raises(self):
        g = nx.Graph()
        g.add_edge(0, 1)
        g.add_edge(2, 3)
        with pytest.raises(ValueError):
            triconnected_decomposition(g)

    def test_all_nodes_enumerates(self, ladder5):
        root = triconnected_decomposition(ladder5)
        assert len(root.all_nodes()) >= len(root.leaves())


class TestNonCrossing:
    def test_c6_needs_three_families(self, cycle6):
        # Section 5.3: the three opposite cuts of C6 pairwise cross.
        cuts = [frozenset({0, 3}), frozenset({1, 4}), frozenset({2, 5})]
        families = noncrossing_families(cycle6, cuts)
        assert len(families) == 3

    def test_ladder_rungs_alone_nest(self, ladder5):
        # Pure rung cuts are parallel: a single family suffices.
        rungs = [frozenset({2 * i, 2 * i + 1}) for i in range(1, 4)]
        families = noncrossing_families(ladder5, rungs)
        assert len(families) == 1

    def test_families_internally_noncrossing(self, ladder5):
        from repro.graphs.cuts import crossing_two_cuts

        cuts = minimal_two_cuts(ladder5)
        for family in noncrossing_families(ladder5, cuts):
            for i, c1 in enumerate(family):
                for c2 in family[i + 1:]:
                    assert not crossing_two_cuts(ladder5, c1, c2)

    def test_covering_families_at_most_three(self, small_zoo):
        # Proposition 5.8: a suitable subset of interesting cuts covering
        # every interesting vertex splits into <= 3 non-crossing families.
        from repro.core.interesting import covering_noncrossing_families

        for g in small_zoo:
            families = covering_noncrossing_families(g)
            assert len(families) <= 3, g

    def test_covering_families_on_odd_cycle(self):
        from repro.core.interesting import covering_noncrossing_families

        families = covering_noncrossing_families(gen.cycle(7))
        covered = set().union(*[set().union(*f) for f in families if f]) if families else set()
        assert len(families) <= 3
        # every vertex of C7 is interesting and must appear somewhere
        assert covered == set(range(7))

    def test_crossing_graph_structure(self, cycle6):
        cuts = [frozenset({0, 3}), frozenset({1, 4}), frozenset({2, 5})]
        cg = crossing_graph(cycle6, cuts)
        assert cg.number_of_edges() == 3  # a triangle

    def test_empty_cut_list(self, cycle6):
        assert noncrossing_families(cycle6, []) == []
