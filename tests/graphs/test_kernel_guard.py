"""The REPRO_KERNEL_GUARD runtime staleness sanitizer."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.graphs import (
    StaleKernelError,
    invalidate_kernel,
    kernel_for,
    kernel_guard_enabled,
    set_kernel_guard,
)
from repro.graphs.kernel import KernelWire, graph_from_wire


@pytest.fixture
def guard():
    previous = set_kernel_guard(True)
    yield
    set_kernel_guard(previous)


def path4() -> nx.Graph:
    graph = nx.Graph()
    graph.add_edges_from([(0, 1), (1, 2), (2, 3)])
    return graph


def test_set_kernel_guard_returns_previous_state():
    previous = set_kernel_guard(True)
    try:
        assert kernel_guard_enabled()
        assert set_kernel_guard(previous) is True
    finally:
        set_kernel_guard(previous)
    assert kernel_guard_enabled() == previous


def test_clean_hit_path_is_untouched(guard):
    graph = path4()
    kernel = kernel_for(graph)
    assert kernel_for(graph) is kernel  # repeated hits stay cached


def test_equal_count_mutation_raises_stale_kernel_error(guard):
    graph = path4()
    kernel_for(graph)
    graph.add_edge(0, 3)  # same node count: the O(1) guard cannot see it
    with pytest.raises(StaleKernelError) as excinfo:
        kernel_for(graph)
    message = str(excinfo.value)
    assert "invalidate_kernel" in message
    assert "n=4, m=3" in message  # fingerprint recorded at build time
    assert "n=4, m=4" in message  # the mutated topology


def test_stale_kernel_is_dropped_so_retry_succeeds(guard):
    graph = path4()
    stale = kernel_for(graph)
    graph.add_edge(0, 3)
    with pytest.raises(StaleKernelError):
        kernel_for(graph)
    rebuilt = kernel_for(graph)
    assert rebuilt is not stale
    assert len(rebuilt.indices) == 2 * graph.number_of_edges()


def test_invalidate_after_mutation_never_raises(guard):
    graph = path4()
    kernel_for(graph)
    graph.add_edge(0, 3)
    invalidate_kernel(graph)
    kernel = kernel_for(graph)
    assert len(kernel.indices) == 2 * graph.number_of_edges()


def test_node_count_change_rebuilds_without_raising(guard):
    # A node-count change is caught by the existing O(1) hit guard and
    # rebuilds; the sanitizer must not turn that legal path into an error.
    graph = path4()
    kernel_for(graph)
    graph.add_node(99)
    kernel = kernel_for(graph)
    assert kernel.n == 5


def test_kernel_cached_before_guard_enabled_is_adopted():
    previous = set_kernel_guard(False)
    try:
        graph = path4()
        kernel_for(graph)  # cached with no fingerprint recorded
        set_kernel_guard(True)
        kernel_for(graph)  # adopts a fingerprint instead of raising
        graph.add_edge(0, 3)
        with pytest.raises(StaleKernelError):
            kernel_for(graph)
    finally:
        set_kernel_guard(previous)


def test_graph_from_wire_seeds_guard_state(guard):
    graph = path4()
    wire = kernel_for(graph).to_wire()
    assert isinstance(wire, KernelWire)
    rebuilt = graph_from_wire(wire)
    kernel_for(rebuilt)  # pre-seeded kernel verifies cleanly
    rebuilt.add_edge(0, 3)
    with pytest.raises(StaleKernelError):
        kernel_for(rebuilt)


def test_guard_disabled_serves_stale_kernel_silently():
    previous = set_kernel_guard(False)
    try:
        graph = path4()
        kernel = kernel_for(graph)
        graph.add_edge(0, 3)
        assert kernel_for(graph) is kernel  # the documented O(1) trade-off
    finally:
        set_kernel_guard(previous)
        invalidate_kernel(graph)
