"""Tests for seeded random family generators."""

import random

import networkx as nx
import pytest

from repro.graphs.minors import is_k2t_minor_free, largest_k2t_minor_singleton_hubs
from repro.graphs.random_families import (
    random_cactus,
    random_caterpillar,
    random_ding_augmentation,
    random_k2t_free,
    random_outerplanar,
    random_tree,
    sample_family,
)
from repro.graphs.validation import check_simple_connected


class TestDeterminism:
    def test_same_seed_same_graph(self):
        for maker in (
            lambda s: random_tree(15, s),
            lambda s: random_cactus(3, 5, s),
            lambda s: random_outerplanar(10, s),
            lambda s: random_ding_augmentation(3, 2, s),
        ):
            a, b = maker(7), maker(7)
            assert sorted(a.edges) == sorted(b.edges)

    def test_different_seeds_differ_somewhere(self):
        graphs = [random_tree(20, s) for s in range(6)]
        edge_sets = {frozenset(map(frozenset, g.edges)) for g in graphs}
        assert len(edge_sets) > 1

    def test_accepts_rng_instance(self):
        rng = random.Random(3)
        g = random_tree(10, rng)
        assert g.number_of_nodes() == 10


class TestShapes:
    def test_random_tree_is_tree(self):
        for seed in range(5):
            g = random_tree(17, seed)
            assert nx.is_tree(g)

    def test_tiny_trees(self):
        assert random_tree(1, 0).number_of_nodes() == 1
        assert random_tree(2, 0).number_of_edges() == 1

    def test_caterpillar_is_tree(self):
        for seed in range(3):
            assert nx.is_tree(random_caterpillar(5, 3, seed))

    def test_cactus_edge_bound(self):
        for seed in range(4):
            g = random_cactus(4, 6, seed)
            check_simple_connected(g)
            assert g.number_of_edges() <= 3 * (g.number_of_nodes() - 1) // 2

    def test_outerplanar_is_maximal(self):
        for seed in range(4):
            g = random_outerplanar(9, seed)
            assert g.number_of_edges() == 2 * 9 - 3

    def test_ding_augmentation_connected(self):
        for seed in range(5):
            g = random_ding_augmentation(4, 3, seed)
            check_simple_connected(g)


class TestMinorFreeness:
    def test_outerplanar_k23_free(self):
        for seed in range(3):
            g = random_outerplanar(9, seed)
            assert is_k2t_minor_free(g, 3, node_limit=9)

    def test_cactus_k23_free_fast(self):
        for seed in range(3):
            g = random_cactus(3, 5, seed)
            assert largest_k2t_minor_singleton_hubs(g) < 3

    def test_random_k2t_free_respects_detector(self):
        for seed in range(3):
            g = random_k2t_free(10, 3, seed)
            assert largest_k2t_minor_singleton_hubs(g) < 3

    def test_random_k2t_free_exact_small(self):
        g = random_k2t_free(9, 4, 1)
        # the generator's guard is singleton-hub; verify exactly here
        from repro.graphs.minors import largest_k2t_minor

        assert largest_k2t_minor(g, node_limit=9) <= 4

    def test_random_k2t_free_rejects_small_t(self):
        with pytest.raises(ValueError):
            random_k2t_free(10, 2)


class TestSampleFamily:
    def test_known_names(self):
        for name in ("tree", "caterpillar", "cactus", "outerplanar", "ding"):
            graphs = sample_family(name, [10, 15], t=4)
            assert len(graphs) == 2

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            sample_family("nope", [10], t=4)
