"""Differential tests: the packed (numpy) kernel backend vs the int backend.

Every primitive the two backends share is pinned to identical output on
the same graph, the backend switch itself is pinned at threshold ± 1,
and the streaming ingestion/wire paths are pinned to build the same
kernel the nx route builds.
"""

from __future__ import annotations

import os
import subprocess
import sys

import networkx as nx
import numpy as np
import pytest

from repro.analysis.domination import (
    is_b_dominating_set,
    is_dominating_set,
    undominated_vertices,
)
from repro.api import simulate, solve, solve_many
from repro.api.config import RunConfig
from repro.core.d2 import d2_dominating_set, d2_set, gamma
from repro.graphs.kernel import (
    GraphKernel,
    KernelView,
    instance_from_wire,
    invalidate_kernel,
    iter_bits,
    kernel_backend,
    kernel_for,
    kernel_from_edge_file,
    kernel_from_edges,
    kernel_from_wire,
    read_wire,
    set_kernel_backend,
    wire_digest,
    write_wire,
)
from repro.graphs.packed import PackedGraphKernel, PackedMask
from repro.graphs.twins import has_true_twins, remove_true_twins, true_twin_classes
from repro.solvers.bounds import two_packing_lower_bound
from repro.solvers.greedy import greedy_dominating_set


@pytest.fixture
def restore_backend():
    previous = kernel_backend()
    yield
    set_kernel_backend(previous[0], threshold=previous[1])


def zoo():
    graphs = [
        nx.Graph(),
        nx.path_graph(1),
        nx.path_graph(7),
        nx.cycle_graph(9),
        nx.star_graph(8),
        nx.complete_graph(6),
        nx.grid_2d_graph(3, 4),  # tuple labels
        nx.gnp_random_graph(24, 0.15, seed=3),
        nx.gnp_random_graph(30, 0.4, seed=7),
    ]
    isolated = nx.gnp_random_graph(12, 0.3, seed=1)
    isolated.add_nodes_from([50, 51])  # isolated vertices
    graphs.append(isolated)
    loops = nx.path_graph(5)
    loops.add_edge(2, 2)  # self-loop
    graphs.append(loops)
    return graphs


def both_kernels(graph):
    return GraphKernel(graph), PackedGraphKernel.from_graph(graph)


def as_int_mask(kernel, pmask):
    """Decode a PackedMask to the int backend's mask over `kernel`."""
    return sum(1 << int(i) for i in pmask.indices())


@pytest.mark.parametrize("graph", zoo(), ids=lambda g: f"n{g.number_of_nodes()}")
def test_primitives_agree(graph):
    ik, pk = both_kernels(graph)
    assert pk.labels == ik.labels
    assert pk.n == ik.n
    assert pk.edge_count() == ik.edge_count() == graph.number_of_edges()
    labels = list(ik.labels)
    rng = np.random.default_rng(11)
    subsets = [
        [],
        labels,
        [v for v in labels if rng.random() < 0.4],
        [v for v in labels if rng.random() < 0.15],
    ]
    for subset in subsets:
        imask = ik.bits_of(subset)
        pmask = pk.bits_of(subset)
        assert as_int_mask(pk, pmask) == imask
        assert pk.labels_of(pmask) == ik.labels_of(imask)
        assert pmask.bit_count() == imask.bit_count()
        assert as_int_mask(pk, pk.closed_neighborhood_bits(pmask)) == (
            ik.closed_neighborhood_bits(imask)
        )
        assert as_int_mask(pk, pk.union_closed_bits(subset)) == (
            ik.union_closed_bits(subset)
        )
        assert pk.dominates(pk.union_closed_bits(subset)) == ik.dominates(
            ik.union_closed_bits(subset)
        )
        assert pk.dominates_vertices(subset) == ik.dominates_vertices(subset)
        assert as_int_mask(pk, pk.undominated(pmask)) == ik.undominated(imask)
        assert pk.span_counts(pmask).tolist() == ik.span_counts(imask)
        for radius in (0, 1, 2):
            assert as_int_mask(pk, pk.ball_bits_from_mask(pmask, radius)) == (
                ik.ball_bits_from_mask(imask, radius)
            )
            assert pk.ball_labels_of_set(subset, radius) == (
                ik.ball_labels_of_set(subset, radius)
            )
        got = [as_int_mask(pk, c) for c in pk.components_of_mask(pmask)]
        want = list(ik.components_of_mask(imask))
        assert got == want
        assert pk.count_components_of_mask(pmask) == ik.count_components_of_mask(imask)
        assert pk.is_mask_connected(pmask) == ik.is_mask_connected(imask)
    for v in labels[:6]:
        assert pk.index(v) == ik.index(v)
        assert pk.degree(pk.index(v)) == ik.degree(ik.index(v))
        assert list(pk.neighbor_row(pk.index(v))) == list(ik.neighbor_row(ik.index(v)))
        for radius in (0, 1, 3):
            assert pk.ball_labels(v, radius) == ik.ball_labels(v, radius)
    assert list(pk.back_ports()) == list(ik.back_ports())


@pytest.mark.parametrize("graph", zoo(), ids=lambda g: f"n{g.number_of_nodes()}")
def test_wires_and_digests_agree(graph):
    ik, pk = both_kernels(graph)
    assert pk.to_wire() == ik.to_wire()
    assert wire_digest(pk.to_wire()) == wire_digest(ik.to_wire())


def test_wire_digest_matches_historical_formula():
    import hashlib

    for graph in zoo():
        wire = GraphKernel(graph).to_wire()
        hasher = hashlib.sha256()
        hasher.update(repr(wire.labels).encode("utf-8"))
        hasher.update(wire.indptr)
        hasher.update(wire.indices)
        assert wire_digest(wire) == hasher.hexdigest()


def test_packed_mask_operators():
    a = PackedMask.from_indices(70, [0, 3, 64, 69])
    b = PackedMask.from_indices(70, [3, 5, 69])
    assert (a & b).indices().tolist() == [3, 69]
    assert (a | b).indices().tolist() == [0, 3, 5, 64, 69]
    assert (a ^ b).indices().tolist() == [0, 5, 64]
    assert (~a).bit_count() == 70 - 4
    assert (~PackedMask.zeros(70)) == PackedMask.full(70)
    assert bool(a) and not bool(PackedMask.zeros(70))
    assert a != b and a == PackedMask.from_indices(70, [69, 64, 3, 0])
    assert PackedMask.from_bool(a.to_bool()) == a
    with pytest.raises(ValueError):
        a & PackedMask.zeros(64)


def test_closed_bits_is_not_available_on_packed():
    pk = PackedGraphKernel.from_graph(nx.path_graph(5))
    with pytest.raises(AttributeError, match="REPRO_KERNEL_BACKEND=int"):
        pk.closed_bits


def test_backend_threshold_boundary(restore_backend):
    set_kernel_backend("auto", threshold=10)
    for n, expected in ((9, "int"), (10, "packed"), (11, "packed")):
        kernel = kernel_for(nx.path_graph(n))
        assert kernel.backend == expected, n


def test_backend_overrides(restore_backend):
    graph = nx.path_graph(6)
    # explicit per-call override beats auto selection
    assert kernel_for(graph, backend="packed").backend == "packed"
    assert kernel_for(graph, backend="int").backend == "int"
    # process-wide override
    set_kernel_backend("packed")
    invalidate_kernel(graph)
    assert kernel_for(graph).backend == "packed"
    set_kernel_backend("int")
    invalidate_kernel(graph)
    assert kernel_for(graph).backend == "int"
    with pytest.raises(ValueError):
        set_kernel_backend("vector")
    with pytest.raises(ValueError):
        kernel_for(graph, backend="vector")


def test_env_override_selects_packed():
    script = (
        "import networkx as nx\n"
        "from repro.graphs.kernel import kernel_for\n"
        "print(kernel_for(nx.path_graph(4)).backend)\n"
    )
    env = dict(os.environ, REPRO_KERNEL_BACKEND="packed")
    env["PYTHONPATH"] = "src"
    out = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True, text=True, env=env, check=True,
    )
    assert out.stdout.strip() == "packed"


def test_kernel_cache_rebuilds_on_backend_switch(restore_backend):
    graph = nx.path_graph(5)
    set_kernel_backend("int")
    invalidate_kernel(graph)
    first = kernel_for(graph)
    set_kernel_backend("packed")
    second = kernel_for(graph)
    assert first.backend == "int" and second.backend == "packed"
    assert second.labels == first.labels


def test_kernel_from_edges_matches_nx_route():
    graph = nx.gnp_random_graph(40, 0.12, seed=5)
    edges = list(graph.edges)
    for backend in ("int", "packed"):
        built = kernel_from_edges(edges, n=40, backend=backend)
        want = kernel_for(graph, backend=backend)
        assert built.backend == backend
        assert built.to_wire() == want.to_wire()
    # duplicate and reversed edges collapse to canonical CSR
    noisy = edges + [(v, u) for u, v in edges[:10]] + edges[:5]
    assert kernel_from_edges(noisy, n=40, backend="packed").to_wire() == (
        kernel_for(graph, backend="packed").to_wire()
    )


def test_kernel_from_edges_keeps_isolated_vertices():
    kernel = kernel_from_edges([(0, 1)], n=4, backend="packed")
    assert tuple(kernel.labels) == (0, 1, 2, 3)
    assert kernel.degree(2) == 0
    named = kernel_from_edges([("a", "b")], nodes=["c"], backend="packed")
    assert tuple(named.labels) == ("a", "b", "c")


def test_kernel_from_edge_file(tmp_path):
    path = tmp_path / "edges.txt"
    path.write_text("# comment\n0 1\n\n1 2\n2 0\n")
    kernel = kernel_from_edge_file(path, n=4, backend="packed")
    want = nx.Graph([(0, 1), (1, 2), (2, 0)])
    want.add_node(3)
    assert kernel.to_wire() == kernel_for(want, backend="packed").to_wire()


@pytest.mark.parametrize("graph", zoo(), ids=lambda g: f"n{g.number_of_nodes()}")
def test_wire_file_round_trip(tmp_path, graph):
    wire = kernel_for(graph, backend="packed").to_wire()
    path = tmp_path / "instance.wire"
    write_wire(wire, path)
    assert read_wire(path) == wire
    rebuilt = kernel_from_wire(read_wire(path), backend="packed")
    assert rebuilt.to_wire() == wire


def test_read_wire_rejects_garbage(tmp_path):
    path = tmp_path / "bad.wire"
    path.write_bytes(b"not a wire\n")
    with pytest.raises(ValueError, match="not a repro wire"):
        read_wire(path)


def test_instance_from_wire_splits_on_threshold(restore_backend):
    set_kernel_backend("auto", threshold=10)
    small = kernel_for(nx.path_graph(5), backend="int").to_wire()
    large = kernel_for(nx.path_graph(20), backend="int").to_wire()
    assert isinstance(instance_from_wire(small), nx.Graph)
    view = instance_from_wire(large)
    assert isinstance(view, KernelView)
    assert view.kernel.backend == "packed"


def test_kernel_view_is_graph_shaped():
    graph = nx.gnp_random_graph(15, 0.3, seed=9)
    view = KernelView(kernel_for(graph, backend="packed"))
    assert view.number_of_nodes() == graph.number_of_nodes()
    assert view.number_of_edges() == graph.number_of_edges()
    assert sorted(view.nodes) == sorted(graph.nodes)
    assert len(view) == len(graph)
    assert 0 in view and "missing" not in view
    for v in graph.nodes:
        assert sorted(view.neighbors(v)) == sorted(graph.neighbors(v))
    assert {frozenset(e) for e in view.edges} == {frozenset(e) for e in graph.edges}
    assert kernel_for(view) is view.kernel


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_pipelines_agree_across_backends(seed, restore_backend):
    graph = nx.gnp_random_graph(35, 0.12, seed=seed)
    set_kernel_backend("int")
    invalidate_kernel(graph)
    want = (
        greedy_dominating_set(graph),
        d2_dominating_set(graph).solution,
        d2_set(graph),
        two_packing_lower_bound(graph),
        true_twin_classes(graph),
        has_true_twins(graph),
    )
    want_reduced, want_map = remove_true_twins(graph)
    set_kernel_backend("packed")
    invalidate_kernel(graph)
    assert kernel_for(graph).backend == "packed"
    got = (
        greedy_dominating_set(graph),
        d2_dominating_set(graph).solution,
        d2_set(graph),
        two_packing_lower_bound(graph),
        true_twin_classes(graph),
        has_true_twins(graph),
    )
    assert got == want
    reduced, mapping = remove_true_twins(graph)
    assert set(reduced.nodes) == set(want_reduced.nodes)
    assert set(reduced.edges) == set(want_reduced.edges)
    assert mapping == want_map
    for v in list(graph.nodes)[:8]:
        want_gamma = gamma(graph, v)
        assert want_gamma == gamma(graph, v)
    solution = got[0]
    assert is_dominating_set(graph, solution)
    assert undominated_vertices(graph, solution) == set()
    assert is_b_dominating_set(graph, solution, list(graph.nodes)[:5])
    assert not is_b_dominating_set(graph, solution, ["missing"])


def test_solve_on_kernel_view_matches_graph(restore_backend):
    set_kernel_backend("auto", threshold=8)
    graph = nx.gnp_random_graph(25, 0.2, seed=4)
    view = KernelView(kernel_for(graph, backend="packed"))
    config = RunConfig(validate="valid")
    for name in ("d2", "greedy_central", "take_all"):
        got = solve(view, name, config)
        want = solve(graph, name, config)
        assert got.result.solution == want.result.solution
        assert got.valid and want.valid
        assert got.instance == want.instance


def test_solve_many_accepts_views_serial_and_parallel(restore_backend):
    set_kernel_backend("auto", threshold=8)
    graph = nx.gnp_random_graph(20, 0.25, seed=6)
    view = KernelView(kernel_for(graph, backend="packed"))
    instances = [({"i": 0}, graph), ({"i": 1}, view), view]
    config = RunConfig(validate="valid")
    serial = solve_many(instances, ["d2", "greedy_central"], config)
    parallel = solve_many(instances, ["d2", "greedy_central"], config, workers=2)
    assert [r.result.solution for r in serial] == [
        r.result.solution for r in parallel
    ]
    assert all(r.valid for r in serial)


def test_simulate_accepts_view_but_rejects_churn(restore_backend):
    from repro.api import ChurnPlan, SimulationSpec

    set_kernel_backend("auto", threshold=8)
    graph = nx.gnp_random_graph(18, 0.25, seed=8)
    view = KernelView(kernel_for(graph, backend="packed"))
    assert simulate(view, "d2").outputs == simulate(graph, "d2").outputs
    spec = SimulationSpec(algorithm="d2", seed=1, churn=ChurnPlan(rate=0.3, until=2))
    with pytest.raises(TypeError, match="churn"):
        simulate(view, spec)


def test_greedy_cover_raises_when_uncoverable():
    graph = nx.Graph()
    graph.add_nodes_from(range(3))
    graph.add_edge(0, 1)
    kernel = PackedGraphKernel.from_graph(graph)
    targets = kernel.full_mask
    candidates = kernel.bits_of([0, 1])
    from repro.graphs.packed import greedy_cover_packed

    with pytest.raises(ValueError, match="cannot be dominated"):
        greedy_cover_packed(kernel, targets, candidates)


def test_induced_subkernel_preserves_labels_and_edges():
    graph = nx.gnp_random_graph(20, 0.3, seed=12)
    kernel = PackedGraphKernel.from_graph(graph)
    keep = np.array([i for i in range(kernel.n) if i % 3 != 0], dtype=np.int64)
    sub = kernel.induced(keep)
    kept_labels = {kernel.labels[int(i)] for i in keep}
    want = kernel_for(graph.subgraph(kept_labels), backend="packed")
    assert sub.to_wire() == want.to_wire()


def test_iter_bits_matches_packed_indices():
    mask = PackedMask.from_indices(130, [0, 63, 64, 127, 129])
    assert list(iter_bits(as_int_mask(None, mask))) == mask.indices().tolist()
