"""Tests for asymptotic-dimension covers."""

import networkx as nx
import pytest

from repro.graphs import generators as gen
from repro.graphs.asdim import (
    bfs_layered_cover,
    control_function_k2t,
    path_cover,
    tree_cover,
    tree_cover_classes,
    verify_cover,
)
from repro.graphs.random_families import random_tree
from repro.graphs.util import weak_diameter, r_components


class TestControlFunction:
    def test_paper_values(self):
        # f(r) = (5r + 18)t: the constants quoted in Section 4.
        assert control_function_k2t(5, 2) == 86
        assert control_function_k2t(11, 2) == 146

    def test_linear_in_t(self):
        assert control_function_k2t(5, 4) == 2 * control_function_k2t(5, 2)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            control_function_k2t(-1, 3)
        with pytest.raises(ValueError):
            control_function_k2t(5, 1)


class TestVerifyCover:
    def test_trivial_cover_of_small_graph(self, cycle6):
        ok, bound = verify_cover(cycle6, [set(cycle6.nodes)], r=1)
        assert ok
        assert bound == 3  # diameter of C6

    def test_non_covering_fails(self, cycle6):
        ok, bound = verify_cover(cycle6, [{0, 1}], r=1)
        assert not ok
        assert bound == -1

    def test_bound_enforced(self, path5):
        ok, bound = verify_cover(path5, [set(path5.nodes)], r=1, bound=2)
        assert not ok
        assert bound == 4


class TestPathCover:
    def test_long_path_r2(self):
        g = gen.path(40)
        cover = path_cover(g, 2)
        ok, bound = verify_cover(g, cover, r=2, bound=2 * 2)
        assert ok
        assert bound <= 3  # intervals of 4 vertices have diameter 3

    def test_all_radii(self):
        g = gen.path(60)
        for r in (1, 2, 3, 5):
            cover = path_cover(g, r)
            ok, bound = verify_cover(g, cover, r=r, bound=2 * r)
            assert ok, f"r={r}, bound={bound}"

    def test_rejects_non_path(self, cycle6):
        with pytest.raises(ValueError):
            path_cover(cycle6, 2)

    def test_rejects_zero_radius(self, path5):
        with pytest.raises(ValueError):
            path_cover(path5, 0)

    def test_single_vertex(self):
        g = nx.Graph()
        g.add_node(0)
        cover = path_cover(g, 3)
        assert cover[0] == {0}


class TestTreeCover:
    def test_binary_tree_control(self):
        g = gen.complete_binary_tree(5)
        for r in (1, 2, 3):
            cover = tree_cover(g, r)
            ok, bound = verify_cover(g, cover, r=r, bound=6 * r)
            assert ok, f"r={r}: witnessed {bound} > {6 * r}"

    def test_random_trees_control(self):
        for seed in range(4):
            g = random_tree(40, seed)
            for r in (1, 2):
                cover = tree_cover(g, r)
                ok, bound = verify_cover(g, cover, r=r, bound=6 * r)
                assert ok, f"seed={seed} r={r}: witnessed {bound}"

    def test_classes_are_well_separated(self):
        g = gen.complete_binary_tree(4)
        r = 2
        for cls in tree_cover_classes(g, r):
            assert weak_diameter(g, cls) <= 6 * r

    def test_two_parts_cover(self):
        g = random_tree(25, 7)
        cover = tree_cover(g, 2)
        assert cover[0] | cover[1] == set(g.nodes)

    def test_rejects_non_tree(self, cycle6):
        with pytest.raises(ValueError):
            tree_cover(cycle6, 2)


class TestBfsLayeredCover:
    def test_covers_everything(self, small_zoo):
        for g in small_zoo:
            cover = bfs_layered_cover(g, 2)
            assert cover[0] | cover[1] == set(g.nodes)

    def test_equals_tree_cover_on_trees(self):
        g = random_tree(20, 3)
        assert bfs_layered_cover(g, 2) == tree_cover(g, 2)

    def test_measured_bound_reported(self, cycle6):
        cover = bfs_layered_cover(cycle6, 1)
        ok, bound = verify_cover(cycle6, cover, r=1)
        assert ok
        assert bound >= 0

    def test_disconnected_raises(self):
        g = nx.Graph()
        g.add_edge(0, 1)
        g.add_node(5)
        with pytest.raises(ValueError):
            bfs_layered_cover(g, 2)
