"""Tests for the family registry and validation helpers."""

import networkx as nx
import pytest

from repro.graphs.families import FAMILIES, get_family, table1_rows
from repro.graphs.minors import largest_k2t_minor_singleton_hubs
from repro.graphs.validation import (
    assert_vertices_are_integers,
    check_k2t_free_fast,
    check_simple_connected,
)


class TestRegistry:
    def test_all_families_generate(self):
        for family in FAMILIES.values():
            g = family.make(16, 0)
            check_simple_connected(g)
            assert_vertices_are_integers(g)

    def test_generation_is_deterministic(self):
        for family in FAMILIES.values():
            a, b = family.make(14, 3), family.make(14, 3)
            assert sorted(a.edges) == sorted(b.edges)

    def test_declared_minor_freeness(self):
        for family in FAMILIES.values():
            if family.minor_free_t < 2:
                continue  # families used as positive controls
            g = family.make(18, 0)
            assert largest_k2t_minor_singleton_hubs(g) < family.minor_free_t, family.name

    def test_get_family_error_message(self):
        with pytest.raises(KeyError, match="unknown family"):
            get_family("bogus")

    def test_table1_rows_grouping(self):
        rows = table1_rows()
        assert "trees (K_3)" in rows
        assert any("outerplanar" in key for key in rows)


class TestValidation:
    def test_check_simple_connected_rejects_disconnected(self):
        g = nx.Graph()
        g.add_edge(0, 1)
        g.add_node(5)
        with pytest.raises(ValueError, match="disconnected"):
            check_simple_connected(g)

    def test_check_simple_connected_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            check_simple_connected(nx.Graph())

    def test_check_k2t_free_fast_flags_book(self):
        from repro.graphs.generators import book

        with pytest.raises(ValueError):
            check_k2t_free_fast(book(5), 4)

    def test_check_k2t_free_fast_accepts_tree(self, path5):
        check_k2t_free_fast(path5, 3)

    def test_integer_labels_rejected(self):
        g = nx.Graph()
        g.add_edge("a", "b")
        with pytest.raises(ValueError):
            assert_vertices_are_integers(g)
