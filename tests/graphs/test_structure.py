"""Tests for structure recovery (fans, strips, outerplanarity)."""

import networkx as nx

from repro.graphs import generators as gen
from repro.graphs.ding import make_fan, make_strip
from repro.graphs.structure import (
    find_attached_fans,
    find_strip_segments,
    is_outerplanar,
    long_strip_forces_local_cuts,
    structure_summary,
)


class TestOuterplanarity:
    def test_positive_cases(self):
        for g in (
            gen.path(8),
            gen.cycle(9),
            gen.fan(7),
            gen.ladder(6),
            gen.maximal_outerplanar(9),
            gen.cactus_chain(2, 5),
        ):
            assert is_outerplanar(g), g

    def test_negative_cases(self):
        for g in (
            nx.complete_graph(4),
            nx.complete_bipartite_graph(2, 3),
            gen.wheel(5),
            gen.grid(3, 3),
        ):
            assert not is_outerplanar(g), g

    def test_tiny_graphs_trivially_outerplanar(self):
        assert is_outerplanar(nx.complete_graph(3))
        assert is_outerplanar(nx.path_graph(2))

    def test_generator_validation_loop(self):
        from repro.graphs.random_families import random_outerplanar

        for seed in range(5):
            assert is_outerplanar(random_outerplanar(12, seed))


class TestFanRecovery:
    def test_recovers_pure_fan(self):
        fan = make_fan(4)
        found = find_attached_fans(fan.graph)
        assert any(
            f["center"] == fan.center and len(f["path"]) == 6 for f in found
        )

    def test_path_order_is_consistent(self):
        fan = make_fan(3)
        found = [f for f in find_attached_fans(fan.graph) if f["center"] == fan.center]
        path = found[0]["path"]
        for a, b in zip(path, path[1:]):
            assert fan.graph.has_edge(a, b)

    def test_no_fans_in_cycle(self, cycle6):
        assert find_attached_fans(cycle6) == []

    def test_wheel_is_not_a_fan(self):
        # the spoke graph of a wheel's hub is a cycle, not a path
        g = gen.wheel(6)
        assert all(f["center"] != 0 for f in find_attached_fans(g))

    def test_min_length_filter(self):
        fan = make_fan(1)  # 3 path vertices
        assert find_attached_fans(fan.graph, min_length=3) == []


class TestStripRecovery:
    def test_ladder_rungs_form_one_segment(self):
        g = gen.ladder(6)
        segments = find_strip_segments(g)
        assert len(segments) == 1
        rungs = [frozenset({2 * i, 2 * i + 1}) for i in range(1, 5)]
        for rung in rungs:
            assert rung in segments[0]

    def test_no_segments_without_cuts(self):
        assert find_strip_segments(nx.complete_graph(5)) == []

    def test_strip_from_ding_module(self):
        strip = make_strip(6)
        segments = find_strip_segments(strip.graph)
        assert segments and max(len(s) for s in segments) >= 4

    def test_lemma_4_2_mechanism(self):
        for n in (6, 10):
            assert long_strip_forces_local_cuts(gen.ladder(n), r=2)


class TestSummary:
    def test_summary_fields(self, fan5):
        summary = structure_summary(fan5)
        assert summary["outerplanar"]
        assert summary["fan_count"] >= 1
        assert summary["max_fan_length"] >= 3

    def test_summary_on_grid(self):
        summary = structure_summary(gen.grid(3, 3))
        assert not summary["outerplanar"]
