"""Tests for K_{2,t}-minor detection."""

import networkx as nx
import pytest

from repro.graphs import generators as gen
from repro.graphs.minors import (
    edge_density_certificate,
    has_k2t_minor,
    has_minor,
    is_k2t_minor_free,
    largest_k2t_minor,
    largest_k2t_minor_singleton_hubs,
    max_connectors,
)


class TestMaxConnectors:
    def test_book_pages_are_connectors(self):
        g = gen.book(4)
        assert max_connectors(g, {0}, {1}) == 4

    def test_theta_paths_are_connectors(self):
        g = gen.theta(3, 3)
        assert max_connectors(g, {0}, {1}) == 3

    def test_disjoint_hub_requirement(self):
        g = gen.book(3)
        with pytest.raises(ValueError):
            max_connectors(g, {0}, {0, 1})

    def test_no_connector_without_boundary(self):
        g = gen.path(4)
        assert max_connectors(g, {0}, {3}) == 1  # the middle path

    def test_hub_sets_can_be_large(self):
        g = gen.theta(4, 4)
        # growing a hub along one path cannot create new connectors
        assert max_connectors(g, {0, 2}, {1}) <= 4


class TestSingletonHubs:
    def test_k23_detected(self):
        assert largest_k2t_minor_singleton_hubs(nx.complete_bipartite_graph(2, 3)) == 3

    def test_wheel_has_large_minor(self):
        # hub + rim vertex see many disjoint rim arcs
        assert largest_k2t_minor_singleton_hubs(gen.wheel(8)) >= 3

    def test_cycle_value_two(self, cycle6):
        assert largest_k2t_minor_singleton_hubs(cycle6) == 2

    def test_tree_value_one(self, path5):
        assert largest_k2t_minor_singleton_hubs(path5) == 1

    def test_fan_value_two(self, fan5):
        # fans are outerplanar: no K_{2,3}
        assert largest_k2t_minor_singleton_hubs(fan5) == 2


class TestExactSearch:
    def test_matches_singleton_on_simple_graphs(self):
        for g in [gen.cycle(6), gen.path(5), gen.book(3), gen.fan(5)]:
            assert largest_k2t_minor(g) == largest_k2t_minor_singleton_hubs(g)

    def test_grid_k23(self):
        # 3x3 grid: opposite edge-midpoints see three disjoint columns.
        g = gen.grid(3, 3)
        assert largest_k2t_minor_singleton_hubs(g) == 3
        assert largest_k2t_minor(g, node_limit=9) >= 3

    def test_composite_hubs_beat_singletons(self):
        # Hub path a1-a2-a3 with two pendant connectors at each end, all
        # tied to b: K_{2,4} needs the whole path as one hub — every
        # single-vertex hub pair reaches at most 3 connectors.
        g = nx.Graph()
        g.add_edges_from([("a1", "a2"), ("a2", "a3")])
        for s, anchor in [("s1", "a1"), ("s2", "a1"), ("s3", "a3"), ("s4", "a3")]:
            g.add_edge(s, anchor)
            g.add_edge(s, "b")
        assert largest_k2t_minor_singleton_hubs(g) == 3
        assert largest_k2t_minor(g, node_limit=8) == 4

    def test_node_limit_guard(self):
        g = gen.cycle(20)
        with pytest.raises(ValueError):
            largest_k2t_minor(g)

    def test_small_graph_trivial(self):
        g = nx.complete_graph(2)
        assert largest_k2t_minor(g) == 0


class TestHasK2tMinor:
    def test_k2t_itself(self):
        for t in (2, 3, 4):
            g = nx.complete_bipartite_graph(2, t)
            assert has_k2t_minor(g, t)
            assert is_k2t_minor_free(g, t + 1)

    def test_outerplanar_is_k23_free(self):
        assert is_k2t_minor_free(gen.maximal_outerplanar(8), 3, node_limit=8)

    def test_ladder_is_k25_free(self):
        g = gen.ladder(5)
        assert is_k2t_minor_free(g, 5, node_limit=10)

    def test_ladder_is_k23_free(self):
        # Ladders are outerplanar (all vertices on the boundary), hence
        # K_{2,3}-minor-free despite their many 4-cycles.
        g = gen.ladder(6)
        assert is_k2t_minor_free(g, 3, node_limit=12)

    def test_prism_has_k23(self):
        # Closing the ladder into a prism (circular ladder) creates the
        # K_{2,3} minor that the open ladder avoids.
        g = nx.circular_ladder_graph(4)
        assert has_k2t_minor(g, 3, node_limit=8)

    def test_trivial_t(self):
        assert has_k2t_minor(gen.path(3), 0)

    def test_too_few_vertices(self):
        assert not has_k2t_minor(gen.path(3), 2)

    def test_cliques(self):
        # K_n is K_{2,t}-minor-free iff n <= t + 1.
        assert has_k2t_minor(nx.complete_graph(5), 3)
        assert is_k2t_minor_free(nx.complete_graph(4), 3)

    def test_inexact_mode_no_false_positives(self, small_zoo):
        for g in small_zoo:
            if g.number_of_nodes() > 16:
                continue
            if not has_k2t_minor(g, 3, exact=False):
                # slow path may still find one, but the other direction
                # must agree: exact "free" implies fast says "free".
                pass
            if is_k2t_minor_free(g, 3):
                assert not has_k2t_minor(g, 3, exact=False)


class TestDensityCertificate:
    def test_dense_graph_certified(self):
        g = nx.complete_graph(8)
        assert edge_density_certificate(g, 3)

    def test_sparse_graph_not_certified(self, path5):
        assert not edge_density_certificate(path5, 3)

    def test_t_below_two_never_certifies(self):
        assert not edge_density_certificate(nx.complete_graph(8), 1)


class TestGenericMinor:
    def test_k4_in_wheel(self):
        assert has_minor(gen.wheel(4), nx.complete_graph(4))

    def test_k23_in_theta(self):
        assert has_minor(gen.theta(3, 3), nx.complete_bipartite_graph(2, 3))

    def test_no_k4_in_outerplanar(self):
        assert not has_minor(gen.maximal_outerplanar(7), nx.complete_graph(4))

    def test_k23_not_in_cycle(self, cycle6):
        assert not has_minor(cycle6, nx.complete_bipartite_graph(2, 3))

    def test_agrees_with_specialised_detector(self):
        pattern = nx.complete_bipartite_graph(2, 3)
        for g in [gen.cycle(7), gen.fan(6), gen.theta(3, 3), gen.grid(3, 3)]:
            assert has_minor(g, pattern) == has_k2t_minor(
                g, 3, node_limit=g.number_of_nodes()
            )

    def test_empty_pattern(self, path5):
        assert has_minor(path5, nx.Graph())

    def test_node_limit_guard(self):
        with pytest.raises(ValueError):
            has_minor(gen.cycle(20), nx.complete_graph(3))
