"""Minimum Vertex Cover variants (Section 4's closing remarks).

The paper's theorems extend to MVC: take all local-2-cut vertices
instead of only interesting ones (Theorem 4.1 variant), and a
constant-round D2-based cover (Theorem 4.4 variant).  This example runs
both against the exact optimum and the classical matching
2-approximation.

Usage: python examples/vertex_cover_demo.py
"""

from repro import local_cuts_vertex_cover, d2_vertex_cover, minimum_vertex_cover
from repro.analysis import format_table, measure_vc_ratio
from repro.graphs import generators
from repro.graphs.random_families import random_outerplanar
from repro.solvers.vc import matching_vertex_cover


def main() -> None:
    instances = [
        ("fan(10)", generators.fan(10)),
        ("ladder(8)", generators.ladder(8)),
        ("outerplanar(14)", random_outerplanar(14, seed=0)),
        ("cactus chain", generators.cactus_chain(3, 5)),
        ("clique+pendants", generators.clique_with_pendants(5)),
    ]

    rows = []
    for name, graph in instances:
        optimum = minimum_vertex_cover(graph)
        for algo_name, runner in [
            ("local cuts (Thm 4.1 MVC)", local_cuts_vertex_cover),
            ("D2-based (Thm 4.4 MVC)", d2_vertex_cover),
            ("maximal matching 2-approx", lambda g: _wrap(matching_vertex_cover(g))),
        ]:
            result = runner(graph)
            report = measure_vc_ratio(graph, result.solution, optimum)
            rows.append(
                [name, algo_name, len(optimum), len(result.solution), report.ratio, report.valid]
            )

    print(format_table(["graph", "algorithm", "opt", "size", "ratio", "valid"], rows))


def _wrap(solution):
    from repro.core.results import AlgorithmResult

    return AlgorithmResult(name="matching", solution=solution, rounds=0)


if __name__ == "__main__":
    main()
