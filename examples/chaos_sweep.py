"""Chaos tour of the crash-safe sweep runner.

Usage: PYTHONPATH=src python examples/chaos_sweep.py

Runs one small workload through `repro.sweep` four times:

1. a clean sharded run, checked byte-for-byte against direct
   :func:`repro.api.solve_many` (modulo ``wall_time``);
2. with the fault harness SIGKILLing every worker on its first
   attempt — each shard's pool breaks, is rebuilt, and the retry
   regenerates identical reports;
3. with simulated driver death right after the first checkpoint
   lands, followed by ``resume_sweep`` — resume executes only the
   missing shards;
4. with a checkpoint corrupted on disk after it was written — the
   damage is detected by digest verification and repaired on resume.

Exit status is non-zero if any run fails to reproduce the direct
reports, so the script doubles as the CI chaos smoke.
"""

from __future__ import annotations

import copy
import json
import sys
import tempfile
from pathlib import Path

from repro.api import RunConfig, solve_many
from repro.graphs.families import get_family
from repro.io import run_report_to_dict
from repro.sweep import (
    FaultInjector,
    SimulatedProcessDeath,
    parse_fault_spec,
    resume_sweep,
    run_sweep,
    sweep_status,
)

ALGORITHMS = ["d2", "greedy"]
NO_SLEEP = {"sleep": lambda seconds: None}


def workload():
    pairs = []
    for family, sizes in (("fan", [12, 16]), ("tree", [14, 18])):
        for size in sizes:
            meta = {"family": family, "size": size, "seed": 0}
            pairs.append((meta, get_family(family).make(size, 0)))
    return pairs


def canonical(report_dicts: list[dict]) -> str:
    stripped = copy.deepcopy(report_dicts)
    for report in stripped:
        report.pop("wall_time", None)
    return json.dumps(stripped, sort_keys=True)


def sweep(instances, run_dir: Path, *, faults: str | None = None, **options):
    injector = FaultInjector(parse_fault_spec(faults)) if faults else None
    options.setdefault("workers", 2)
    return run_sweep(
        instances,
        run_dir=run_dir,
        algorithms=ALGORITHMS,
        config=RunConfig(),
        shard_size=2,
        injector=injector,
        **NO_SLEEP,
        **options,
    )


def main() -> int:
    instances = workload()
    baseline = canonical(
        [run_report_to_dict(r) for r in solve_many(instances, ALGORITHMS, RunConfig())]
    )
    failures = []

    def verdict(name: str, result) -> None:
        agree = result.complete and canonical(result.report_dicts()) == baseline
        print(f"  -> complete={result.complete}, byte-identical={agree}")
        if not agree:
            failures.append(name)

    with tempfile.TemporaryDirectory() as tmp_name:
        tmp = Path(tmp_name)

        print("1. clean sharded run")
        verdict("clean", sweep(instances, tmp / "clean"))

        print("2. every worker SIGKILLed on its first attempt (kill=1.0)")
        result = sweep(instances, tmp / "kill", faults="kill=1.0,attempts=1")
        print(f"  {result.retries} retries across {result.total_shards} shards")
        verdict("kill", result)

        print("3. driver death after the first checkpoint (die=1.0)")
        try:
            sweep(instances, tmp / "death", faults="die=1.0", workers=1)
            print("  injected death never fired")
            failures.append("death")
        except SimulatedProcessDeath:
            status = sweep_status(tmp / "death")
            print(
                f"  died with {len(status['completed'])}/{status['shards']} "
                f"shards checkpointed; resuming"
            )
            verdict("death", resume_sweep(tmp / "death", workers=2, **NO_SLEEP))

        print("4. checkpoint corrupted on disk (corrupt=1.0)")
        result = sweep(instances, tmp / "corrupt", faults="corrupt=1.0,attempts=1")
        print(
            f"  first run complete={result.complete} "
            f"(damage detected by digest verification)"
        )
        if result.complete:
            failures.append("corrupt: damage went undetected")
        verdict("corrupt", resume_sweep(tmp / "corrupt", workers=2, **NO_SLEEP))

    if failures:
        print(f"FAILED: {', '.join(failures)}", file=sys.stderr)
        return 1
    print("all chaos runs reproduced the direct reports byte-for-byte")
    return 0


if __name__ == "__main__":
    sys.exit(main())
