"""Structure recovery and experiment persistence.

Builds a Ding-style augmentation, recovers its fans and strip segments
(Section 5.4's building blocks), runs the charging analysis of
Lemma 3.3, and persists the instance plus results as replayable JSON.

Usage: python examples/structure_and_persistence.py [output_dir]
"""

import sys
import tempfile
from pathlib import Path

from repro.analysis import format_table
from repro.analysis.charging import charging_profile
from repro.core.algorithm1 import algorithm1
from repro.graphs.random_families import random_ding_augmentation
from repro.graphs.structure import structure_summary
from repro.io import load_graph, result_to_dict, save_graph, save_rows


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(tempfile.mkdtemp())
    out_dir.mkdir(parents=True, exist_ok=True)

    rows = []
    for seed in range(4):
        graph = random_ding_augmentation(4, 3, seed)
        summary = structure_summary(graph)
        profile = charging_profile(graph)
        result = algorithm1(graph)
        rows.append(
            [
                seed,
                graph.number_of_nodes(),
                summary["fan_count"],
                summary["strip_segments"],
                "yes" if summary["outerplanar"] else "no",
                profile.interesting_count,
                profile.max_charge,
                profile.max_distance,
                result.size,
            ]
        )
        save_graph(graph, out_dir / f"instance_{seed}.json", meta={"seed": seed})
        save_rows([result_to_dict(result)], out_dir / f"result_{seed}.json")

    print(
        format_table(
            [
                "seed", "n", "fans", "strips", "outerplanar",
                "interesting", "max charge", "max dist", "|S|",
            ],
            rows,
        )
    )
    print(f"\ninstances and results written to {out_dir}")

    # Round-trip check: reload and re-verify one instance.
    reloaded = load_graph(out_dir / "instance_0.json")
    again = algorithm1(reloaded)
    print(f"replayed instance 0: same solution = "
          f"{again.solution == algorithm1(random_ding_augmentation(4, 3, 0)).solution}")


if __name__ == "__main__":
    main()
