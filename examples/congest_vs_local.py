"""LOCAL vs CONGEST: what "messages have no size limit" buys.

The paper works in the LOCAL model; Section 1 contrasts it with CONGEST
where messages carry O(log n) bits.  This example makes the trade
concrete on one network:

1. radius-2 view gathering in LOCAL: 3 rounds, huge messages;
2. the same gathering pipelined under CONGEST budgets: small messages,
   many more rounds;
3. which of the reproduced algorithms fit CONGEST outright.

Usage: python examples/congest_vs_local.py
"""

from repro.analysis import format_table
from repro.api import SimulationSpec, simulate
from repro.graphs import generators
from repro.local_model.congest_gather import congest_gather_views
from repro.local_model.congest_runtime import runs_in_congest
from repro.local_model.engine import MessageTooLargeError
from repro.local_model.gather import GatherAlgorithm, gather_views


def main() -> None:
    graph = generators.ladder(10)
    print(f"network: ladder, n={graph.number_of_nodes()}, diameter 10\n")

    print("== radius-2 view gathering ==")
    _, local_trace = gather_views(graph, 2)
    rows = [
        [
            "LOCAL (unbounded)",
            local_trace.round_count,
            round(local_trace.total_payload / max(1, local_trace.total_messages), 1),
        ]
    ]
    for budget in (1, 2, 4, 8):
        _, trace = congest_gather_views(graph, 2, budget)
        rows.append(
            [
                f"CONGEST, {budget} facts/msg",
                trace.round_count,
                round(trace.total_payload / max(1, trace.total_messages), 1),
            ]
        )
    print(format_table(["model", "rounds", "avg message units"], rows))

    print("\n== which protocols fit CONGEST (4 ids per message)? ==")
    # Registered algorithms go through the repro.api front door with
    # model="congest"; a rejection names the sender, receiver, and round.
    rows = []
    for name, algorithm in [("degree>=2 rule", "degree_two"), ("D2 / Thm 4.4", "d2")]:
        try:
            simulate(graph, SimulationSpec(algorithm=algorithm, model="congest"))
            rows.append([name, "yes"])
        except MessageTooLargeError as error:
            print(f"  {name}: {error}")
            rows.append([name, "no"])
    # Raw view gathering is not a registry algorithm; drive it directly.
    fits, _ = runs_in_congest(graph, lambda: GatherAlgorithm(3), ids_per_message=4)
    rows.append(["radius-3 gathering", "yes" if fits else "no"])
    print(format_table(["protocol", "fits"], rows))
    print(
        "\nD2 ships closed neighborhoods (Θ(Δ) ids): CONGEST-feasible only"
        "\nfor bounded degree — on this ladder Δ = 3, so it just misses the"
        "\n4-id budget's tuple overhead; gathering is hopeless, as expected."
    )


if __name__ == "__main__":
    main()
