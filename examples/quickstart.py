"""Quickstart: the `repro.api` front door on a small K_{2,t}-free graph.

Usage: python examples/quickstart.py
"""

from repro import (
    FaultPlan,
    RadiusPolicy,
    RunConfig,
    SimulationSpec,
    list_algorithms,
    simulate,
    solve,
    solve_many,
)
from repro.graphs import generators


def main() -> None:
    # A fan: apex 0 over a triangulated path — maximal outerplanar,
    # hence K_{2,3}-minor-free (Table 1's second row).
    graph = generators.fan(12)
    print(f"graph: fan with {graph.number_of_nodes()} vertices")

    # Every registered algorithm is discoverable (same list the CLI uses).
    names = [spec.name for spec in list_algorithms("mds")]
    print(f"registered MDS algorithms: {', '.join(names)}")

    # Theorem 4.1's Algorithm 1; validate="ratio" also solves the
    # instance exactly and measures |ALG| / |OPT|.
    report = solve(graph, "algorithm1", RunConfig(validate="ratio"))
    print(
        f"Algorithm 1: {sorted(report.solution)} "
        f"(size {report.size}, ratio {report.ratio:.2f}, "
        f"rounds {report.rounds}, optimum {report.optimum_size}, "
        f"proven bound {report.result.metadata['ratio_bound']})"
    )
    print(f"  phase sizes: {report.result.phase_sizes()}")
    assert report.valid

    # Theorem 4.4's 3-round D2 algorithm, same front door.
    d2 = solve(graph, "d2", RunConfig(validate="ratio"))
    print(
        f"D2 (Thm 4.4): {sorted(d2.solution)} "
        f"(size {d2.size}, ratio {d2.ratio:.2f}, rounds {d2.rounds})"
    )
    assert d2.valid

    # The same run through the real message-passing simulator — the
    # registry knows which algorithms support mode="simulate".
    simulated = solve(
        graph,
        "algorithm1",
        RunConfig(mode="simulate", policy=RadiusPolicy.practical()),
    )
    print(f"simulated per-node run agrees: {simulated.solution == report.solution}")

    # Batch runs (instances x algorithms) keep deterministic ordering,
    # optionally fanned out over worker processes.
    batch = solve_many(
        [generators.fan(8), generators.ladder(5)],
        ["d2", "algorithm1"],
        RunConfig(validate="ratio"),
        workers=2,
    )
    for r in batch:
        print(
            f"  batch: {r.algorithm:10s} n={r.instance['n']:2d} "
            f"size={r.size} ratio={r.ratio:.2f}"
        )

    # The simulation engine behind the same front door: run the *real*
    # 3-round D2 message protocol, per node, and read the trace.
    sim = simulate(graph, SimulationSpec(algorithm="d2", trace="full"))
    print(
        f"\nengine run of D2: rounds={sim.rounds} "
        f"messages={sim.total_messages} payload={sim.total_payload}"
    )
    for stats in sim.round_stats:
        print(
            f"  round {stats.round_index}: {stats.messages} messages, "
            f"{stats.payload_units} units"
        )
    print(f"protocol agrees with fast path: {sim.chosen == d2.solution}")

    # Scenario knobs the fast path cannot express: a CONGEST budget,
    # probabilistic message loss, and a crashed node — all seeded, so
    # every run reproduces exactly.
    faulty = simulate(
        graph,
        SimulationSpec(
            algorithm="d2",
            seed=1,
            faults=FaultPlan(drop_probability=0.2, crashed=(0,)),
        ),
    )
    print(
        f"faulty network: dropped {faulty.dropped_messages} messages, "
        f"crashed {list(faulty.crashed)}, still halted "
        f"{faulty.halted}/{graph.number_of_nodes()} nodes in {faulty.rounds} rounds"
    )


if __name__ == "__main__":
    main()
