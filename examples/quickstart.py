"""Quickstart: the `repro.api` front door on a small K_{2,t}-free graph.

Usage: python examples/quickstart.py
"""

from repro import RadiusPolicy, RunConfig, list_algorithms, solve, solve_many
from repro.graphs import generators


def main() -> None:
    # A fan: apex 0 over a triangulated path — maximal outerplanar,
    # hence K_{2,3}-minor-free (Table 1's second row).
    graph = generators.fan(12)
    print(f"graph: fan with {graph.number_of_nodes()} vertices")

    # Every registered algorithm is discoverable (same list the CLI uses).
    names = [spec.name for spec in list_algorithms("mds")]
    print(f"registered MDS algorithms: {', '.join(names)}")

    # Theorem 4.1's Algorithm 1; validate="ratio" also solves the
    # instance exactly and measures |ALG| / |OPT|.
    report = solve(graph, "algorithm1", RunConfig(validate="ratio"))
    print(
        f"Algorithm 1: {sorted(report.solution)} "
        f"(size {report.size}, ratio {report.ratio:.2f}, "
        f"rounds {report.rounds}, optimum {report.optimum_size}, "
        f"proven bound {report.result.metadata['ratio_bound']})"
    )
    print(f"  phase sizes: {report.result.phase_sizes()}")
    assert report.valid

    # Theorem 4.4's 3-round D2 algorithm, same front door.
    d2 = solve(graph, "d2", RunConfig(validate="ratio"))
    print(
        f"D2 (Thm 4.4): {sorted(d2.solution)} "
        f"(size {d2.size}, ratio {d2.ratio:.2f}, rounds {d2.rounds})"
    )
    assert d2.valid

    # The same run through the real message-passing simulator — the
    # registry knows which algorithms support mode="simulate".
    simulated = solve(
        graph,
        "algorithm1",
        RunConfig(mode="simulate", policy=RadiusPolicy.practical()),
    )
    print(f"simulated per-node run agrees: {simulated.solution == report.solution}")

    # Batch runs (instances x algorithms) keep deterministic ordering,
    # optionally fanned out over worker processes.
    batch = solve_many(
        [generators.fan(8), generators.ladder(5)],
        ["d2", "algorithm1"],
        RunConfig(validate="ratio"),
        workers=2,
    )
    for r in batch:
        print(
            f"  batch: {r.algorithm:10s} n={r.instance['n']:2d} "
            f"size={r.size} ratio={r.ratio:.2f}"
        )


if __name__ == "__main__":
    main()
