"""Quickstart: run the paper's algorithms on a small K_{2,t}-free graph.

Usage: python examples/quickstart.py
"""

from repro import (
    algorithm1,
    d2_dominating_set,
    minimum_dominating_set,
    RadiusPolicy,
)
from repro.analysis import is_dominating_set, measure_ratio
from repro.graphs import generators


def main() -> None:
    # A fan: apex 0 over a triangulated path — maximal outerplanar,
    # hence K_{2,3}-minor-free (Table 1's second row).
    graph = generators.fan(12)
    print(f"graph: fan with {graph.number_of_nodes()} vertices")

    optimum = minimum_dominating_set(graph)
    print(f"exact MDS: {sorted(optimum)} (size {len(optimum)})")

    # Theorem 4.1's Algorithm 1 with the practical radius preset.
    result = algorithm1(graph, RadiusPolicy.practical())
    report = measure_ratio(graph, result.solution, optimum)
    print(
        f"Algorithm 1: {sorted(result.solution)} "
        f"(size {result.size}, ratio {report.ratio:.2f}, "
        f"rounds {result.rounds}, proven bound {result.metadata['ratio_bound']})"
    )
    print(f"  phase sizes: {result.phase_sizes()}")
    assert is_dominating_set(graph, result.solution)

    # Theorem 4.4's 3-round D2 algorithm.
    d2 = d2_dominating_set(graph)
    d2_report = measure_ratio(graph, d2.solution, optimum)
    print(
        f"D2 (Thm 4.4): {sorted(d2.solution)} "
        f"(size {d2.size}, ratio {d2_report.ratio:.2f}, rounds {d2.rounds})"
    )
    assert is_dominating_set(graph, d2.solution)

    # The same run through the real message-passing simulator: every
    # vertex gathers its view and decides independently.
    simulated = algorithm1(graph, RadiusPolicy.practical(), mode="simulate")
    print(f"simulated per-node run agrees: {simulated.solution == result.solution}")


if __name__ == "__main__":
    main()
