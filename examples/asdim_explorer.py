"""Explore asymptotic dimension covers (Section 3 of the paper).

The analysis hinges on covers ``V(G) = B_0 ∪ … ∪ B_d`` whose
r-components are f(r)-bounded.  This example builds the dimension-1
covers for paths and trees, measures how tight the control function is,
and probes the generic BFS-annulus cover on the K_{2,t}-minor-free
families the paper targets.

Usage: python examples/asdim_explorer.py
"""

from repro.analysis import format_table
from repro.graphs import generators
from repro.graphs.asdim import (
    bfs_layered_cover,
    control_function_k2t,
    path_cover,
    tree_cover,
    verify_cover,
)
from repro.graphs.random_families import random_ding_augmentation, random_tree


def main() -> None:
    print("== dimension-1 covers with proven linear control ==")
    rows = []
    for r in (1, 2, 3, 4):
        path = generators.path(80)
        ok, witnessed = verify_cover(path, path_cover(path, r), r)
        rows.append(["path(80)", r, 2 * r, witnessed, ok])
        tree = random_tree(80, seed=1)
        ok, witnessed = verify_cover(tree, tree_cover(tree, r), r)
        rows.append(["random tree(80)", r, 6 * r, witnessed, ok])
    print(format_table(["graph", "r", "proven f(r)", "measured", "covers"], rows))

    print("\n== generic BFS-annulus cover on K_2,t-free families ==")
    rows = []
    for name, graph in [
        ("cycle(40)", generators.cycle(40)),
        ("fan(30)", generators.fan(30)),
        ("ladder(20)", generators.ladder(20)),
        ("ding augmentation", random_ding_augmentation(4, 4, seed=2)),
    ]:
        for r in (1, 2):
            cover = bfs_layered_cover(graph, r)
            ok, witnessed = verify_cover(graph, cover, r)
            rows.append([name, r, witnessed, ok])
    print(format_table(["graph", "r", "measured bound", "covers"], rows))

    print("\n== the paper's control function f(r) = (5r+18)t ==")
    rows = []
    for t in (2, 3, 5, 10):
        rows.append(
            [
                t,
                control_function_k2t(5, t),
                control_function_k2t(11, t),
                control_function_k2t(5, t) + 2,
                control_function_k2t(11, t) + 5,
            ]
        )
    print(
        format_table(
            ["t", "f(5)", "f(11)", "m_3.2 radius", "m_3.3 radius"], rows
        )
    )
    print(
        "\nThe radii above are why experiments default to the practical"
        "\npreset: on simulation-scale graphs the paper constants exceed"
        "\nthe diameter and the algorithm degenerates to global brute force"
        "\n(still correct, but uninformative about locality)."
    )


if __name__ == "__main__":
    main()
