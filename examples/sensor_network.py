"""Wireless-sensor scenario from the paper's introduction.

A corridor deployment (sensors along hallways with cross-links) forms a
sparse, K_{2,t}-minor-free communication graph.  To save energy, we want
few *coordinator* nodes such that every sensor has a coordinator in
range — a dominating set — computed by the sensors themselves in a few
synchronous radio rounds (the LOCAL model).

This example builds such a deployment, runs the paper's two distributed
algorithms plus the folklore baselines, and compares how many sensors
must stay awake under each, including the message volumes the simulator
accounted.

Usage: python examples/sensor_network.py
"""

import networkx as nx

from repro import (
    algorithm1,
    d2_dominating_set,
    degree_two_dominating_set,
    full_gather_exact,
    RadiusPolicy,
)
from repro.analysis import format_table, is_dominating_set, measure_ratio
from repro.graphs.ding import Attachment, augment, make_fan, make_strip
from repro.local_model.gather import gather_views
from repro.solvers.exact import minimum_dominating_set


def corridor_deployment() -> nx.Graph:
    """Sensors along three corridors meeting at a junction room.

    Corridors are ladder strips (two parallel rows of sensors with
    cross-links); the junction room is a small clique with a fan of
    desks.  The result is K_{2,6}-minor-free by Ding's structure.
    """
    junction = nx.cycle_graph(6)
    junction.add_edge(0, 3)  # a cross-wall link
    attachments = []
    offset = 100
    # Strip corners must land on distinct junction vertices (Ding's
    # sharing rule): use pairwise-disjoint junction edges.
    for corridor, anchor in [(0, (0, 1)), (1, (2, 3)), (2, (4, 5))]:
        strip = make_strip(5, label_offset=offset + corridor * 50)
        a, b, _, _ = strip.corners
        attachments.append(
            Attachment(piece=strip, glue={a: anchor[0], b: anchor[1]})
        )
    desk_fan = make_fan(4, label_offset=500)
    attachments.append(Attachment(piece=desk_fan, glue={desk_fan.center: 0}))
    return augment(junction, attachments)


def main() -> None:
    graph = corridor_deployment()
    n = graph.number_of_nodes()
    print(f"deployment: {n} sensors, {graph.number_of_edges()} radio links")

    optimum = minimum_dominating_set(graph)
    print(f"offline optimum: {len(optimum)} coordinators\n")

    algorithms = [
        ("Algorithm 1 (Thm 4.1)", lambda: algorithm1(graph, RadiusPolicy.practical())),
        ("D2 (Thm 4.4)", lambda: d2_dominating_set(graph)),
        ("degree>=2 folklore", lambda: degree_two_dominating_set(graph)),
        ("full gather + exact", lambda: full_gather_exact(graph)),
    ]

    rows = []
    for name, runner in algorithms:
        result = runner()
        assert is_dominating_set(graph, result.solution)
        report = measure_ratio(graph, result.solution, optimum)
        awake_pct = 100.0 * result.size / n
        rows.append([name, result.size, f"{awake_pct:.0f}%", report.ratio, result.rounds])

    print(
        format_table(
            ["algorithm", "coordinators", "awake", "ratio", "radio rounds"], rows
        )
    )

    # Message accounting: what does a radius-3 view gathering cost?
    _, trace = gather_views(graph, 3)
    print(
        f"\nview gathering (radius 3): {trace.round_count} rounds, "
        f"{trace.total_messages} messages, {trace.total_payload} payload units"
    )


if __name__ == "__main__":
    main()
