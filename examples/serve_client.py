"""Smoke client for a running `repro serve` instance.

Submits one solve job and one simulate job over HTTP, polls both to
completion, and checks the results look sane.  CI starts the service in
the background and runs this script against it:

    PYTHONPATH=src python -m repro serve --port 8123 --workers 2 &
    python examples/serve_client.py --base http://127.0.0.1:8123 --wait-server

Exit status is non-zero on any failure, so the script doubles as a
deployment health check.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.error
import urllib.request


def request(base: str, method: str, path: str, payload: dict | None = None):
    data = None if payload is None else json.dumps(payload).encode("utf-8")
    req = urllib.request.Request(
        base + path,
        data=data,
        method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def wait_for_server(base: str, deadline_s: float = 30.0) -> None:
    start = time.monotonic()
    while True:
        try:
            status, body = request(base, "GET", "/healthz")
            if status == 200 and body.get("status") == "ok":
                return
        except OSError:
            pass
        elapsed = time.monotonic() - start
        if elapsed > deadline_s:
            raise SystemExit(f"server at {base} not healthy after {elapsed:.0f}s")
        time.sleep(0.25)


def run_job(base: str, payload: dict) -> list:
    status, job = request(base, "POST", "/jobs", payload)
    if status != 202:
        raise SystemExit(f"submit rejected ({status}): {job}")
    job_id = job["id"]
    print(f"submitted {job_id}: {job['kind']} job, {job['tasks']} task(s)")
    start = time.monotonic()
    while True:
        status, record = request(base, "GET", f"/jobs/{job_id}")
        if record["state"] not in ("queued", "running"):
            break
        elapsed = time.monotonic() - start
        if elapsed > 120:
            raise SystemExit(f"{job_id} still {record['state']} after {elapsed:.0f}s")
        time.sleep(0.05)
    if record["state"] != "completed":
        raise SystemExit(f"{job_id} ended {record['state']}: {record['error']}")
    status, reports = request(base, "GET", f"/jobs/{job_id}/result")
    if status != 200:
        raise SystemExit(f"result fetch failed ({status}): {reports}")
    print(f"  completed in {record['wall_time']}s, {len(reports)} report(s)")
    return reports


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--base", default="http://127.0.0.1:8008", help="server base URL"
    )
    parser.add_argument(
        "--wait-server",
        action="store_true",
        help="poll /healthz until the server is up (CI races the boot)",
    )
    args = parser.parse_args(argv)
    base = args.base.rstrip("/")

    if args.wait_server:
        wait_for_server(base)

    solve_reports = run_job(
        base,
        {
            "kind": "solve",
            "instances": [
                {"family": "fan", "size": 20, "seed": 0},
                {"family": "ladder", "size": 10, "seed": 1},
            ],
            "algorithms": ["d2", "greedy"],
            "validate": "ratio",
        },
    )
    for report in solve_reports:
        if not report["valid"]:
            raise SystemExit(f"invalid solution in report: {report}")
        print(
            f"  {report['algorithm']:>8} on {report['instance']['family']}"
            f"(n={report['instance']['n']}): |S|={len(report['result'])}"
            f" ratio={report['ratio']}"
        )

    sim_reports = run_job(
        base,
        {
            "kind": "simulate",
            "instances": [{"family": "tree", "size": 15, "seed": 0}],
            "specs": [
                {
                    "algorithm": "d2",
                    "model": "congest",
                    "budget": 8,
                    "faults": "drop=0.1,crash=0",
                }
            ],
        },
    )
    for report in sim_reports:
        print(
            f"  {report['algorithm']:>8} simulated: rounds={report['rounds']}"
            f" messages={report['total_messages']}"
        )

    # Second identical solve job: the resident caches must serve it.
    run_job(
        base,
        {
            "kind": "solve",
            "instances": [
                {"family": "fan", "size": 20, "seed": 0},
                {"family": "ladder", "size": 10, "seed": 1},
            ],
            "algorithms": ["d2", "greedy"],
            "validate": "ratio",
        },
    )
    status, stats = request(base, "GET", "/stats")
    opt = stats["opt_cache"]
    print(
        f"stats: {stats['jobs']['submitted']} jobs submitted, "
        f"opt_cache hits={opt['hits']} misses={opt['misses']}"
    )
    if opt["hits"] == 0:
        raise SystemExit("warm job never hit the resident OPT cache")
    print("serve smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
