"""Anatomy of a LOCAL-model run: ports, messages, views, decisions.

Walks through the simulator layer by layer on a tiny graph so the
executable semantics of the model (Section 1 of the paper) are visible:
what a node knows initially, what each round's messages carry, and how
"gather radius r, then decide" emerges.

Usage: python examples/local_simulation_walkthrough.py
"""

from repro.core.algorithm1 import decide_membership
from repro.core.radii import RadiusPolicy
from repro.graphs import generators
from repro.local_model.gather import GatherAlgorithm, gather_views
from repro.local_model.identifiers import spread_ids
from repro.local_model.network import Network
from repro.local_model.runtime import SynchronousRuntime


def main() -> None:
    graph = generators.ladder(4)
    print(f"network: ladder with {graph.number_of_nodes()} nodes\n")

    # 1. Initially a node knows only its identifier and its ports.
    ids = spread_ids(graph)  # deliberately non-contiguous identifiers
    network = Network(graph, ids)
    node = network.nodes[0]
    print(f"node at vertex 0: uid={node.uid}, degree={node.degree}")
    print("  (it does NOT know its neighbors' uids yet)\n")

    # 2. Run the gathering protocol for radius 2 and watch the trace.
    runtime = SynchronousRuntime(network, max_rounds=10)
    result = runtime.run(lambda: GatherAlgorithm(2))
    for stats in result.trace.rounds:
        print(
            f"round {stats.round_index}: {stats.messages} messages, "
            f"{stats.payload_units} payload units"
        )
    view = result.outputs[0]
    print(
        f"\nafter {result.rounds} rounds, vertex 0 (uid {view.center}) knows "
        f"{view.graph.number_of_nodes()} vertices and "
        f"{view.graph.number_of_edges()} edges; exact out to radius "
        f"{view.complete_radius}"
    )

    # 3. Views feed pure decision functions.  Here: the Algorithm 1
    #    membership decision for every node, from its own view only.
    policy = RadiusPolicy.practical()
    radius = policy.detection_radius + 6  # enough for this tiny graph
    views, trace = gather_views(graph, radius, ids)
    members = sorted(uid for uid, v in views.items() if decide_membership(v, policy))
    print(
        f"\nAlgorithm 1 decisions from radius-{radius} views "
        f"({trace.round_count} rounds): members = {members}"
    )
    back = {uid: vertex for vertex, uid in ids.items()}
    print(f"as graph vertices: {sorted(back[uid] for uid in members)}")

    # 4. The layers above sit behind one front door: repro.api.simulate
    #    drives the same engine from a declarative spec (model, trace
    #    policy, fault plan, identifier scheme) — this is what the CLI's
    #    `repro simulate` and the experiment sweeps call.
    from repro.api import SimulationSpec, simulate

    report = simulate(graph, SimulationSpec(algorithm="d2", ids="spread", trace="full"))
    print(
        f"\nfront door: D2 on the engine in {report.rounds} rounds, "
        f"{report.total_messages} messages; chosen = {sorted(report.chosen)}"
    )


if __name__ == "__main__":
    main()
