"""Shared configuration for the benchmark suite.

Each ``bench_*`` module regenerates one table or figure of the paper
(see DESIGN.md's experiment index).  ``pytest-benchmark`` measures the
wall time of the regeneration; the *scientific* payload (measured
ratios, round counts, lemma constants) is attached to
``benchmark.extra_info`` so it lands in the benchmark JSON and the
captured report.
"""

import pytest


@pytest.fixture(scope="session")
def bench_scale() -> str:
    """Instance scale used across benchmark modules."""
    return "tiny"
