"""Ablation (DESIGN.md Section 6): interesting-vertex filter on 2-cuts.

Algorithm 1 takes only *interesting* vertices of local 2-cuts; the MVC
variant takes all of them.  On the Section 4 clique-with-pendants
example taking everything is catastrophic (Θ(n) vs MDS = 1) — exactly
the behaviour the filter exists to prevent.
"""

from repro.core.algorithm1 import algorithm1
from repro.core.radii import RadiusPolicy
from repro.graphs import generators
from repro.graphs.local_cuts import interesting_vertices_of_cuts, local_two_cuts
from repro.graphs.twins import remove_true_twins


def _all_two_cut_vertices(graph, policy):
    reduced, _ = remove_true_twins(graph)
    cuts = local_two_cuts(reduced, policy.two_cut_radius, minimal=True)
    return set().union(*cuts) if cuts else set()


def test_filter_prunes_clique_pendants():
    graph = generators.clique_with_pendants(7)
    policy = RadiusPolicy.practical()
    unfiltered = _all_two_cut_vertices(graph, policy)
    result = algorithm1(graph, policy)
    taken = result.phases["interesting_2_cuts"]
    # the filter rejects every 2-cut vertex of the example …
    assert taken == set()
    # … which the unfiltered rule would have taken wholesale.
    assert len(unfiltered) >= 7


def test_filter_keeps_ladder_rungs():
    """Where 2-cut vertices are genuinely needed, the filter keeps them."""
    graph = generators.ladder(8)
    policy = RadiusPolicy.practical()
    reduced, _ = remove_true_twins(graph)
    cuts = local_two_cuts(reduced, policy.two_cut_radius, minimal=True)
    interesting = interesting_vertices_of_cuts(reduced, cuts, policy.two_cut_radius)
    assert interesting  # rungs qualify


def test_bench_filtered(benchmark):
    graph = generators.clique_with_pendants(6)
    policy = RadiusPolicy.practical()
    benchmark(algorithm1, graph, policy)


def test_bench_unfiltered(benchmark):
    graph = generators.clique_with_pendants(6)
    policy = RadiusPolicy.practical()
    benchmark(_all_two_cut_vertices, graph, policy)
