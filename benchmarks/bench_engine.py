"""Engine hot-path benchmark: by-reference delivery vs defensive copies.

The engine's delivery contract is immutable-by-convention: payloads move
from outbox to inbox by reference, never copied (see
:mod:`repro.local_model.engine`).  This module quantifies what that
buys by re-imposing the defensive discipline — a ``copy.deepcopy`` of
every round's inbox before the algorithm reads it, which is what a
runtime that distrusts its algorithms would have to do — on the same
payload-heavy workload (radius-2 view gathering, whose messages carry
whole subgraphs).

Besides the ``pytest-benchmark`` timings, :func:`test_write_engine_
trajectory` measures the contrast across graph sizes and writes the
result to ``benchmarks/BENCH_engine.json`` so the scaling trajectory is
inspectable (and plottable) outside the test run.
"""

from __future__ import annotations

import copy
import json
import time
from pathlib import Path

import pytest

from repro.graphs import generators
from repro.local_model.engine import FaultPlan, SimulationEngine
from repro.local_model.gather import GatherAlgorithm
from repro.local_model.network import Network

TRAJECTORY_PATH = Path(__file__).parent / "BENCH_engine.json"
RADIUS = 2


class DefensiveCopyGather(GatherAlgorithm):
    """Radius-r gathering under the old defensive-copy discipline.

    Deep-copies the inbox before every read — the per-round cost the
    immutable-by-convention contract removed from the engine.
    """

    def on_round(self, ctx) -> None:
        copy.deepcopy(ctx.inbox)
        super().on_round(ctx)


def _run(graph, factory, **engine_kwargs):
    engine = SimulationEngine(Network(graph), **engine_kwargs)
    return engine.run(factory)


def _time(graph, factory, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        _run(graph, factory)
        best = min(best, time.perf_counter() - start)
    return best


def test_bench_engine_by_reference(benchmark):
    graph = generators.ladder(24)
    result = benchmark.pedantic(
        _run, args=(graph, lambda: GatherAlgorithm(RADIUS)), rounds=1, iterations=1
    )
    benchmark.extra_info["messages"] = result.total_messages
    benchmark.extra_info["payload"] = result.total_payload


def test_bench_engine_defensive_copy(benchmark):
    graph = generators.ladder(24)
    result = benchmark.pedantic(
        _run,
        args=(graph, lambda: DefensiveCopyGather(RADIUS)),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["messages"] = result.total_messages


def test_bench_engine_trace_off(benchmark):
    # trace="off" also skips payload_size accounting — the other half of
    # the hot path — so sweeps that only need outputs pay neither.
    graph = generators.ladder(24)
    result = benchmark.pedantic(
        _run,
        args=(graph, lambda: GatherAlgorithm(RADIUS)),
        kwargs={"trace": "off"},
        rounds=1,
        iterations=1,
    )
    assert result.total_messages == 0  # accounting disabled


def test_bench_engine_faulty_delivery(benchmark):
    # Fault handling must not regress the clean path noticeably.
    graph = generators.ladder(24)
    result = benchmark.pedantic(
        _run,
        args=(graph, lambda: GatherAlgorithm(RADIUS)),
        kwargs={"faults": FaultPlan(drop_probability=0.1), "seed": 7},
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["dropped"] = result.dropped_messages


def test_write_engine_trajectory():
    """Measure by-reference vs deepcopy delivery across sizes; persist.

    The deepcopy run does strictly more work per round, so its time
    should not beat the by-reference run on the largest size; the
    trajectory file records the measured speedups.
    """
    trajectory = []
    for rungs in (8, 16, 24):
        graph = generators.ladder(rungs)
        by_reference = _time(graph, lambda: GatherAlgorithm(RADIUS))
        defensive = _time(graph, lambda: DefensiveCopyGather(RADIUS))
        reference_run = _run(graph, lambda: GatherAlgorithm(RADIUS))
        trajectory.append(
            {
                "n": graph.number_of_nodes(),
                "radius": RADIUS,
                "rounds": reference_run.rounds,
                "messages": reference_run.total_messages,
                "payload_units": reference_run.total_payload,
                "by_reference_s": round(by_reference, 6),
                "deepcopy_s": round(defensive, 6),
                "speedup": round(defensive / by_reference, 3),
            }
        )
    TRAJECTORY_PATH.write_text(
        json.dumps({"benchmark": "engine_delivery", "trajectory": trajectory}, indent=1)
    )
    assert trajectory[-1]["speedup"] > 1.0
