"""Simulator microbenchmarks: view-gathering cost scaling.

Not a paper table, but the substrate measurement that justifies the
experiment scales: gathering cost per node grows with ball size, not
with n — the simulator itself is "local".
"""

import pytest

from repro.graphs import generators
from repro.local_model.gather import gather_views


@pytest.mark.parametrize("n", [20, 40, 80])
def test_bench_gather_radius2_on_cycles(benchmark, n):
    graph = generators.cycle(n)
    views, trace = benchmark(gather_views, graph, 2)
    benchmark.extra_info["messages"] = trace.total_messages
    benchmark.extra_info["payload"] = trace.total_payload


@pytest.mark.parametrize("radius", [1, 2, 4])
def test_bench_gather_radius_scaling(benchmark, radius):
    graph = generators.ladder(20)
    views, trace = benchmark(gather_views, graph, radius)
    benchmark.extra_info["payload"] = trace.total_payload


def test_gather_messages_linear_in_n():
    _, t20 = gather_views(generators.cycle(20), 2)
    _, t80 = gather_views(generators.cycle(80), 2)
    # 4x nodes => 4x messages (each node broadcasts per round)
    assert t80.total_messages == 4 * t20.total_messages
