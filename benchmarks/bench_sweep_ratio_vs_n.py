"""S2 sweep (DESIGN.md): measured ratios are independent of n.

LOCAL guarantees are per-neighborhood: growing the instance must not
degrade the approximation.  We sweep n over a fixed family and assert
the ratio series stays within a narrow band.
"""

from repro.experiments.sweeps import ratio_vs_n

SIZES = (16, 32, 48)


def test_ratio_flat_in_n():
    rows = ratio_vs_n(sizes=SIZES)
    ratios = [r["alg1_ratio"] for r in rows]
    assert max(ratios) <= 4.0, rows
    assert max(ratios) - min(ratios) <= 2.0, "ratio drifts with n"


def test_d2_also_flat():
    rows = ratio_vs_n(sizes=SIZES)
    ratios = [r["d2_ratio"] for r in rows]
    assert max(ratios) <= 5.0, rows


def test_bench_regenerate_sweep(benchmark):
    rows = benchmark.pedantic(ratio_vs_n, kwargs={"sizes": SIZES}, rounds=1, iterations=1)
    benchmark.extra_info["rows"] = rows
