"""Serve benchmark: request throughput + cross-request cache residency.

Boots a real :class:`repro.serve.ReproHTTPServer` on a loopback socket
and drives it with the stdlib HTTP client, then writes
``benchmarks/BENCH_serve.json``:

* ``http`` — sequential ``GET /healthz`` and ``GET /stats``
  requests/sec (handler threads never touch the solver pool, so these
  stay fast under load);
* ``jobs`` — end-to-end jobs/sec for a stream of single-instance solve
  jobs (submit + poll + fetch result over HTTP);
* ``residency`` — the reason the service exists: an identical job batch
  submitted twice against one resident process.  The cold pass must
  miss the OPT cache on every instance (``cold_hit_rate == 0``); the
  warm pass must be served entirely from the resident kernels and
  cached optima (``warm_hit_rate > 0``, and no new misses);
* ``byte_identity`` — the HTTP ``/result`` body for a solve job equals
  the direct :func:`repro.api.solve_many` report JSON modulo the
  sanctioned ``wall_time`` fields.

Run as a script for the CI smoke (``python benchmarks/bench_serve.py
--quick``) or in full (``python benchmarks/bench_serve.py``) to
regenerate ``BENCH_serve.json``.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from http.client import HTTPConnection
from pathlib import Path

from repro.api import solve_many
from repro.api.config import run_config_from_options
from repro.graphs.families import get_family
from repro.io import run_report_to_dict
from repro.serve import ReproHTTPServer, ReproService

RESULT_PATH = Path(__file__).parent / "BENCH_serve.json"


class Client:
    """A minimal JSON client over one loopback connection per request."""

    def __init__(self, port: int):
        self.port = port

    def request(self, method: str, path: str, payload: object = None):
        conn = HTTPConnection("127.0.0.1", self.port, timeout=60)
        try:
            body = None if payload is None else json.dumps(payload).encode()
            conn.request(method, path, body=body)
            response = conn.getresponse()
            return response.status, json.loads(response.read())
        finally:
            conn.close()

    def submit(self, payload: dict) -> str:
        status, body = self.request("POST", "/jobs", payload)
        if status != 202:
            raise RuntimeError(f"submit failed: {status} {body}")
        return body["id"]

    def poll(self, job_id: str, timeout: float = 120.0) -> dict:
        start = time.monotonic()
        while True:
            _, record = self.request("GET", f"/jobs/{job_id}")
            if record["state"] not in ("queued", "running"):
                return record
            elapsed = time.monotonic() - start
            if elapsed > timeout:
                raise RuntimeError(f"job {job_id} stuck after {elapsed:.1f}s")
            time.sleep(0.01)

    def result(self, job_id: str) -> list:
        status, body = self.request("GET", f"/jobs/{job_id}/result")
        if status != 200:
            raise RuntimeError(f"result fetch failed: {status} {body}")
        return body

    def stats(self) -> dict:
        return self.request("GET", "/stats")[1]


def _boot(workers: int = 2):
    service = ReproService(workers=workers, queue_depth=64).start()
    server = ReproHTTPServer(("127.0.0.1", 0), service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return service, server, thread


def _shutdown(service, server, thread):
    server.shutdown()
    server.server_close()
    thread.join(timeout=10)
    service.stop()


def _solve_payload(instances, algorithms):
    return {
        "kind": "solve",
        "instances": [
            {"family": f, "size": n, "seed": s} for f, n, s in instances
        ],
        "algorithms": algorithms,
        "validate": "ratio",
    }


# -- sections ---------------------------------------------------------------


def measure_http(client: Client, requests: int) -> dict:
    rows = {}
    for path in ("/healthz", "/stats"):
        start = time.perf_counter()
        for _ in range(requests):
            status, _ = client.request("GET", path)
            if status != 200:
                raise RuntimeError(f"{path} returned {status}")
        elapsed = time.perf_counter() - start
        rows[path.strip("/")] = {
            "requests": requests,
            "total_s": round(elapsed, 6),
            "rps": round(requests / elapsed, 1),
        }
    return rows


def measure_jobs(client: Client, count: int, size: int) -> dict:
    start = time.perf_counter()
    job_ids = [
        client.submit(_solve_payload([("fan", size, seed)], ["d2"]))
        for seed in range(count)
    ]
    for job_id in job_ids:
        record = client.poll(job_id)
        if record["state"] != "completed":
            raise RuntimeError(f"job {job_id} ended {record['state']}")
        client.result(job_id)
    elapsed = time.perf_counter() - start
    return {
        "jobs": count,
        "instance_n": size,
        "total_s": round(elapsed, 6),
        "jobs_per_s": round(count / elapsed, 2),
    }


def _hit_rate(stats: dict) -> float:
    total = stats["hits"] + stats["misses"]
    return stats["hits"] / total if total else 0.0


def measure_residency(client: Client, sizes: list[int]) -> dict:
    """One job batch, submitted twice: cold then resident-warm."""
    payload = _solve_payload([("fan", n, 0) for n in sizes], ["d2"])
    baseline = client.stats()["opt_cache"]

    cold_start = time.perf_counter()
    cold_record = client.poll(client.submit(payload))
    cold_s = time.perf_counter() - cold_start
    after_cold = client.stats()["opt_cache"]
    cold = {
        "hits": after_cold["hits"] - baseline["hits"],
        "misses": after_cold["misses"] - baseline["misses"],
    }

    warm_start = time.perf_counter()
    warm_record = client.poll(client.submit(payload))
    warm_s = time.perf_counter() - warm_start
    after_warm = client.stats()["opt_cache"]
    warm = {
        "hits": after_warm["hits"] - after_cold["hits"],
        "misses": after_warm["misses"] - after_cold["misses"],
    }
    return {
        "instances": len(sizes),
        "states": [cold_record["state"], warm_record["state"]],
        "cold_s": round(cold_s, 6),
        "warm_s": round(warm_s, 6),
        "speedup": round(cold_s / warm_s, 2) if warm_s else float("inf"),
        "cold_hits": cold["hits"],
        "cold_misses": cold["misses"],
        "warm_hits": warm["hits"],
        "warm_misses": warm["misses"],
        "cold_hit_rate": round(_hit_rate(cold), 4),
        "warm_hit_rate": round(_hit_rate(warm), 4),
    }


def measure_byte_identity(client: Client) -> dict:
    instances = [("fan", 16, 0), ("ladder", 10, 1)]
    algorithms = ["d2", "greedy"]
    served = client.result(
        client.poll(client.submit(_solve_payload(instances, algorithms)))["id"]
    )
    pairs = [
        ({"family": f, "size": n, "seed": s}, get_family(f).make(n, s))
        for f, n, s in instances
    ]
    direct = [
        run_report_to_dict(r)
        for r in solve_many(
            pairs, algorithms, run_config_from_options(validate="ratio")
        )
    ]
    for report in served + direct:
        report["wall_time"] = 0.0
    identical = json.dumps(served, indent=1) == json.dumps(direct, indent=1)
    return {"reports": len(served), "identical": identical}


def run(quick: bool) -> dict:
    service, server, thread = _boot(workers=2)
    try:
        client = Client(server.server_address[1])
        result = {
            "benchmark": "serve",
            "quick": quick,
            "http": measure_http(client, 100 if quick else 500),
            "jobs": measure_jobs(
                client, count=4 if quick else 16, size=12 if quick else 20
            ),
            "residency": measure_residency(
                client, sizes=[16, 20] if quick else [24, 32, 40, 48]
            ),
            "byte_identity": measure_byte_identity(client),
        }
    finally:
        _shutdown(service, server, thread)
    return result


def check(result: dict, quick: bool) -> list[str]:
    """Regression assertions; quick mode uses looser CI-safe floors."""
    failures = []
    rps_floor = 20.0 if quick else 50.0
    for name, row in result["http"].items():
        if row["rps"] < rps_floor:
            failures.append(f"http {name}: {row['rps']} req/s < {rps_floor}")
    if result["jobs"]["jobs_per_s"] <= 0:
        failures.append("jobs: throughput not positive")
    res = result["residency"]
    if res["states"] != ["completed", "completed"]:
        failures.append(f"residency: jobs ended {res['states']}")
    if res["cold_hit_rate"] != 0.0:
        failures.append(
            f"residency: cold pass hit the OPT cache ({res['cold_hit_rate']}) — "
            "stats were not reset or the batch self-overlapped"
        )
    if not res["warm_hit_rate"] > 0.0:
        failures.append("residency: warm pass missed the resident OPT cache")
    if res["warm_misses"] != 0:
        failures.append(f"residency: warm pass re-solved OPT {res['warm_misses']}x")
    if not result["byte_identity"]["identical"]:
        failures.append("byte_identity: served reports differ from solve_many")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="fewer requests + loose floors (CI regression smoke)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="write the result JSON here (default: only full runs write "
        "BENCH_serve.json)",
    )
    args = parser.parse_args(argv)
    result = run(quick=args.quick)
    out = args.out if args.out is not None else (None if args.quick else RESULT_PATH)
    if out is not None:
        out.write_text(json.dumps(result, indent=1))
    for name, row in result["http"].items():
        print(f"{'http /' + name:>24} {row['rps']:>8.1f} req/s "
              f"({row['requests']} requests in {row['total_s']:.3f}s)")
    jobs = result["jobs"]
    print(
        f"{'jobs end-to-end':>24} {jobs['jobs_per_s']:>8.2f} jobs/s "
        f"({jobs['jobs']} jobs, n={jobs['instance_n']})"
    )
    res = result["residency"]
    print(
        f"{'residency':>24} cold {res['cold_s']:.3f}s "
        f"(hit rate {res['cold_hit_rate']:.2f}) vs warm {res['warm_s']:.3f}s "
        f"(hit rate {res['warm_hit_rate']:.2f}): {res['speedup']:.1f}x"
    )
    print(
        f"{'byte identity':>24} {result['byte_identity']['reports']} reports, "
        f"identical={result['byte_identity']['identical']}"
    )
    failures = check(result, quick=args.quick)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
