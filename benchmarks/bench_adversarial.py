"""Adversarial-layer benchmark: S12 degradation grid + byte-identity.

Runs the S12 sweep (churn rate × Byzantine fraction for every default
engine-capable protocol) and the adversarial layer's two reproducibility
contracts, then writes ``benchmarks/BENCH_adversarial.json``:

* ``degradation`` — the S12 table: achieved ratio/coverage measured on
  the graph each run *ended* on, side by side with the fault-free twin
  (``agree`` must be true in the rate-0/fraction-0 column);
* ``benign_identity`` — a spec with empty churn/Byzantine plans must
  serialize byte-identically to the plain spec it decays to: the
  adversarial layer costs nothing when unused;
* ``determinism`` — the same adversarial batch run serially and with
  ``workers=4`` must produce byte-identical report JSON, and a repeated
  single adversarial run must reproduce exactly.

Run as a script for the CI smoke (``python benchmarks/bench_adversarial.py
--quick``) or in full (``python benchmarks/bench_adversarial.py``) to
regenerate ``BENCH_adversarial.json``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.api import (
    ByzantinePlan,
    ChurnPlan,
    SimulationSpec,
    simulate,
    simulate_many,
)
from repro.experiments.sweeps import adversarial_degradation_sweep, render_rows
from repro.graphs.families import get_family
from repro.io import sim_report_to_dict

RESULT_PATH = Path(__file__).parent / "BENCH_adversarial.json"

#: The adversarial batch the determinism probes run (one graph, three
#: specs spanning churn, Byzantine behaviors, and the async scheduler).
PROBE_SPECS = (
    SimulationSpec(
        algorithm="d2",
        seed=1,
        max_rounds=64,
        churn=ChurnPlan(rate=0.3, until=4),
    ),
    SimulationSpec(
        algorithm="greedy",
        seed=1,
        max_rounds=64,
        byzantine=ByzantinePlan(((0, "lie"), (3, "babble"))),
    ),
    SimulationSpec(
        algorithm="degree_two",
        model="async",
        delay=2,
        seed=1,
        max_rounds=64,
        churn=ChurnPlan(rate=0.2, until=3),
        byzantine=ByzantinePlan(((2, "equivocate"),)),
    ),
)


def _report_json(report) -> str:
    return json.dumps(sim_report_to_dict(report), sort_keys=True)


def measure_degradation(quick: bool) -> dict:
    rates = (0.0, 0.3) if quick else (0.0, 0.1, 0.3)
    fractions = (0.0, 0.25) if quick else (0.0, 0.25, 0.5)
    start = time.perf_counter()
    rows = adversarial_degradation_sweep(
        churn_rates=rates, byz_fractions=fractions
    )
    elapsed = time.perf_counter() - start
    return {"rows": rows, "elapsed_s": round(elapsed, 3)}


def measure_benign_identity() -> dict:
    """Empty plans must decay to the plain spec, byte for byte."""
    graph = get_family("tree").make(20, 0)
    plain = SimulationSpec(algorithm="d2", model="congest", budget=8)
    decayed = SimulationSpec(
        algorithm="d2",
        model="congest",
        budget=8,
        churn=ChurnPlan(),
        byzantine=ByzantinePlan(),
    )
    left = _report_json(simulate(graph, plain))
    right = _report_json(simulate(graph, decayed))
    return {"identical": left == right}


def measure_determinism() -> dict:
    graphs = [get_family("tree").make(14, 0), get_family("cactus").make(14, 1)]
    serial = simulate_many(graphs, PROBE_SPECS, workers=1)
    pooled = simulate_many(graphs, PROBE_SPECS, workers=4)
    batch_identical = [_report_json(r) for r in serial] == [
        _report_json(r) for r in pooled
    ]
    twice = [
        _report_json(simulate(graphs[0], PROBE_SPECS[2])) for _ in range(2)
    ]
    return {
        "reports": len(serial),
        "workers_identical": batch_identical,
        "rerun_identical": twice[0] == twice[1],
    }


def run(quick: bool) -> dict:
    return {
        "benchmark": "adversarial",
        "quick": quick,
        "degradation": measure_degradation(quick),
        "benign_identity": measure_benign_identity(),
        "determinism": measure_determinism(),
    }


def check(result: dict, quick: bool) -> list[str]:
    """Regression assertions; quick mode uses looser CI-safe floors."""
    failures = []
    rows = result["degradation"]["rows"]
    algorithms = sorted({row["algorithm"] for row in rows})
    if len(algorithms) < 3:
        failures.append(f"degradation: only {algorithms} covered, need >= 3")
    fault_free = [
        row
        for row in rows
        if row["churn_rate"] == 0.0 and row["byz_fraction"] == 0.0
    ]
    if not fault_free:
        failures.append("degradation: no fault-free column in the grid")
    for row in fault_free:
        if not row["agree"]:
            failures.append(
                f"degradation: fault-free {row['algorithm']} run disagrees "
                "with its twin — the trivial adversary is not transparent"
            )
    if not any(
        not row["agree"] for row in rows if row["byz_fraction"] > 0.0
    ):
        failures.append(
            "degradation: no Byzantine cell changed the outcome — the "
            "adversary never bit"
        )
    ceiling = 120.0 if quick else 600.0
    if result["degradation"]["elapsed_s"] > ceiling:
        failures.append(
            f"degradation: sweep took {result['degradation']['elapsed_s']}s "
            f"> {ceiling}s"
        )
    if not result["benign_identity"]["identical"]:
        failures.append(
            "benign_identity: empty plans changed the report bytes"
        )
    det = result["determinism"]
    if not det["workers_identical"]:
        failures.append("determinism: workers=4 batch differs from serial")
    if not det["rerun_identical"]:
        failures.append("determinism: repeated adversarial run differs")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller grid + loose floors (CI regression smoke)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="write the result JSON here (default: only full runs write "
        "BENCH_adversarial.json)",
    )
    args = parser.parse_args(argv)
    result = run(quick=args.quick)
    out = args.out if args.out is not None else (None if args.quick else RESULT_PATH)
    if out is not None:
        out.write_text(json.dumps(result, indent=1))
    print(render_rows(result["degradation"]["rows"]))
    print(
        f"{'degradation sweep':>24} {len(result['degradation']['rows'])} cells "
        f"in {result['degradation']['elapsed_s']:.3f}s"
    )
    print(
        f"{'benign identity':>24} "
        f"identical={result['benign_identity']['identical']}"
    )
    det = result["determinism"]
    print(
        f"{'determinism':>24} {det['reports']} reports, "
        f"workers_identical={det['workers_identical']}, "
        f"rerun_identical={det['rerun_identical']}"
    )
    failures = check(result, quick=args.quick)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
