"""S5 (DESIGN.md): the Theorem 4.1-vs-4.4 guarantee crossover at t = 25.

``2t − 1 < 50`` exactly for ``t ≤ 25``: below that, the simple 3-round
D2 algorithm has the better *guarantee*; above, Algorithm 1's constant
50 wins.  Also measures where the *measured* curves cross on the
stress family.
"""

from repro.experiments.sweeps import crossover_table, ratio_vs_t


def test_guarantee_crossover():
    rows = {r["t"]: r for r in crossover_table()}
    assert rows[25]["winner"] == "Thm 4.4"
    assert rows[26]["winner"] == "Thm 4.1"
    for t, row in rows.items():
        assert row["thm44_bound"] == 2 * t - 1
        assert row["thm41_bound"] == 50


def test_measured_curves_cross_eventually():
    """On the stress family, D2's measured ratio overtakes Algorithm 1's
    well before the guarantee crossover (the guarantees are loose)."""
    rows = ratio_vs_t(ts=(3, 8))
    assert rows[-1]["d2_ratio"] > rows[-1]["alg1_ratio"]


def test_bench_regenerate_crossover(benchmark):
    rows = benchmark.pedantic(crossover_table, rounds=1, iterations=1)
    benchmark.extra_info["rows"] = rows
