"""Batch-runner benchmark: `solve_many` serial vs process-parallel.

Measures the wall time of a registry-driven sweep (every constant-round
MDS algorithm over a mixed workload) through :func:`repro.api.solve_many`
with and without worker processes, and asserts the parallel run returns
exactly the serial run's results in the same order — the determinism
contract every experiment relies on.
"""

import pytest

from repro.api import RunConfig, solve_many
from repro.experiments.workloads import make_workload

ALGORITHMS = ["algorithm1", "d2", "degree_two", "greedy", "take_all"]


@pytest.fixture(scope="module")
def instances():
    fan = make_workload("fan", [12, 16])
    ladder = make_workload("ladder", [12, 16])
    return fan.labelled() + ladder.labelled()


def _payload(reports):
    return [
        (r.algorithm, r.instance.get("family"), r.instance.get("size"),
         sorted(r.solution, key=repr), r.rounds, r.ratio)
        for r in reports
    ]


def test_parallel_matches_serial(instances):
    config = RunConfig(validate="ratio")
    serial = solve_many(instances, ALGORITHMS, config)
    parallel = solve_many(instances, ALGORITHMS, config, workers=2)
    assert _payload(serial) == _payload(parallel)


def test_bench_solve_many_serial(benchmark, instances):
    config = RunConfig(validate="ratio")
    reports = benchmark.pedantic(
        solve_many, args=(instances, ALGORITHMS, config), rounds=1, iterations=1
    )
    benchmark.extra_info["runs"] = len(reports)


def test_bench_solve_many_workers2(benchmark, instances):
    config = RunConfig(validate="ratio")
    reports = benchmark.pedantic(
        solve_many,
        args=(instances, ALGORITHMS, config),
        kwargs={"workers": 2},
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["runs"] = len(reports)
