"""Figure 1 regeneration (DESIGN.md "Fig. 1"): the Lemma 5.17/5.18 machinery.

The paper's Figure 1 illustrates the red-edge preprocessing used to
prove ``|A| ≤ (t−1)|B|`` on ``K_{2,t}``-minor-free bipartite minors.
This bench *runs* that construction on a suite of minor-free instances
and asserts every depicted property.
"""

from repro.experiments.figures import figure1_rows


def test_figure1_properties():
    for row in figure1_rows(seeds=(0, 1, 2)):
        assert row["A_edgeless"], row
        assert row["degrees_ok"], row
        assert row["half_of_D2_ok"], row
        assert row["ineq_|A|<=(t-1)|B|"], row


def test_bench_regenerate_figure1(benchmark):
    rows = benchmark.pedantic(figure1_rows, kwargs={"seeds": (0, 1)}, rounds=1, iterations=1)
    benchmark.extra_info["rows"] = [
        {k: (v if not isinstance(v, bool) else int(v)) for k, v in row.items()}
        for row in rows
    ]
