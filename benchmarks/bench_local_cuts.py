"""Local-cut pipeline benchmark: bitset arenas vs legacy subgraph walks.

Measures everything the bitset local-cut rewrite touched — r-local 1-cut
and 2-cut enumeration, interesting-vertex detection, true-twin removal,
and an end-to-end Algorithm 1 run — against the pre-rewrite
implementations (kept verbatim below as the ``legacy_*`` functions,
which materialize a fresh ``graph.subgraph(ball_of_set(...))`` arena and
run networkx connectivity per candidate).  Results land in
``benchmarks/BENCH_local_cuts.json``:

* ``primitives[*].speedup`` — legacy seconds / kernel seconds per
  function on each benchmark graph (higher is better; the acceptance
  floor is 5x for ``local_two_cuts`` on the largest instance);
* ``algorithm1[*]`` — the same contrast for the full Algorithm 1
  pipeline (twin reduction → phase sets → residual brute force), with
  the acceptance floor at 3x;
* every row carries ``agree`` — both paths computed identical sets (and
  identical cut *lists*, order included).

Run as a script for the CI smoke (``python benchmarks/bench_local_cuts.py
--quick``) or under pytest for the full measurement
(``pytest benchmarks/bench_local_cuts.py``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from collections import deque
from itertools import combinations
from pathlib import Path

import networkx as nx

from repro.core.algorithm1 import algorithm1
from repro.core.radii import RadiusPolicy
from repro.graphs import generators as gen
from repro.graphs.local_cuts import (
    interesting_vertices,
    local_one_cuts,
    local_two_cuts,
)
from repro.graphs.twins import remove_true_twins
from repro.solvers.exact import minimum_b_dominating_set

RESULT_PATH = Path(__file__).parent / "BENCH_local_cuts.json"


# -- pre-rewrite reference implementations (verbatim) ----------------------


def legacy_closed_neighborhood(graph, v):
    result = set(graph.neighbors(v))
    result.add(v)
    return result


def legacy_closed_neighborhood_of_set(graph, vertices):
    result = set()
    for v in vertices:
        result.add(v)
        result.update(graph.neighbors(v))
    return result


def legacy_ball(graph, center, radius):
    if radius < 0:
        return set()
    seen = {center}
    frontier = deque([(center, 0)])
    while frontier:
        vertex, dist = frontier.popleft()
        if dist == radius:
            continue
        for neighbor in graph.neighbors(vertex):
            if neighbor not in seen:
                seen.add(neighbor)
                frontier.append((neighbor, dist + 1))
    return seen


def legacy_ball_of_set(graph, centers, radius):
    if radius < 0:
        return set()
    seen = set(centers)
    frontier = deque((v, 0) for v in seen)
    while frontier:
        vertex, dist = frontier.popleft()
        if dist == radius:
            continue
        for neighbor in graph.neighbors(vertex):
            if neighbor not in seen:
                seen.add(neighbor)
                frontier.append((neighbor, dist + 1))
    return seen


def legacy_is_cut(graph, cut):
    cut_set = set(cut)
    if not cut_set or not set(graph.nodes) - cut_set:
        return False
    before = nx.number_connected_components(graph)
    after = nx.number_connected_components(graph.subgraph(set(graph.nodes) - cut_set))
    return after > before


def legacy_is_minimal_cut(graph, cut):
    cut_set = set(cut)
    if not legacy_is_cut(graph, cut_set):
        return False
    for size in range(1, len(cut_set)):
        for subset in combinations(sorted(cut_set, key=repr), size):
            if legacy_is_cut(graph, subset):
                return False
    return True


def legacy_local_cut_subgraph(graph, cut, r):
    return graph.subgraph(legacy_ball_of_set(graph, cut, r))


def legacy_is_local_one_cut(graph, v, r):
    arena = legacy_local_cut_subgraph(graph, {v}, r)
    return legacy_is_cut(arena, {v})


def legacy_local_one_cuts(graph, r):
    return {v for v in graph.nodes if legacy_is_local_one_cut(graph, v, r)}


def legacy_is_local_two_cut(graph, u, v, r, *, minimal=True):
    if u == v:
        return False
    if v not in legacy_ball(graph, u, r):
        return False
    cut = {u, v}
    arena = legacy_local_cut_subgraph(graph, cut, r)
    if minimal:
        return legacy_is_minimal_cut(arena, cut)
    return legacy_is_cut(arena, cut)


def legacy_local_two_cuts(graph, r, *, minimal=True):
    seen = set()
    result = []
    for u in sorted(graph.nodes, key=repr):
        for v in sorted(legacy_ball(graph, u, r), key=repr):
            if v == u:
                continue
            pair = frozenset({u, v})
            if pair in seen:
                continue
            seen.add(pair)
            if legacy_is_local_two_cut(graph, u, v, r, minimal=minimal):
                result.append(pair)
    return result


def legacy_certifies_interesting(graph, u, v, r):
    n_u = legacy_closed_neighborhood(graph, u)
    n_v = legacy_closed_neighborhood(graph, v)
    if n_v <= n_u:
        return False
    arena = legacy_local_cut_subgraph(graph, {u, v}, r)
    rest = set(arena.nodes) - {u, v}
    witnesses = 0
    for comp in nx.connected_components(arena.subgraph(rest)):
        if any(w not in n_u for w in comp):
            witnesses += 1
            if witnesses >= 2:
                return True
    return False


def legacy_is_interesting_vertex(graph, v, r):
    for u in sorted(legacy_ball(graph, v, r), key=repr):
        if u == v:
            continue
        if not legacy_is_local_two_cut(graph, u, v, r, minimal=True):
            continue
        if legacy_certifies_interesting(graph, u, v, r):
            return True
    return False


def legacy_interesting_vertices(graph, r):
    return {v for v in graph.nodes if legacy_is_interesting_vertex(graph, v, r)}


def legacy_interesting_vertices_of_cuts(graph, cuts, r):
    result = set()
    for cut in cuts:
        u, v = sorted(cut, key=repr)
        if v not in result and legacy_certifies_interesting(graph, u, v, r):
            result.add(v)
        if u not in result and legacy_certifies_interesting(graph, v, u, r):
            result.add(u)
    return result


def legacy_true_twin_classes(graph):
    buckets = {}
    for v in graph.nodes:
        key = frozenset(legacy_closed_neighborhood(graph, v))
        buckets.setdefault(key, set()).add(v)
    classes = list(buckets.values())
    classes.sort(key=lambda cls: repr(min(cls, key=repr)))
    return classes


def legacy_remove_true_twins(graph):
    mapping = {v: v for v in graph.nodes}
    current = graph.copy()
    while True:
        classes = legacy_true_twin_classes(current)
        removable = [cls for cls in classes if len(cls) > 1]
        if not removable:
            break
        for cls in removable:
            rep = min(cls, key=repr)
            for v in cls:
                if v != rep:
                    current.remove_node(v)
                    mapping[v] = rep
    for v in list(mapping):
        rep = mapping[v]
        while mapping[rep] != rep:
            rep = mapping[rep]
        mapping[v] = rep
    return current, mapping


def legacy_distances_from(graph, source):
    dist = {source: 0}
    frontier = deque([source])
    while frontier:
        vertex = frontier.popleft()
        d = dist[vertex]
        for neighbor in graph.neighbors(vertex):
            if neighbor not in dist:
                dist[neighbor] = d + 1
                frontier.append(neighbor)
    return dist


def legacy_weak_diameter(graph, vertices):
    vertex_list = list(vertices)
    if len(vertex_list) <= 1:
        return 0
    best = 0
    targets = set(vertex_list)
    for v in vertex_list:
        dist = legacy_distances_from(graph, v)
        for u in targets:
            if u not in dist:
                raise ValueError(f"vertices {v!r} and {u!r} are disconnected in G")
            if dist[u] > best:
                best = dist[u]
    return best


def legacy_algorithm1_solution(graph, policy):
    """The pre-rewrite Algorithm 1 pipeline, composed verbatim.

    Twin reduction, phase sets, residual components and span all use the
    legacy subgraph-walking pieces; the brute-force step uses the same
    exact solver as the production path (identical on both sides).
    """
    if graph.number_of_nodes() == 0:
        return set()
    reduced, _ = legacy_remove_true_twins(graph)
    x_set = legacy_local_one_cuts(reduced, policy.one_cut_radius)
    cuts = legacy_local_two_cuts(reduced, policy.two_cut_radius, minimal=True)
    i_set = legacy_interesting_vertices_of_cuts(reduced, cuts, policy.two_cut_radius)
    taken = x_set | i_set
    dominated = legacy_closed_neighborhood_of_set(reduced, taken) if taken else set()
    undominated = set(reduced.nodes) - dominated
    u_set = {
        u
        for u in dominated - taken
        if legacy_closed_neighborhood(reduced, u) <= dominated
    }
    residual_nodes = set(reduced.nodes) - x_set - i_set - u_set
    components = []
    for component in nx.connected_components(reduced.subgraph(residual_nodes)):
        targets = undominated & set(component)
        if targets:
            components.append((set(component), targets))
    components.sort(key=lambda pair: repr(min(pair[0], key=repr)))
    brute = set()
    span = 0
    for component, targets in components:
        brute |= minimum_b_dominating_set(reduced, targets)
        zone = component | legacy_closed_neighborhood_of_set(reduced, targets)
        span = max(span, legacy_weak_diameter(reduced, zone))
    return x_set | i_set | brute


# -- measurement harness --------------------------------------------------


def _best_of(fn, repeats):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _contrast(name, graph_name, n, m, legacy_fn, kernel_fn, repeats, normalize=None):
    """Best-of timing for both paths plus an (untimed) agreement check."""
    legacy_s, legacy_out = _best_of(legacy_fn, repeats)
    kernel_s, kernel_out = _best_of(kernel_fn, repeats)
    if normalize is not None:
        legacy_out = normalize(legacy_out)
        kernel_out = normalize(kernel_out)
    return {
        "primitive": name,
        "graph": graph_name,
        "n": n,
        "m": m,
        "legacy_s": round(legacy_s, 6),
        "kernel_s": round(kernel_s, 6),
        "speedup": round(legacy_s / kernel_s, 2) if kernel_s else float("inf"),
        "agree": legacy_out == kernel_out,
    }


def _twin_chain(blocks, clique):
    """A chain of cliques bridged at their base vertices: twin-rich."""
    graph = nx.Graph()
    for b in range(blocks):
        base = b * clique
        for i in range(clique):
            for j in range(i + 1, clique):
                graph.add_edge(base + i, base + j)
        if b:
            graph.add_edge((b - 1) * clique, base)
    return graph


def bench_graphs(quick):
    if quick:
        return [
            ("ladder24", gen.ladder(24)),
            ("chords48", gen.long_cycle_with_chords(48, 6)),
        ]
    return [
        ("ladder80", gen.ladder(80)),
        ("chords120", gen.long_cycle_with_chords(120, 6)),
        ("caterpillar", gen.caterpillar(30, 2)),
    ]


def measure_primitives(graphs, repeats):
    rows = []
    for name, graph in graphs:
        n, m = graph.number_of_nodes(), graph.number_of_edges()
        rows.append(
            _contrast(
                "local_one_cuts",
                name,
                n,
                m,
                lambda g=graph: legacy_local_one_cuts(g, 2),
                lambda g=graph: local_one_cuts(g, 2),
                repeats,
            )
        )
        rows.append(
            _contrast(
                "local_two_cuts",
                name,
                n,
                m,
                lambda g=graph: legacy_local_two_cuts(g, 3),
                lambda g=graph: local_two_cuts(g, 3),
                repeats,
            )
        )
        rows.append(
            _contrast(
                "interesting_vertices",
                name,
                n,
                m,
                lambda g=graph: legacy_interesting_vertices(g, 2),
                lambda g=graph: interesting_vertices(g, 2),
                repeats,
            )
        )
    return rows


def measure_twins(quick, repeats):
    blocks, clique = (30, 8) if quick else (100, 10)
    graph = _twin_chain(blocks, clique)
    n, m = graph.number_of_nodes(), graph.number_of_edges()

    def normalize(out):
        # Edge tuples orient differently in graph.copy() vs an induced
        # copy, so compare endpoint sets, not tuples.
        reduced, mapping = out
        edges = {frozenset(edge) for edge in reduced.edges}
        return (set(reduced.nodes), edges, mapping)

    return _contrast(
        "remove_true_twins",
        f"twin_chain{blocks}x{clique}",
        n,
        m,
        lambda: legacy_remove_true_twins(graph),
        lambda: remove_true_twins(graph),
        repeats,
        normalize=normalize,
    )


def measure_algorithm1(graphs, repeats):
    policy = RadiusPolicy.practical()
    rows = []
    for name, graph in graphs:
        n, m = graph.number_of_nodes(), graph.number_of_edges()
        rows.append(
            _contrast(
                "algorithm1_end_to_end",
                name,
                n,
                m,
                lambda g=graph: legacy_algorithm1_solution(g, policy),
                lambda g=graph: algorithm1(g, policy).solution,
                repeats,
            )
        )
    return rows


def run(quick: bool) -> dict:
    # best-of-2 even in quick mode: single-shot timings on shared CI
    # runners flake (CPU steal, GC pauses) for a few ms saved
    repeats = 2 if quick else 3
    graphs = bench_graphs(quick)
    primitives = measure_primitives(graphs, repeats)
    primitives.append(measure_twins(quick, repeats))
    return {
        "benchmark": "local_cuts",
        "quick": quick,
        "primitives": primitives,
        "algorithm1": measure_algorithm1(graphs, repeats),
    }


def check(result: dict, quick: bool) -> list[str]:
    """Regression assertions; quick mode uses looser CI-safe floors."""
    failures = []
    two_cut_floor = 2.0 if quick else 5.0
    e2e_floor = 1.5 if quick else 3.0
    for row in result["primitives"] + result["algorithm1"]:
        if row.get("agree") is False:
            failures.append(
                f"{row['primitive']} on {row['graph']}: outputs disagree"
            )
    largest_n = max(
        row["n"] for row in result["primitives"] if row["primitive"] == "local_two_cuts"
    )
    for row in result["primitives"]:
        if (
            row["primitive"] == "local_two_cuts"
            and row["n"] == largest_n
            and row["speedup"] < two_cut_floor
        ):
            failures.append(
                f"local_two_cuts on {row['graph']}: "
                f"speedup {row['speedup']} < {two_cut_floor}"
            )
    for row in result["algorithm1"]:
        if row["speedup"] < e2e_floor:
            failures.append(
                f"algorithm1 on {row['graph']}: speedup {row['speedup']} < {e2e_floor}"
            )
    return failures


# -- pytest entry points --------------------------------------------------


def test_bench_local_two_cuts(benchmark):
    graph = gen.ladder(80)
    local_two_cuts(graph, 3)  # warm the kernel + ball-mask cache
    benchmark.pedantic(local_two_cuts, args=(graph, 3), rounds=3, iterations=5)


def test_write_local_cuts_contrast():
    """Full measurement; persists BENCH_local_cuts.json and enforces floors."""
    result = run(quick=False)
    RESULT_PATH.write_text(json.dumps(result, indent=1))
    failures = check(result, quick=False)
    assert not failures, failures


# -- CI smoke -------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small instances + loose floors (CI regression smoke)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="write the result JSON here (default: only full runs write "
        "BENCH_local_cuts.json)",
    )
    args = parser.parse_args(argv)
    result = run(quick=args.quick)
    out = args.out if args.out is not None else (None if args.quick else RESULT_PATH)
    if out is not None:
        out.write_text(json.dumps(result, indent=1))
    for row in result["primitives"] + result["algorithm1"]:
        print(
            f"{row['primitive']:>24} {row['graph']:<16} n={row['n']:<5} "
            f"legacy {row['legacy_s'] * 1e3:8.2f}ms  "
            f"kernel {row['kernel_s'] * 1e3:8.2f}ms  {row['speedup']:6.1f}x "
            f"agree={row['agree']}"
        )
    failures = check(result, quick=args.quick)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
