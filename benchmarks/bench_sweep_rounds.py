"""S3 sweep (DESIGN.md): rounds vs n — constant versus Θ(diameter).

The defining property of the paper's algorithms: their round count does
not grow with the network.  The full-gather baseline needs the diameter
and shows the contrast.
"""

from repro.experiments.sweeps import rounds_vs_n

SIZES = (8, 16, 24, 32)


def test_local_rounds_constant():
    rows = rounds_vs_n(sizes=SIZES)
    assert len({r["alg1_rounds"] for r in rows}) == 1
    assert len({r["d2_rounds"] for r in rows}) == 1


def test_full_gather_grows_linearly():
    rows = rounds_vs_n(sizes=SIZES)
    gather = [r["full_gather_rounds"] for r in rows]
    diameters = [r["diameter"] for r in rows]
    assert gather == [d + 1 for d in diameters]
    assert gather[-1] > 3 * gather[0] / 2


def test_crossing_point():
    """Beyond small diameters, the LOCAL algorithms win on rounds."""
    rows = rounds_vs_n(sizes=SIZES)
    last = rows[-1]
    assert last["alg1_rounds"] < last["full_gather_rounds"]
    assert last["d2_rounds"] < last["alg1_rounds"]


def test_bench_regenerate_sweep(benchmark):
    rows = benchmark.pedantic(rounds_vs_n, kwargs={"sizes": SIZES}, rounds=1, iterations=1)
    benchmark.extra_info["rows"] = rows
