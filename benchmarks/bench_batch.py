"""Batch-runner benchmark: bitset B&B + shared-OPT batching vs PR 3.

Measures the exact/batch layer end to end against the pre-overhaul
behavior (kept verbatim below as ``legacy_*``), then writes
``benchmarks/BENCH_batch.json``:

* ``bnb[*]`` — the pre-bitset set-walking branch and bound vs the
  kernel-bitset rewrite on each instance; ``agree`` confirms equal
  optimum sizes, ``milp_match`` pins both against the MILP backend;
* ``shared_opt`` — a ratio-validated multi-algorithm sweep over every
  *constant-round* MDS algorithm in the registry (the Table 1 shape,
  where the exact denominator dominates; ``algorithm1``/``algorithm2``
  are excluded because their wall time is their own internal exact
  sub-solves, which no harness can share) timed three ways:
  ``per_task_s`` re-solves OPT per ``(instance, algorithm)`` exactly as
  the PR 3 runner did, ``shared_milp_s``/``shared_bnb_s`` run the
  instance-major batch with one cached OPT per instance.  ``speedup``
  is ``per_task_s / shared_bnb_s`` (the acceptance floor is 3x for the
  full run), and ``agree`` proves all three produced identical ratios
  and optimum sizes;
* ``wire`` — shipping one batch's instances as per-task pickled
  ``nx.Graph`` objects (the PR 3 wire) vs one CSR ``KernelWire`` per
  instance, with payload byte counts and the rebuild cost included;
* ``workers`` — a full-registry ratio batch (algorithm1/2 included;
  compute-heavy tasks are where process parallelism pays) serial vs
  ``workers=4``, asserting the parallel report JSON is byte-identical
  modulo ``wall_time``.

Run as a script for the CI smoke (``python benchmarks/bench_batch.py
--quick``) or in full (``python benchmarks/bench_batch.py``) to
regenerate ``BENCH_batch.json``.
"""

from __future__ import annotations

import argparse
import json
import pickle
import sys
import time
from pathlib import Path

from repro.api import RunConfig, solve, solve_many
from repro.api.registry import algorithm_names
from repro.experiments.workloads import make_workload
from repro.graphs.kernel import graph_from_wire, kernel_for
from repro.graphs.util import closed_neighborhood, closed_neighborhood_of_set
from repro.io import run_report_to_dict
from repro.solvers.exact import minimum_dominating_set
from repro.solvers.greedy import greedy_b_dominating_set
from repro.solvers.opt_cache import clear_opt_cache

RESULT_PATH = Path(__file__).parent / "BENCH_batch.json"


# -- pre-bitset branch and bound (verbatim) --------------------------------


def legacy_bnb_minimum_b_dominating_set(graph, targets, candidates=None):
    target_set = set(targets)
    if not target_set:
        return set()
    if candidates is None:
        candidate_set = closed_neighborhood_of_set(graph, target_set)
    else:
        candidate_set = set(candidates)

    coverers = {}
    covers = {c: closed_neighborhood(graph, c) & target_set for c in candidate_set}
    for b in target_set:
        options = sorted(
            (c for c in closed_neighborhood(graph, b) if c in candidate_set), key=repr
        )
        if not options:
            raise ValueError(f"target {b!r} cannot be dominated by any candidate")
        coverers[b] = options

    incumbent = greedy_b_dominating_set(graph, target_set, candidate_set)
    best = [set(incumbent)]

    def packing_bound(remaining):
        bound = 0
        blocked = set()
        for b in sorted(remaining, key=lambda v: (len(coverers[v]), repr(v))):
            if b in blocked:
                continue
            bound += 1
            for c in coverers[b]:
                blocked |= covers[c]
        return bound

    def search(chosen, remaining):
        if not remaining:
            if len(chosen) < len(best[0]):
                best[0] = set(chosen)
            return
        if len(chosen) + packing_bound(remaining) >= len(best[0]):
            return
        pivot = min(remaining, key=lambda v: (len(coverers[v]), repr(v)))
        for c in coverers[pivot]:
            search(chosen | {c}, remaining - covers[c])

    search(set(), set(target_set))
    return best[0]


def legacy_bnb_minimum_dominating_set(graph):
    import networkx as nx

    solution = set()
    for component in nx.connected_components(graph):
        sub = graph.subgraph(component)
        solution |= legacy_bnb_minimum_b_dominating_set(sub, component)
    return solution


def legacy_per_task_sweep(instances, algorithms, config):
    """The PR 3 runner shape: one task — and one exact solve — per
    ``(instance, algorithm)`` pair (``opt_cache=False`` reproduces the
    per-task OPT recomputation exactly)."""
    per_task = config.with_(opt_cache=False)
    return [
        solve(graph, name, per_task, meta=meta)
        for meta, graph in instances
        for name in algorithms
    ]


# -- measurement harness --------------------------------------------------


def _best_of(fn, repeats):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _instances(quick):
    sizes = [16, 24] if quick else [24, 36, 48]
    seeds = (0,) if quick else (0, 1)
    pairs = []
    for family in ("fan", "ladder", "outerplanar", "ding"):
        pairs.extend(make_workload(family, sizes, seeds).labelled())
    return pairs


def measure_bnb(instances, repeats):
    from repro.solvers.branch_and_bound import bnb_minimum_dominating_set

    rows = []
    for meta, graph in instances:
        kernel_for(graph)  # both paths see a warm kernel
        legacy_s, legacy_out = _best_of(
            lambda: legacy_bnb_minimum_dominating_set(graph), repeats
        )
        bitset_s, bitset_out = _best_of(
            lambda: bnb_minimum_dominating_set(graph), repeats
        )
        milp_size = len(minimum_dominating_set(graph))
        rows.append(
            {
                "family": meta["family"],
                "n": graph.number_of_nodes(),
                "m": graph.number_of_edges(),
                "legacy_s": round(legacy_s, 6),
                "bitset_s": round(bitset_s, 6),
                "speedup": round(legacy_s / bitset_s, 2) if bitset_s else float("inf"),
                "agree": len(legacy_out) == len(bitset_out),
                "milp_match": len(bitset_out) == milp_size,
            }
        )
    return rows


def _ratio_payload(reports):
    return [
        (r.algorithm, r.instance.get("family"), r.instance.get("size"),
         r.instance.get("seed"), r.optimum_size, r.ratio, r.valid)
        for r in reports
    ]


def _constant_round_algorithms():
    """The registry's MDS algorithms whose cost is the harness, not
    themselves (algorithm1/2 spend their time in internal per-component
    exact sub-solves that no batch layer can amortise)."""
    return [
        name for name in algorithm_names("mds")
        if name not in ("algorithm1", "algorithm2")
    ]


def measure_shared_opt(instances, repeats):
    algorithms = _constant_round_algorithms()
    base = RunConfig(validate="ratio")

    def cold(fn):
        # Every timed pass starts from a cold OPT cache, so the shared
        # paths are charged for their one exact solve per instance.
        return lambda: (clear_opt_cache(), fn())[1]

    per_task_s, per_task = _best_of(
        cold(lambda: legacy_per_task_sweep(instances, algorithms, base)), repeats
    )
    shared_milp_s, shared_milp = _best_of(
        cold(lambda: solve_many(instances, algorithms, base)), repeats
    )
    shared_bnb_s, shared_bnb = _best_of(
        cold(lambda: solve_many(instances, algorithms, base.with_(solver="bnb"))),
        repeats,
    )
    agree = (
        _ratio_payload(per_task)
        == _ratio_payload(shared_milp)
        == _ratio_payload(shared_bnb)
    )
    return {
        "instances": len(instances),
        "algorithms": len(algorithms),
        "per_task_s": round(per_task_s, 6),
        "shared_milp_s": round(shared_milp_s, 6),
        "shared_bnb_s": round(shared_bnb_s, 6),
        "speedup_milp": round(per_task_s / shared_milp_s, 2),
        "speedup": round(per_task_s / shared_bnb_s, 2),
        "agree": agree,
    }


def measure_wire(instances, algorithm_count, repeats):
    def ship_pickled():
        # PR 3 shipped one pickled nx.Graph per (instance, algorithm).
        total = 0
        for _, graph in instances:
            for _ in range(algorithm_count):
                total += len(pickle.dumps(graph, protocol=pickle.HIGHEST_PROTOCOL))
        return total

    def ship_wire():
        # One CSR wire per instance, rebuilt (graph + kernel) once.
        total = 0
        for _, graph in instances:
            blob = pickle.dumps(
                kernel_for(graph).to_wire(), protocol=pickle.HIGHEST_PROTOCOL
            )
            total += len(blob)
            graph_from_wire(pickle.loads(blob))
        return total

    for _, graph in instances:
        kernel_for(graph)  # charge neither path for the first kernel build
    pickled_s, pickled_bytes = _best_of(ship_pickled, repeats)
    wire_s, wire_bytes = _best_of(ship_wire, repeats)
    return {
        "instances": len(instances),
        "tasks_per_instance": algorithm_count,
        "pickled_s": round(pickled_s, 6),
        "wire_s": round(wire_s, 6),
        "speedup": round(pickled_s / wire_s, 2) if wire_s else float("inf"),
        "pickled_bytes": pickled_bytes,
        "wire_bytes": wire_bytes,
        "bytes_ratio": round(pickled_bytes / wire_bytes, 2),
    }


def measure_workers(instances, repeats):
    algorithms = algorithm_names("mds")
    config = RunConfig(validate="ratio")

    def stable(reports):
        payload = []
        for report in reports:
            data = run_report_to_dict(report)
            data.pop("wall_time", None)
            payload.append(data)
        return json.dumps(payload, sort_keys=True)

    serial_s, serial = _best_of(
        lambda: (clear_opt_cache(), solve_many(instances, algorithms, config))[1],
        repeats,
    )
    parallel_s, parallel = _best_of(
        lambda: solve_many(instances, algorithms, config, workers=4), repeats
    )
    return {
        "instances": len(instances),
        "algorithms": len(algorithms),
        "serial_s": round(serial_s, 6),
        "workers4_s": round(parallel_s, 6),
        "speedup": round(serial_s / parallel_s, 2),
        "byte_stable": stable(serial) == stable(parallel),
    }


def run(quick: bool) -> dict:
    instances = _instances(quick)
    repeats = 2 if quick else 3
    return {
        "benchmark": "batch_runner",
        "quick": quick,
        "bnb": measure_bnb(instances, repeats),
        "shared_opt": measure_shared_opt(instances, repeats),
        "wire": measure_wire(instances, len(algorithm_names("mds")), repeats * 3),
        "workers": measure_workers(instances, 1 if quick else 2),
    }


def check(result: dict, quick: bool) -> list[str]:
    """Regression assertions; quick mode uses looser CI-safe floors."""
    failures = []
    for row in result["bnb"]:
        if not row["agree"]:
            failures.append(
                f"bnb {row['family']} n={row['n']}: legacy and bitset disagree"
            )
        if not row["milp_match"]:
            failures.append(
                f"bnb {row['family']} n={row['n']}: bitset optimum != MILP optimum"
            )
    shared = result["shared_opt"]
    floor = 1.8 if quick else 3.0
    if not shared["agree"]:
        failures.append("shared_opt: per-task and shared runs disagree")
    if shared["speedup"] < floor:
        failures.append(f"shared_opt speedup {shared['speedup']} < {floor}")
    if not result["workers"]["byte_stable"]:
        failures.append("workers: parallel reports not byte-stable vs serial")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small instances + loose floors (CI regression smoke)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="write the result JSON here (default: only full runs write "
        "BENCH_batch.json)",
    )
    args = parser.parse_args(argv)
    result = run(quick=args.quick)
    out = args.out if args.out is not None else (None if args.quick else RESULT_PATH)
    if out is not None:
        out.write_text(json.dumps(result, indent=1))
    for row in result["bnb"]:
        print(
            f"{'bnb ' + row['family']:>24} n={row['n']:<4} "
            f"legacy {row['legacy_s'] * 1e3:8.2f}ms  "
            f"bitset {row['bitset_s'] * 1e3:8.2f}ms  {row['speedup']:6.1f}x  "
            f"milp_match={row['milp_match']}"
        )
    shared = result["shared_opt"]
    print(
        f"{'shared-OPT sweep':>24} {shared['instances']} instances x "
        f"{shared['algorithms']} algorithms: per-task {shared['per_task_s']:.3f}s  "
        f"shared(milp) {shared['shared_milp_s']:.3f}s  "
        f"shared(bnb) {shared['shared_bnb_s']:.3f}s  "
        f"{shared['speedup']:.1f}x agree={shared['agree']}"
    )
    wire = result["wire"]
    print(
        f"{'wire format':>24} pickled {wire['pickled_s'] * 1e3:.2f}ms "
        f"({wire['pickled_bytes']} B) vs wire {wire['wire_s'] * 1e3:.2f}ms "
        f"({wire['wire_bytes']} B): {wire['speedup']:.1f}x, "
        f"{wire['bytes_ratio']:.1f}x fewer bytes"
    )
    workers = result["workers"]
    print(
        f"{'workers=4':>24} serial {workers['serial_s']:.3f}s vs "
        f"{workers['workers4_s']:.3f}s ({workers['speedup']:.1f}x), "
        f"byte_stable={workers['byte_stable']}"
    )
    failures = check(result, quick=args.quick)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
