"""Table 1 regeneration benchmark (DESIGN.md experiment "Table 1").

Regenerates the landscape of constant-round MDS approximation per graph
class and records measured-vs-paper ratios in ``extra_info``.  The
assertions encode the reproduction claims: all solutions valid, all
measured ratios below the paper guarantees, round orderings preserved.
"""

import pytest

from repro.experiments.table1 import table1_rows


@pytest.fixture(scope="module")
def rows(bench_scale):
    return table1_rows(bench_scale)


def test_table1_shape(rows):
    """The qualitative content of Table 1 (not timed)."""
    by_algo = {(r.graph_class, r.algorithm): r for r in rows}
    # every solution valid
    assert all(r.all_valid for r in rows)
    # numeric guarantees respected
    for r in rows:
        if r.paper_ratio.isdigit():
            assert r.measured_ratio_max <= float(r.paper_ratio) + 1e-9
    # Thm 4.4 uses strictly fewer rounds than Algorithm 1
    d2 = by_algo[("K_2,t-minor-free", "D2 / Thm 4.4")]
    alg1 = by_algo[("K_2,t-minor-free", "Algorithm 1 / Thm 4.1")]
    assert d2.measured_rounds_max < alg1.measured_rounds_max


def test_bench_regenerate_table1(benchmark, bench_scale):
    result = benchmark.pedantic(table1_rows, args=(bench_scale,), rounds=1, iterations=1)
    benchmark.extra_info["rows"] = [
        {
            "class": r.graph_class,
            "algorithm": r.algorithm,
            "paper_ratio": r.paper_ratio,
            "measured_ratio_max": round(r.measured_ratio_max, 3),
            "measured_rounds_max": r.measured_rounds_max,
        }
        for r in result
    ]
