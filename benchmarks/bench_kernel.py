"""Graph-kernel benchmark: CSR + bitset hot paths vs plain networkx.

Measures every primitive the kernel rewired — domination checks,
residual spans, balls, ``D₂``, the greedy solver, the distributed
greedy phase loop, and the engine's delivery-route construction —
against the pre-kernel set-walking implementations (kept verbatim below
as the ``legacy_*`` functions), then an end-to-end S1-style ratio sweep
and a ``simulate_many`` batch.  Results land in
``benchmarks/BENCH_kernel.json``:

* ``primitives[*].speedup`` — legacy seconds / kernel seconds per
  primitive at each instance size (higher is better; the acceptance
  floor is 5x for ``is_dominating_set`` and ``span_counts`` at
  n ≥ 2000);
* ``sweep.speedup`` — the same sweep (D₂ + greedy + distributed greedy
  ratios vs t, with validity checks) timed on legacy vs kernel paths,
  with ``rows`` carrying the scientific payload and an ``agree`` flag
  proving both paths computed identical solutions;
* ``simulate_many`` — engine batch wall time plus the route-building
  contrast (kernel CSR back-ports vs the port→neighbor→back-port
  dictionary chain).

Run as a script for the CI smoke (``python benchmarks/bench_kernel.py
--quick``) or under pytest for the full measurement
(``pytest benchmarks/bench_kernel.py``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from collections import deque
from pathlib import Path

import networkx as nx

from repro.analysis.domination import is_dominating_set, undominated_vertices
from repro.api import SimulationSpec, simulate_many
from repro.core.d2 import d2_set
from repro.core.distributed_greedy import distributed_greedy_dominating_set
from repro.experiments.sweeps import _k2t_stress_instance
from repro.graphs.kernel import kernel_for
from repro.graphs.util import ball_of_set
from repro.local_model.engine import SimulationEngine
from repro.local_model.network import Network
from repro.solvers.greedy import greedy_dominating_set

RESULT_PATH = Path(__file__).parent / "BENCH_kernel.json"


# -- pre-kernel reference implementations (verbatim) ----------------------


def legacy_closed_neighborhood(graph, v):
    result = set(graph.neighbors(v))
    result.add(v)
    return result


def legacy_closed_neighborhood_of_set(graph, vertices):
    result = set()
    for v in vertices:
        result.add(v)
        result.update(graph.neighbors(v))
    return result


def legacy_undominated_vertices(graph, candidate):
    return set(graph.nodes) - legacy_closed_neighborhood_of_set(graph, candidate)


def legacy_is_dominating_set(graph, candidate):
    return not legacy_undominated_vertices(graph, candidate)


def legacy_ball(graph, center, radius):
    if radius < 0:
        return set()
    seen = {center}
    frontier = deque([(center, 0)])
    while frontier:
        vertex, dist = frontier.popleft()
        if dist == radius:
            continue
        for neighbor in graph.neighbors(vertex):
            if neighbor not in seen:
                seen.add(neighbor)
                frontier.append((neighbor, dist + 1))
    return seen


def legacy_ball_of_set(graph, centers, radius):
    if radius < 0:
        return set()
    seen = set(centers)
    frontier = deque((v, 0) for v in seen)
    while frontier:
        vertex, dist = frontier.popleft()
        if dist == radius:
            continue
        for neighbor in graph.neighbors(vertex):
            if neighbor not in seen:
                seen.add(neighbor)
                frontier.append((neighbor, dist + 1))
    return seen


def legacy_span_counts(graph, undominated):
    return {
        v: len(legacy_closed_neighborhood(graph, v) & undominated) for v in graph.nodes
    }


def legacy_gamma(graph, v):
    n_v = legacy_closed_neighborhood(graph, v)
    for u in graph.neighbors(v):
        if n_v <= legacy_closed_neighborhood(graph, u):
            return 1
    return 2


def legacy_d2_set(graph):
    return {v for v in graph.nodes if legacy_gamma(graph, v) >= 2}


def legacy_greedy_dominating_set(graph):
    remaining = set(graph.nodes)
    if not remaining:
        return set()
    candidate_set = legacy_closed_neighborhood_of_set(graph, remaining)
    covers = {c: legacy_closed_neighborhood(graph, c) & remaining for c in candidate_set}
    chosen = set()
    while remaining:
        gain, pick = 0, None
        for c in sorted(candidate_set - chosen, key=repr):
            value = len(covers[c] & remaining)
            if value > gain:
                gain, pick = value, c
        if pick is None:
            raise ValueError("some target cannot be dominated by any candidate")
        chosen.add(pick)
        remaining -= covers[pick]
    return chosen


def _legacy_rank(v):
    return v if isinstance(v, int) else hash(repr(v))


def legacy_distributed_greedy(graph):
    undominated = set(graph.nodes)
    chosen = set()
    phases = 0
    while undominated:
        phases += 1
        span = {
            v: len(legacy_closed_neighborhood(graph, v) & undominated)
            for v in graph.nodes
        }
        joiners = []
        for v in sorted(graph.nodes, key=repr):
            if span[v] == 0:
                continue
            competitors = legacy_ball(graph, v, 2)
            best = max(competitors, key=lambda u: (span[u], -_legacy_rank(u)))
            if best == v:
                joiners.append(v)
        if not joiners:
            raise RuntimeError("greedy stalled")
        for v in joiners:
            chosen.add(v)
            undominated -= legacy_closed_neighborhood(graph, v)
    return chosen, phases


def legacy_build_routes(graph):
    """The old Network + engine route construction: per-node neighbor
    re-sorting, then the port→neighbor→back-port dictionary chain per
    edge.  The kernel path amortises all of it into one cached CSR +
    reverse-slot array per graph."""
    from repro.local_model.identifiers import identity_ids
    from repro.local_model.node import Node

    ids = identity_ids(graph)
    nodes = {}
    for v in graph.nodes:
        ports = sorted(graph.neighbors(v), key=repr)
        nodes[v] = Node(vertex=v, uid=ids[v], ports=ports)
    port_of = {
        v: {u: p for p, u in enumerate(node.ports)} for v, node in nodes.items()
    }
    return {
        v: [(nodes[u], port_of[u][v]) for u in node.ports]
        for v, node in nodes.items()
    }


# -- measurement harness --------------------------------------------------


def _best_of(fn, repeats):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _contrast(name, n, m, legacy_fn, kernel_fn, repeats, normalize=None):
    """Best-of timing for both paths plus an (untimed) agreement check.

    ``normalize`` maps each path's raw output to a comparable value —
    outside the timed region, so scaffolding like bitset→dict
    conversion doesn't dilute the primitive being measured.
    """
    legacy_s, legacy_out = _best_of(legacy_fn, repeats)
    kernel_s, kernel_out = _best_of(kernel_fn, repeats)
    if normalize is not None:
        legacy_out = normalize(legacy_out)
        kernel_out = normalize(kernel_out)
    return {
        "primitive": name,
        "n": n,
        "m": m,
        "legacy_s": round(legacy_s, 6),
        "kernel_s": round(kernel_s, 6),
        "speedup": round(legacy_s / kernel_s, 2) if kernel_s else float("inf"),
        "agree": legacy_out == kernel_out,
    }


def measure_primitives(n, m, repeats, seed=1):
    graph = nx.gnm_random_graph(n, m, seed=seed)
    kernel = kernel_for(graph)
    solution = greedy_dominating_set(graph)
    partial = sorted(solution)[: max(1, len(solution) - 10)]
    undominated = set(list(graph.nodes)[::2])
    undominated_mask = kernel.bits_of(undominated)
    centers = list(graph.nodes)[:: max(1, n // 40)]

    def normalize_spans(out):
        if isinstance(out, dict):  # legacy {vertex: span} -> kernel order
            return [out[label] for label in kernel.labels]
        return list(out)

    rows = [
        _contrast(
            "is_dominating_set",
            n,
            m,
            lambda: legacy_is_dominating_set(graph, solution),
            lambda: is_dominating_set(graph, solution),
            repeats * 10,
        ),
        _contrast(
            "undominated_vertices",
            n,
            m,
            lambda: legacy_undominated_vertices(graph, partial),
            lambda: undominated_vertices(graph, partial),
            repeats * 10,
        ),
        _contrast(
            "span_counts",
            n,
            m,
            lambda: legacy_span_counts(graph, undominated),
            lambda: kernel.span_counts(undominated_mask),
            repeats * 5,
            normalize=normalize_spans,
        ),
        _contrast(
            "ball_of_set_r3",
            n,
            m,
            lambda: legacy_ball_of_set(graph, centers, 3),
            lambda: ball_of_set(graph, centers, 3),
            repeats * 5,
        ),
        _contrast(
            "d2_set",
            n,
            m,
            lambda: legacy_d2_set(graph),
            lambda: d2_set(graph),
            repeats,
        ),
        _contrast(
            "greedy_dominating_set",
            n,
            m,
            lambda: legacy_greedy_dominating_set(graph),
            lambda: greedy_dominating_set(graph),
            repeats,
        ),
        _contrast(
            "distributed_greedy",
            n,
            m,
            lambda: legacy_distributed_greedy(graph)[0],
            lambda: distributed_greedy_dominating_set(graph).solution,
            repeats,
        ),
    ]
    return rows


def _sweep_rows(ts, blocks, runner):
    """One S1-style pass: per-t approximation ratios with validity checks.

    ``runner`` supplies the (d2, greedy, distributed-greedy, validity)
    implementations, so the identical workload runs on the legacy and
    the kernel paths.
    """
    d2_fn, greedy_fn, dgreedy_fn, valid_fn = runner
    rows = []
    for t in ts:
        graph = _k2t_stress_instance(t, blocks=blocks)
        baseline = greedy_fn(graph)
        d2 = d2_fn(graph)
        dgreedy = dgreedy_fn(graph)
        rows.append(
            {
                "t": t,
                "n": graph.number_of_nodes(),
                "greedy": len(baseline),
                "d2": len(d2),
                "d2_over_greedy": round(len(d2) / len(baseline), 3),
                "distributed_greedy": len(dgreedy),
                "all_valid": bool(
                    valid_fn(graph, baseline)
                    and valid_fn(graph, d2)
                    and valid_fn(graph, dgreedy)
                ),
            }
        )
    return rows


def measure_sweep(ts, blocks, repeats):
    legacy_runner = (
        legacy_d2_set,
        legacy_greedy_dominating_set,
        lambda g: legacy_distributed_greedy(g)[0],
        legacy_is_dominating_set,
    )
    kernel_runner = (
        d2_set,
        greedy_dominating_set,
        lambda g: distributed_greedy_dominating_set(g).solution,
        is_dominating_set,
    )
    legacy_s, legacy_rows = _best_of(lambda: _sweep_rows(ts, blocks, legacy_runner), repeats)
    kernel_s, kernel_rows = _best_of(lambda: _sweep_rows(ts, blocks, kernel_runner), repeats)
    return {
        "name": "s1_style_ratio_sweep",
        "ts": list(ts),
        "blocks": blocks,
        "legacy_s": round(legacy_s, 6),
        "kernel_s": round(kernel_s, 6),
        "speedup": round(legacy_s / kernel_s, 2),
        "agree": legacy_rows == kernel_rows,
        "rows": kernel_rows,
    }


def measure_simulate_many(graph_count, size, repeats):
    graphs = [
        _k2t_stress_instance(4, blocks=max(2, size // 6)) for _ in range(graph_count)
    ]
    spec = SimulationSpec(algorithm="d2", trace="stats")
    wall_s, reports = _best_of(lambda: simulate_many(graphs, spec), repeats)

    # Route construction: kernel CSR back-ports vs the dictionary chain.
    build_graph = nx.gnm_random_graph(size * 40, size * 120, seed=3)
    build_legacy, _ = _best_of(
        lambda: legacy_build_routes(build_graph), repeats * 3
    )
    build_kernel, _ = _best_of(
        lambda: SimulationEngine(Network(build_graph)), repeats * 3
    )
    return {
        "graphs": graph_count,
        "n_per_graph": graphs[0].number_of_nodes(),
        "algorithm": "d2",
        "wall_s": round(wall_s, 6),
        "rounds": reports[0].rounds,
        "total_messages": sum(r.total_messages for r in reports),
        "route_build": {
            "n": build_graph.number_of_nodes(),
            "m": build_graph.number_of_edges(),
            "legacy_s": round(build_legacy, 6),
            "kernel_s": round(build_kernel, 6),
            "speedup": round(build_legacy / build_kernel, 2),
        },
    }


def run(quick: bool) -> dict:
    if quick:
        # best-of-2 even in quick mode: single-shot timings on shared
        # CI runners flake (CPU steal, GC pauses) for a few ms saved
        sizes = [(600, 1800)]
        repeats = 2
        sweep = measure_sweep(ts=(4, 6), blocks=12, repeats=2)
        sim = measure_simulate_many(graph_count=4, size=24, repeats=1)
    else:
        sizes = [(500, 1500), (2000, 6000)]
        repeats = 3
        sweep = measure_sweep(ts=(6, 10, 14), blocks=40, repeats=2)
        sim = measure_simulate_many(graph_count=12, size=36, repeats=2)
    primitives = []
    for n, m in sizes:
        primitives.extend(measure_primitives(n, m, repeats))
    return {
        "benchmark": "graph_kernel",
        "quick": quick,
        "primitives": primitives,
        "sweep": sweep,
        "simulate_many": sim,
    }


def check(result: dict, quick: bool) -> list[str]:
    """Regression assertions; quick mode uses looser CI-safe floors."""
    failures = []
    floor = 2.0 if quick else 5.0
    sweep_floor = 1.2 if quick else 2.0
    largest_n = max(row["n"] for row in result["primitives"])
    for row in result["primitives"]:
        if row.get("agree") is False:
            failures.append(f"{row['primitive']} at n={row['n']}: outputs disagree")
        if row["n"] < largest_n:
            continue
        if row["primitive"] in ("is_dominating_set", "span_counts") and (
            row["speedup"] < floor
        ):
            failures.append(
                f"{row['primitive']} at n={row['n']}: speedup {row['speedup']} < {floor}"
            )
    if not result["sweep"]["agree"]:
        failures.append("sweep: legacy and kernel rows disagree")
    if result["sweep"]["speedup"] < sweep_floor:
        failures.append(
            f"sweep speedup {result['sweep']['speedup']} < {sweep_floor}"
        )
    return failures


# -- pytest entry points --------------------------------------------------


def test_bench_kernel_is_dominating_set(benchmark):
    graph = nx.gnm_random_graph(2000, 6000, seed=1)
    solution = greedy_dominating_set(graph)
    kernel_for(graph)
    benchmark.pedantic(
        is_dominating_set, args=(graph, solution), rounds=3, iterations=20
    )
    benchmark.extra_info["solution_size"] = len(solution)


def test_bench_kernel_span_counts(benchmark):
    graph = nx.gnm_random_graph(2000, 6000, seed=1)
    kernel = kernel_for(graph)
    mask = kernel.bits_of(list(graph.nodes)[::2])
    benchmark.pedantic(kernel.span_counts, args=(mask,), rounds=3, iterations=20)


def test_write_kernel_contrast():
    """Full measurement; persists BENCH_kernel.json and enforces floors."""
    result = run(quick=False)
    RESULT_PATH.write_text(json.dumps(result, indent=1))
    failures = check(result, quick=False)
    assert not failures, failures


# -- CI smoke -------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small instances + loose floors (CI regression smoke)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="write the result JSON here (default: only full runs write "
        "BENCH_kernel.json)",
    )
    args = parser.parse_args(argv)
    result = run(quick=args.quick)
    out = args.out if args.out is not None else (None if args.quick else RESULT_PATH)
    if out is not None:
        out.write_text(json.dumps(result, indent=1))
    for row in result["primitives"]:
        print(
            f"{row['primitive']:>24} n={row['n']:<6} "
            f"legacy {row['legacy_s'] * 1e3:8.2f}ms  "
            f"kernel {row['kernel_s'] * 1e3:8.2f}ms  {row['speedup']:6.1f}x"
        )
    sweep = result["sweep"]
    print(
        f"{'s1-style sweep':>24} ts={sweep['ts']} "
        f"legacy {sweep['legacy_s']:.3f}s kernel {sweep['kernel_s']:.3f}s "
        f"{sweep['speedup']:.1f}x agree={sweep['agree']}"
    )
    sim = result["simulate_many"]
    print(
        f"{'simulate_many':>24} {sim['graphs']} graphs x n={sim['n_per_graph']} "
        f"in {sim['wall_s']:.3f}s; route build {sim['route_build']['speedup']:.1f}x"
    )
    failures = check(result, quick=args.quick)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
