"""Substrate microbenchmarks: the costs behind the experiment scales.

Not paper tables; these measure the building blocks so the scales
chosen in DESIGN.md are justified by numbers: local-cut enumeration vs
radius, twin reduction, treewidth heuristic, and the LOCAL-vs-CONGEST
gathering gap on a fixed instance.
"""

import pytest

from repro.graphs import generators
from repro.graphs.local_cuts import local_one_cuts, local_two_cuts
from repro.graphs.treewidth import min_fill_decomposition, width
from repro.graphs.twins import remove_true_twins
from repro.local_model.congest_gather import congest_gather_views
from repro.local_model.gather import gather_views


@pytest.mark.parametrize("radius", [1, 2, 3])
def test_bench_local_one_cuts(benchmark, radius):
    graph = generators.ladder(12)
    result = benchmark(local_one_cuts, graph, radius)
    benchmark.extra_info["count"] = len(result)


@pytest.mark.parametrize("radius", [2, 3])
def test_bench_local_two_cuts(benchmark, radius):
    graph = generators.ladder(10)
    result = benchmark(local_two_cuts, graph, radius)
    benchmark.extra_info["count"] = len(result)


def test_bench_twin_reduction(benchmark):
    graph = generators.clique_with_pendants(12)
    reduced, _ = benchmark(remove_true_twins, graph)
    benchmark.extra_info["reduced_size"] = reduced.number_of_nodes()


def test_bench_treewidth_heuristic(benchmark):
    graph = generators.grid(4, 6)
    tree = benchmark(min_fill_decomposition, graph)
    benchmark.extra_info["width"] = width(tree)


def test_bench_local_gather(benchmark):
    graph = generators.ladder(12)
    views, trace = benchmark(gather_views, graph, 2)
    benchmark.extra_info["rounds"] = trace.round_count


def test_bench_congest_gather(benchmark):
    graph = generators.ladder(12)
    views, trace = benchmark(congest_gather_views, graph, 2, 2)
    benchmark.extra_info["rounds"] = trace.round_count


def test_congest_round_gap():
    graph = generators.ladder(12)
    _, local_trace = gather_views(graph, 2)
    _, congest_trace = congest_gather_views(graph, 2, 2)
    assert congest_trace.round_count >= 3 * local_trace.round_count
