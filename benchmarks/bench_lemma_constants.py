"""S4 sweep (DESIGN.md): measured Lemma 3.2/3.3 constants vs proven budgets.

The proofs allow 3(d+1) = 6 local 1-cuts and 22(d+1) = 44 interesting
vertices per MDS vertex (d = 1).  We measure how much of that budget
the cut-richest families actually use — the answer ("about 3 and 3")
quantifies how conservative the analysis is.
"""

from repro.experiments.sweeps import lemma_constants_sweep


def test_constants_within_budget():
    for row in lemma_constants_sweep(seeds=(0, 1, 2)):
        assert row["c32_used"] <= row["c32_budget"], row
        assert row["c33_used"] <= row["c33_budget"], row


def test_budget_headroom():
    """Measured constants should sit well inside the proven budget —
    the quantitative finding EXPERIMENTS.md reports."""
    rows = lemma_constants_sweep(seeds=(0, 1, 2))
    assert max(r["c32_used"] for r in rows) <= 4.0
    assert max(r["c33_used"] for r in rows) <= 6.0


def test_bench_regenerate_sweep(benchmark):
    rows = benchmark.pedantic(
        lemma_constants_sweep, kwargs={"seeds": (0, 1)}, rounds=1, iterations=1
    )
    benchmark.extra_info["rows"] = rows
