"""S10 (DESIGN.md addendum): the K_{2,t}-free => treewidth => asdim chain.

Section 4's one-line justification for asymptotic dimension 1 is a
two-step structural argument; this bench measures both steps on the
reproduction's families: small largest-K_{2,t} minors, treewidth ≤ 3,
and decomposition-cover control bounded by a small multiple of r.
"""

from repro.experiments.sweeps import treewidth_asdim_chain


def test_chain_quantities_bounded():
    for row in treewidth_asdim_chain(seeds=(0, 1)):
        assert row["largest_k2t"] <= 7, row
        assert row["treewidth"] <= 3, row
        assert row["cover_control_r2"] <= 12, row


def test_treewidth_below_minor_implied_bound():
    # K_{2,t}-minor-free graphs have treewidth O(t); on our instances
    # the measured width never exceeds the largest minor parameter + 1.
    for row in treewidth_asdim_chain(seeds=(0, 1)):
        assert row["treewidth"] <= row["largest_k2t"] + 1, row


def test_bench_regenerate_chain(benchmark):
    rows = benchmark.pedantic(
        treewidth_asdim_chain, kwargs={"seeds": (0,)}, rounds=1, iterations=1
    )
    benchmark.extra_info["rows"] = rows
