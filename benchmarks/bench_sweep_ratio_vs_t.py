"""S1 sweep (DESIGN.md): ratio vs t — the paper's headline contrast.

Theorem 4.4's guarantee degrades linearly in t while Theorem 4.1's is a
constant.  The measured curves must reproduce that shape: D2's ratio
grows with t, Algorithm 1's stays flat, and both stay under their
guarantees.  Includes the radius-policy ablation called out in
DESIGN.md Section 6.
"""

from repro.core.algorithm1 import algorithm1
from repro.core.radii import RadiusPolicy
from repro.experiments.sweeps import _k2t_stress_instance, ratio_vs_t
from repro.analysis.ratio import measure_ratio


TS = (3, 4, 6, 8)


def test_sweep_shape():
    rows = ratio_vs_t(ts=TS)
    d2 = [r["d2_ratio"] for r in rows]
    alg1 = [r["alg1_ratio"] for r in rows]
    assert d2 == sorted(d2), "D2 ratio must not decrease with t"
    assert d2[-1] > d2[0], "D2 ratio must grow with t"
    assert max(alg1) - min(alg1) < 1.0, "Algorithm 1 ratio must stay flat"
    for row in rows:
        assert row["d2_ratio"] <= row["d2_bound"]
        assert row["alg1_ratio"] <= row["alg1_bound"]


def test_radius_policy_ablation():
    """Widening the radii can only refine (or keep) the cut phases; the
    output stays a valid dominating set with comparable ratio."""
    graph = _k2t_stress_instance(5)
    narrow = algorithm1(graph, RadiusPolicy.practical(2, 3))
    wide = algorithm1(graph, RadiusPolicy.practical(4, 5))
    r_narrow = measure_ratio(graph, narrow.solution)
    r_wide = measure_ratio(graph, wide.solution)
    assert r_narrow.valid and r_wide.valid
    assert r_wide.ratio <= r_narrow.ratio + 1.0


def test_bench_regenerate_sweep(benchmark):
    rows = benchmark.pedantic(ratio_vs_t, kwargs={"ts": TS}, rounds=1, iterations=1)
    benchmark.extra_info["rows"] = rows
