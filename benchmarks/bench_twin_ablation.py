"""Ablation (DESIGN.md Section 6): true-twin reduction on/off.

Twin removal is what makes the Section 4 clique-with-pendants argument
work; without it the interesting-vertex machinery sees spurious
structure.  We compare Algorithm 1's phase sizes with and without the
reduction (the "off" variant runs the phases on the raw graph).
"""

import networkx as nx

from repro.analysis.domination import is_dominating_set
from repro.core.algorithm1 import _phase_sets, _residual_components, algorithm1
from repro.core.radii import RadiusPolicy
from repro.graphs import generators
from repro.solvers.exact import minimum_b_dominating_set


def _algorithm1_without_twin_reduction(graph, policy):
    """Steps 2–4 on the raw graph (the ablated variant)."""
    x_set, i_set, u_set, undominated = _phase_sets(graph, policy)
    brute = set()
    for _, targets in _residual_components(graph, x_set, i_set, u_set, undominated):
        brute |= minimum_b_dominating_set(graph, targets)
    return x_set | i_set | brute


def test_ablation_still_valid():
    policy = RadiusPolicy.practical()
    for graph in [
        generators.clique_with_pendants(5),
        nx.complete_graph(8),
        generators.fan(8),
    ]:
        solution = _algorithm1_without_twin_reduction(graph, policy)
        assert is_dominating_set(graph, solution)


def test_twin_reduction_shrinks_work_on_cliques():
    """On a clique, twin reduction collapses everything to one vertex;
    the ablated variant must still answer but processes n vertices."""
    graph = nx.complete_graph(10)
    policy = RadiusPolicy.practical()
    with_reduction = algorithm1(graph, policy)
    assert with_reduction.metadata["twin_free_size"] == 1
    ablated = _algorithm1_without_twin_reduction(graph, policy)
    assert len(with_reduction.solution) <= len(ablated)


def test_bench_with_twin_reduction(benchmark):
    graph = generators.clique_with_pendants(7)
    policy = RadiusPolicy.practical()
    result = benchmark(algorithm1, graph, policy)
    benchmark.extra_info["solution_size"] = len(result.solution)


def test_bench_without_twin_reduction(benchmark):
    graph = generators.clique_with_pendants(7)
    policy = RadiusPolicy.practical()
    result = benchmark(_algorithm1_without_twin_reduction, graph, policy)
    benchmark.extra_info["solution_size"] = len(result)
