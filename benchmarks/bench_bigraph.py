"""Large-graph benchmark: the packed kernel backend at n up to 10⁶.

Proves the two claims the packed backend exists for:

* **capacity** — million-node instances build from streamed edge lists
  (:func:`repro.graphs.kernel.kernel_from_edges`, no ``nx.Graph``) and
  run the greedy / D₂ / two-packing-ratio pipelines end to end in
  O(n + m) memory.  Every (family, n) cell is measured in a fresh
  subprocess so ``ru_maxrss`` is that instance's own peak; the check
  enforces both an absolute O(n + m) cap and, at n ≥ 10⁵, that the
  peak stays below the n²/8-byte dense mask table the int backend
  would have had to allocate;
* **agreement** — at sizes both backends can hold, greedy, D₂, and the
  two-packing bound produce identical output on the int and packed
  backends (``differential[*].agree``).

Results land in ``benchmarks/BENCH_bigraph.json``:

* ``rows[*]`` — per (family, n): build/solve wall times, solution
  sizes, the two-packing lower bound with greedy/D₂ ratios, and
  ``peak_rss_bytes`` against both memory caps;
* ``differential[*]`` — per overlapping size: an ``agree`` flag plus
  the per-pipeline comparison record.

Run as a script for the CI smoke (``python benchmarks/bench_bigraph.py
--quick``: n = 10⁴ cells + the n = 2048 differential, loose floors) or
with no flag for the full measurement (adds n = 10⁵ and 10⁶ and writes
``BENCH_bigraph.json``).
"""

from __future__ import annotations

import argparse
import json
import os
import resource
import subprocess
import sys
import time
from pathlib import Path

RESULT_PATH = Path(__file__).parent / "BENCH_bigraph.json"

#: Absolute per-cell memory cap: interpreter + numpy baseline plus a
#: generous 40 words for every vertex and edge.  An O(n²) substrate
#: cannot fit under this at any benchmarked size.
_RSS_BASE_BYTES = 400 * (1 << 20)
_RSS_WORDS_PER_ITEM = 40

FAMILIES = ("grid", "banded")
FULL_SIZES = (10_000, 100_000, 1_000_000)
QUICK_SIZES = (10_000,)
FULL_DIFF_SIZES = (2_048, 10_000)
QUICK_DIFF_SIZES = (2_048,)


# -- instance families (streaming edge generators) ------------------------


def grid_edges(side: int):
    """Edges of the side x side 2D grid, vertex ``r * side + c``."""
    for r in range(side):
        base = r * side
        for c in range(side):
            v = base + c
            if c + 1 < side:
                yield v, v + 1
            if r + 1 < side:
                yield v, v + side


def banded_edges(n: int, degree: int = 6, band: int = 64, seed: int = 7):
    """Seeded sparse random graph with all edges inside a diagonal band."""
    import numpy as np

    rng = np.random.default_rng(seed)
    chunk = 1 << 16
    for start in range(0, n, chunk):
        us = np.repeat(np.arange(start, min(n, start + chunk)), degree)
        vs = np.minimum(us + rng.integers(1, band + 1, size=us.size), n - 1)
        keep = us != vs
        yield from zip(us[keep].tolist(), vs[keep].tolist())


def normalize_n(family: str, n: int) -> int:
    """Snap ``n`` to the family's nearest realisable size (grids need
    squares: 10⁵ becomes 316² = 99 856)."""
    if family == "grid":
        side = int(round(n ** 0.5))
        return side * side
    return n


def family_edges(family: str, n: int):
    if family == "grid":
        return grid_edges(int(round(n ** 0.5)))
    if family == "banded":
        return banded_edges(n)
    raise ValueError(f"unknown family {family!r}")


def build_view(family: str, n: int):
    from repro.graphs.kernel import KernelView, kernel_from_edges

    return KernelView(kernel_from_edges(family_edges(family, n), n=n, backend="packed"))


# -- one measurement cell (runs in a fresh subprocess) --------------------


def measure_cell(family: str, n: int) -> dict:
    from repro.analysis.domination import is_dominating_set
    from repro.core.d2 import d2_dominating_set
    from repro.solvers.bounds import two_packing_lower_bound
    from repro.solvers.greedy import greedy_dominating_set

    n = normalize_n(family, n)
    t0 = time.perf_counter()
    view = build_view(family, n)
    build_s = time.perf_counter() - t0
    kernel = view.kernel
    m = kernel.edge_count()

    t0 = time.perf_counter()
    greedy = greedy_dominating_set(view)
    greedy_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    d2 = d2_dominating_set(view)
    d2_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    lower_bound = two_packing_lower_bound(view)
    two_packing_s = time.perf_counter() - t0

    valid = is_dominating_set(view, greedy) and is_dominating_set(view, d2.solution)
    peak_rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    return {
        "family": family,
        "n": n,
        "m": m,
        "backend": kernel.backend,
        "build_s": build_s,
        "greedy_s": greedy_s,
        "greedy_size": len(greedy),
        "d2_s": d2_s,
        "d2_size": len(d2.solution),
        "two_packing_s": two_packing_s,
        "lower_bound": lower_bound,
        "ratio_greedy": len(greedy) / lower_bound if lower_bound else None,
        "ratio_d2": len(d2.solution) / lower_bound if lower_bound else None,
        "valid": valid,
        "peak_rss_bytes": peak_rss,
        "rss_cap_bytes": _RSS_BASE_BYTES + _RSS_WORDS_PER_ITEM * 8 * (n + m),
        "dense_mask_bytes": n * n // 8,
    }


def measure_in_subprocess(family: str, n: int) -> dict:
    """One cell in a fresh interpreter, so ru_maxrss is the cell's own."""
    proc = subprocess.run(
        [sys.executable, __file__, "--measure", family, str(n)],
        capture_output=True,
        text=True,
        env=dict(os.environ, PYTHONPATH=str(Path(__file__).parent.parent / "src")),
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"measurement subprocess ({family}, n={n}) failed:\n{proc.stderr}"
        )
    return json.loads(proc.stdout.splitlines()[-1])


# -- differential: both backends on the same instance ---------------------


def differential_cell(family: str, n: int) -> dict:
    from repro.core.d2 import d2_dominating_set
    from repro.graphs.kernel import (
        KernelView,
        graph_from_wire,
        kernel_from_edges,
        set_kernel_backend,
    )
    from repro.solvers.bounds import two_packing_lower_bound
    from repro.solvers.greedy import greedy_dominating_set

    n = normalize_n(family, n)
    checks = {}
    outputs = {}
    for backend in ("int", "packed"):
        # Force the backend globally for the whole leg: graph_from_wire
        # pre-seeds the kernel cache with whatever the current selection
        # resolves to, and the solvers go through kernel_for again.
        previous = set_kernel_backend(backend)
        try:
            instance = kernel_from_edges(family_edges(family, n), n=n, backend=backend)
            if backend == "packed":
                instance = KernelView(instance)
            else:
                instance = graph_from_wire(instance.to_wire())
            outputs[backend] = {
                "greedy": sorted(greedy_dominating_set(instance)),
                "d2": sorted(d2_dominating_set(instance).solution),
                "two_packing": two_packing_lower_bound(instance),
            }
        finally:
            set_kernel_backend(previous[0], threshold=previous[1])
    for key in outputs["int"]:
        checks[key] = outputs["int"][key] == outputs["packed"][key]
    return {
        "family": family,
        "n": n,
        "agree": all(checks.values()),
        "checks": checks,
        "greedy_size": len(outputs["int"]["greedy"]),
        "d2_size": len(outputs["int"]["d2"]),
        "two_packing": outputs["int"]["two_packing"],
    }


# -- harness --------------------------------------------------------------


def run(quick: bool) -> dict:
    from repro.graphs.kernel import kernel_backend

    sizes = QUICK_SIZES if quick else FULL_SIZES
    diff_sizes = QUICK_DIFF_SIZES if quick else FULL_DIFF_SIZES
    rows = []
    for n in sizes:
        for family in FAMILIES:
            rows.append(measure_in_subprocess(family, n))
    differential = [
        differential_cell(family, n)
        for n in diff_sizes
        for family in FAMILIES
    ]
    return {
        "quick": quick,
        "backend_selection": dict(zip(("backend", "threshold"), kernel_backend())),
        "rows": rows,
        "differential": differential,
    }


def check(result: dict, quick: bool) -> list[str]:
    failures = []
    for row in result["rows"]:
        cell = f"({row['family']}, n={row['n']})"
        if row["backend"] != "packed":
            failures.append(f"{cell}: expected the packed backend, got {row['backend']}")
        if not row["valid"]:
            failures.append(f"{cell}: a produced solution is not dominating")
        if not 0 < row["greedy_size"] <= row["n"]:
            failures.append(f"{cell}: implausible greedy size {row['greedy_size']}")
        if row["ratio_greedy"] is None or row["ratio_greedy"] < 1.0:
            failures.append(
                f"{cell}: greedy ratio {row['ratio_greedy']} below the "
                f"lower bound — the bound or the solver is wrong"
            )
        if row["peak_rss_bytes"] >= row["rss_cap_bytes"]:
            failures.append(
                f"{cell}: peak RSS {row['peak_rss_bytes']} breaks the "
                f"O(n + m) cap {row['rss_cap_bytes']}"
            )
        if row["n"] >= 100_000 and row["peak_rss_bytes"] >= row["dense_mask_bytes"]:
            failures.append(
                f"{cell}: peak RSS {row['peak_rss_bytes']} is no better than "
                f"a dense n²/8 mask table ({row['dense_mask_bytes']})"
            )
    for cell in result["differential"]:
        if not cell["agree"]:
            failures.append(
                f"differential ({cell['family']}, n={cell['n']}): backends "
                f"disagree: {cell['checks']}"
            )
    if not quick:
        seen = {(row["family"], row["n"]) for row in result["rows"]}
        for family in FAMILIES:
            if (family, 1_000_000) not in seen:
                failures.append(f"full run is missing the ({family}, n=10⁶) cell")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="n=10⁴ cells + n=2048 differential only (CI smoke); does not "
        "write BENCH_bigraph.json",
    )
    parser.add_argument(
        "--measure",
        nargs=2,
        metavar=("FAMILY", "N"),
        help="internal: measure one cell and print its JSON row",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="write the result JSON here (default: only full runs write "
        "BENCH_bigraph.json)",
    )
    args = parser.parse_args(argv)
    if args.measure:
        family, n = args.measure
        print(json.dumps(measure_cell(family, int(n))))
        return 0
    result = run(quick=args.quick)
    out = args.out if args.out is not None else (None if args.quick else RESULT_PATH)
    if out is not None:
        out.write_text(json.dumps(result, indent=1))
    for row in result["rows"]:
        print(
            f"{row['family']:>8} n={row['n']:<8} m={row['m']:<8} "
            f"build {row['build_s']:6.2f}s greedy {row['greedy_s']:6.2f}s "
            f"d2 {row['d2_s']:6.2f}s 2pack {row['two_packing_s']:6.2f}s "
            f"ratio {row['ratio_greedy']:.3f} "
            f"rss {row['peak_rss_bytes'] / (1 << 20):7.1f}MiB"
        )
    for cell in result["differential"]:
        print(
            f"{'diff':>8} {cell['family']} n={cell['n']:<6} "
            f"agree={cell['agree']} |greedy|={cell['greedy_size']} "
            f"|d2|={cell['d2_size']} 2pack={cell['two_packing']}"
        )
    failures = check(result, quick=args.quick)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
