"""Figure 2 regeneration (DESIGN.md "Fig. 2"): the Lemma 3.3 charging picture.

The paper's Figure 2 depicts interesting vertices charging nearby MDS
vertices.  We measure the two quantities the picture encodes: charges
per dominator (bounded by 6 per family in Claim 5.10, 19 overall) and
the distance from an interesting vertex to its dominator (Claim 5.11:
at most 5).
"""

from repro.experiments.figures import figure2_rows


def test_figure2_claims():
    for row in figure2_rows(seeds=(0, 1, 2)):
        assert row["max_dist_to_dominator"] <= 5, row
        # Claim 5.12 bound: 19 interesting vertices per MDS vertex.
        assert row["charge_per_dominator"] <= 19, row


def test_bench_regenerate_figure2(benchmark):
    rows = benchmark.pedantic(figure2_rows, kwargs={"seeds": (0, 1)}, rounds=1, iterations=1)
    benchmark.extra_info["rows"] = rows
