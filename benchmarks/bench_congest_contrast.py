"""S6 (DESIGN.md addendum): LOCAL vs CONGEST message-volume contrast.

The paper's algorithms rely on LOCAL's unbounded messages.  This bench
quantifies by how much: per-message payload of radius-r gathering vs
the one-identifier CONGEST budget, and the constant-size messages of
the D2 protocol as the counterpoint.
"""

from repro.experiments.sweeps import identifier_robustness, message_volume_vs_radius


def test_gathering_needs_local_model():
    rows = message_volume_vs_radius(radii=(1, 2, 3))
    assert all(not r["congest_feasible"] for r in rows)
    volumes = [r["max_message_units"] for r in rows]
    assert volumes == sorted(volumes)


def test_identifier_robustness():
    rows = identifier_robustness(seeds=(0, 1, 2))
    assert all(r["valid"] for r in rows)
    assert len({r["size"] for r in rows}) == 1
    assert all(r["rounds"] == 3 for r in rows)


def test_bench_regenerate_volume_sweep(benchmark):
    rows = benchmark.pedantic(
        message_volume_vs_radius, kwargs={"radii": (1, 2, 3)}, rounds=1, iterations=1
    )
    benchmark.extra_info["rows"] = rows


def test_bench_regenerate_id_robustness(benchmark):
    rows = benchmark.pedantic(
        identifier_robustness, kwargs={"seeds": (0, 1)}, rounds=1, iterations=1
    )
    benchmark.extra_info["rows"] = rows
