"""Sweep benchmark: sharding overhead + crash-recovery cost.

Writes ``benchmarks/BENCH_sweep_shards.json``:

* ``overhead`` — the price of crash-safety when nothing crashes: one
  workload through direct :func:`repro.api.solve_many` (process pool,
  no checkpoints) vs the same workload through
  :func:`repro.sweep.run_sweep` (manifest + per-shard atomic
  checkpoints + merge).  The merged reports must agree byte-for-byte
  (modulo ``wall_time``), and the sharded run must stay within 10% of
  direct on the full workload;
* ``kill_recovery`` — the same sweep with the fault harness SIGKILLing
  every worker on its first attempt (``kill=1.0,attempts=1``): every
  shard's pool breaks once and is rebuilt, retries re-execute, and the
  merged output still agrees with the direct run;
* ``death_recovery`` — driver death after the first checkpoint
  (``die=1.0``) followed by ``resume_sweep``: resume must re-execute
  only the missing shards and reproduce the direct reports.

Run as a script for the CI smoke (``python
benchmarks/bench_sweep_shards.py --quick``) or in full to regenerate
``BENCH_sweep_shards.json``.
"""

from __future__ import annotations

import argparse
import copy
import json
import sys
import tempfile
import time
from pathlib import Path

from repro.api import RunConfig, solve_many
from repro.graphs.families import get_family
from repro.io import run_report_to_dict
from repro.sweep import (
    FaultInjector,
    SimulatedProcessDeath,
    parse_fault_spec,
    resume_sweep,
    run_sweep,
)

RESULT_PATH = Path(__file__).parent / "BENCH_sweep_shards.json"

ALGORITHMS = ["d2", "greedy"]
WORKERS = 2
SHARD_SIZE = 2
NO_SLEEP = {"sleep": lambda seconds: None}


def _instances(quick: bool):
    # Full sizes are big enough that solve time dominates the fixed
    # manifest/checkpoint costs the overhead section is pricing.
    sizes = [14, 18] if quick else [800, 1200, 1600]
    seeds = (0, 1)
    pairs = []
    for size in sizes:
        for seed in seeds:
            pairs.append(
                (
                    {"family": "fan", "size": size, "seed": seed},
                    get_family("fan").make(size, seed),
                )
            )
    return pairs


def _config() -> RunConfig:
    return RunConfig(validate="ratio")


def _canonical(report_dicts: list[dict]) -> str:
    stripped = copy.deepcopy(report_dicts)
    for report in stripped:
        report.pop("wall_time", None)
    return json.dumps(stripped, sort_keys=True)


def _sweep(instances, run_dir, *, faults=None, **options):
    injector = FaultInjector(parse_fault_spec(faults)) if faults else None
    options.setdefault("workers", WORKERS)
    return run_sweep(
        instances,
        run_dir=run_dir,
        algorithms=ALGORITHMS,
        config=_config(),
        shard_size=SHARD_SIZE,
        injector=injector,
        **NO_SLEEP,
        **options,
    )


# -- sections ---------------------------------------------------------------


def measure_overhead(instances, direct_canonical: str, tmp: Path) -> dict:
    start = time.perf_counter()
    direct = solve_many(instances, ALGORITHMS, _config(), workers=WORKERS)
    direct_s = time.perf_counter() - start
    assert _canonical([run_report_to_dict(r) for r in direct]) == direct_canonical

    start = time.perf_counter()
    result = _sweep(instances, tmp / "overhead")
    sharded_s = time.perf_counter() - start
    return {
        "instances": len(instances),
        "shards": result.total_shards,
        "direct_s": round(direct_s, 6),
        "sharded_s": round(sharded_s, 6),
        "overhead_pct": round(100.0 * (sharded_s - direct_s) / direct_s, 2),
        "agree": _canonical(result.report_dicts()) == direct_canonical,
    }


def measure_kill_recovery(instances, direct_canonical: str, tmp: Path) -> dict:
    start = time.perf_counter()
    result = _sweep(instances, tmp / "kill", faults="kill=1.0,attempts=1")
    total_s = time.perf_counter() - start
    return {
        "shards": result.total_shards,
        "retries": result.retries,
        "complete": result.complete,
        "total_s": round(total_s, 6),
        "agree": result.complete
        and _canonical(result.report_dicts()) == direct_canonical,
    }


def measure_death_recovery(instances, direct_canonical: str, tmp: Path) -> dict:
    run_dir = tmp / "death"
    died = False
    try:
        _sweep(instances, run_dir, faults="die=1.0", workers=1)
    except SimulatedProcessDeath:
        died = True
    start = time.perf_counter()
    resumed = resume_sweep(run_dir, workers=WORKERS, **NO_SLEEP)
    resume_s = time.perf_counter() - start
    return {
        "died_mid_run": died,
        "shards": resumed.total_shards,
        "resumed_shards": len(resumed.executed),
        "resume_s": round(resume_s, 6),
        "complete": resumed.complete,
        "agree": resumed.complete
        and _canonical(resumed.report_dicts()) == direct_canonical,
    }


def run(quick: bool) -> dict:
    instances = _instances(quick)
    direct_canonical = _canonical(
        [run_report_to_dict(r) for r in solve_many(instances, ALGORITHMS, _config())]
    )
    with tempfile.TemporaryDirectory() as tmp_name:
        tmp = Path(tmp_name)
        return {
            "benchmark": "sweep_shards",
            "quick": quick,
            "workers": WORKERS,
            "shard_size": SHARD_SIZE,
            "algorithms": ALGORITHMS,
            "overhead": measure_overhead(instances, direct_canonical, tmp),
            "kill_recovery": measure_kill_recovery(instances, direct_canonical, tmp),
            "death_recovery": measure_death_recovery(
                instances, direct_canonical, tmp
            ),
        }


def check(result: dict, quick: bool) -> list[str]:
    """Regression assertions; quick mode uses looser CI-safe floors."""
    failures = []
    overhead = result["overhead"]
    # Tiny quick workloads are dominated by fixed pool/manifest costs,
    # so only the full run enforces the 10% ceiling.
    ceiling = 100.0 if quick else 10.0
    if overhead["overhead_pct"] > ceiling:
        failures.append(
            f"overhead: sharded run {overhead['overhead_pct']}% over direct "
            f"(ceiling {ceiling}%)"
        )
    for section in ("overhead", "kill_recovery", "death_recovery"):
        if not result[section]["agree"]:
            failures.append(f"{section}: merged reports differ from solve_many")
    kill = result["kill_recovery"]
    if not kill["complete"]:
        failures.append("kill_recovery: sweep did not complete")
    if kill["retries"] < kill["shards"]:
        failures.append(
            f"kill_recovery: expected every shard to retry once, saw "
            f"{kill['retries']}/{kill['shards']}"
        )
    death = result["death_recovery"]
    if not death["died_mid_run"]:
        failures.append("death_recovery: injected driver death never fired")
    if not death["complete"]:
        failures.append("death_recovery: resume did not complete the run")
    if death["resumed_shards"] >= death["shards"]:
        failures.append(
            "death_recovery: resume re-executed every shard — checkpoints "
            "were not honoured"
        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller workload + loose floors (CI regression smoke)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="write the result JSON here (default: only full runs write "
        "BENCH_sweep_shards.json)",
    )
    args = parser.parse_args(argv)
    result = run(quick=args.quick)
    out = args.out if args.out is not None else (None if args.quick else RESULT_PATH)
    if out is not None:
        out.write_text(json.dumps(result, indent=1))
    overhead = result["overhead"]
    print(
        f"{'overhead':>16} direct {overhead['direct_s']:.3f}s vs sharded "
        f"{overhead['sharded_s']:.3f}s ({overhead['overhead_pct']:+.1f}%, "
        f"{overhead['shards']} shards, agree={overhead['agree']})"
    )
    kill = result["kill_recovery"]
    print(
        f"{'kill recovery':>16} {kill['total_s']:.3f}s with "
        f"{kill['retries']} retries over {kill['shards']} shards "
        f"(agree={kill['agree']})"
    )
    death = result["death_recovery"]
    print(
        f"{'death recovery':>16} resumed {death['resumed_shards']}/"
        f"{death['shards']} shards in {death['resume_s']:.3f}s "
        f"(agree={death['agree']})"
    )
    failures = check(result, quick=args.quick)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
