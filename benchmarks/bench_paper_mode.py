"""S8 (DESIGN.md addendum): the paper's radii at a scale where they bite.

On C_200 with t = 2 the radius m_3.2 = 88 is genuinely local (the graph
has diameter 100): every vertex is an 88-local 1-cut, none is global,
and Algorithm 1's first phase alone yields ratio exactly 3 — within the
proven 50 and matching the Section 4 cycle discussion.
"""

from repro.experiments.paper_mode import paper_mode_on_cycles


def test_paper_constants_on_long_cycles():
    rows = paper_mode_on_cycles(ns=(200,), t=2)
    row = rows[0]
    assert row["m32_radius"] == 88
    assert row["all_vertices_are_local_1_cuts"]
    # n / ceil(n/3): exactly 3 when 3 | n, else marginally below.
    assert 2.9 <= row["ratio"] <= 3.0
    assert row["ratio"] <= row["ratio_bound"]


def test_radius_guard():
    import pytest

    with pytest.raises(ValueError):
        paper_mode_on_cycles(ns=(100,), t=2)  # 100 <= 2*88 + 1


def test_bench_regenerate_paper_mode(benchmark):
    rows = benchmark.pedantic(
        paper_mode_on_cycles, kwargs={"ns": (180,)}, rounds=1, iterations=1
    )
    benchmark.extra_info["rows"] = rows
