"""Ablation (DESIGN.md Section 6): MILP vs branch-and-bound brute force.

Algorithm 1's Step 4 needs an exact B-domination solver.  Both backends
must agree on optima — asserted through the :mod:`repro.api` front door
(``RunConfig(solver=...)`` selects the backend of the
``validate="ratio"`` optimum computation) so the config-level dispatch
is what gets cross-checked.  The *timed* loops call the backend
functions directly: the measurement is the solver alone, with no
runner/validation overhead in the timed region.
"""

import pytest

from repro.api import RunConfig, solve
from repro.graphs.random_families import random_ding_augmentation, random_outerplanar
from repro.solvers.branch_and_bound import bnb_minimum_dominating_set
from repro.solvers.exact import minimum_dominating_set


INSTANCES = {
    "outerplanar_16": random_outerplanar(16, seed=0),
    "outerplanar_24": random_outerplanar(24, seed=0),
    "ding_30": random_ding_augmentation(4, 3, seed=0),
}


def _optimum_via_api(graph, backend):
    report = solve(graph, "take_all", RunConfig(solver=backend, validate="ratio"))
    return report.optimum_size


@pytest.mark.parametrize("name", sorted(INSTANCES))
def test_backends_agree(name):
    graph = INSTANCES[name]
    assert _optimum_via_api(graph, "milp") == _optimum_via_api(graph, "bnb")


@pytest.mark.parametrize("name", sorted(INSTANCES))
def test_bench_milp_backend(benchmark, name):
    graph = INSTANCES[name]
    result = benchmark(minimum_dominating_set, graph)
    benchmark.extra_info["opt"] = len(result)


@pytest.mark.parametrize("name", sorted(INSTANCES))
def test_bench_bnb_backend(benchmark, name):
    graph = INSTANCES[name]
    result = benchmark(bnb_minimum_dominating_set, graph)
    benchmark.extra_info["opt"] = len(result)
