"""Bounds on the domination number, shared with branch-and-bound.

Used to sanity-check measured ratios (an algorithm's output divided by a
*lower bound* upper-bounds the true ratio) and inside branch-and-bound.

* ``n / (Δ + 1)`` — the degree bound from the paper's footnote 4;
* 2-packing — vertices pairwise at distance ≥ 3 need distinct
  dominators (greedy and exact variants);
* LP relaxation of the domination ILP.

The combinatorial bounds run on the graph's
:class:`~repro.graphs.kernel.GraphKernel` bitsets, and the mask-level
cores (:func:`greedy_cover_mask`, :class:`PackingBound`) are exactly
what :mod:`repro.solvers.branch_and_bound` uses for its incumbent and
its per-node lower bound — one implementation for B&B and standalone
callers alike.
"""

from __future__ import annotations

import math
from typing import Hashable

import networkx as nx
import numpy as np
from scipy.optimize import Bounds, LinearConstraint, linprog, milp
from scipy.sparse import csr_matrix

from repro.graphs.kernel import GraphKernel, iter_bits, kernel_for
from repro.graphs.packed import greedy_cover_packed, two_packing_packed
from repro.graphs.util import ball, closed_neighborhood

Vertex = Hashable


# -- mask-level cores (shared with branch-and-bound) -----------------------


def greedy_cover_mask(kernel: GraphKernel, target_mask: int, candidate_mask: int) -> int:
    """Greedy cover of ``target_mask`` by ``candidate_mask`` bits.

    The classical set-cover greedy on closed-neighborhood bitsets: each
    gain is one AND + ``bit_count``, ties break toward the lowest kernel
    index (= ``repr`` order, the historical tie-break).  The popcount of
    the returned mask is a valid upper bound on the restricted
    domination number — branch-and-bound uses it as its incumbent, and
    :func:`repro.solvers.greedy.greedy_b_dominating_set` is a label
    wrapper around it.

    Backend-generic: on a packed kernel the masks are
    :class:`~repro.graphs.packed.PackedMask` and the core dispatches to
    the lazy-heap :func:`~repro.graphs.packed.greedy_cover_packed`,
    which reproduces this selection (max gain, lowest index) exactly.
    """
    if kernel.backend == "packed":
        return greedy_cover_packed(kernel, target_mask, candidate_mask)
    closed = kernel.closed_bits
    remaining = target_mask
    chosen = 0
    while remaining:
        gain, pick = 0, -1
        for c in iter_bits(candidate_mask & ~chosen):
            value = (closed[c] & remaining).bit_count()
            if value > gain:
                gain, pick = value, c
        if pick < 0:
            raise ValueError("some target cannot be dominated by any candidate")
        chosen |= 1 << pick
        remaining &= ~closed[pick]
    return chosen


class PackingBound:
    """Greedy disjoint-``N[b]`` packing of targets, on kernel bitsets.

    Targets whose closed neighborhoods are pairwise disjoint (within the
    candidate pool) each need their own dominator, so the greedy packing
    size lower-bounds the restricted domination number.  Construction
    precomputes, per target ``b``, the mask of targets blocked by
    covering ``b`` (``⋃_{c ∈ N[b] ∩ candidates} N[c] ∩ targets``) and a
    static fail-first visit order (fewest coverers first, kernel index
    as tie-break); :meth:`bound` is then a pure mask loop — cheap enough
    to run at every branch-and-bound node.

    Int-backend only: branch-and-bound explores subsets of small
    instances, exactly the regime the precomputed ``closed_bits`` table
    exists for.  On a packed kernel construction raises (no mask
    table); force ``REPRO_KERNEL_BACKEND=int`` to run B&B on a graph
    past the auto-selection threshold.
    """

    __slots__ = ("_order", "_block")

    def __init__(self, kernel: GraphKernel, target_mask: int, candidate_mask: int):
        closed = kernel.closed_bits
        keyed = []
        block: dict[int, int] = {}
        for b in iter_bits(target_mask):
            coverers = closed[b] & candidate_mask
            blocked = 0
            for c in iter_bits(coverers):
                blocked |= closed[c]
            block[b] = blocked & target_mask
            keyed.append((coverers.bit_count(), b))
        keyed.sort()
        self._order = [b for _, b in keyed]
        self._block = block

    def bound(self, remaining: int) -> int:
        """Packing lower bound for the still-undominated ``remaining``."""
        block = self._block
        count = 0
        blocked = 0
        for b in self._order:
            bit = 1 << b
            if remaining & bit and not blocked & bit:
                count += 1
                blocked |= block[b]
        return count


def degree_lower_bound(graph: nx.Graph) -> int:
    """``⌈n / (Δ + 1)⌉``: every dominator covers at most Δ + 1 vertices."""
    n = graph.number_of_nodes()
    if n == 0:
        return 0
    max_degree = max(dict(graph.degree).values())
    return math.ceil(n / (max_degree + 1))


def two_packing_lower_bound(graph: nx.Graph) -> int:
    """Greedy 2-packing: pairwise distance-≥3 vertices (each needs its own
    dominator).  Deterministic greedy by ascending degree, then repr
    (kernel index order *is* repr order), with the blocked set kept as a
    kernel bitset and each radius-2 ball one kernel BFS.  On a packed
    kernel (large graphs / :class:`~repro.graphs.kernel.KernelView`
    instances) the same greedy runs as boolean-array CSR gathers."""
    kernel = kernel_for(graph)
    if kernel.backend == "packed":
        return two_packing_packed(kernel)
    labels = kernel.labels
    blocked = 0
    count = 0
    order = sorted(range(kernel.n), key=lambda i: (kernel.degree(i), i))
    for i in order:
        if blocked >> i & 1:
            continue
        count += 1
        blocked |= kernel.ball_bits(labels[i], 2)
    return count


def exact_two_packing(graph: nx.Graph) -> int:
    """Maximum 2-packing via MILP (independent set in ``G²``)."""
    nodes = sorted(graph.nodes, key=repr)
    if not nodes:
        return 0
    index = {v: i for i, v in enumerate(nodes)}
    rows, cols, row_id = [], [], 0
    for v in nodes:
        for u in ball(graph, v, 2):
            if u != v and repr(u) > repr(v):
                rows.extend([row_id, row_id])
                cols.extend([index[v], index[u]])
                row_id += 1
    if row_id == 0:
        return len(nodes)
    matrix = csr_matrix((np.ones(len(rows)), (rows, cols)), shape=(row_id, len(nodes)))
    result = milp(
        c=-np.ones(len(nodes)),
        constraints=[LinearConstraint(matrix, lb=0, ub=1)],
        integrality=np.ones(len(nodes)),
        bounds=Bounds(0, 1),
    )
    if not result.success:
        raise RuntimeError(f"MILP solver failed: {result.message}")
    return int(round(-result.fun))


def lp_lower_bound(graph: nx.Graph) -> float:
    """Optimal value of the fractional domination LP (≤ MDS(G))."""
    nodes = sorted(graph.nodes, key=repr)
    if not nodes:
        return 0.0
    index = {v: i for i, v in enumerate(nodes)}
    rows, cols = [], []
    for row, v in enumerate(nodes):
        for u in closed_neighborhood(graph, v):
            rows.append(row)
            cols.append(index[u])
    matrix = csr_matrix((np.ones(len(rows)), (rows, cols)), shape=(len(nodes), len(nodes)))
    result = linprog(
        c=np.ones(len(nodes)),
        A_ub=-matrix,
        b_ub=-np.ones(len(nodes)),
        bounds=(0, 1),
        method="highs",
    )
    if not result.success:
        raise RuntimeError(f"LP solver failed: {result.message}")
    return float(result.fun)
