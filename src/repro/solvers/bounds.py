"""Lower bounds on the domination number.

Used to sanity-check measured ratios (an algorithm's output divided by a
*lower bound* upper-bounds the true ratio) and inside branch-and-bound.

* ``n / (Δ + 1)`` — the degree bound from the paper's footnote 4;
* 2-packing — vertices pairwise at distance ≥ 3 need distinct
  dominators (greedy and exact variants);
* LP relaxation of the domination ILP.
"""

from __future__ import annotations

import math
from typing import Hashable

import networkx as nx
import numpy as np
from scipy.optimize import Bounds, LinearConstraint, linprog, milp
from scipy.sparse import csr_matrix

from repro.graphs.util import ball, closed_neighborhood

Vertex = Hashable


def degree_lower_bound(graph: nx.Graph) -> int:
    """``⌈n / (Δ + 1)⌉``: every dominator covers at most Δ + 1 vertices."""
    n = graph.number_of_nodes()
    if n == 0:
        return 0
    max_degree = max(dict(graph.degree).values())
    return math.ceil(n / (max_degree + 1))


def two_packing_lower_bound(graph: nx.Graph) -> int:
    """Greedy 2-packing: pairwise distance-≥3 vertices (each needs its own
    dominator).  Deterministic greedy by ascending degree, then repr."""
    blocked: set[Vertex] = set()
    count = 0
    order = sorted(graph.nodes, key=lambda v: (graph.degree(v), repr(v)))
    for v in order:
        if v in blocked:
            continue
        count += 1
        blocked |= ball(graph, v, 2)
    return count


def exact_two_packing(graph: nx.Graph) -> int:
    """Maximum 2-packing via MILP (independent set in ``G²``)."""
    nodes = sorted(graph.nodes, key=repr)
    if not nodes:
        return 0
    index = {v: i for i, v in enumerate(nodes)}
    rows, cols, row_id = [], [], 0
    for v in nodes:
        for u in ball(graph, v, 2):
            if u != v and repr(u) > repr(v):
                rows.extend([row_id, row_id])
                cols.extend([index[v], index[u]])
                row_id += 1
    if row_id == 0:
        return len(nodes)
    matrix = csr_matrix((np.ones(len(rows)), (rows, cols)), shape=(row_id, len(nodes)))
    result = milp(
        c=-np.ones(len(nodes)),
        constraints=[LinearConstraint(matrix, lb=0, ub=1)],
        integrality=np.ones(len(nodes)),
        bounds=Bounds(0, 1),
    )
    if not result.success:
        raise RuntimeError(f"MILP solver failed: {result.message}")
    return int(round(-result.fun))


def lp_lower_bound(graph: nx.Graph) -> float:
    """Optimal value of the fractional domination LP (≤ MDS(G))."""
    nodes = sorted(graph.nodes, key=repr)
    if not nodes:
        return 0.0
    index = {v: i for i, v in enumerate(nodes)}
    rows, cols = [], []
    for row, v in enumerate(nodes):
        for u in closed_neighborhood(graph, v):
            rows.append(row)
            cols.append(index[u])
    matrix = csr_matrix((np.ones(len(rows)), (rows, cols)), shape=(len(nodes), len(nodes)))
    result = linprog(
        c=np.ones(len(nodes)),
        A_ub=-matrix,
        b_ub=-np.ones(len(nodes)),
        bounds=(0, 1),
        method="highs",
    )
    if not result.success:
        raise RuntimeError(f"LP solver failed: {result.message}")
    return float(result.fun)
