"""Greedy set-cover baselines for (B-)domination.

The classical centralized greedy picks the vertex covering the most
still-undominated targets; its ratio is ``ln Δ + O(1)`` in general.  It
appears in experiments as the "what a non-local algorithm achieves"
reference, and inside branch-and-bound as the initial incumbent.
"""

from __future__ import annotations

from typing import Hashable, Iterable

import networkx as nx

from repro.graphs.kernel import kernel_for
from repro.solvers.bounds import greedy_cover_mask

Vertex = Hashable


def greedy_b_dominating_set(
    graph: nx.Graph,
    targets: Iterable[Vertex],
    candidates: Iterable[Vertex] | None = None,
) -> set[Vertex]:
    """Greedy set of ``candidates`` dominating ``targets``.

    Deterministic: ties break toward the smallest vertex (repr order —
    which is exactly the kernel's index order, so scanning candidate
    bits ascending with a strict improvement test reproduces the
    historical tie-breaking).  The mask core is
    :func:`repro.solvers.bounds.greedy_cover_mask` — the same
    implementation branch-and-bound seeds its incumbent with.
    """
    kernel = kernel_for(graph)
    remaining = kernel.bits_of(targets)
    if not remaining:
        return set()
    if candidates is None:
        candidate_mask = kernel.closed_neighborhood_bits(remaining)
    else:
        candidate_mask = kernel.bits_of(candidates)
    return kernel.labels_of(greedy_cover_mask(kernel, remaining, candidate_mask))


def greedy_dominating_set(graph: nx.Graph) -> set[Vertex]:
    """Greedy dominating set of the whole graph."""
    return greedy_b_dominating_set(graph, graph.nodes)
