"""Greedy set-cover baselines for (B-)domination.

The classical centralized greedy picks the vertex covering the most
still-undominated targets; its ratio is ``ln Δ + O(1)`` in general.  It
appears in experiments as the "what a non-local algorithm achieves"
reference, and inside branch-and-bound as the initial incumbent.
"""

from __future__ import annotations

from typing import Hashable, Iterable

import networkx as nx

from repro.graphs.kernel import iter_bits, kernel_for

Vertex = Hashable


def greedy_b_dominating_set(
    graph: nx.Graph,
    targets: Iterable[Vertex],
    candidates: Iterable[Vertex] | None = None,
) -> set[Vertex]:
    """Greedy set of ``candidates`` dominating ``targets``.

    Deterministic: ties break toward the smallest vertex (repr order —
    which is exactly the kernel's index order, so scanning candidate
    bits ascending with a strict improvement test reproduces the
    historical tie-breaking).  Each gain is one AND + ``bit_count`` on
    the kernel's closed-neighborhood bitsets.
    """
    kernel = kernel_for(graph)
    remaining = kernel.bits_of(targets)
    if not remaining:
        return set()
    if candidates is None:
        candidate_mask = kernel.closed_neighborhood_bits(remaining)
    else:
        candidate_mask = kernel.bits_of(candidates)
    closed = kernel.closed_bits

    chosen = 0
    while remaining:
        gain, pick = 0, -1
        for c in iter_bits(candidate_mask & ~chosen):
            value = (closed[c] & remaining).bit_count()
            if value > gain:
                gain, pick = value, c
        if pick < 0:
            raise ValueError("some target cannot be dominated by any candidate")
        chosen |= 1 << pick
        remaining &= ~closed[pick]
    return kernel.labels_of(chosen)


def greedy_dominating_set(graph: nx.Graph) -> set[Vertex]:
    """Greedy dominating set of the whole graph."""
    return greedy_b_dominating_set(graph, graph.nodes)
