"""Greedy set-cover baselines for (B-)domination.

The classical centralized greedy picks the vertex covering the most
still-undominated targets; its ratio is ``ln Δ + O(1)`` in general.  It
appears in experiments as the "what a non-local algorithm achieves"
reference, and inside branch-and-bound as the initial incumbent.
"""

from __future__ import annotations

from typing import Hashable, Iterable

import networkx as nx

from repro.graphs.util import closed_neighborhood, closed_neighborhood_of_set

Vertex = Hashable


def greedy_b_dominating_set(
    graph: nx.Graph,
    targets: Iterable[Vertex],
    candidates: Iterable[Vertex] | None = None,
) -> set[Vertex]:
    """Greedy set of ``candidates`` dominating ``targets``.

    Deterministic: ties break toward the smallest vertex (repr order).
    """
    remaining = set(targets)
    if not remaining:
        return set()
    if candidates is None:
        candidate_set = closed_neighborhood_of_set(graph, remaining)
    else:
        candidate_set = set(candidates)
    covers = {c: closed_neighborhood(graph, c) & remaining for c in candidate_set}

    chosen: set[Vertex] = set()
    while remaining:
        gain, pick = 0, None
        for c in sorted(candidate_set - chosen, key=repr):
            value = len(covers[c] & remaining)
            if value > gain:
                gain, pick = value, c
        if pick is None:
            raise ValueError("some target cannot be dominated by any candidate")
        chosen.add(pick)
        remaining -= covers[pick]
    return chosen


def greedy_dominating_set(graph: nx.Graph) -> set[Vertex]:
    """Greedy dominating set of the whole graph."""
    return greedy_b_dominating_set(graph, graph.nodes)
