"""Pure-Python exact (B-)domination by branch and bound, on kernel bitsets.

Serves as an independent cross-check of the MILP backend (they must
agree on every instance) and as the brute-force engine when callers want
to avoid the scipy dependency.  The whole search runs on the graph's
:class:`~repro.graphs.kernel.GraphKernel`: undominated targets, cover
sets, and partial solutions are Python-int bitsets, so one branch step
is a handful of ANDs and ``bit_count()`` calls instead of set algebra
over hashable vertices.  The search:

* branches on the undominated target with the fewest coverers
  (fail-first; coverer masks are one AND, counts one ``bit_count``),
* seeds its incumbent with the shared greedy cover
  (:func:`repro.solvers.bounds.greedy_cover_mask`) and prunes with the
  shared disjoint-neighborhood packing bound
  (:class:`repro.solvers.bounds.PackingBound`),
* memoises visited states — the still-undominated-targets mask mapped
  to the fewest vertices ever spent reaching it — so a state reachable
  along many branch orders is explored once,
* explores coverers in ascending kernel index order (= ``repr`` order),
  so results are reproducible.
"""

from __future__ import annotations

from typing import Hashable, Iterable

import networkx as nx

from repro.graphs.kernel import GraphKernel, iter_bits, kernel_for
from repro.solvers.bounds import PackingBound, greedy_cover_mask

Vertex = Hashable


def _bnb_core(kernel: GraphKernel, target_mask: int, candidate_mask: int) -> int:
    """Minimum candidate mask dominating ``target_mask``, by branch and bound."""
    closed = kernel.closed_bits
    coverers_of: dict[int, int] = {}
    coverer_count: dict[int, int] = {}
    for b in iter_bits(target_mask):
        coverers = closed[b] & candidate_mask
        if not coverers:
            raise ValueError(
                f"target {kernel.labels[b]!r} cannot be dominated by any candidate"
            )
        coverers_of[b] = coverers
        coverer_count[b] = coverers.bit_count()

    incumbent = greedy_cover_mask(kernel, target_mask, candidate_mask)
    best_mask = incumbent
    best_size = incumbent.bit_count()
    packing = PackingBound(kernel, target_mask, candidate_mask)
    bound = packing.bound
    # Memo: remaining-targets mask -> fewest vertices ever spent reaching
    # that state.  Reaching it again no cheaper cannot beat the earlier
    # exploration (the incumbent only tightens over time), so prune.
    cheapest: dict[int, int] = {}

    def search(chosen_mask: int, chosen_size: int, remaining: int) -> None:
        nonlocal best_mask, best_size
        if not remaining:
            if chosen_size < best_size:
                best_mask, best_size = chosen_mask, chosen_size
            return
        prior = cheapest.get(remaining)
        if prior is not None and prior <= chosen_size:
            return
        cheapest[remaining] = chosen_size
        if chosen_size + bound(remaining) >= best_size:
            return
        pivot = -1
        fewest = 0
        for b in iter_bits(remaining):
            count = coverer_count[b]
            if pivot < 0 or count < fewest:
                pivot, fewest = b, count
                if count == 1:
                    break
        for c in iter_bits(coverers_of[pivot]):
            search(chosen_mask | (1 << c), chosen_size + 1, remaining & ~closed[c])

    search(0, 0, target_mask)
    return best_mask


def bnb_minimum_b_dominating_set(
    graph: nx.Graph,
    targets: Iterable[Vertex],
    candidates: Iterable[Vertex] | None = None,
) -> set[Vertex]:
    """Exact minimum set of ``candidates`` dominating ``targets`` (B&B)."""
    kernel = kernel_for(graph)
    target_mask = kernel.bits_of(targets)
    if not target_mask:
        return set()
    if candidates is None:
        candidate_mask = kernel.closed_neighborhood_bits(target_mask)
    else:
        candidate_mask = kernel.bits_of(candidates)
    return kernel.labels_of(_bnb_core(kernel, target_mask, candidate_mask))


def bnb_minimum_dominating_set(graph: nx.Graph) -> set[Vertex]:
    """Exact MDS via branch and bound, per connected component.

    Components are discovered as bitset fixpoints on the shared kernel
    (no ``nx.connected_components`` + subgraph materialisation), and
    each is solved with that same kernel — candidates restricted to the
    component, which contains ``N[component]`` by definition.
    """
    kernel = kernel_for(graph)
    closed = kernel.closed_bits
    remaining = kernel.full_mask
    chosen = 0
    while remaining:
        component = remaining & -remaining
        frontier = component
        while frontier:
            reach = 0
            for i in iter_bits(frontier):
                reach |= closed[i]
            frontier = reach & ~component
            component |= frontier
        chosen |= _bnb_core(kernel, component, component)
        remaining &= ~component
    return kernel.labels_of(chosen)
