"""Pure-Python exact (B-)domination by branch and bound.

Serves as an independent cross-check of the MILP backend (they must
agree on every instance) and as the brute-force engine when callers want
to avoid the scipy dependency.  The search:

* branches on the undominated target with the fewest remaining coverers
  (fail-first),
* prunes with a greedy upper bound and a disjoint-neighborhood packing
  lower bound,
* explores coverers in deterministic order, so results are reproducible.
"""

from __future__ import annotations

from typing import Hashable, Iterable

import networkx as nx

from repro.graphs.util import closed_neighborhood, closed_neighborhood_of_set
from repro.solvers.greedy import greedy_b_dominating_set

Vertex = Hashable


def bnb_minimum_b_dominating_set(
    graph: nx.Graph,
    targets: Iterable[Vertex],
    candidates: Iterable[Vertex] | None = None,
) -> set[Vertex]:
    """Exact minimum set of ``candidates`` dominating ``targets`` (B&B)."""
    target_set = set(targets)
    if not target_set:
        return set()
    if candidates is None:
        candidate_set = closed_neighborhood_of_set(graph, target_set)
    else:
        candidate_set = set(candidates)

    coverers: dict[Vertex, list[Vertex]] = {}
    covers: dict[Vertex, set[Vertex]] = {
        c: closed_neighborhood(graph, c) & target_set for c in candidate_set
    }
    for b in target_set:
        options = sorted(
            (c for c in closed_neighborhood(graph, b) if c in candidate_set), key=repr
        )
        if not options:
            raise ValueError(f"target {b!r} cannot be dominated by any candidate")
        coverers[b] = options

    incumbent = greedy_b_dominating_set(graph, target_set, candidate_set)
    best = [set(incumbent)]

    def packing_bound(remaining: set[Vertex]) -> int:
        """Greedy 2-packing of remaining targets: disjoint N[b]'s each need
        their own dominator, giving a valid lower bound."""
        bound = 0
        blocked: set[Vertex] = set()
        for b in sorted(remaining, key=lambda v: (len(coverers[v]), repr(v))):
            if b in blocked:
                continue
            bound += 1
            for c in coverers[b]:
                blocked |= covers[c]
        return bound

    def search(chosen: set[Vertex], remaining: set[Vertex]) -> None:
        if not remaining:
            if len(chosen) < len(best[0]):
                best[0] = set(chosen)
            return
        if len(chosen) + packing_bound(remaining) >= len(best[0]):
            return
        pivot = min(remaining, key=lambda v: (len(coverers[v]), repr(v)))
        for c in coverers[pivot]:
            search(chosen | {c}, remaining - covers[c])

    search(set(), set(target_set))
    return best[0]


def bnb_minimum_dominating_set(graph: nx.Graph) -> set[Vertex]:
    """Exact MDS via branch and bound, per connected component."""
    solution: set[Vertex] = set()
    for component in nx.connected_components(graph):
        sub = graph.subgraph(component)
        solution |= bnb_minimum_b_dominating_set(sub, component)
    return solution
