"""Vertex-cover solvers (the paper's results extend to MVC).

Provides the exact optimum (MILP), the classical maximal-matching
2-approximation, and the 0-round regular-graph observation from the
paper's introduction (take all vertices: 2-approximation on k-regular
graphs).
"""

from __future__ import annotations

from typing import Hashable

import networkx as nx
import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp
from scipy.sparse import csr_matrix

Vertex = Hashable


def is_vertex_cover(graph: nx.Graph, cover: set[Vertex]) -> bool:
    """Return whether ``cover`` touches every edge of ``graph``."""
    return all(u in cover or v in cover for u, v in graph.edges)


def minimum_vertex_cover(graph: nx.Graph) -> set[Vertex]:
    """Exact minimum vertex cover via MILP (one constraint per edge)."""
    if graph.number_of_edges() == 0:
        return set()
    nodes = sorted(graph.nodes, key=repr)
    index = {v: i for i, v in enumerate(nodes)}
    # Canonical edge order: the MILP input must not depend on insertion
    # order, so that independent observers (simulate mode) agree.
    edges = sorted(tuple(sorted(e, key=repr)) for e in graph.edges)
    rows, cols = [], []
    for row, (u, v) in enumerate(edges):
        rows.extend([row, row])
        cols.extend([index[u], index[v]])
    matrix = csr_matrix(
        (np.ones(len(rows)), (rows, cols)),
        shape=(len(edges), len(nodes)),
    )
    result = milp(
        c=np.ones(len(nodes)),
        constraints=[LinearConstraint(matrix, lb=1, ub=np.inf)],
        integrality=np.ones(len(nodes)),
        bounds=Bounds(0, 1),
    )
    if not result.success:
        raise RuntimeError(f"MILP solver failed: {result.message}")
    cover = {nodes[i] for i in np.flatnonzero(np.round(result.x) > 0.5)}
    # Canonicalise: drop redundancies if any rounding slack crept in.
    for v in sorted(cover, key=repr):
        if is_vertex_cover(graph, cover - {v}):
            cover = cover - {v}
    return cover


def vertex_cover_number(graph: nx.Graph) -> int:
    """``MVC(G)`` as a number."""
    return len(minimum_vertex_cover(graph))


def matching_vertex_cover(graph: nx.Graph) -> set[Vertex]:
    """2-approximate vertex cover: both endpoints of a maximal matching.

    Deterministic: edges scanned in sorted order.
    """
    cover: set[Vertex] = set()
    for u, v in sorted(graph.edges, key=lambda e: (repr(e[0]), repr(e[1]))):
        if u not in cover and v not in cover:
            cover.add(u)
            cover.add(v)
    return cover


def all_vertices_cover(graph: nx.Graph) -> set[Vertex]:
    """The 0-round cover from the introduction: take every vertex.

    On k-regular graphs this is a 2-approximation (the graph has
    ``kn/2`` edges while ``p`` vertices cover at most ``pk``).
    """
    return set(graph.nodes)
