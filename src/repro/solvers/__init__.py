"""Exact and baseline solvers for domination and vertex cover.

These play two roles in the reproduction:

* the **brute-force step** of the paper's Algorithm 1/2 (Step 4 solves a
  ``B``-domination problem exactly on bounded-diameter components);
* the **ratio denominator** in every experiment (measured approximation
  ratio = |algorithm output| / |exact optimum|).

The primary exact backend is MILP via ``scipy.optimize.milp`` (HiGHS); a
pure-Python branch-and-bound is provided as a cross-check and fallback.
"""

from repro.solvers.exact import (
    minimum_dominating_set,
    minimum_b_dominating_set,
    domination_number,
)
from repro.solvers.branch_and_bound import (
    bnb_minimum_dominating_set,
    bnb_minimum_b_dominating_set,
)
from repro.solvers.greedy import greedy_dominating_set, greedy_b_dominating_set
from repro.solvers.tree_dp import tree_minimum_dominating_set
from repro.solvers.vc import (
    minimum_vertex_cover,
    matching_vertex_cover,
    vertex_cover_number,
)
from repro.solvers.bounds import (
    degree_lower_bound,
    two_packing_lower_bound,
    lp_lower_bound,
)
from repro.solvers.opt_cache import (
    clear_opt_cache,
    optimum_size,
    optimum_solution,
)

__all__ = [
    "minimum_dominating_set",
    "minimum_b_dominating_set",
    "domination_number",
    "bnb_minimum_dominating_set",
    "bnb_minimum_b_dominating_set",
    "greedy_dominating_set",
    "greedy_b_dominating_set",
    "tree_minimum_dominating_set",
    "minimum_vertex_cover",
    "matching_vertex_cover",
    "vertex_cover_number",
    "degree_lower_bound",
    "two_packing_lower_bound",
    "lp_lower_bound",
    "clear_opt_cache",
    "optimum_size",
    "optimum_solution",
]
