"""Per-instance cache of exact optima (the ratio-sweep denominator).

Every ``validate="ratio"`` run divides by ``|OPT|``, and OPT is by far
the most expensive thing the batch runner computes — yet it depends only
on the instance, not on the algorithm under test.  This module memoises
exact solutions per graph so a 12-algorithm comparison solves each
instance exactly once instead of twelve times.

Keying
------

Entries are keyed by **kernel identity + problem + backend**: the cache
maps a graph (weakly) to its :class:`~repro.graphs.kernel.GraphKernel`
at solve time plus a ``(problem, solver) -> frozenset`` table.  A lookup
first re-derives ``kernel_for(graph)`` — if the kernel object changed
(node-count-changing mutation, or an explicit
:func:`~repro.graphs.kernel.invalidate_kernel`), the stored optima are
stale and are dropped.  The cache also registers itself as a derived
cache, so ``invalidate_kernel(graph)`` clears both in one call; the
mutation contract is exactly the kernel's (see README "Performance").

All backends here are deterministic for a fixed input, so a cached
solution is byte-for-byte the solution an uncached call would produce —
enabling the cache can never change a reported ``ratio`` or
``optimum_size``.
"""

from __future__ import annotations

import threading
import weakref
from typing import Hashable

import networkx as nx

from repro.graphs.kernel import kernel_for, register_derived_cache

Vertex = Hashable

PROBLEMS = ("mds", "mvc")

_CACHE: "weakref.WeakKeyDictionary[nx.Graph, dict]" = weakref.WeakKeyDictionary()
register_derived_cache(_CACHE)

# The counters are read-modify-write pairs, so they need a real lock:
# the serve worker pool (`repro.serve`) drives this module from several
# threads at once, and `hits += 1` is not atomic across them.
_STATS_LOCK = threading.Lock()
_STATS = {"hits": 0, "misses": 0}


def _solve(graph: nx.Graph, problem: str, solver: str) -> frozenset:
    """Uncached exact solve; the single dispatch point over backends."""
    if problem == "mvc":
        if solver != "milp":
            raise ValueError(
                "no pure-Python MVC solver is shipped; "
                "MVC optima require solver='milp'"
            )
        from repro.solvers.vc import minimum_vertex_cover

        return frozenset(minimum_vertex_cover(graph))
    if problem != "mds":
        raise ValueError(f"unknown problem {problem!r}; choose from {PROBLEMS}")
    if solver == "bnb":
        from repro.solvers.branch_and_bound import bnb_minimum_dominating_set

        return frozenset(bnb_minimum_dominating_set(graph))
    if solver == "milp":
        from repro.solvers.exact import minimum_dominating_set

        return frozenset(minimum_dominating_set(graph))
    raise ValueError(f"unknown solver backend {solver!r}; choose 'milp' or 'bnb'")


def optimum_solution(
    graph: nx.Graph,
    problem: str = "mds",
    solver: str = "milp",
    *,
    use_cache: bool = True,
) -> frozenset:
    """An exact optimum solution, cached per (kernel, problem, backend).

    ``use_cache=False`` bypasses both lookup and store — the escape
    hatch the CLI exposes as ``--no-opt-cache``.
    """
    if not use_cache:
        return _solve(graph, problem, solver)
    kernel = kernel_for(graph)
    try:
        entry = _CACHE.get(graph)
    except TypeError:  # graph type that cannot be weak-referenced
        return _solve(graph, problem, solver)
    if entry is None or entry["kernel"] is not kernel:
        entry = {"kernel": kernel, "solutions": {}}
        _CACHE[graph] = entry
    key = (problem, solver)
    solution = entry["solutions"].get(key)
    if solution is not None:
        with _STATS_LOCK:
            _STATS["hits"] += 1
        return solution
    with _STATS_LOCK:
        _STATS["misses"] += 1
    solution = _solve(graph, problem, solver)
    entry["solutions"][key] = solution
    return solution


def optimum_size(
    graph: nx.Graph,
    problem: str = "mds",
    solver: str = "milp",
    *,
    use_cache: bool = True,
) -> int:
    """``|OPT|`` for the given problem/backend (cached)."""
    return len(optimum_solution(graph, problem, solver, use_cache=use_cache))


def clear_opt_cache() -> None:
    """Drop every cached optimum (benchmarks use this to measure cold)."""
    _CACHE.clear()


def snapshot() -> dict[str, int]:
    """A consistent copy of the hit/miss counters.

    Taken under the stats lock so a concurrent solve never yields a
    torn read; this is what the serve ``GET /stats`` endpoint reports.
    """
    with _STATS_LOCK:
        return dict(_STATS)


def cache_stats() -> dict[str, int]:
    """Process-wide hit/miss counters (reset with :func:`reset_cache_stats`)."""
    return snapshot()


def reset_cache_stats() -> None:
    with _STATS_LOCK:
        _STATS["hits"] = 0
        _STATS["misses"] = 0
