"""Exact (B-)domination via integer programming (HiGHS through scipy).

``MDS(G)`` and its restricted variant ``MDS(G, B)`` (Section 2: the
minimum size of a set dominating every vertex of ``B``; WLOG the set can
be taken inside ``N[B]``) are both set-cover integer programs:

    minimise   Σ x_v
    subject to Σ_{v ∈ N[b] ∩ candidates} x_v ≥ 1   for every b ∈ B
               x_v ∈ {0, 1}

Ties between optimal solutions are broken deterministically by
re-solving: HiGHS itself is deterministic for a fixed input, and we sort
rows/columns, so repeated calls agree — a property the LOCAL simulation
relies on when several vertices brute-force the same component
(footnote 2 of the paper).
"""

from __future__ import annotations

from typing import Hashable, Iterable

import networkx as nx
import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp
from scipy.sparse import csr_matrix

from repro.graphs.util import closed_neighborhood, closed_neighborhood_of_set

Vertex = Hashable


def minimum_b_dominating_set(
    graph: nx.Graph,
    targets: Iterable[Vertex],
    candidates: Iterable[Vertex] | None = None,
) -> set[Vertex]:
    """Exact minimum set of ``candidates`` dominating every vertex of ``targets``.

    ``candidates`` defaults to ``N[targets]`` (sufficient by Section 2).
    Raises ``ValueError`` when some target has no candidate in its closed
    neighborhood (the instance is infeasible).
    """
    target_list = sorted(set(targets), key=repr)
    if not target_list:
        return set()
    if candidates is None:
        candidate_list = sorted(closed_neighborhood_of_set(graph, target_list), key=repr)
    else:
        candidate_list = sorted(set(candidates), key=repr)
    index = {v: i for i, v in enumerate(candidate_list)}

    rows, cols = [], []
    for row, b in enumerate(target_list):
        coverers = [index[v] for v in closed_neighborhood(graph, b) if v in index]
        if not coverers:
            raise ValueError(f"target {b!r} cannot be dominated by any candidate")
        for col in coverers:
            rows.append(row)
            cols.append(col)
    matrix = csr_matrix(
        (np.ones(len(rows)), (rows, cols)),
        shape=(len(target_list), len(candidate_list)),
    )
    constraint = LinearConstraint(matrix, lb=1, ub=np.inf)
    result = milp(
        c=np.ones(len(candidate_list)),
        constraints=[constraint],
        integrality=np.ones(len(candidate_list)),
        bounds=Bounds(0, 1),
    )
    if not result.success:
        raise RuntimeError(f"MILP solver failed: {result.message}")
    chosen = {candidate_list[i] for i in np.flatnonzero(np.round(result.x) > 0.5)}
    return _minimalise(graph, chosen, set(target_list))


def _minimalise(graph: nx.Graph, solution: set[Vertex], targets: set[Vertex]) -> set[Vertex]:
    """Drop redundant vertices (keeps the solution optimal and canonical).

    MILP can return optimal solutions with numerically-selected vertices
    whose removal keeps feasibility only when the optimum is not unique;
    removing them never happens at optimality (it would contradict
    minimality), so this is effectively a no-op safety net that also
    canonicalises rounding artefacts.
    """
    for v in sorted(solution, key=repr):
        reduced = solution - {v}
        covered = closed_neighborhood_of_set(graph, reduced)
        if targets <= covered:
            solution = reduced
    return solution


def minimum_dominating_set(graph: nx.Graph) -> set[Vertex]:
    """Exact minimum dominating set of ``graph`` (components solved separately)."""
    solution: set[Vertex] = set()
    for component in nx.connected_components(graph):
        sub = graph.subgraph(component)
        solution |= minimum_b_dominating_set(sub, component)
    return solution


def domination_number(graph: nx.Graph) -> int:
    """``MDS(G)`` as a number (served from the per-instance OPT cache)."""
    from repro.solvers.opt_cache import optimum_size  # lazy: avoids cycle

    return optimum_size(graph, "mds", "milp")
