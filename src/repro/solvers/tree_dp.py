"""Linear-time exact minimum dominating set on trees (folklore DP).

Three states per vertex in post-order:

* ``IN``       — v is in the dominating set;
* ``COVERED``  — v not in the set but dominated by a child;
* ``FREE``     — v not in the set and not yet dominated (its parent must
  take it).

Used by Table 1's tree row as the exact denominator at sizes where the
MILP would be wasteful, and cross-checked against the MILP in tests.
"""

from __future__ import annotations

from typing import Hashable

import networkx as nx

Vertex = Hashable

IN, COVERED, FREE = 0, 1, 2
_INF = float("inf")


def tree_minimum_dominating_set(tree: nx.Graph, root: Vertex | None = None) -> set[Vertex]:
    """Exact MDS of a tree (or forest), with the witness set reconstructed."""
    if tree.number_of_nodes() == 0:
        return set()
    solution: set[Vertex] = set()
    for component in nx.connected_components(tree):
        sub = tree.subgraph(component)
        start = root if root in component else min(component, key=repr)
        solution |= _solve_component(sub, start)
    return solution


def _solve_component(tree: nx.Graph, root: Vertex) -> set[Vertex]:
    order = list(nx.dfs_postorder_nodes(tree, root))
    parent = dict(nx.dfs_predecessors(tree, root))
    children: dict[Vertex, list[Vertex]] = {v: [] for v in tree.nodes}
    for child, par in parent.items():
        children[par].append(child)

    cost: dict[Vertex, list[float]] = {}
    choice: dict[Vertex, list[list[tuple[Vertex, int]]]] = {}

    for v in order:
        kids = sorted(children[v], key=repr)
        # State IN: v chosen; children free to be FREE/COVERED/IN, min each.
        in_cost, in_pick = 1.0, []
        for child in kids:
            state = min((IN, COVERED, FREE), key=lambda s: cost[child][s])
            in_cost += cost[child][state]
            in_pick.append((child, state))
        # State COVERED: v not chosen, some child IN; others COVERED/IN.
        base, base_pick = 0.0, []
        for child in kids:
            state = min((IN, COVERED), key=lambda s: cost[child][s])
            base += cost[child][state]
            base_pick.append((child, state))
        covered_cost, covered_pick = _INF, []
        if any(state == IN for _, state in base_pick):
            covered_cost, covered_pick = base, base_pick
        else:
            for i, child in enumerate(kids):
                delta = cost[child][IN] - cost[child][base_pick[i][1]]
                candidate = base + delta
                if candidate < covered_cost:
                    covered_pick = list(base_pick)
                    covered_pick[i] = (child, IN)
                    covered_cost = candidate
        # State FREE: v not chosen, not dominated; children COVERED/IN but
        # none needs v... children must be dominated without v: COVERED/IN.
        free_cost, free_pick = 0.0, []
        for child in kids:
            state = min((IN, COVERED), key=lambda s: cost[child][s])
            free_cost += cost[child][state]
            free_pick.append((child, state))
        if not kids:
            covered_cost, covered_pick = _INF, []
        cost[v] = [in_cost, covered_cost, free_cost]
        choice[v] = [in_pick, covered_pick, free_pick]

    best_state = min((IN, COVERED), key=lambda s: cost[root][s])
    solution: set[Vertex] = set()
    stack = [(root, best_state)]
    while stack:
        v, state = stack.pop()
        if state == IN:
            solution.add(v)
        for child, child_state in choice[v][state]:
            stack.append((child, child_state))
    return solution
