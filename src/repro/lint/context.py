"""Shared per-module state and AST helpers for the lint rules.

A :class:`ModuleContext` is built once per file by the engine and handed
to every rule: it owns the parsed tree, a lazily built parent map (for
the few rules that need to look *up* from a node), and the small type
heuristics the project-specific rules share — "does this expression
build a ``set``", "is this expression an int bitset mask".

The type heuristics are deliberately name- and signature-driven: the
codebase's own conventions (``*_mask``/``*_bits`` locals, the
:class:`~repro.graphs.kernel.GraphKernel` primitive names) are the type
system these rules check against.  False positives are expected to be
rare and are silenced inline with a reasoned ``# repro: ignore[...]``.
"""

from __future__ import annotations

import ast
from typing import Callable, Iterator


class ModuleContext:
    """One linted file: path, source, tree, and shared lazy analyses."""

    def __init__(self, path: str, source: str, tree: ast.Module):
        self.path = path
        self.source = source
        self.tree = tree
        self._parents: dict[ast.AST, ast.AST] | None = None

    @property
    def parents(self) -> dict[ast.AST, ast.AST]:
        """Child -> parent map over the whole tree (built on first use)."""
        if self._parents is None:
            self._parents = {}
            for node in ast.walk(self.tree):
                for child in ast.iter_child_nodes(node):
                    self._parents[child] = node
        return self._parents

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Yield ``node``'s ancestors, innermost first."""
        parents = self.parents
        while node in parents:
            node = parents[node]
            yield node

    def scopes(self) -> Iterator[ast.AST]:
        """The module plus every (possibly nested) function definition.

        Rules that do per-scope local-name inference iterate these; the
        module node itself is included so module-level code is checked
        under the same machinery.
        """
        yield self.tree
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node


def dotted(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def call_tail(call: ast.Call) -> str | None:
    """The last component of a call's function: ``kernel.bits_of`` -> ``bits_of``."""
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def expr_text(node: ast.AST) -> str:
    """Stable textual key for an arbitrary expression (receiver tracking)."""
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse failure on exotic nodes
        return f"<expr@{getattr(node, 'lineno', 0)}>"


def local_name_tags(
    scope: ast.AST, classify: Callable[[ast.expr, dict[str, str]], str | None]
) -> dict[str, str]:
    """Infer ``name -> tag`` for simple local assignments in ``scope``.

    ``classify(value, tags)`` returns a tag string for expressions it
    recognizes (``"set"``, ``"mask"``, ...) or ``None``.  Two passes make
    one level of forward propagation (``a = set(...); b = a``) stable
    without a full fixpoint.  Nested function bodies are excluded — each
    scope is analyzed independently by :meth:`ModuleContext.scopes`.
    """
    tags: dict[str, str] = {}
    assigns = [
        node
        for node in walk_scope(scope)
        if isinstance(node, ast.Assign)
        and len(node.targets) == 1
        and isinstance(node.targets[0], ast.Name)
    ]
    for _ in range(2):
        for node in assigns:
            tag = classify(node.value, tags)
            if tag is not None:
                tags[node.targets[0].id] = tag  # type: ignore[union-attr]
    return tags


def walk_scope(scope: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` limited to ``scope``, not descending into nested defs."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


# -- shared expression-type heuristics --------------------------------------

_SET_CALLS = {"set", "frozenset"}

#: Repo API known to return unordered ``set``s of vertices — iterating
#: one of these into report output is exactly the RPR003 leak.
SET_RETURNING = {
    "globally_interesting_vertices",
    "almost_interesting_vertices",
    "minimum_dominating_set",
    "minimum_vertex_cover",
    "greedy_dominating_set",
    "local_one_cuts",
    "labels_of",
    "undominated_vertices",
}

#: Report dataclass fields typed ``set`` (AlgorithmResult.solution,
#: SimReport.chosen).
_SET_ATTRS = {"solution", "chosen"}

#: GraphKernel entries (and mask helpers grown around it) that return an
#: int bitset — assignment from any of these tags the name as a mask.
MASK_RETURNING = {
    "bits_of",
    "closed_neighborhood_bits",
    "union_closed_bits",
    "undominated",
    "ball_bits",
    "ball_bits_from_mask",
    "component_bits",
    "greedy_cover_mask",
    "weak_diameter_mask",
}

#: Kernel-adjacent attribute names that hold a single mask.
_MASK_ATTRS = {"full_mask"}

#: Local-name conventions for int bitsets (the codebase's own idiom).
_MASK_NAMES = {"mask", "bits", "bitset", "arena"}
_MASK_SUFFIXES = ("_mask", "_bitset")


def classify_set(node: ast.expr, tags: dict[str, str]) -> str | None:
    """``"set"`` when ``node`` evidently builds a set, else ``None``."""
    return "set" if is_set_expr(node, tags) else None


def is_set_expr(node: ast.expr, tags: dict[str, str]) -> bool:
    """Whether ``node`` evaluates to a ``set``/``frozenset`` (heuristic)."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        tail = call_tail(node)
        return tail in _SET_CALLS or tail in SET_RETURNING
    if isinstance(node, ast.Name):
        return tags.get(node.id) == "set"
    if isinstance(node, ast.Attribute):
        return node.attr in _SET_ATTRS
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        # Set algebra: either side known-set makes the result a set.  An
        # int mask on the *other* side is RPR005's problem, not ours.
        return is_set_expr(node.left, tags) or is_set_expr(node.right, tags)
    return False


#: ``PackedMask`` factory classmethods; assignment from
#: ``PackedMask.zeros(n)`` (or via the ``MaskHandle`` alias) tags the
#: target name as a *packed* word-array mask.
_PACKED_OWNERS = {"PackedMask", "MaskHandle"}
_PACKED_FACTORIES = {"zeros", "full", "from_bool", "from_indices"}

#: Local-name conventions for packed masks.
_PACKED_NAMES = {"pmask", "packed_mask"}
_PACKED_SUFFIXES = ("_pmask",)


def classify_mask(node: ast.expr, tags: dict[str, str]) -> str | None:
    """``"mask"`` when ``node`` evidently builds an int bitset."""
    return "mask" if is_mask_expr(node, tags) else None


def classify_mask_kind(node: ast.expr, tags: dict[str, str]) -> str | None:
    """Three-way mask classification: ``"pmask"``/``"mask"``/``"intbits"``.

    Packed evidence wins over the generic mask conventions (a name
    assigned from ``PackedMask.zeros`` stays packed even if it is called
    ``mask``); ``"intbits"`` marks expressions that can *only* be a
    Python-int bitset (shift arithmetic, ``closed_bits`` subscripts, int
    literals) and exists solely so RPR005 can flag packed/int mixing.
    """
    if is_packed_expr(node, tags):
        return "pmask"
    if is_mask_expr(node, tags):
        return "mask"
    if is_int_mask_evidence(node, tags):
        return "intbits"
    return None


def is_packed_expr(node: ast.expr, tags: dict[str, str]) -> bool:
    """Whether ``node`` is a packed word-array mask (:class:`~repro.\
graphs.packed.PackedMask`), by constructor/factory call or naming."""
    if isinstance(node, ast.Name):
        name = node.id
        if name in _PACKED_NAMES or name.endswith(_PACKED_SUFFIXES):
            return True
        return tags.get(name) == "pmask"
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute):
            owner = dotted(func.value)
            if owner in _PACKED_OWNERS and func.attr in _PACKED_FACTORIES:
                return True
        return call_tail(node) in _PACKED_OWNERS
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor)
    ):
        return is_packed_expr(node.left, tags) or is_packed_expr(node.right, tags)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Invert):
        return is_packed_expr(node.operand, tags)
    return False


def is_int_mask_evidence(node: ast.expr, tags: dict[str, str]) -> bool:
    """Whether ``node`` carries *int-specific* bitset evidence.

    Deliberately narrower than :func:`is_mask_expr`: only shapes that
    cannot possibly be a packed mask count — shift arithmetic
    (``1 << i``), ``closed_bits[...]`` subscripts, bare int literals,
    and bitwise combinations thereof.  The backend-generic kernel
    primitives (``bits_of`` & co.) return whichever mask type their
    kernel uses and are deliberately **not** evidence here.
    """
    if isinstance(node, ast.Constant):
        return isinstance(node.value, int) and not isinstance(node.value, bool)
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, (ast.LShift, ast.RShift)):
            return True
        if isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.BitXor)):
            return is_int_mask_evidence(node.left, tags) or is_int_mask_evidence(
                node.right, tags
            )
    if isinstance(node, ast.Subscript):
        base = dotted(node.value)
        return base is not None and base.split(".")[-1] == "closed_bits"
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Invert):
        return is_int_mask_evidence(node.operand, tags)
    if isinstance(node, ast.Name):
        return tags.get(node.id) == "intbits"
    return False


def is_mask_expr(node: ast.expr, tags: dict[str, str]) -> bool:
    """Whether ``node`` is an int bitset mask (name/signature heuristic)."""
    if isinstance(node, ast.Name):
        name = node.id
        if name in _MASK_NAMES or name.endswith(_MASK_SUFFIXES):
            return True
        # "_bits" names are masks by convention, but plural container
        # names like closed_bits (a *list* of masks) are not locals here.
        if name.endswith("_bits"):
            return True
        return tags.get(name) == "mask"
    if isinstance(node, ast.Attribute):
        return node.attr in _MASK_ATTRS
    if isinstance(node, ast.Call):
        return call_tail(node) in MASK_RETURNING
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.LShift, ast.RShift)
    ):
        return is_mask_expr(node.left, tags) or is_mask_expr(node.right, tags)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Invert):
        return is_mask_expr(node.operand, tags)
    return False
