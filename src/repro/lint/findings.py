"""Finding records produced by the :mod:`repro.lint` rules.

A :class:`Finding` pins one contract violation to a file/line/column and
carries the rule id (``RPRxxx``) so it can be suppressed inline with
``# repro: ignore[RPRxxx]`` (see :mod:`repro.lint.suppressions`) and
rendered either as ``path:line:col: RPRxxx message`` text or as JSON for
the CI gate.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, ordered for deterministic output."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        """``path:line:col: RPRxxx message`` — the text-mode line."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> dict:
        """JSON-ready record (the ``repro lint --json`` payload)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }
