"""Registry hygiene: RPR004.

Every ``@register_algorithm(...)`` registration declares capabilities
the rest of the system trusts blindly — the CLI derives its flag
choices from ``modes``, :func:`repro.api.solve` routes ``mode=
"simulate"`` only when declared, and ``default_policy`` is what
``spec.policy_for`` hands adapters that honor ``config.policy``.  This
rule cross-checks each declaration against the decorated adapter body:

* literal validity — ``problem`` in ``{"mds", "mvc"}``, ``modes`` a
  non-empty subset of ``{"fast", "simulate"}``, no duplicate ``name``
  within the module;
* ``"simulate"`` declared ⟺ the adapter actually routes
  ``config.mode`` (an adapter that ignores the mode silently runs
  ``fast`` under a ``simulate`` request; one that routes it without
  declaring is unreachable capability);
* ``default_policy`` declared ⟺ the adapter reads ``config.policy``
  (same both-directions argument).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import ModuleContext, call_tail
from repro.lint.findings import Finding

VALID_PROBLEMS = {"mds", "mvc"}
VALID_MODES = {"fast", "simulate"}


class RegistryHygieneRule:
    """RPR004: @register_algorithm capability flags vs adapter body."""

    rule = "RPR004"
    summary = "register_algorithm capability flags do not match adapter use"

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        seen_names: dict[str, int] = {}
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for decorator in node.decorator_list:
                if (
                    isinstance(decorator, ast.Call)
                    and call_tail(decorator) == "register_algorithm"
                ):
                    yield from self._check_registration(
                        module, decorator, node, seen_names
                    )

    def _check_registration(
        self,
        module: ModuleContext,
        decorator: ast.Call,
        adapter: ast.FunctionDef | ast.AsyncFunctionDef,
        seen_names: dict[str, int],
    ) -> Iterator[Finding]:
        keywords = {kw.arg: kw.value for kw in decorator.keywords if kw.arg}

        name = keywords.get("name")
        if isinstance(name, ast.Constant) and isinstance(name.value, str):
            if name.value in seen_names:
                yield self._finding(
                    module,
                    name,
                    f"algorithm name {name.value!r} already registered at "
                    f"line {seen_names[name.value]}; registry names must be "
                    f"unique",
                )
            else:
                seen_names[name.value] = decorator.lineno

        problem = keywords.get("problem")
        if (
            isinstance(problem, ast.Constant)
            and isinstance(problem.value, str)
            and problem.value not in VALID_PROBLEMS
        ):
            yield self._finding(
                module,
                problem,
                f"unknown problem {problem.value!r}; "
                f"choose from {sorted(VALID_PROBLEMS)}",
            )

        modes = self._literal_modes(keywords.get("modes"))
        if modes is not None:
            invalid = [m for m in modes if m not in VALID_MODES]
            if invalid or not modes:
                yield self._finding(
                    module,
                    keywords["modes"],
                    f"modes {tuple(modes)!r} must be a non-empty subset of "
                    f"{sorted(VALID_MODES)}",
                )
        declared_simulate = modes is not None and "simulate" in modes

        uses_mode = self._adapter_reads(adapter, "mode")
        uses_policy = self._adapter_reads(adapter, "policy")

        if declared_simulate and not uses_mode:
            yield self._finding(
                module,
                decorator,
                f"modes declares 'simulate' but adapter {adapter.name!r} "
                f"never routes config.mode — a simulate request would "
                f"silently run the fast path",
            )
        if modes is not None and not declared_simulate and uses_mode:
            yield self._finding(
                module,
                decorator,
                f"adapter {adapter.name!r} routes config.mode but modes "
                f"does not declare 'simulate' — the capability is "
                f"unreachable through the registry",
            )

        has_policy = "default_policy" in keywords and not (
            isinstance(keywords["default_policy"], ast.Constant)
            and keywords["default_policy"].value is None
        )
        if has_policy and not uses_policy:
            yield self._finding(
                module,
                decorator,
                f"default_policy is declared but adapter {adapter.name!r} "
                f"never reads config.policy — the declared policy can "
                f"never take effect",
            )
        if not has_policy and uses_policy:
            yield self._finding(
                module,
                decorator,
                f"adapter {adapter.name!r} reads config.policy but "
                f"declares no default_policy — policy-less runs fall back "
                f"to an adapter-local default the registry cannot see",
            )

    @staticmethod
    def _literal_modes(node: ast.expr | None) -> list[str] | None:
        """The modes tuple when given literally; None when absent/dynamic."""
        if node is None:
            return None
        if isinstance(node, (ast.Tuple, ast.List)):
            values = []
            for element in node.elts:
                if not (
                    isinstance(element, ast.Constant)
                    and isinstance(element.value, str)
                ):
                    return None
                values.append(element.value)
            return values
        return None

    @staticmethod
    def _adapter_reads(
        adapter: ast.FunctionDef | ast.AsyncFunctionDef, attr: str
    ) -> bool:
        """Whether the adapter body reads ``<config-param>.<attr>``."""
        args = adapter.args
        positional = [*args.posonlyargs, *args.args]
        if len(positional) < 2:
            return False
        config_name = positional[1].arg
        return any(
            isinstance(node, ast.Attribute)
            and node.attr == attr
            and isinstance(node.value, ast.Name)
            and node.value.id == config_name
            for node in ast.walk(adapter)
        )

    def _finding(self, module: ModuleContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.rule,
            message=message,
        )
