"""Bitset discipline: RPR005.

Since PR 3 the hot paths carry vertex sets as **Python-int bitsets**.
An int mask supports none of the container protocol, so treating one as
an iterable either crashes (``len(mask)``, ``for v in mask``) or —
worse — silently "works" by some other coercion.  The converse mixup,
handing a label set to a primitive that expects a mask (or a mask to a
label-iterable parameter), type-checks at runtime because both are just
objects, and produces garbage dominating-set arithmetic.

Mask-ness is inferred from the codebase's own conventions (names like
``mask``/``arena``/``*_mask``/``*_bits``, assignment from the
:class:`~repro.graphs.kernel.GraphKernel` mask-returning primitives)
per scope; see :mod:`repro.lint.context`.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import (
    ModuleContext,
    call_tail,
    classify_mask_kind,
    is_int_mask_evidence,
    is_mask_expr,
    is_packed_expr,
    local_name_tags,
    walk_scope,
)
from repro.lint.findings import Finding

#: Builtins that iterate their (sole) argument.
_ITERATING_BUILTINS = {"sorted", "list", "tuple", "set", "frozenset", "sum", "min",
                       "max", "enumerate", "iter", "any", "all"}

#: Kernel primitives whose first argument is an iterable of vertex
#: *labels* — passing a mask here is the classic PR 3-era mixup.
LABEL_PARAM_CALLS = {
    "bits_of",
    "union_closed_bits",
    "dominates_vertices",
    "ball_labels_of_set",
}

#: Kernel primitives whose first argument is an int *mask* — passing a
#: set/list of labels here is the same mixup in the other direction.
MASK_PARAM_CALLS = {
    "labels_of",
    "closed_neighborhood_bits",
    "dominates",
    "undominated",
    "span_counts",
    "ball_bits_from_mask",
    "component_bits",
    "components_of_mask",
    "count_components_of_mask",
    "is_mask_connected",
    "iter_bits",
}


#: Finding text for a packed/int mask mix — shared by the operator and
#: comparison checks.
_MIX_MESSAGE = (
    "mixing a packed word-array mask with a Python-int bitset; the two "
    "kernel backends' masks do not interoperate — build both operands "
    "from the same kernel (PackedMask.zeros/from_indices on packed, "
    "kernel.bits_of on int)"
)


class BitsetDisciplineRule:
    """RPR005: int masks used as containers / mask-vs-label slot mixups.

    Since the packed (numpy word-array) kernel backend landed, masks come
    in two runtime shapes: Python ints (small graphs) and
    :class:`~repro.graphs.packed.PackedMask` word arrays (large graphs).
    They share the operator alphabet (``& | ^ ~``) but not the
    representation, so combining one of each is garbage at best and an
    ``AttributeError`` at worst.  This rule therefore also flags bitwise
    expressions, in-place updates, and ``==``/``!=`` comparisons whose
    operands carry *packed* evidence on one side and *int-only* evidence
    (``1 << i`` shifts, ``closed_bits[...]``, int literals) on the other.
    """

    rule = "RPR005"
    summary = "int bitset treated as an iterable (or mask/label slot mixup)"

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for scope in module.scopes():
            tags = local_name_tags(scope, classify_mask_kind)
            for node in walk_scope(scope):
                if isinstance(node, (ast.For, ast.AsyncFor)):
                    if is_mask_expr(node.iter, tags):
                        yield self._finding(
                            module,
                            node.iter,
                            "iterating an int bitset mask; decode it with "
                            "iter_bits(mask) or kernel.labels_of(mask)",
                        )
                elif isinstance(
                    node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
                ):
                    for generator in node.generators:
                        if is_mask_expr(generator.iter, tags):
                            yield self._finding(
                                module,
                                generator.iter,
                                "iterating an int bitset mask; decode it with "
                                "iter_bits(mask) or kernel.labels_of(mask)",
                            )
                elif isinstance(node, ast.Call):
                    yield from self._check_call(module, node, tags)
                elif isinstance(node, ast.BinOp) and isinstance(
                    node.op, (ast.BitOr, ast.BitAnd, ast.BitXor)
                ):
                    if self._mixes_backends(node.left, node.right, tags):
                        yield self._finding(module, node, _MIX_MESSAGE)
                elif isinstance(node, ast.AugAssign) and isinstance(
                    node.op, (ast.BitOr, ast.BitAnd, ast.BitXor)
                ):
                    if self._mixes_backends(node.target, node.value, tags):
                        yield self._finding(module, node, _MIX_MESSAGE)
                elif isinstance(node, ast.Compare):
                    left = node.left
                    for op, comparator in zip(node.ops, node.comparators):
                        if isinstance(op, (ast.In, ast.NotIn)) and is_mask_expr(
                            comparator, tags
                        ):
                            yield self._finding(
                                module,
                                comparator,
                                "membership test against an int bitset mask; "
                                "test bits with `mask >> i & 1` or "
                                "`(1 << i) & mask`",
                            )
                        elif isinstance(
                            op, (ast.Eq, ast.NotEq)
                        ) and self._mixes_backends(left, comparator, tags):
                            yield self._finding(module, comparator, _MIX_MESSAGE)
                        left = comparator

    def _check_call(
        self, module: ModuleContext, call: ast.Call, tags: dict[str, str]
    ) -> Iterator[Finding]:
        tail = call_tail(call)
        if (
            isinstance(call.func, ast.Name)
            and tail == "len"
            and len(call.args) == 1
            and is_mask_expr(call.args[0], tags)
        ):
            yield self._finding(
                module,
                call,
                "len() on an int bitset mask; population count is "
                "mask.bit_count()",
            )
            return
        if (
            isinstance(call.func, ast.Name)
            and tail in _ITERATING_BUILTINS
            and len(call.args) == 1
            and is_mask_expr(call.args[0], tags)
        ):
            yield self._finding(
                module,
                call,
                f"{tail}() iterates its argument, but an int bitset mask "
                f"is not an iterable; decode it with iter_bits()/labels_of()",
            )
            return
        if tail in LABEL_PARAM_CALLS and call.args and is_mask_expr(call.args[0], tags):
            yield self._finding(
                module,
                call.args[0],
                f"{tail}() expects an iterable of vertex labels but "
                f"received an int bitset mask; decode with labels_of() or "
                f"use the mask-native primitive",
            )
        if tail in MASK_PARAM_CALLS and call.args and self._is_label_container(
            call.args[0]
        ):
            yield self._finding(
                module,
                call.args[0],
                f"{tail}() expects an int bitset mask but received a "
                f"label container; convert with kernel.bits_of(...)",
            )

    @staticmethod
    def _mixes_backends(a: ast.expr, b: ast.expr, tags: dict[str, str]) -> bool:
        """One operand definitely packed, the other definitely int."""
        kinds = set()
        for side in (a, b):
            if is_packed_expr(side, tags):
                kinds.add("packed")
            elif is_int_mask_evidence(side, tags):
                kinds.add("int")
        return kinds == {"packed", "int"}

    @staticmethod
    def _is_label_container(node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp, ast.List, ast.ListComp)):
            return True
        return isinstance(node, ast.Call) and call_tail(node) in {
            "set",
            "frozenset",
            "sorted",
        }

    def _finding(self, module: ModuleContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.rule,
            message=message,
        )
