"""Kernel cache-coherence rules: RPR001 and RPR002.

The :mod:`repro.graphs.kernel` caching contract (see its module
docstring) has two obligations these rules check mechanically:

* **RPR001** — a graph that reaches a function from outside (parameter,
  attribute, subscript, loop element) may already have a cached
  :class:`~repro.graphs.kernel.GraphKernel`; mutating it
  (``add_edge``/``remove_node``/...) without ``invalidate_kernel(g)``
  on every path to function exit leaves that kernel silently stale.
  Locally constructed graphs (``nx.Graph()``, ``graph.copy()``, factory
  calls — "constructors that never leak a cached kernel") are exempt:
  a fresh object cannot have a cached kernel yet.

* **RPR002** — every module-level ``weakref.WeakKeyDictionary`` keyed by
  graphs must be passed to
  :func:`~repro.graphs.kernel.register_derived_cache`, or
  ``invalidate_kernel`` cannot clear it and it serves stale values
  after the one mutation-recovery call the contract allows.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import ModuleContext, call_tail, expr_text
from repro.lint.findings import Finding

#: nx.Graph mutation methods that change topology (graph-specific names
#: only — generic container methods like ``add``/``update`` stay out so
#: sets and dicts never trip the rule).
GRAPH_MUTATORS = {
    "add_edge",
    "add_edges_from",
    "add_weighted_edges_from",
    "add_node",
    "add_nodes_from",
    "remove_edge",
    "remove_edges_from",
    "remove_node",
    "remove_nodes_from",
    "clear_edges",
}


class MutationWithoutInvalidateRule:
    """RPR001: foreign-graph mutation with no ``invalidate_kernel`` path."""

    rule = "RPR001"
    summary = "graph mutation without invalidate_kernel on a path to exit"

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        yield from self._check_body(module, module.tree.body)

    def _check_body(
        self, module: ModuleContext, body: list, fresh: set[str] | None = None
    ) -> Iterator[Finding]:
        """Check every function directly inside ``body`` (module or class)."""
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(module, node, fresh)
            elif isinstance(node, ast.ClassDef):
                yield from self._check_body(module, node.body, fresh)

    def _check_function(
        self,
        module: ModuleContext,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        enclosing_fresh: set[str] | None = None,
    ) -> Iterator[Finding]:
        flow = _MutationFlow(func, enclosing_fresh)
        flow.scan_block(func.body)
        flow.record_exit()  # the implicit return at the end of the body
        # Nested functions close over the enclosing frame: names proven
        # fresh at the point of definition stay fresh inside the closure
        # (a local constructor's helper is not mutating a foreign graph).
        for nested, fresh_at_def in flow.nested:
            yield from self._check_function(module, nested, fresh_at_def)
        for key, (line, col, method) in sorted(flow.findings.items()):
            receiver, _ = key
            yield Finding(
                path=module.path,
                line=line,
                col=col,
                rule=self.rule,
                message=(
                    f"graph {receiver!r} is mutated ({method}) in "
                    f"{func.name!r} with no invalidate_kernel({receiver}) on "
                    f"every path to exit; a cached GraphKernel would go stale "
                    f"(build the graph locally, or invalidate after mutating)"
                ),
            )


class _MutationFlow:
    """Per-function forward scan tracking fresh graphs and dirty mutations.

    ``fresh`` holds textual receiver keys proven locally constructed
    (any call result, literal, or alias of one).  ``dirty`` maps a
    receiver key to its first unexcused mutation site; reaching a
    function exit (return/raise/fall-through) with a non-empty ``dirty``
    promotes those sites to findings.  Branches fork copies and merge
    with union-dirty / intersection-fresh, which is exactly the "on
    every path" approximation: an ``invalidate_kernel`` inside only one
    branch does not clear the other.
    """

    def __init__(
        self,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        enclosing_fresh: set[str] | None = None,
    ):
        args = func.args
        self.params = {
            a.arg
            for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
        }
        if args.vararg is not None:
            self.params.add(args.vararg.arg)
        if args.kwarg is not None:
            self.params.add(args.kwarg.arg)
        self.fresh: set[str] = (enclosing_fresh or set()) - self.params
        self.nested: list[tuple[ast.FunctionDef | ast.AsyncFunctionDef, set[str]]] = []
        self.dirty: dict[tuple[str, int], tuple[int, int, str]] = {}
        self.findings: dict[tuple[str, int], tuple[int, int, str]] = {}

    # -- freshness ----------------------------------------------------------

    def _is_fresh_value(self, value: ast.expr) -> bool:
        if isinstance(value, ast.Call):
            # Constructor/factory/copy results are fresh objects: they
            # cannot be in the kernel cache before this function runs.
            return True
        if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.Tuple, ast.Constant)):
            return True
        if isinstance(value, ast.Name):
            return value.id in self.fresh and value.id not in self.params
        return False

    def _bind(self, target: ast.expr, value: ast.expr) -> None:
        is_fresh = self._is_fresh_value(value)
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, value)
            return
        key = expr_text(target)
        if is_fresh:
            self.fresh.add(key)
        else:
            self.fresh.discard(key)

    # -- statement walk -----------------------------------------------------

    def scan_block(self, stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            self.scan_stmt(stmt)

    def scan_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Separate scope — queued for its own check, seeded with the
            # names fresh at this definition point (closure semantics).
            self.nested.append((stmt, set(self.fresh)))
            return
        if isinstance(stmt, ast.ClassDef):
            for inner in stmt.body:
                self.scan_stmt(inner)
            return
        if isinstance(stmt, ast.Assign):
            self._scan_calls(stmt.value)
            for target in stmt.targets:
                self._bind(target, stmt.value)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._scan_calls(stmt.value)
                self._bind(stmt.target, stmt.value)
            return
        if isinstance(stmt, (ast.Return, ast.Raise)):
            if isinstance(stmt, ast.Return) and stmt.value is not None:
                self._scan_calls(stmt.value)
            if isinstance(stmt, ast.Raise) and stmt.exc is not None:
                self._scan_calls(stmt.exc)
            self.record_exit()
            self.dirty.clear()  # statements after this point are a new path
            return
        if isinstance(stmt, ast.If):
            self._scan_calls(stmt.test)
            self._scan_branches([stmt.body, stmt.orelse])
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._scan_calls(stmt.iter)
            self._bind(stmt.target, stmt.iter)  # loop elements are foreign
            self._scan_branches([stmt.body, stmt.orelse])
            return
        if isinstance(stmt, ast.While):
            self._scan_calls(stmt.test)
            self._scan_branches([stmt.body, stmt.orelse])
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._scan_calls(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, item.context_expr)
            self.scan_block(stmt.body)
            return
        if isinstance(stmt, ast.Try):
            branches = [stmt.body]
            branches.extend(handler.body for handler in stmt.handlers)
            self._scan_branches(branches)
            self.scan_block(stmt.orelse)
            self.scan_block(stmt.finalbody)
            return
        # Expression statements and everything else: look for calls.
        for child in ast.walk(stmt):
            if isinstance(child, ast.Call):
                self._handle_call(child)

    def _scan_branches(self, branches: list[list[ast.stmt]]) -> None:
        entry_fresh = set(self.fresh)
        entry_dirty = dict(self.dirty)
        merged_fresh: set[str] | None = None
        merged_dirty: dict = {}
        for body in branches:
            self.fresh = set(entry_fresh)
            self.dirty = dict(entry_dirty)
            self.scan_block(body)
            merged_fresh = (
                set(self.fresh) if merged_fresh is None else merged_fresh & self.fresh
            )
            merged_dirty.update(self.dirty)
        self.fresh = merged_fresh if merged_fresh is not None else entry_fresh
        self.dirty = merged_dirty

    def _scan_calls(self, expr: ast.expr) -> None:
        for child in ast.walk(expr):
            if isinstance(child, ast.Call):
                self._handle_call(child)

    def _handle_call(self, call: ast.Call) -> None:
        tail = call_tail(call)
        if tail == "invalidate_kernel" and len(call.args) == 1:
            cleared = expr_text(call.args[0])
            for key in [k for k in self.dirty if k[0] == cleared]:
                del self.dirty[key]
            return
        if (
            tail in GRAPH_MUTATORS
            and isinstance(call.func, ast.Attribute)
        ):
            receiver = call.func.value
            key = expr_text(receiver)
            if key in self.fresh:
                return
            if isinstance(receiver, ast.Call):
                return  # e.g. graph.copy().add_edge(...) — fresh receiver
            site = (key, call.lineno)
            self.dirty.setdefault(site, (call.lineno, call.col_offset, tail))

    def record_exit(self) -> None:
        """Promote everything dirty on this path to findings."""
        self.findings.update(self.dirty)


class UnregisteredDerivedCacheRule:
    """RPR002: module-level graph-keyed cache never registered."""

    rule = "RPR002"
    summary = "WeakKeyDictionary cache not passed to register_derived_cache"

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        declared: dict[str, ast.Assign] = {}
        registered: set[str] = set()
        for stmt in module.tree.body:
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name) and self._is_weak_cache(stmt.value):
                    declared[target.id] = stmt
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and call_tail(node) == "register_derived_cache"
                and len(node.args) == 1
                and isinstance(node.args[0], ast.Name)
            ):
                registered.add(node.args[0].id)
        for name, stmt in sorted(declared.items()):
            if name not in registered:
                yield Finding(
                    path=module.path,
                    line=stmt.lineno,
                    col=stmt.col_offset,
                    rule=self.rule,
                    message=(
                        f"module-level WeakKeyDictionary {name!r} is never "
                        f"passed to register_derived_cache(); "
                        f"invalidate_kernel() cannot clear it, so it will "
                        f"serve stale per-graph values after a mutation"
                    ),
                )

    @staticmethod
    def _is_weak_cache(value: ast.expr) -> bool:
        return isinstance(value, ast.Call) and call_tail(value) == "WeakKeyDictionary"
