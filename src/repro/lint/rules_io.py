"""Durable-write discipline: RPR006.

The sweep and serve subsystems make crash-safety *claims*: a checkpoint,
journal entry, or spilled result is either absent or complete, never
torn.  That claim holds only if every durable write goes through the
atomic helpers (:func:`repro.io.write_json_atomic` /
:func:`repro.io.write_text_atomic` — temp file + fsync + rename).  A
raw ``Path.write_text`` in those modules silently re-opens the torn-file
window, so the contract is enforced statically: any direct write API in
a durable-write module is a finding.  Deliberate raw writes (the fault
harness damaging a checkpoint on purpose) carry an inline
``# repro: ignore[RPR006] reason`` suppression.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import ModuleContext, dotted
from repro.lint.findings import Finding

#: Path fragments (``/``-normalized) marking modules whose writes must
#: be atomic — the subsystems that advertise crash-safe persistence.
DURABLE_MODULE_MARKERS = (
    "/sweep/",
    "/serve/",
)

_WRITE_ATTRS = ("write_text", "write_bytes")

#: ``open`` mode characters that make a handle writable.
_WRITE_MODE_CHARS = set("wax+")


def is_durable_module(path: str) -> bool:
    normalized = "/" + path.replace("\\", "/").lstrip("/")
    return any(marker in normalized for marker in DURABLE_MODULE_MARKERS)


class AtomicWriteRule:
    """RPR006: raw file write in a crash-safe (sweep/serve) module."""

    rule = "RPR006"
    summary = "non-atomic file write in a durable-write module"

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if not is_durable_module(module.path):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            what = self._raw_write(node)
            if what is not None:
                yield Finding(
                    path=module.path,
                    line=node.lineno,
                    col=node.col_offset,
                    rule=self.rule,
                    message=(
                        f"{what} bypasses the atomic write helpers; durable "
                        f"files in sweep/serve must go through "
                        f"repro.io.write_json_atomic / write_text_atomic "
                        f"(temp + fsync + rename) so a crash never leaves "
                        f"a torn file"
                    ),
                )

    def _raw_write(self, call: ast.Call) -> str | None:
        """The offending call's description, or ``None`` if it is fine."""
        func = call.func
        if isinstance(func, ast.Attribute):
            if func.attr in _WRITE_ATTRS:
                return f"{func.attr}()"
            base = dotted(func.value)
            if base is not None and base.split(".")[-1] == "json" and func.attr == "dump":
                return "json.dump() to a file handle"
            if func.attr == "open" and self._writable_mode(call, position=0):
                return "open() for writing"
            return None
        if isinstance(func, ast.Name) and func.id == "open":
            return "open() for writing" if self._writable_mode(call, position=1) else None
        return None

    @staticmethod
    def _writable_mode(call: ast.Call, position: int) -> bool:
        """True if the ``open`` call's mode argument makes it writable.

        ``position`` is where ``mode`` sits positionally (1 for builtin
        ``open(file, mode)``, 0 for ``Path.open(mode)``).  A mode we
        cannot resolve statically is treated as read-only — RPR006 backs
        a convention, not a soundness proof.
        """
        mode: ast.expr | None = None
        if len(call.args) > position:
            mode = call.args[position]
        for keyword in call.keywords:
            if keyword.arg == "mode":
                mode = keyword.value
        if mode is None:
            return False
        if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
            return bool(_WRITE_MODE_CHARS.intersection(mode.value))
        return False
