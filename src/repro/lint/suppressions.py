"""Inline suppression comments for :mod:`repro.lint`.

Syntax::

    graph.add_edge(u, v)  # repro: ignore[RPR001] rebuilt by caller
    # repro: ignore[RPR002] primary kernel cache, cleared directly
    _KERNELS = weakref.WeakKeyDictionary()

A suppression applies to findings of the named rule(s) on its own
physical line; a comment that stands alone on a line also covers the
next line, so contract exceptions can be documented above the code they
excuse.  Several ids may be listed (``# repro: ignore[RPR001, RPR003]``)
and anything after the closing bracket is free-form reason text —
suppressions without a reason are legal but frowned upon in review.
"""

from __future__ import annotations

import re

_PATTERN = re.compile(r"#\s*repro:\s*ignore\[([A-Z]{3}\d{3}(?:\s*,\s*[A-Z]{3}\d{3})*)\]")


class Suppressions:
    """Per-file map of ``# repro: ignore[...]`` comments."""

    def __init__(self, source: str):
        # line number (1-based) -> set of suppressed rule ids
        self._by_line: dict[int, set[str]] = {}
        lines = source.splitlines()
        for lineno, text in enumerate(lines, start=1):
            match = _PATTERN.search(text)
            if match is None:
                continue
            rules = {part.strip() for part in match.group(1).split(",")}
            self._by_line.setdefault(lineno, set()).update(rules)
            if text.lstrip().startswith("#"):
                # Standalone comment: covers the next code line, skipping
                # over the rest of a multi-line comment block.
                nxt = lineno  # 0-based index of the following line
                while nxt < len(lines) and lines[nxt].lstrip().startswith("#"):
                    nxt += 1
                self._by_line.setdefault(nxt + 1, set()).update(rules)

    def is_suppressed(self, line: int, rule: str) -> bool:
        """Whether findings of ``rule`` on ``line`` are suppressed."""
        return rule in self._by_line.get(line, ())

    def __bool__(self) -> bool:
        return bool(self._by_line)
