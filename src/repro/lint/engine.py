"""The lint driver: file discovery, rule execution, suppression filtering.

``lint_paths`` is the programmatic front door (the ``repro lint`` CLI
and the test fixtures both call it); ``lint_source`` checks one
in-memory module, which is what the rule tests use.  Findings come back
sorted by ``(path, line, col, rule)`` so text and JSON output are
byte-deterministic — the linter holds itself to RPR003's contract.

A file that fails to parse yields a single ``RPR000`` finding instead of
aborting the run, so one broken file cannot hide findings in the rest
of the tree.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Sequence

from repro.lint.context import ModuleContext
from repro.lint.findings import Finding
from repro.lint.rules_bitset import BitsetDisciplineRule
from repro.lint.rules_determinism import NondeterminismRule
from repro.lint.rules_io import AtomicWriteRule
from repro.lint.rules_kernel import (
    MutationWithoutInvalidateRule,
    UnregisteredDerivedCacheRule,
)
from repro.lint.rules_registry import RegistryHygieneRule
from repro.lint.suppressions import Suppressions

PARSE_ERROR_RULE = "RPR000"

#: The rule catalogue, in id order.  Adding a rule here is the whole
#: registration: the CLI's ``--select`` choices, the README table, and
#: ``all_rules()`` derive from this list.
RULES = (
    MutationWithoutInvalidateRule(),
    UnregisteredDerivedCacheRule(),
    NondeterminismRule(),
    RegistryHygieneRule(),
    BitsetDisciplineRule(),
    AtomicWriteRule(),
)


def all_rules() -> dict[str, str]:
    """``rule id -> one-line summary`` for the whole catalogue."""
    return {rule.rule: rule.summary for rule in RULES}


def lint_source(
    source: str, path: str = "<string>", select: Iterable[str] | None = None
) -> list[Finding]:
    """Lint one module given as source text; returns sorted findings."""
    selected = set(select) if select is not None else None
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return [
            Finding(
                path=path,
                line=error.lineno or 1,
                col=(error.offset or 1) - 1,
                rule=PARSE_ERROR_RULE,
                message=f"file does not parse: {error.msg}",
            )
        ]
    module = ModuleContext(path, source, tree)
    suppressions = Suppressions(source)
    findings: list[Finding] = []
    for rule in RULES:
        if selected is not None and rule.rule not in selected:
            continue
        for finding in rule.check(module):
            if not suppressions.is_suppressed(finding.line, finding.rule):
                findings.append(finding)
    return sorted(findings)


def iter_python_files(paths: Sequence[str | Path]) -> list[Path]:
    """All ``.py`` files under ``paths``, deterministically ordered."""
    files: set[Path] = set()
    for entry in paths:
        path = Path(entry)
        if path.is_dir():
            files.update(
                candidate
                for candidate in path.rglob("*.py")
                if not any(part.startswith(".") for part in candidate.parts)
            )
        elif path.suffix == ".py":
            files.add(path)
    return sorted(files)


def lint_paths(
    paths: Sequence[str | Path], select: Iterable[str] | None = None
) -> list[Finding]:
    """Lint every ``.py`` file under ``paths``; returns sorted findings."""
    findings: list[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(lint_source(path.read_text(), str(path), select=select))
    return sorted(findings)
