"""``repro.lint`` — contract-enforcing static analysis for this codebase.

The hot-path refactors (PRs 3–5) rest on invariants that are enforced
only by convention: mutate a graph and you must ``invalidate_kernel``
it, per-graph caches must register with the kernel's derived-cache
list, reports must stay byte-deterministic, registry capability flags
must match adapter behavior, and int bitset masks must never be treated
as containers.  This package checks those contracts mechanically — the
AST rules RPR001–RPR005 (see each ``rules_*`` module), an inline
suppression syntax (``# repro: ignore[RPRxxx] reason``), and the
``repro lint`` CLI subcommand that gates CI.

The static pass is paired with a *runtime* sanitizer in
:mod:`repro.graphs.kernel`: under ``REPRO_KERNEL_GUARD=1`` every kernel
cache hit re-verifies a structural fingerprint of the graph and raises
:class:`~repro.graphs.kernel.StaleKernelError` on a contract breach the
linter could not see (dynamic mutation through aliases, third-party
code, REPL use).
"""

from repro.lint.engine import (
    PARSE_ERROR_RULE,
    RULES,
    all_rules,
    iter_python_files,
    lint_paths,
    lint_source,
)
from repro.lint.findings import Finding
from repro.lint.suppressions import Suppressions

__all__ = [
    "Finding",
    "PARSE_ERROR_RULE",
    "RULES",
    "Suppressions",
    "all_rules",
    "iter_python_files",
    "lint_paths",
    "lint_source",
]
