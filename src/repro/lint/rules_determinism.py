"""Determinism rules: RPR003.

Reports are byte-deterministic by contract: ``solve_many`` with
``workers=4`` must emit JSON byte-identical to a serial run, modulo the
sanctioned ``wall_time`` slots.  Three leak classes are checked in the
report-producing modules (``io``, ``cli``, ``experiments/``,
``analysis/tables``, ``api/runner``, ``api/simulation``, ``serve/``):

* iterating a ``set``/``frozenset`` (arbitrary order) straight into
  output — a ``for`` loop, comprehension, ``list()``/``tuple()``
  conversion, or ``str.join`` over a set expression must go through
  ``sorted(...)``;
* wall-clock reads (``time.time``/``perf_counter``/``datetime.now``)
  stored anywhere except the sanctioned ``wall_time``/``start`` timing
  slots;
* module-level RNG use (``random.shuffle`` et al. on the global
  generator, or ``random.Random()`` with no seed) — checked in *every*
  module, since an unseeded RNG anywhere poisons downstream reports.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import (
    ModuleContext,
    call_tail,
    classify_set,
    dotted,
    is_set_expr,
    local_name_tags,
    walk_scope,
)
from repro.lint.findings import Finding

#: Path fragments (``/``-normalized) that mark a report-producing module.
REPORT_MODULE_MARKERS = (
    "/io.py",
    "/cli.py",
    "/experiments/",
    "/analysis/tables.py",
    "/api/runner.py",
    "/api/simulation.py",
    # The serve subsystem emits job reports whose JSON must be
    # byte-identical to the direct batch runners' output.
    "/serve/",
    # Sweep checkpoints and merged reports carry the same byte-identity
    # contract as the batch runners they shard.
    "/sweep/",
    # Adversarial plans and schedulers feed suspicion/degradation tallies
    # straight into SimReports, so set-iteration order leaks into output.
    "/local_model/adversary.py",
    "/local_model/schedulers.py",
)

_TIME_CALLS = {
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("time", "process_time"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("date", "today"),
}

_CONVERTERS = {"list", "tuple", "enumerate", "iter"}

#: Assignment targets a wall-clock read may land in.
_SANCTIONED_TIME_NAMES = ("wall", "start", "elapsed", "t0", "deadline")


def is_report_module(path: str) -> bool:
    normalized = "/" + path.replace("\\", "/").lstrip("/")
    return any(marker in normalized for marker in REPORT_MODULE_MARKERS)


class NondeterminismRule:
    """RPR003: nondeterministic ordering/time/RNG feeding report output."""

    rule = "RPR003"
    summary = "nondeterminism leak in a report-producing module"

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        yield from self._check_unseeded_random(module)
        if not is_report_module(module.path):
            return
        for scope in module.scopes():
            yield from self._check_set_iteration(module, scope)
        yield from self._check_time_calls(module)

    # -- unsorted set iteration ---------------------------------------------

    def _check_set_iteration(
        self, module: ModuleContext, scope: ast.AST
    ) -> Iterator[Finding]:
        tags = local_name_tags(scope, classify_set)
        for node in walk_scope(scope):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if is_set_expr(node.iter, tags):
                    yield self._set_finding(module, node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for generator in node.generators:
                    if is_set_expr(generator.iter, tags):
                        yield self._set_finding(module, generator.iter)
            elif isinstance(node, ast.Call):
                tail = call_tail(node)
                if (
                    tail in _CONVERTERS
                    and isinstance(node.func, ast.Name)
                    and len(node.args) == 1
                    and is_set_expr(node.args[0], tags)
                ):
                    yield self._set_finding(module, node.args[0])
                elif (
                    tail == "join"
                    and isinstance(node.func, ast.Attribute)
                    and len(node.args) == 1
                    and is_set_expr(node.args[0], tags)
                ):
                    yield self._set_finding(module, node.args[0])

    def _set_finding(self, module: ModuleContext, expr: ast.expr) -> Finding:
        return Finding(
            path=module.path,
            line=expr.lineno,
            col=expr.col_offset,
            rule=self.rule,
            message=(
                "iterating a set in arbitrary order inside a "
                "report-producing module; wrap it in sorted(...) so the "
                "emitted report stays byte-deterministic"
            ),
        )

    # -- wall-clock reads ---------------------------------------------------

    def _check_time_calls(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call) and self._is_time_call(node)):
                continue
            if self._time_call_sanctioned(module, node):
                continue
            yield Finding(
                path=module.path,
                line=node.lineno,
                col=node.col_offset,
                rule=self.rule,
                message=(
                    "wall-clock read stored outside the sanctioned "
                    "wall_time slots; report fields must not depend on "
                    "when the run happened"
                ),
            )

    @staticmethod
    def _is_time_call(call: ast.Call) -> bool:
        func = call.func
        if not isinstance(func, ast.Attribute):
            return False
        base = dotted(func.value)
        if base is None:
            return False
        return (base.split(".")[-1], func.attr) in _TIME_CALLS

    def _time_call_sanctioned(self, module: ModuleContext, call: ast.Call) -> bool:
        node: ast.AST = call
        for ancestor in module.ancestors(call):
            if isinstance(ancestor, ast.keyword):
                return ancestor.arg is not None and self._sanctioned_name(ancestor.arg)
            if isinstance(ancestor, ast.Dict):
                try:
                    index = ancestor.values.index(node)
                except ValueError:
                    index = next(
                        (
                            i
                            for i, value in enumerate(ancestor.values)
                            if _contains(value, call)
                        ),
                        -1,
                    )
                if index < 0:
                    return False
                key = ancestor.keys[index]
                return (
                    isinstance(key, ast.Constant)
                    and isinstance(key.value, str)
                    and self._sanctioned_name(key.value)
                )
            if isinstance(ancestor, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    ancestor.targets
                    if isinstance(ancestor, ast.Assign)
                    else [ancestor.target]
                )
                return all(
                    isinstance(t, ast.Name) and self._sanctioned_name(t.id)
                    for t in targets
                )
            if isinstance(ancestor, (ast.Return, ast.stmt)):
                return False
            node = ancestor
        return False

    @staticmethod
    def _sanctioned_name(name: str) -> bool:
        lowered = name.lower()
        return any(marker in lowered for marker in _SANCTIONED_TIME_NAMES)

    # -- unseeded RNG -------------------------------------------------------

    def _check_unseeded_random(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "random"
            ):
                continue
            if func.attr in ("Random", "SystemRandom"):
                if func.attr == "Random" and not node.args and not node.keywords:
                    yield self._random_finding(
                        module, node, "random.Random() with no seed"
                    )
                continue
            yield self._random_finding(
                module, node, f"global-RNG call random.{func.attr}()"
            )

    def _random_finding(
        self, module: ModuleContext, node: ast.Call, what: str
    ) -> Finding:
        return Finding(
            path=module.path,
            line=node.lineno,
            col=node.col_offset,
            rule=self.rule,
            message=(
                f"{what} is not reproducible; thread an explicit seeded "
                f"random.Random(seed) through instead"
            ),
        )


def _contains(root: ast.AST, target: ast.AST) -> bool:
    return any(child is target for child in ast.walk(root))
