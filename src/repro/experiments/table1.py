"""Table 1 reproduction: ratio/rounds per minor-free class and algorithm.

Paper rows (constant-round MDS approximation on H-minor-free classes):

| class                  | paper ratio | paper rounds | algorithm           |
|------------------------|-------------|--------------|---------------------|
| trees (K_3)            | 3           | 2            | degree ≥ 2 rule     |
| outerplanar (K_{2,3})  | 5           | 2–3          | D₂ (t = 3)          |
| K_{1,t}-minor-free     | t           | 0            | take all            |
| K_{2,t}-minor-free     | 2t − 1      | 3            | D₂ (Theorem 4.4)    |
| K_{2,t}-minor-free     | 50          | O_t(1)       | Alg. 1 (Thm 4.1)    |

For every row we run the row's algorithm on its family suite and report
the *measured* worst/mean ratio (exact MDS denominator) and the measured
round count next to the paper's guarantee.  The reproduction claim is
shape-level: measured ≤ guarantee everywhere, and the orderings between
rows match the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import networkx as nx

from repro.analysis.ratio import measure_ratio
from repro.analysis.tables import format_table
from repro.core.algorithm1 import algorithm1
from repro.core.baselines import degree_two_dominating_set, take_all_vertices
from repro.core.d2 import d2_dominating_set
from repro.core.distributed_greedy import distributed_greedy_dominating_set
from repro.core.radii import RadiusPolicy
from repro.core.results import AlgorithmResult
from repro.experiments.workloads import Workload, make_workload
from repro.solvers.exact import minimum_dominating_set
from repro.solvers.greedy import greedy_dominating_set


@dataclass
class Table1Row:
    """One measured row of the reproduced Table 1."""

    graph_class: str
    algorithm: str
    paper_ratio: str
    paper_rounds: str
    measured_ratio_mean: float
    measured_ratio_max: float
    measured_rounds_max: int
    instances: int
    all_valid: bool


def _run_row(
    graph_class: str,
    algorithm_name: str,
    paper_ratio: str,
    paper_rounds: str,
    runner: Callable[[nx.Graph], AlgorithmResult],
    workload: Workload,
) -> Table1Row:
    ratios, rounds, valid = [], [], True
    for graph in workload.instances:
        result = runner(graph)
        optimum = minimum_dominating_set(graph)
        report = measure_ratio(graph, result.solution, optimum)
        ratios.append(report.ratio)
        rounds.append(result.rounds)
        valid = valid and report.valid
    return Table1Row(
        graph_class=graph_class,
        algorithm=algorithm_name,
        paper_ratio=paper_ratio,
        paper_rounds=paper_rounds,
        measured_ratio_mean=sum(ratios) / len(ratios),
        measured_ratio_max=max(ratios),
        measured_rounds_max=max(rounds),
        instances=len(ratios),
        all_valid=valid,
    )


def table1_rows(scale: str = "small", policy: RadiusPolicy | None = None) -> list[Table1Row]:
    """Measure every row of Table 1 (plus a greedy reference row).

    ``policy`` overrides the radius policy of the Algorithm 1 rows
    (default: the practical preset — see DESIGN.md's radius discussion).
    """
    if policy is None:
        policy = RadiusPolicy.practical()
    sizes = {"tiny": [10, 14], "small": [14, 20, 28], "medium": [20, 40, 60]}[scale]
    seeds = (0, 1) if scale != "tiny" else (0,)

    def suite(name: str) -> Workload:
        return make_workload(name, sizes, seeds)

    def alg1(graph: nx.Graph) -> AlgorithmResult:
        return algorithm1(graph, policy)

    def greedy(graph: nx.Graph) -> AlgorithmResult:
        solution = greedy_dominating_set(graph)
        return AlgorithmResult(name="greedy", solution=solution, rounds=len(solution))

    rows = [
        _run_row(
            "trees (K_3)", "degree>=2 (folklore)", "3", "2",
            degree_two_dominating_set, suite("tree"),
        ),
        _run_row(
            "outerplanar (K_4,K_2,3)", "D2 / Thm 4.4 (t=3)", "5", "3",
            d2_dominating_set, suite("outerplanar"),
        ),
        _run_row(
            "K_1,t-minor-free", "take all (folklore)", "t", "0",
            take_all_vertices, suite("star"),
        ),
        _run_row(
            "K_2,t-minor-free", "D2 / Thm 4.4", "2t-1", "3",
            d2_dominating_set, suite("ladder"),
        ),
        _run_row(
            "K_2,t-minor-free", "Algorithm 1 / Thm 4.1", "50", "O_t(1)",
            alg1, suite("ladder"),
        ),
        _run_row(
            "K_2,t-minor-free (ding)", "Algorithm 1 / Thm 4.1", "50", "O_t(1)",
            alg1, suite("ding"),
        ),
        _run_row(
            "reference", "centralized greedy", "ln(Delta)", "global",
            greedy, suite("ding"),
        ),
        _run_row(
            "reference", "distributed greedy", "ln(Delta)", "O(phases)",
            distributed_greedy_dominating_set, suite("ding"),
        ),
    ]
    return rows


def table1_report(scale: str = "small") -> str:
    """Render the measured Table 1 as aligned text."""
    rows = table1_rows(scale)
    headers = [
        "graph class", "algorithm", "paper ratio", "paper rounds",
        "ratio mean", "ratio max", "rounds max", "n", "valid",
    ]
    body = [
        [
            r.graph_class, r.algorithm, r.paper_ratio, r.paper_rounds,
            r.measured_ratio_mean, r.measured_ratio_max,
            r.measured_rounds_max, r.instances, r.all_valid,
        ]
        for r in rows
    ]
    return format_table(headers, body)
