"""Table 1 reproduction: ratio/rounds per minor-free class and algorithm.

Paper rows (constant-round MDS approximation on H-minor-free classes):

| class                  | paper ratio | paper rounds | algorithm           |
|------------------------|-------------|--------------|---------------------|
| trees (K_3)            | 3           | 2            | degree ≥ 2 rule     |
| outerplanar (K_{2,3})  | 5           | 2–3          | D₂ (t = 3)          |
| K_{1,t}-minor-free     | t           | 0            | take all            |
| K_{2,t}-minor-free     | 2t − 1      | 3            | D₂ (Theorem 4.4)    |
| K_{2,t}-minor-free     | 50          | O_t(1)       | Alg. 1 (Thm 4.1)    |

For every row we run the row's algorithm (through the
:mod:`repro.api` registry, so rows and CLI use the same adapters) on
its family suite and report the *measured* worst/mean ratio (exact MDS
denominator) and the measured round count next to the paper's
guarantee.  The reproduction claim is shape-level: measured ≤ guarantee
everywhere, and the orderings between rows match the paper.
``workers`` fans the per-row instance batches out process-parallel via
:func:`repro.api.solve_many`; results are deterministic either way.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api import RunConfig
from repro.analysis.tables import format_table
from repro.core.radii import RadiusPolicy
from repro.experiments.workloads import Workload, make_workload, run_workload


@dataclass
class Table1Row:
    """One measured row of the reproduced Table 1."""

    graph_class: str
    algorithm: str
    paper_ratio: str
    paper_rounds: str
    measured_ratio_mean: float
    measured_ratio_max: float
    measured_rounds_max: int
    instances: int
    all_valid: bool


def _run_row(
    graph_class: str,
    algorithm_label: str,
    paper_ratio: str,
    paper_rounds: str,
    algorithm: str,
    config: RunConfig,
    workload: Workload,
    workers: int | None = None,
) -> Table1Row:
    reports = run_workload(workload, algorithm, config, workers=workers)
    ratios = [r.ratio for r in reports]
    rounds = [r.rounds for r in reports]
    return Table1Row(
        graph_class=graph_class,
        algorithm=algorithm_label,
        paper_ratio=paper_ratio,
        paper_rounds=paper_rounds,
        measured_ratio_mean=sum(ratios) / len(ratios),
        measured_ratio_max=max(ratios),
        measured_rounds_max=max(rounds),
        instances=len(reports),
        all_valid=all(r.valid for r in reports),
    )


def table1_rows(
    scale: str = "small",
    policy: RadiusPolicy | None = None,
    workers: int | None = None,
    solver: str = "milp",
    opt_cache: bool = True,
) -> list[Table1Row]:
    """Measure every row of Table 1 (plus a greedy reference row).

    ``policy`` overrides the radius policy of the Algorithm 1 rows
    (default: the practical preset — see DESIGN.md's radius discussion);
    ``workers`` runs each row's instance batch process-parallel;
    ``solver``/``opt_cache`` pick the exact backend for every ratio
    denominator and whether per-instance optima are shared (they are
    deterministic either way).
    """
    if policy is None:
        policy = RadiusPolicy.practical()
    sizes = {"tiny": [10, 14], "small": [14, 20, 28], "medium": [20, 40, 60]}[scale]
    seeds = (0, 1) if scale != "tiny" else (0,)

    def suite(name: str) -> Workload:
        return make_workload(name, sizes, seeds)

    measured = RunConfig(validate="ratio", solver=solver, opt_cache=opt_cache)
    measured_alg1 = measured.with_(policy=policy)

    rows = [
        _run_row(
            "trees (K_3)", "degree>=2 (folklore)", "3", "2",
            "degree_two", measured, suite("tree"), workers,
        ),
        _run_row(
            "outerplanar (K_4,K_2,3)", "D2 / Thm 4.4 (t=3)", "5", "3",
            "d2", measured, suite("outerplanar"), workers,
        ),
        _run_row(
            "K_1,t-minor-free", "take all (folklore)", "t", "0",
            "take_all", measured, suite("star"), workers,
        ),
        _run_row(
            "K_2,t-minor-free", "D2 / Thm 4.4", "2t-1", "3",
            "d2", measured, suite("ladder"), workers,
        ),
        _run_row(
            "K_2,t-minor-free", "Algorithm 1 / Thm 4.1", "50", "O_t(1)",
            "algorithm1", measured_alg1, suite("ladder"), workers,
        ),
        _run_row(
            "K_2,t-minor-free (ding)", "Algorithm 1 / Thm 4.1", "50", "O_t(1)",
            "algorithm1", measured_alg1, suite("ding"), workers,
        ),
        _run_row(
            "reference", "centralized greedy", "ln(Delta)", "global",
            "greedy_central", measured, suite("ding"), workers,
        ),
        _run_row(
            "reference", "distributed greedy", "ln(Delta)", "O(phases)",
            "greedy", measured, suite("ding"), workers,
        ),
    ]
    return rows


def table1_simulation_rows(
    scale: str = "tiny", workers: int | None = None
) -> list[dict]:
    """Table 1b: cross-check fast-path rows against real protocol runs.

    For every Table 1 algorithm that ships a message-passing protocol,
    run the same instances through the :func:`repro.api.simulate_many`
    engine door and compare the solution the per-node protocol computes
    against the fast path's.  ``workers`` fans the simulation batch out
    process-parallel; results are deterministic either way.
    """
    from repro.api import SimulationSpec, simulate_many, solve_many

    sizes = {"tiny": [10, 14], "small": [14, 20, 28], "medium": [20, 40, 60]}[scale]
    pairs = [
        ("tree", "degree_two"),
        ("outerplanar", "d2"),
        ("star", "take_all"),
        ("ladder", "d2"),
        ("ding", "greedy"),
    ]
    rows = []
    for family, algorithm in pairs:
        instances = make_workload(family, sizes).labelled()
        fast = solve_many(instances, algorithm, RunConfig(validate="none"))
        simulated = simulate_many(instances, SimulationSpec(algorithm=algorithm), workers=workers)
        agree = all(
            f.solution == s.chosen for f, s in zip(fast, simulated)
        )
        rows.append(
            {
                "family": family,
                "algorithm": algorithm,
                "instances": len(simulated),
                "fast_rounds_max": max(r.rounds for r in fast),
                "sim_rounds_max": max(r.rounds for r in simulated),
                "sim_messages_max": max(r.total_messages for r in simulated),
                "solutions_agree": agree,
            }
        )
    return rows


def table1_report(
    scale: str = "small",
    workers: int | None = None,
    solver: str = "milp",
    opt_cache: bool = True,
) -> str:
    """Render the measured Table 1 as aligned text."""
    rows = table1_rows(scale, workers=workers, solver=solver, opt_cache=opt_cache)
    headers = [
        "graph class", "algorithm", "paper ratio", "paper rounds",
        "ratio mean", "ratio max", "rounds max", "n", "valid",
    ]
    body = [
        [
            r.graph_class, r.algorithm, r.paper_ratio, r.paper_rounds,
            r.measured_ratio_mean, r.measured_ratio_max,
            r.measured_rounds_max, r.instances, r.all_valid,
        ]
        for r in rows
    ]
    return format_table(headers, body)
