"""Instance suites: which graphs each experiment runs on.

A :class:`Workload` is a named list of concrete graphs (family × sizes ×
seeds), deliberately materialised up front so that every algorithm in a
comparison sees *exactly* the same instances.  Each instance carries a
provenance record (family/size/seed) that :func:`run_workload` threads
into the :class:`repro.api.RunReport` batch it produces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import networkx as nx

from repro.api import RunConfig, RunReport, solve_many
from repro.graphs.families import get_family


@dataclass
class Workload:
    """A reproducible batch of instances (with per-instance provenance)."""

    name: str
    instances: list[nx.Graph] = field(default_factory=list)
    metas: list[dict] = field(default_factory=list)
    """Parallel to ``instances``; empty for hand-built workloads."""

    @property
    def sizes(self) -> list[int]:
        return [g.number_of_nodes() for g in self.instances]

    def labelled(self) -> list[tuple[dict, nx.Graph]]:
        """``(meta, graph)`` pairs — the shape `solve_many` accepts."""
        if len(self.metas) == len(self.instances):
            return list(zip(self.metas, self.instances))
        return [
            ({"workload": self.name, "index": i}, g)
            for i, g in enumerate(self.instances)
        ]


def make_workload(
    family_name: str, sizes: Sequence[int], seeds: Sequence[int] = (0,)
) -> Workload:
    """Materialise ``family × sizes × seeds`` deterministic instances."""
    family = get_family(family_name)
    instances, metas = [], []
    for size in sizes:
        for seed in seeds:
            instances.append(family.make(size, seed))
            metas.append({"family": family_name, "size": size, "seed": seed})
    return Workload(name=family_name, instances=instances, metas=metas)


def run_workload(
    workload: Workload,
    algorithms: str | Sequence[str],
    config: RunConfig | None = None,
    *,
    workers: int | None = None,
) -> list[RunReport]:
    """Run registered algorithms over a workload via :func:`repro.api.solve_many`."""
    return solve_many(workload.labelled(), algorithms, config, workers=workers)


def standard_suite(scale: str = "small") -> dict[str, Workload]:
    """The default instance suites used by Table 1 and the sweeps.

    ``scale`` is ``"tiny"`` (fast unit-test scale), ``"small"`` (default
    benchmark scale) or ``"medium"`` (slower, larger graphs).
    """
    if scale == "tiny":
        sizes, seeds = [12, 18], (0,)
    elif scale == "small":
        sizes, seeds = [16, 24, 36], (0, 1)
    elif scale == "medium":
        sizes, seeds = [24, 48, 72, 96], (0, 1, 2)
    else:
        raise ValueError(f"unknown scale {scale!r}")
    names = [
        "path",
        "tree",
        "star",
        "cycle",
        "outerplanar",
        "fan",
        "cactus",
        "ladder",
        "ding",
        "fan_flower",
        "clique_pendants",
    ]
    return {name: make_workload(name, sizes, seeds) for name in names}
