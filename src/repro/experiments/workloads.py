"""Instance suites: which graphs each experiment runs on.

A :class:`Workload` is a named list of concrete graphs (family × sizes ×
seeds), deliberately materialised up front so that every algorithm in a
comparison sees *exactly* the same instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import networkx as nx

from repro.graphs.families import get_family


@dataclass
class Workload:
    """A reproducible batch of instances."""

    name: str
    instances: list[nx.Graph] = field(default_factory=list)

    @property
    def sizes(self) -> list[int]:
        return [g.number_of_nodes() for g in self.instances]


def make_workload(
    family_name: str, sizes: Sequence[int], seeds: Sequence[int] = (0,)
) -> Workload:
    """Materialise ``family × sizes × seeds`` deterministic instances."""
    family = get_family(family_name)
    instances = [
        family.make(size, seed) for size in sizes for seed in seeds
    ]
    return Workload(name=family_name, instances=instances)


def standard_suite(scale: str = "small") -> dict[str, Workload]:
    """The default instance suites used by Table 1 and the sweeps.

    ``scale`` is ``"tiny"`` (fast unit-test scale), ``"small"`` (default
    benchmark scale) or ``"medium"`` (slower, larger graphs).
    """
    if scale == "tiny":
        sizes, seeds = [12, 18], (0,)
    elif scale == "small":
        sizes, seeds = [16, 24, 36], (0, 1)
    elif scale == "medium":
        sizes, seeds = [24, 48, 72, 96], (0, 1, 2)
    else:
        raise ValueError(f"unknown scale {scale!r}")
    names = [
        "path",
        "tree",
        "star",
        "cycle",
        "outerplanar",
        "fan",
        "cactus",
        "ladder",
        "ding",
        "fan_flower",
        "clique_pendants",
    ]
    return {name: make_workload(name, sizes, seeds) for name in names}
