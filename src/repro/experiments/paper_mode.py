"""S8: Algorithm 1 under the *paper's* radius constants, at scale.

On simulation-scale graphs the paper's radii (``m_3.2 = 43t + 2``)
usually exceed the diameter.  Long cycles are the exception that makes
the constants meaningful: on ``C_n`` with ``n`` well above the radius,
every vertex is an ``m_3.2``-local 1-cut while *no* vertex is a global
one — exactly the phenomenon the paper's Section 4 intuition describes
— so Algorithm 1 takes all of them and achieves ratio exactly 3 with
the proven-policy radii doing real (local, not degenerate) work.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

from repro.api import RunConfig
from repro.core.radii import RadiusPolicy
from repro.graphs.generators import cycle
from repro.graphs.local_cuts import is_local_one_cut
from repro.solvers.exact import minimum_dominating_set

#: The Table 1 algorithm set (the columns of the full-table landscape).
TABLE1_ALGORITHMS = (
    "degree_two",
    "d2",
    "take_all",
    "algorithm1",
    "greedy",
    "greedy_central",
)


def paper_mode_on_cycles(
    ns: Sequence[int] = (150, 200), t: int = 2
) -> list[dict]:
    """Run the paper-policy 1-cut phase on long cycles.

    Only the 1-cut phase is exercised (the 2-cut phase cannot trigger on
    cycles — taken pairs contain 1-cuts, cf. the local-cut tests) so the
    sweep stays tractable at n = 200 with radius 88.
    """
    policy = RadiusPolicy.paper(t)
    rows = []
    for n in ns:
        if n <= 2 * policy.one_cut_radius + 1:
            raise ValueError(
                f"cycle length {n} must exceed 2*{policy.one_cut_radius}+1 "
                "for the local cuts to be local"
            )
        graph = cycle(n)
        probe_vertices = list(range(0, n, max(1, n // 10)))
        all_cut = all(
            is_local_one_cut(graph, v, policy.one_cut_radius) for v in probe_vertices
        )
        optimum = len(minimum_dominating_set(graph))
        rows.append(
            {
                "n": n,
                "t": t,
                "m32_radius": policy.one_cut_radius,
                "all_vertices_are_local_1_cuts": all_cut,
                "solution_size": n if all_cut else -1,
                "opt": optimum,
                "ratio": round(n / optimum, 3) if all_cut else float("nan"),
                "ratio_bound": policy.ratio_bound,
            }
        )
    return rows


def full_table_sweep(
    run_dir: str | Path,
    *,
    scale: str = "tiny",
    algorithms: Sequence[str] | None = None,
    shard_size: int = 1,
    solver: str = "milp",
    resume: bool = True,
    **options,
):
    """The full Table-1 landscape as a crash-safe checkpointed sweep.

    Runs every :func:`~repro.experiments.workloads.standard_suite`
    family × every Table 1 algorithm through :func:`repro.sweep.run_sweep`
    instead of one monolithic :func:`~repro.api.solve_many` call: each
    shard's reports are checkpointed under ``run_dir``, worker crashes
    retry with backoff, and re-invoking on the same directory (the
    default ``resume=True``) finishes an interrupted run instead of
    starting over.  ``options`` forward to the dispatcher (``workers``,
    ``max_attempts``, ``shard_timeout``, ...).  Returns the
    :class:`~repro.sweep.SweepResult`; the merged ``reports.json`` is
    byte-identical (modulo ``wall_time``) to the direct batch run.
    """
    from repro.experiments.workloads import standard_suite
    from repro.sweep import MANIFEST_NAME, resume_sweep, run_sweep

    run_dir = Path(run_dir)
    if resume and (run_dir / MANIFEST_NAME).exists():
        return resume_sweep(run_dir, **options)
    suite = standard_suite(scale)
    instances = [
        pair for workload in suite.values() for pair in workload.labelled()
    ]
    return run_sweep(
        instances,
        run_dir=run_dir,
        algorithms=tuple(algorithms) if algorithms else TABLE1_ALGORITHMS,
        config=RunConfig(validate="ratio", solver=solver),
        shard_size=shard_size,
        **options,
    )


def summarise_full_table(report_dicts: Sequence[dict]) -> list[dict]:
    """Per ``(family, algorithm)`` ratio/rounds aggregates of a sweep.

    Consumes the merged report dicts of :func:`full_table_sweep`
    (``SweepResult.report_dicts()``) and produces rows in the shape of
    the Table 1 summary: mean/max ratio, max rounds, validity.
    """
    groups: dict[tuple[str, str], list[dict]] = {}
    order: list[tuple[str, str]] = []
    for report in report_dicts:
        key = (report["instance"].get("family", "?"), report["algorithm"])
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(report)
    rows = []
    for family, algorithm in order:
        reports = groups[(family, algorithm)]
        ratios = [r["ratio"] for r in reports if r["ratio"] is not None]
        rounds = [r["result"]["rounds"] for r in reports if r.get("result")]
        rows.append(
            {
                "family": family,
                "algorithm": algorithm,
                "instances": len(reports),
                "ratio_mean": round(sum(ratios) / len(ratios), 4) if ratios else None,
                "ratio_max": max(ratios) if ratios else None,
                "rounds_max": max(rounds) if rounds else None,
                "all_valid": all(r["valid"] for r in reports),
            }
        )
    return rows
