"""S8: Algorithm 1 under the *paper's* radius constants, at scale.

On simulation-scale graphs the paper's radii (``m_3.2 = 43t + 2``)
usually exceed the diameter.  Long cycles are the exception that makes
the constants meaningful: on ``C_n`` with ``n`` well above the radius,
every vertex is an ``m_3.2``-local 1-cut while *no* vertex is a global
one — exactly the phenomenon the paper's Section 4 intuition describes
— so Algorithm 1 takes all of them and achieves ratio exactly 3 with
the proven-policy radii doing real (local, not degenerate) work.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.radii import RadiusPolicy
from repro.graphs.generators import cycle
from repro.graphs.local_cuts import is_local_one_cut
from repro.solvers.exact import minimum_dominating_set


def paper_mode_on_cycles(
    ns: Sequence[int] = (150, 200), t: int = 2
) -> list[dict]:
    """Run the paper-policy 1-cut phase on long cycles.

    Only the 1-cut phase is exercised (the 2-cut phase cannot trigger on
    cycles — taken pairs contain 1-cuts, cf. the local-cut tests) so the
    sweep stays tractable at n = 200 with radius 88.
    """
    policy = RadiusPolicy.paper(t)
    rows = []
    for n in ns:
        if n <= 2 * policy.one_cut_radius + 1:
            raise ValueError(
                f"cycle length {n} must exceed 2*{policy.one_cut_radius}+1 "
                "for the local cuts to be local"
            )
        graph = cycle(n)
        probe_vertices = list(range(0, n, max(1, n // 10)))
        all_cut = all(
            is_local_one_cut(graph, v, policy.one_cut_radius) for v in probe_vertices
        )
        optimum = len(minimum_dominating_set(graph))
        rows.append(
            {
                "n": n,
                "t": t,
                "m32_radius": policy.one_cut_radius,
                "all_vertices_are_local_1_cuts": all_cut,
                "solution_size": n if all_cut else -1,
                "opt": optimum,
                "ratio": round(n / optimum, 3) if all_cut else float("nan"),
                "ratio_bound": policy.ratio_bound,
            }
        )
    return rows
