"""Supplementary sweeps S1–S5 (see DESIGN.md experiment index).

Each sweep returns plain data rows (lists of dicts) plus a renderer, so
benchmarks can assert on the numbers and EXPERIMENTS.md can quote them.
Algorithm executions go through the :mod:`repro.api` front door
(:func:`repro.api.solve` with ``validate="ratio"``), so the sweeps
measure exactly what the CLI and Table 1 run.
"""

from __future__ import annotations

from typing import Sequence

import networkx as nx

from repro.analysis.lemmas import lemma_3_2_report, lemma_3_3_report
from repro.analysis.tables import format_table
from repro.api import RunConfig, solve
from repro.core.radii import RadiusPolicy
from repro.graphs.generators import ladder
from repro.graphs.random_families import random_ding_augmentation


def _k2t_stress_instance(t: int, blocks: int = 4) -> nx.Graph:
    """``K_{2,t}``-minor-free chains that are worst-case-ish for ``D₂``.

    Each block is ``K_{2,t−1}`` (hubs non-adjacent): every page ``p`` has
    ``N[p] = {p, hub₁, hub₂}`` contained in neither hub's closed
    neighborhood, so *all pages* land in ``D₂`` while two hubs dominate
    the block — the measured D₂ ratio grows like ``t/2``, tracking the
    ``2t − 1`` guarantee's shape.  Blocks are chained by length-2 paths
    to keep instances connected and the minor-freeness intact.
    """
    if t < 3:
        raise ValueError("t >= 3 required")
    graph = nx.Graph()
    offset = 0
    previous_anchor = None
    for _ in range(blocks):
        block = nx.complete_bipartite_graph(2, t - 1)
        mapping = {v: v + offset for v in block.nodes}
        graph.add_edges_from((mapping[u], mapping[v]) for u, v in block.edges)
        if previous_anchor is not None:
            bridge = offset + t + 1
            graph.add_edge(previous_anchor, bridge)
            graph.add_edge(bridge, mapping[0])
        previous_anchor = mapping[1]
        offset += t + 10
    return graph


def ratio_vs_t(ts: Sequence[int] = (3, 4, 5, 6, 8, 10)) -> list[dict]:
    """S1: Theorem 4.4's ratio grows with t, Algorithm 1's stays flat."""
    rows = []
    for t in ts:
        graph = _k2t_stress_instance(t)
        # Both ratio validations share one exact solve per graph through
        # the per-instance OPT cache — no hand-rolled reuse needed.
        d2 = solve(graph, "d2", RunConfig(validate="ratio"))
        alg1 = solve(
            graph, "algorithm1",
            RunConfig(validate="ratio", policy=RadiusPolicy.practical()),
        )
        rows.append(
            {
                "t": t,
                "n": graph.number_of_nodes(),
                "opt": d2.optimum_size,
                "d2_ratio": d2.ratio,
                "d2_bound": 2 * t - 1,
                "alg1_ratio": alg1.ratio,
                "alg1_bound": alg1.result.metadata["ratio_bound"],
            }
        )
    return rows


def ratio_vs_n(
    sizes: Sequence[int] = (16, 32, 48, 64), seed: int = 0
) -> list[dict]:
    """S2: measured ratios stay flat as n grows (fixed family)."""
    rows = []
    for n in sizes:
        graph = random_ding_augmentation(max(2, n // 8), max(1, n // 10), seed)
        alg1 = solve(graph, "algorithm1", RunConfig(validate="ratio"))
        d2 = solve(graph, "d2", RunConfig(validate="ratio"))  # cache-shared OPT
        rows.append(
            {
                "n": graph.number_of_nodes(),
                "opt": alg1.optimum_size,
                "alg1_ratio": alg1.ratio,
                "d2_ratio": d2.ratio,
            }
        )
    return rows


def rounds_vs_n(sizes: Sequence[int] = (8, 16, 24, 32)) -> list[dict]:
    """S3: LOCAL rounds stay constant as n grows; full-gather grows ~n.

    Ladders make the contrast sharp: diameter grows linearly, the
    residual structure does not.
    """
    rows = []
    for n in sizes:
        graph = ladder(n)
        alg1 = solve(graph, "algorithm1", RunConfig(validate="none"))
        d2 = solve(graph, "d2", RunConfig(validate="none"))
        exact = solve(graph, "exact", RunConfig(validate="none"))
        rows.append(
            {
                "n": graph.number_of_nodes(),
                "diameter": exact.result.metadata["diameter"],
                "alg1_rounds": alg1.rounds,
                "d2_rounds": d2.rounds,
                "full_gather_rounds": exact.rounds,
            }
        )
    return rows


def lemma_constants_sweep(
    r1: int = 2, r2: int = 3, seeds: Sequence[int] = (0, 1, 2)
) -> list[dict]:
    """S4: measured Lemma 3.2/3.3 constants vs the proven 6 and 44 (d=1)."""
    rows = []
    for seed in seeds:
        for name, graph in [
            ("cactus", _cactus(seed)),
            ("ladder", ladder(8 + 2 * seed)),
            ("ding", random_ding_augmentation(3, 3, seed)),
        ]:
            one = lemma_3_2_report(graph, r1)
            two = lemma_3_3_report(graph, r2)
            rows.append(
                {
                    "family": name,
                    "seed": seed,
                    "n": graph.number_of_nodes(),
                    "mds": one.mds,
                    "local_1_cuts": one.count,
                    "c32_used": one.constant_used,
                    "c32_budget": one.budget_constant,
                    "interesting": two.count,
                    "c33_used": two.constant_used,
                    "c33_budget": two.budget_constant,
                }
            )
    return rows


def _cactus(seed: int) -> nx.Graph:
    from repro.graphs.random_families import random_cactus

    return random_cactus(4, 6, seed)


def crossover_table(ts: Sequence[int] = (3, 5, 10, 20, 25, 26, 30, 40)) -> list[dict]:
    """S5: the guarantee crossover — ``2t − 1 < 50`` exactly for t ≤ 25."""
    rows = []
    for t in ts:
        rows.append(
            {
                "t": t,
                "thm44_bound": 2 * t - 1,
                "thm41_bound": 50,
                "winner": "Thm 4.4" if 2 * t - 1 < 50 else "Thm 4.1",
            }
        )
    return rows


def message_volume_vs_radius(radii: Sequence[int] = (1, 2, 3, 4)) -> list[dict]:
    """S6: LOCAL vs CONGEST — per-message volume of view gathering.

    The LOCAL model's unbounded messages are not a formality: gathering
    radius-r views ships whole subgraphs.  We measure per-message
    payload against the (one-identifier) CONGEST budget.
    """
    from repro.local_model.congest import trace_congest_report
    from repro.local_model.gather import gather_views

    graph = ladder(12)
    rows = []
    for radius in radii:
        _, trace = gather_views(graph, radius)
        report = trace_congest_report(graph, trace)
        rows.append(
            {
                "radius": radius,
                "rounds": report.rounds,
                "max_message_units": round(report.max_message_units, 1),
                "congest_budget": report.budget_units,
                "congest_feasible": report.congest_feasible,
            }
        )
    return rows


def identifier_robustness(seeds: Sequence[int] = (0, 1, 2, 3)) -> list[dict]:
    """S7: deterministic LOCAL algorithms must work for every identifier
    assignment — outputs may shift on ties but validity and size class
    must hold across schemes.  Runs through the :func:`repro.api.simulate`
    front door (``SimReport.chosen`` is vertex-keyed, so solutions are
    comparable across identifier schemes)."""
    from repro.analysis.domination import is_dominating_set
    from repro.api import SimulationSpec, simulate

    graph = _k2t_stress_instance(4, blocks=2)
    base_spec = SimulationSpec(algorithm="d2")
    baseline = simulate(graph, base_spec).chosen
    schemes = [("identity", base_spec)]
    schemes += [
        (f"shuffled(seed={s})", base_spec.with_(ids="shuffled", seed=s))
        for s in seeds
    ]
    schemes.append(("spread", base_spec.with_(ids="spread")))
    rows = []
    for name, spec in schemes:
        report = simulate(graph, spec)
        rows.append(
            {
                "ids": name,
                "size": len(report.chosen),
                "rounds": report.rounds,
                "valid": is_dominating_set(graph, report.chosen),
                "same_as_identity": report.chosen == baseline,
            }
        )
    return rows


def fault_tolerance_sweep(
    drops: Sequence[float] = (0.0, 0.1, 0.3), seed: int = 0
) -> list[dict]:
    """S11: what the paper's 3-round protocol does on a faulty network.

    The LOCAL model assumes reliable synchronous links; the engine's
    fault plans quantify the gap — D₂ still halts in 3 rounds under
    message loss and a crashed hub (its decisions only read whatever
    arrived), but validity degrades with the drop rate.  Everything is
    seeded, so the rows reproduce exactly.
    """
    from repro.analysis.domination import is_dominating_set
    from repro.api import FaultPlan, SimulationSpec, simulate

    graph = _k2t_stress_instance(4, blocks=2)
    crash_choices: list[tuple[str, tuple]] = [("none", ()), ("hub", (1,))]
    rows = []
    for drop in drops:
        for crash_name, crashed in crash_choices:
            spec = SimulationSpec(
                algorithm="d2",
                seed=seed,
                faults=FaultPlan(drop_probability=drop, crashed=crashed),
            )
            report = simulate(graph, spec)
            alive = set(graph.nodes) - set(crashed)
            rows.append(
                {
                    "drop_p": drop,
                    "crashed": crash_name,
                    "rounds": report.rounds,
                    "dropped_msgs": report.dropped_messages,
                    "swallowed_msgs": report.swallowed_messages,
                    "size": len(report.chosen),
                    "valid_on_alive": is_dominating_set(
                        graph.subgraph(alive), report.chosen
                    ),
                }
            )
    return rows


def adversarial_degradation_sweep(
    churn_rates: Sequence[float] = (0.0, 0.1, 0.3),
    byz_fractions: Sequence[float] = (0.0, 0.25),
    algorithms: Sequence[str] = ("d2", "degree_two", "greedy"),
    seed: int = 1,
    model: str = "local",
    max_rounds: int = 64,
) -> list[dict]:
    """S12: solution-quality degradation under churn × Byzantine nodes.

    For every cell of the (churn rate × Byzantine fraction) grid, each
    engine-capable protocol runs against the adversary and its fault-free
    twin on the same seed (:func:`repro.api.adversarial_degradation`).
    The achieved ratio is measured on the graph the run *ended* on, so
    churn that deletes a dominated vertex does not flatter the protocol.
    Byzantine nodes are picked deterministically — the first
    ``ceil(n · fraction)`` vertices in repr order, behaviors assigned
    round-robin from :data:`BYZANTINE_BEHAVIORS` — so the rows reproduce
    exactly.  The fault-free column (rate 0, fraction 0) must report
    ``agree=True``: with a trivial adversary the twin is the same run.
    """
    from repro.api import (
        BYZANTINE_BEHAVIORS,
        ByzantinePlan,
        ChurnPlan,
        SimulationSpec,
        adversarial_degradation,
    )

    graph = _k2t_stress_instance(4, blocks=2)
    nodes = sorted(graph.nodes, key=repr)
    rows = []
    for algorithm in algorithms:
        for rate in churn_rates:
            for fraction in byz_fractions:
                percent = round(fraction * 100)
                count = -(-len(nodes) * percent // 100)  # ceil(n · fraction)
                behaviors = tuple(
                    (nodes[i], BYZANTINE_BEHAVIORS[i % len(BYZANTINE_BEHAVIORS)])
                    for i in range(count)
                )
                spec = SimulationSpec(
                    algorithm=algorithm,
                    model=model,
                    seed=seed,
                    max_rounds=max_rounds,
                    churn=ChurnPlan(rate=rate, until=4) if rate else None,
                    byzantine=ByzantinePlan(behaviors) if behaviors else None,
                )
                out = adversarial_degradation(graph, spec)
                report, degradation = out["report"], out["degradation"]
                rows.append(
                    {
                        "algorithm": algorithm,
                        "churn_rate": rate,
                        "byz_fraction": fraction,
                        "byz_nodes": count,
                        "rounds": report.rounds,
                        "churn_events": report.churn_events,
                        "size": degradation["size"],
                        "coverage": round(degradation["coverage"], 3),
                        "valid": degradation["valid"],
                        "ratio": degradation["ratio"],
                        "agree": degradation["agree"],
                        "timed_out": report.timed_out,
                    }
                )
    return rows


def congest_gather_inflation(budgets: Sequence[int] = (1, 2, 4, 8)) -> list[dict]:
    """S9: round inflation of radius-2 gathering under CONGEST budgets.

    LOCAL ships the whole view in ``r + 1`` rounds; capping messages at
    ``budget`` facts pipelines the flood and multiplies the rounds —
    measured here on a fixed ladder (the quantitative content of the
    paper's LOCAL-vs-CONGEST remark in Section 1).
    """
    from repro.local_model.congest_gather import congest_gather_views
    from repro.local_model.gather import gather_views

    graph = ladder(10)
    _, local_trace = gather_views(graph, 2)
    rows = []
    for budget in budgets:
        _, trace = congest_gather_views(graph, 2, budget)
        rows.append(
            {
                "budget_facts_per_msg": budget,
                "congest_rounds": trace.round_count,
                "local_rounds": local_trace.round_count,
                "inflation": round(trace.round_count / local_trace.round_count, 2),
            }
        )
    return rows


def treewidth_asdim_chain(seeds: Sequence[int] = (0, 1)) -> list[dict]:
    """S10: the paper's structural chain, measured.

    Section 4 argues ``K_{2,t}``-minor-free ⟹ bounded treewidth ⟹
    asymptotic dimension 1.  For each family we measure the three
    stations: the largest ``K_{2,t}`` minor found (singleton hubs), the
    min-fill treewidth, and the witnessed control bound of the
    decomposition-derived cover at r = 2.
    """
    from repro.graphs.minors import largest_k2t_minor_singleton_hubs
    from repro.graphs.random_families import random_ding_augmentation, random_outerplanar
    from repro.graphs.treewidth import measured_cover_control, min_fill_decomposition, width

    rows = []
    for seed in seeds:
        for name, graph in [
            ("outerplanar", random_outerplanar(14 + seed, seed)),
            ("ladder", ladder(7 + seed)),
            ("ding", random_ding_augmentation(3, 2, seed)),
        ]:
            rows.append(
                {
                    "family": name,
                    "seed": seed,
                    "n": graph.number_of_nodes(),
                    "largest_k2t": largest_k2t_minor_singleton_hubs(graph),
                    "treewidth": width(min_fill_decomposition(graph)),
                    "cover_control_r2": measured_cover_control(graph, 2),
                }
            )
    return rows


def render_rows(rows: list[dict]) -> str:
    """Render a list of uniform dicts as an aligned table."""
    if not rows:
        return "(no data)"
    headers = list(rows[0])
    return format_table(headers, [[row[h] for h in headers] for row in rows])
