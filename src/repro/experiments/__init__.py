"""Experiment harnesses: one driver per table/figure of the paper.

* :mod:`repro.experiments.table1` — the Table 1 landscape (ratio and
  rounds per graph class and algorithm);
* :mod:`repro.experiments.figures` — executable versions of the paper's
  two illustrative figures (Lemma 5.17/5.18 construction; the charging
  picture of Lemma 3.3);
* :mod:`repro.experiments.sweeps` — supplementary sweeps S1–S5 of
  DESIGN.md (ratio vs t, ratio vs n, rounds vs n, lemma constants,
  Theorem 4.1-vs-4.4 crossover);
* :mod:`repro.experiments.workloads` — the instance suites everything
  draws from;
* :mod:`repro.experiments.report` — renders everything into the text
  blocks recorded in EXPERIMENTS.md.
"""

from repro.experiments.workloads import Workload, run_workload, standard_suite
from repro.experiments.table1 import table1_report, Table1Row
from repro.experiments.sweeps import (
    ratio_vs_t,
    ratio_vs_n,
    rounds_vs_n,
    lemma_constants_sweep,
    crossover_table,
)
from repro.experiments.figures import figure1_report, figure2_report

__all__ = [
    "Workload",
    "run_workload",
    "standard_suite",
    "table1_report",
    "Table1Row",
    "ratio_vs_t",
    "ratio_vs_n",
    "rounds_vs_n",
    "lemma_constants_sweep",
    "crossover_table",
    "figure1_report",
    "figure2_report",
]
