"""Executable counterparts of the paper's two illustrative figures.

The paper's figures are diagrams, not data plots:

* **Figure 1** illustrates the preprocessing in the proof of Lemma 5.18
  (contracting an ``A``-vertex onto ``B`` and recording a red edge).
  :func:`figure1_report` *runs* that machinery: it builds the
  Lemma 5.17 minor on a suite of ``K_{2,t}``-minor-free instances and
  verifies the structural properties plus the ``|A| ≤ (t−1)|B|``
  inequality the figure supports.
* **Figure 2** illustrates the charging structure in the proof of
  Lemma 3.3 (interesting vertices charging nearby MDS vertices).
  :func:`figure2_report` measures the charge: interesting vertices per
  MDS vertex, and the distance from each interesting vertex to its
  nearest dominator — the quantity Claim 5.11 bounds by 5.
"""

from __future__ import annotations

from typing import Sequence

import networkx as nx

from repro.analysis.lemmas import lemma_5_17_minor, verify_lemma_5_18
from repro.analysis.tables import format_table
from repro.core.interesting import globally_interesting_vertices
from repro.graphs.generators import ladder
from repro.graphs.random_families import random_ding_augmentation, random_outerplanar
from repro.graphs.util import distances_from
from repro.solvers.exact import minimum_dominating_set


def _figure_instances(seeds: Sequence[int]) -> list[tuple[str, int, nx.Graph]]:
    """(name, t, graph) triples: instances with a known K_{2,t}-free t."""
    out: list[tuple[str, int, nx.Graph]] = []
    for seed in seeds:
        out.append(("outerplanar", 3, random_outerplanar(14 + 2 * seed, seed)))
        out.append(("ladder", 5, ladder(6 + seed)))
        out.append(("ding", 8, random_ding_augmentation(3, 2, seed)))
    return out


def figure1_rows(seeds: Sequence[int] = (0, 1, 2)) -> list[dict]:
    """Run the Lemma 5.17 construction + Lemma 5.18 inequality check."""
    rows = []
    for name, t, graph in _figure_instances(seeds):
        report = lemma_5_17_minor(graph)
        check = verify_lemma_5_18(report.minor, report.part_a, report.part_b, t)
        rows.append(
            {
                "family": name,
                "t": t,
                "n": graph.number_of_nodes(),
                "|A|": len(report.part_a),
                "|B|": len(report.part_b),
                "A_edgeless": report.a_edgeless,
                "degrees_ok": report.min_degree_ok,
                "half_of_D2_ok": report.size_guarantee_ok,
                "ineq_|A|<=(t-1)|B|": check.inequality_ok,
            }
        )
    return rows


def figure1_report(seeds: Sequence[int] = (0, 1, 2)) -> str:
    rows = figure1_rows(seeds)
    headers = list(rows[0])
    return format_table(headers, [[r[h] for h in headers] for r in rows])


def figure2_rows(seeds: Sequence[int] = (0, 1, 2)) -> list[dict]:
    """Measure the Lemma 3.3 charging picture on cut-rich instances."""
    rows = []
    for name, _t, graph in _figure_instances(seeds):
        interesting = globally_interesting_vertices(graph)
        optimum = minimum_dominating_set(graph)
        worst_distance = 0
        for v in sorted(interesting, key=repr):
            dist = distances_from(graph, v)
            worst_distance = max(
                # repro: ignore[RPR003] min() over the set is order-insensitive
                worst_distance, min(dist.get(d, 10 ** 9) for d in optimum)
            )
        charge = len(interesting) / len(optimum) if optimum else 0.0
        rows.append(
            {
                "family": name,
                "n": graph.number_of_nodes(),
                "interesting": len(interesting),
                "mds": len(optimum),
                "charge_per_dominator": charge,
                "max_dist_to_dominator": worst_distance,
                "claim_5_11_bound": 5,
            }
        )
    return rows


def figure2_report(seeds: Sequence[int] = (0, 1, 2)) -> str:
    rows = figure2_rows(seeds)
    headers = list(rows[0])
    return format_table(headers, [[r[h] for h in headers] for r in rows])
