"""Assemble the full experiment report (the source of EXPERIMENTS.md).

``python -m repro.experiments.report`` prints every table; pass
``--scale tiny|small|medium`` to trade time for size.
"""

from __future__ import annotations

import argparse

from repro.experiments.figures import figure1_report, figure2_report
from repro.experiments.sweeps import (
    congest_gather_inflation,
    crossover_table,
    fault_tolerance_sweep,
    identifier_robustness,
    lemma_constants_sweep,
    message_volume_vs_radius,
    ratio_vs_n,
    ratio_vs_t,
    render_rows,
    rounds_vs_n,
    treewidth_asdim_chain,
)
from repro.experiments.table1 import table1_report, table1_simulation_rows


def full_report(
    scale: str = "small",
    workers: int | None = None,
    solver: str = "milp",
    opt_cache: bool = True,
) -> str:
    """Every experiment, rendered to one text block.

    ``workers`` parallelises the Table 1 regeneration (the dominant
    cost) through :func:`repro.api.solve_many`; ``solver``/``opt_cache``
    select the exact backend for Table 1's ratio denominators and
    whether per-instance optima are shared.
    """
    sections = [
        (
            "Table 1 — constant-round MDS approximation landscape",
            table1_report(scale, workers=workers, solver=solver, opt_cache=opt_cache),
        ),
        (
            "Table 1b — engine cross-check (fast path vs per-node protocol)",
            render_rows(table1_simulation_rows("tiny", workers=workers)),
        ),
        ("Figure 1 — Lemma 5.17/5.18 construction", figure1_report()),
        ("Figure 2 — Lemma 3.3 charging picture", figure2_report()),
        ("S1 — ratio vs t", render_rows(ratio_vs_t())),
        ("S2 — ratio vs n", render_rows(ratio_vs_n())),
        ("S3 — rounds vs n", render_rows(rounds_vs_n())),
        ("S4 — lemma constants", render_rows(lemma_constants_sweep())),
        ("S5 — Thm 4.1 vs Thm 4.4 crossover", render_rows(crossover_table())),
        ("S6 — LOCAL vs CONGEST message volume", render_rows(message_volume_vs_radius())),
        ("S7 — identifier-assignment robustness", render_rows(identifier_robustness())),
        ("S9 — CONGEST gathering round inflation", render_rows(congest_gather_inflation())),
        ("S10 — K_2,t-free => treewidth => asdim chain", render_rows(treewidth_asdim_chain())),
        ("S11 — fault tolerance of D2 (drops, crashes)", render_rows(fault_tolerance_sweep())),
    ]
    blocks = []
    for title, body in sections:
        blocks.append(f"== {title} ==\n{body}")
    return "\n\n".join(blocks)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="small", choices=["tiny", "small", "medium"])
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--solver", default="milp", choices=["milp", "bnb"])
    parser.add_argument("--no-opt-cache", action="store_true")
    args = parser.parse_args()
    print(
        full_report(
            args.scale,
            workers=args.workers,
            solver=args.solver,
            opt_cache=not args.no_opt_cache,
        )
    )


if __name__ == "__main__":
    main()
