"""Job lifecycle primitives: records, the bounded queue, the result store.

A job moves through ``queued -> running -> completed | failed |
cancelled``; every transition is recorded on the :class:`Job` so the
status endpoint can always answer *where a job is and why* — lifecycle
observability is part of the service contract, not best-effort.

The queue is **bounded**: a full queue raises :class:`QueueFullError`,
which the HTTP layer maps to ``429`` + ``Retry-After`` — backpressure
is the client's signal, never silent queue growth.  The result store is
a **ring buffer**: only finished jobs count against its capacity, and
evicted records optionally spill to a directory so results survive
recycling.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from pathlib import Path

from repro.io import write_json_atomic

JOB_STATES = ("queued", "running", "completed", "failed", "cancelled")

#: Terminal states: the job will never run (again) and its record is
#: owned by the result store.
FINISHED_STATES = ("completed", "failed", "cancelled")


class QueueFullError(RuntimeError):
    """The bounded job queue rejected a submission (backpressure)."""

    def __init__(self, depth: int, retry_after: int) -> None:
        super().__init__(
            f"job queue is full ({depth} queued); retry in ~{retry_after}s"
        )
        self.depth = depth
        self.retry_after = retry_after


@dataclass
class Job:
    """One submitted job: spec, lifecycle state, and (later) reports."""

    id: str
    kind: str
    """``"solve"`` or ``"simulate"``."""
    parsed: object
    """The :class:`~repro.serve.schema.ParsedJob` to execute."""
    timeout: float | None = None
    state: str = "queued"
    error: str | None = None
    reports: list | None = None
    """JSON-ready report dicts once completed (``None`` otherwise)."""
    wall_time: float = 0.0
    """Execution seconds (0.0 until the job has run)."""
    cancel_event: threading.Event = field(default_factory=threading.Event)

    def status(self) -> dict:
        """The JSON-ready status record (``GET /jobs/{id}``)."""
        return {
            "id": self.id,
            "kind": self.kind,
            "state": self.state,
            "error": self.error,
            "cancel_requested": self.cancel_event.is_set(),
            "tasks": self.parsed.task_count,
            "wall_time": self.wall_time,
        }


class JobQueue:
    """A bounded FIFO of job ids with blocking pop and mid-queue removal."""

    def __init__(self, depth: int) -> None:
        if depth < 1:
            raise ValueError("queue depth must be positive")
        self.depth = depth
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        self._ids: deque[str] = deque()
        self._closed = False

    def put(self, job_id: str, retry_after: int = 1) -> None:
        """Enqueue, or raise :class:`QueueFullError` when at capacity."""
        with self._lock:
            if len(self._ids) >= self.depth:
                raise QueueFullError(len(self._ids), retry_after)
            self._ids.append(job_id)
            self._ready.notify()

    def get(self) -> str | None:
        """Block for the next job id; ``None`` once closed and drained."""
        with self._ready:
            while not self._ids and not self._closed:
                self._ready.wait()
            if self._ids:
                return self._ids.popleft()
            return None

    def remove(self, job_id: str) -> bool:
        """Drop a queued id (cancellation); False if already popped."""
        with self._lock:
            try:
                self._ids.remove(job_id)
                return True
            except ValueError:
                return False

    def close(self) -> None:
        """Wake every blocked :meth:`get` with ``None`` (shutdown)."""
        with self._ready:
            self._closed = True
            self._ready.notify_all()

    def snapshot(self) -> list[str]:
        """Queued ids in order (the observable queue for ``/stats``)."""
        with self._lock:
            return list(self._ids)

    def __len__(self) -> int:
        with self._lock:
            return len(self._ids)


class ResultStore:
    """Ring buffer of finished-job records with optional disk spill.

    ``put`` keeps at most ``capacity`` records in memory; the oldest is
    evicted first and — when a spill directory is configured — written
    to ``<dir>/<job_id>.json`` so ``get`` can still serve it after
    recycling.  Records are the full JSON payload
    ``{"job": <status dict>, "reports": <report dicts or null>}``.
    """

    def __init__(self, capacity: int = 256, spill_dir: str | Path | None = None) -> None:
        if capacity < 1:
            raise ValueError("result capacity must be positive")
        self.capacity = capacity
        self.spill_dir = None if spill_dir is None else Path(spill_dir)
        self._lock = threading.Lock()
        self._records: "OrderedDict[str, dict]" = OrderedDict()
        self._spilled = 0

    def put(self, job_id: str, record: dict) -> None:
        with self._lock:
            self._records[job_id] = record
            while len(self._records) > self.capacity:
                evicted_id, evicted = self._records.popitem(last=False)
                self._spill(evicted_id, evicted)

    def _spill(self, job_id: str, record: dict) -> None:
        if self.spill_dir is None:
            return
        self.spill_dir.mkdir(parents=True, exist_ok=True)
        # Atomic (temp + fsync + rename): a crash mid-eviction must not
        # leave a torn record where a complete result used to be.
        write_json_atomic(self.spill_dir / f"{job_id}.json", record)
        self._spilled += 1

    def get(self, job_id: str) -> dict | None:
        """The stored record — from memory, else from the spill dir."""
        with self._lock:
            record = self._records.get(job_id)
        if record is not None:
            return record
        if self.spill_dir is not None:
            path = self.spill_dir / f"{job_id}.json"
            if path.exists():
                return json.loads(path.read_text())
        return None

    def stats(self) -> dict:
        with self._lock:
            return {
                "stored": len(self._records),
                "capacity": self.capacity,
                "spilled": self._spilled,
                "spill_dir": None if self.spill_dir is None else str(self.spill_dir),
            }
