"""The resident service: queue + worker pool + result store, glued.

:class:`ReproService` owns the whole job lifecycle: ``submit`` parses
and enqueues (backpressure via :class:`~repro.serve.jobs.QueueFullError`),
resident worker **threads** execute jobs instance-major through the
same :func:`repro.api.solve` / :func:`repro.api.simulate` calls the
batch runners use, and finished records move to the ring-buffer
:class:`~repro.serve.jobs.ResultStore`.  Workers are threads — not
processes — so every job shares one kernel cache, one OPT cache, and
one resident :class:`~repro.serve.instances.InstanceCache`; that
sharing is the entire point of the service (see the package docstring
for the thread-safety argument).

Cancellation and timeouts are **cooperative**: the worker checks the
job's cancel flag and execution deadline between instance-major units
(one unit = one ``instance x algorithm`` / ``instance x spec`` run), so
a single long unit finishes before the job transitions.  Reports are
serialised to their JSON dict form as they are produced; the stored
payload for a completed job is exactly what
:func:`repro.io.save_run_reports` / :func:`repro.io.save_sim_reports`
would have written for the equivalent direct batch call — byte-identical
modulo the sanctioned ``wall_time`` fields.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path

from repro.api.runner import solve
from repro.api.simulation import simulate
from repro.io import (
    counted_payload,
    run_report_to_dict,
    sim_report_to_dict,
    write_json_atomic,
)
from repro.serve.instances import InstanceCache
from repro.serve.jobs import Job, JobQueue, QueueFullError, ResultStore
from repro.serve.schema import ParsedJob, SpecError, parse_job
from repro.solvers import opt_cache

JOURNAL_SCHEMA = 1


class _JobCancelled(Exception):
    """Internal control flow: the job's cancel flag was observed."""


class _JobTimeout(Exception):
    """Internal control flow: the job's execution budget ran out."""


class ReproService:
    """A resident job-queue service over ``solve``/``simulate``."""

    def __init__(
        self,
        *,
        workers: int = 2,
        queue_depth: int = 32,
        job_timeout: float | None = None,
        result_capacity: int = 256,
        result_dir: str | None = None,
        instance_capacity: int = 256,
        journal_dir: str | None = None,
    ) -> None:
        if workers < 0:
            raise ValueError("workers must be non-negative")
        self.workers = workers
        self.job_timeout = job_timeout
        self.journal_dir = None if journal_dir is None else Path(journal_dir)
        self._queue = JobQueue(queue_depth)
        self._store = ResultStore(result_capacity, result_dir)
        self._instances = InstanceCache(instance_capacity)
        self._lock = threading.Lock()
        self._cv = threading.Condition(self._lock)
        self._jobs: dict[str, Job] = {}
        self._seq = 0
        self._finished = {"completed": 0, "failed": 0, "cancelled": 0}
        self._wall_total = 0.0
        self._threads: list[threading.Thread] = []
        self._started = False
        start = time.monotonic()
        self._start_monotonic = start

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "ReproService":
        """Spawn the worker pool (idempotent).

        Resets the OPT-cache counters first, so ``/stats`` reports the
        resident process's hit rate — not import-time or test noise
        accumulated before the service existed.  With a journal
        directory configured, journalled jobs from a previous process
        are re-admitted *before* any worker spawns, so recovered work
        keeps its submission order ahead of new submissions.
        """
        if self._started:
            return self
        opt_cache.reset_cache_stats()
        if self.journal_dir is not None:
            self._recover_journal()
        start = time.monotonic()
        self._start_monotonic = start
        self._started = True
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"repro-serve-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        return self

    def stop(self) -> None:
        """Close the queue and join the workers (running units finish)."""
        self._queue.close()
        for thread in self._threads:
            thread.join(timeout=30.0)
        self._threads = []
        self._started = False

    def __enter__(self) -> "ReproService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- submission and queries ---------------------------------------------

    def submit(self, payload: object) -> dict:
        """Parse, admit, and enqueue a job; returns its status record.

        Raises :class:`~repro.serve.schema.SpecError` on an invalid
        payload (before any queue slot is taken) and
        :class:`~repro.serve.jobs.QueueFullError` under backpressure.
        """
        parsed = parse_job(payload)
        with self._cv:
            self._seq += 1
            job = Job(
                id=f"j{self._seq:06d}",
                kind=parsed.kind,
                parsed=parsed,
                timeout=parsed.timeout if parsed.timeout is not None else self.job_timeout,
            )
            self._jobs[job.id] = job
            try:
                self._queue.put(job.id, retry_after=self._retry_after_hint())
            except Exception:
                del self._jobs[job.id]
                self._seq -= 1
                raise
            self._journal_write(job.id, payload)
            return job.status()

    # -- durable job journal -------------------------------------------------

    def _journal_path(self, job_id: str) -> Path:
        return self.journal_dir / f"{job_id}.json"

    def _journal_write(self, job_id: str, payload: object) -> None:
        """Persist an admitted job's original payload (atomic).

        The journal entry lives from admission to terminal state; a
        service crash in between leaves the file, and the next
        :meth:`start` re-admits the job under its original id.
        """
        if self.journal_dir is None:
            return
        self.journal_dir.mkdir(parents=True, exist_ok=True)
        write_json_atomic(
            self._journal_path(job_id),
            {"schema": JOURNAL_SCHEMA, "id": job_id, "payload": payload},
        )

    def _journal_clear(self, job_id: str) -> None:
        if self.journal_dir is not None:
            self._journal_path(job_id).unlink(missing_ok=True)

    def _recover_journal(self) -> int:
        """Re-admit journalled jobs from a crashed process; returns count.

        Entries re-parse through :func:`~repro.serve.schema.parse_job`
        — an unreadable or no-longer-valid entry is renamed to
        ``*.rejected`` (kept for inspection, never retried).  A full
        queue stops recovery and leaves the remaining files for the
        next start.
        """
        if not self.journal_dir.is_dir():
            return 0
        recovered = 0
        for path in sorted(self.journal_dir.glob("*.json")):
            try:
                data = json.loads(path.read_text())
                if data.get("schema") != JOURNAL_SCHEMA:
                    raise SpecError(f"unknown journal schema {data.get('schema')!r}")
                job_id = data["id"]
                parsed = parse_job(data["payload"])
                number = int(job_id.lstrip("j"))
            except (OSError, json.JSONDecodeError, KeyError, ValueError, SpecError):
                path.rename(path.with_suffix(".rejected"))
                continue
            with self._cv:
                try:
                    self._queue.put(job_id)
                except QueueFullError:
                    break
                self._jobs[job_id] = Job(
                    id=job_id,
                    kind=parsed.kind,
                    parsed=parsed,
                    timeout=(
                        parsed.timeout
                        if parsed.timeout is not None
                        else self.job_timeout
                    ),
                )
                self._seq = max(self._seq, number)
            recovered += 1
        return recovered

    def _retry_after_hint(self) -> int:
        """Seconds a 429'd client should wait: queue drain estimate."""
        finished = sum(self._finished.values())
        wall_avg = self._wall_total / finished if finished else 1.0
        drain = wall_avg * (len(self._queue) + 1) / max(1, self.workers)
        return max(1, round(drain))

    def status(self, job_id: str) -> dict | None:
        """The status record of an active or finished job, else None."""
        with self._cv:
            job = self._jobs.get(job_id)
            if job is not None:
                return job.status()
        record = self._store.get(job_id)
        return None if record is None else record["job"]

    def result(self, job_id: str) -> dict | None:
        """The full record ``{"job": ..., "reports": ...}``.

        ``reports`` is ``None`` until the job completes (and for failed
        or cancelled jobs); unknown ids return ``None``.
        """
        with self._cv:
            job = self._jobs.get(job_id)
            if job is not None:
                return {"job": job.status(), "reports": None}
        return self._store.get(job_id)

    def cancel(self, job_id: str) -> dict | None:
        """Request cancellation; returns the (possibly updated) status.

        A job still in the queue transitions to ``cancelled``
        immediately; a running job transitions at its next unit
        boundary; a finished job is returned unchanged.
        """
        with self._cv:
            job = self._jobs.get(job_id)
            if job is None:
                record = self._store.get(job_id)
                return None if record is None else record["job"]
            job.cancel_event.set()
            if job.state == "queued" and self._queue.remove(job_id):
                self._finish_locked(job, "cancelled")
        return self.status(job_id)

    def wait(self, job_id: str, timeout: float | None = None) -> dict | None:
        """Block until the job leaves the active set; returns its status."""
        start = time.monotonic()
        with self._cv:
            while job_id in self._jobs:
                if timeout is None:
                    self._cv.wait()
                    continue
                elapsed = time.monotonic() - start
                if elapsed >= timeout:
                    break
                self._cv.wait(timeout - elapsed)
        return self.status(job_id)

    def healthz(self) -> dict:
        elapsed = time.monotonic() - self._start_monotonic
        return {
            "status": "ok",
            "workers": self.workers,
            "uptime_s": round(elapsed, 3),
        }

    def stats(self) -> dict:
        """Queue/cache/result metrics (the ``GET /stats`` payload).

        The ``queue`` section uses the same counted-payload envelope as
        ``repro lint --json`` (:func:`repro.io.counted_payload`), and
        ``opt_cache`` is the lock-consistent
        :func:`repro.solvers.opt_cache.snapshot` — reflecting this
        resident process only, because :meth:`start` reset the counters.
        """
        elapsed = time.monotonic() - self._start_monotonic
        with self._cv:
            active = [job.status() for job in self._jobs.values()]
            finished = dict(self._finished)
            submitted = self._seq
            wall_total = self._wall_total
        states = dict.fromkeys(("queued", "running"), 0)
        for record in active:
            states[record["state"]] = states.get(record["state"], 0) + 1
        return {
            "uptime_s": round(elapsed, 3),
            "workers": self.workers,
            "queue": counted_payload(
                "queued", self._queue.snapshot(), capacity=self._queue.depth
            ),
            "jobs": {"submitted": submitted, **states, **finished},
            "wall_time_total": round(wall_total, 6),
            "opt_cache": opt_cache.snapshot(),
            "instances": self._instances.stats(),
            "results": self._store.stats(),
        }

    # -- execution ----------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            job_id = self._queue.get()
            if job_id is None:
                return
            with self._cv:
                job = self._jobs.get(job_id)
                if job is None:
                    continue
                if job.cancel_event.is_set():
                    self._finish_locked(job, "cancelled")
                    continue
                job.state = "running"
            self._execute(job)

    def _execute(self, job: Job) -> None:
        start = time.monotonic()
        reports: list[dict] = []
        state, error = "completed", None
        try:
            for unit in self._units(job.parsed):
                self._checkpoint(job, start)
                reports.append(unit())
        except _JobCancelled:
            state = "cancelled"
        except _JobTimeout as exc:
            state, error = "failed", str(exc)
        except Exception as exc:  # noqa: BLE001 — a job must never kill its worker
            state, error = "failed", f"{type(exc).__name__}: {exc}"
        wall = time.monotonic() - start
        with self._cv:
            job.wall_time = round(wall, 6)
            if state == "completed":
                job.reports = reports
            self._finish_locked(job, state, error)

    def _units(self, parsed: ParsedJob):
        """Instance-major unit thunks, in the batch runners' order.

        One unit is one ``instance x algorithm`` (solve) or ``instance
        x spec`` (simulate) run — exactly the serial iteration order of
        ``solve_many``/``simulate_many``, so the concatenated reports
        match the direct batch output.
        """
        for ref in parsed.instances:
            meta, graph = ref.resolve(self._instances)
            if parsed.kind == "solve":
                for name in parsed.algorithms:
                    yield lambda g=graph, n=name, m=meta: run_report_to_dict(
                        solve(g, n, parsed.config, meta=m)
                    )
            else:
                for spec in parsed.specs:
                    yield lambda g=graph, s=spec, m=meta: sim_report_to_dict(
                        simulate(g, s, meta=m)
                    )

    def _checkpoint(self, job: Job, start: float) -> None:
        """Cooperative cancellation + timeout, between units."""
        if job.cancel_event.is_set():
            raise _JobCancelled()
        if job.timeout is None:
            return
        elapsed = time.monotonic() - start
        if elapsed >= job.timeout:
            raise _JobTimeout(
                f"timed out after {elapsed:.3f}s "
                f"(limit {job.timeout}s, cooperative between units)"
            )

    def _finish_locked(self, job: Job, state: str, error: str | None = None) -> None:
        """Transition to a terminal state and hand off to the store.

        Caller holds ``self._cv``.
        """
        job.state = state
        job.error = error
        self._store.put(job.id, {"job": job.status(), "reports": job.reports})
        self._journal_clear(job.id)
        del self._jobs[job.id]
        self._finished[state] += 1
        self._wall_total += job.wall_time
        self._cv.notify_all()
