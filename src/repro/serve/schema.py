"""Wire schema: parse a job-submission payload into an executable plan.

The schema deliberately reuses the repo's existing JSON round-trips —
``config`` is :func:`repro.io.run_config_from_dict`'s shape, simulate
specs are :func:`repro.io.sim_spec_from_dict`'s shape, inline graphs
are :func:`repro.io.graph_from_dict`'s shape — and the CLI's shared
helpers (:func:`repro.api.config.run_config_from_options`,
:func:`repro.api.config.parse_faults`), so the serve front door and the
batch CLI accept the same vocabulary and cannot drift.

A solve job::

    {"kind": "solve",
     "instances": [{"family": "fan", "size": 20, "seed": 0},
                   {"graph": {"nodes": [...], "edges": [...]}}],
     "algorithms": ["d2", "greedy"],
     "validate": "ratio", "solver": "bnb",      # flat CLI-style options
     "timeout": 30.0}

A simulate job::

    {"kind": "simulate",
     "instances": [{"family": "tree", "size": 15}],
     "specs": [{"algorithm": "d2", "model": "congest", "budget": 8,
                "faults": "drop=0.1,crash=0+4"}]}

Every validation failure raises :class:`SpecError`, which the HTTP
layer answers with ``400`` and a JSON error body — capability checks
(unknown algorithm, unsupported mode, no engine protocol) run here, at
submission time, so a bad spec never occupies a queue slot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple

from repro.api.config import (
    RunConfig,
    parse_byzantine,
    parse_churn,
    parse_faults,
    run_config_from_options,
)
from repro.api.registry import (
    UnknownAlgorithmError,
    UnsupportedModeError,
    get_algorithm,
)
from repro.api.simulation import SimulationSpec
from repro.graphs.families import FAMILIES
from repro.graphs.kernel import KernelWire, kernel_for
from repro.io import (
    byzantine_plan_to_dict,
    churn_plan_to_dict,
    fault_plan_to_dict,
    graph_from_dict,
    run_config_from_dict,
    sim_spec_from_dict,
)
from repro.serve.instances import InstanceCache, wire_digest

KINDS = ("solve", "simulate")

#: Flat CLI-style config fields accepted at the top level of a solve job.
FLAT_CONFIG_FIELDS = ("simulate", "validate", "solver", "opt_cache", "seed")


class SpecError(ValueError):
    """A job payload the schema rejects (HTTP 400)."""


class FamilyRef(NamedTuple):
    """A generated instance: resolved through the resident cache."""

    family: str
    size: int
    seed: int

    def resolve(self, cache: InstanceCache):
        return cache.resolve_family(self.family, self.size, self.seed)


class WireRef(NamedTuple):
    """An inline graph, shipped as a KernelWire CSR snapshot."""

    digest: str
    wire: KernelWire
    meta: dict

    def resolve(self, cache: InstanceCache):
        return cache.resolve_wire(self.digest, self.wire, self.meta)


@dataclass(frozen=True)
class ParsedJob:
    """A validated, executable job plan (what the worker pool runs)."""

    kind: str
    instances: tuple
    """``FamilyRef``/``WireRef`` entries, in submission order."""
    algorithms: tuple[str, ...] = ()
    """Solve jobs: registered algorithm names, in submission order."""
    config: RunConfig | None = None
    """Solve jobs: the run configuration."""
    specs: tuple[SimulationSpec, ...] = ()
    """Simulate jobs: engine specs, in submission order."""
    timeout: float | None = None
    """Per-job execution budget in seconds (``None``: service default)."""

    @property
    def task_count(self) -> int:
        """Instance-major unit count (the cancellation granularity)."""
        per_instance = len(self.algorithms) if self.kind == "solve" else len(self.specs)
        return len(self.instances) * per_instance


def parse_job(payload: object) -> ParsedJob:
    """Validate a submission payload; raises :class:`SpecError`."""
    if not isinstance(payload, dict):
        raise SpecError("job spec must be a JSON object")
    kind = payload.get("kind", "solve")
    if kind not in KINDS:
        raise SpecError(f"unknown job kind {kind!r}; choose from {KINDS}")
    instances = _parse_instances(payload.get("instances"))
    timeout = _parse_timeout(payload.get("timeout"))
    if kind == "solve":
        algorithms = _parse_algorithms(payload.get("algorithms"))
        config = _parse_run_config(payload)
        for name in algorithms:
            _capability(lambda n=name: get_algorithm(n).check_mode(config.mode))
        return ParsedJob(
            kind=kind,
            instances=instances,
            algorithms=algorithms,
            config=config,
            timeout=timeout,
        )
    raw_specs = payload.get("specs")
    if raw_specs is None:
        raw_specs = payload.get("spec")
    specs = _parse_sim_specs(raw_specs)
    for spec in specs:
        _capability(lambda s=spec: get_algorithm(s.algorithm).check_engine())
    return ParsedJob(kind=kind, instances=instances, specs=specs, timeout=timeout)


def _capability(check) -> None:
    try:
        check()
    except (UnknownAlgorithmError, UnsupportedModeError) as error:
        raise SpecError(str(error)) from error


def _parse_timeout(value: object) -> float | None:
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)) or value < 0:
        raise SpecError(f"timeout must be a non-negative number, got {value!r}")
    return float(value)


def _parse_instances(raw: object) -> tuple:
    if not isinstance(raw, list) or not raw:
        raise SpecError("'instances' must be a non-empty list")
    return tuple(_parse_instance(spec) for spec in raw)


def _parse_instance(spec: object):
    if not isinstance(spec, dict):
        raise SpecError(f"instance spec must be an object, got {spec!r}")
    if "family" in spec:
        family = spec["family"]
        if family not in FAMILIES:
            raise SpecError(
                f"unknown family {family!r}; choose from {sorted(FAMILIES)}"
            )
        size = spec.get("size")
        if isinstance(size, bool) or not isinstance(size, int):
            raise SpecError(f"family instance needs an integer 'size', got {size!r}")
        seed = spec.get("seed", 0)
        if isinstance(seed, bool) or not isinstance(seed, int):
            raise SpecError(f"instance 'seed' must be an integer, got {seed!r}")
        return FamilyRef(family, size, seed)
    if "graph" in spec:
        meta = spec.get("meta", {})
        if not isinstance(meta, dict):
            raise SpecError(f"instance 'meta' must be an object, got {meta!r}")
        try:
            graph = graph_from_dict(spec["graph"])
            wire = kernel_for(graph).to_wire()
        except (KeyError, TypeError, ValueError) as error:
            raise SpecError(f"invalid inline graph: {error}") from error
        return WireRef(wire_digest(wire), wire, meta)
    raise SpecError(
        "instance spec needs 'family' (+ size/seed) or an inline 'graph'"
    )


def _parse_algorithms(raw: object) -> tuple[str, ...]:
    if isinstance(raw, str):
        raw = [raw]
    if not isinstance(raw, list) or not raw:
        raise SpecError("'algorithms' must be a name or a non-empty list of names")
    for name in raw:
        if not isinstance(name, str):
            raise SpecError(f"algorithm names must be strings, got {name!r}")
        _capability(lambda n=name: get_algorithm(n))
    return tuple(raw)


def _parse_run_config(payload: dict) -> RunConfig:
    """``config`` in the io.py round-trip shape, or flat CLI options.

    The flat form mirrors `repro run`/`compare`: ``simulate`` flips the
    mode, and ``validate`` defaults to ``"ratio"`` like the CLI front
    doors (the dict form keeps the round-trip's ``"valid"`` default).
    """
    raw = payload.get("config")
    try:
        if raw is not None:
            if not isinstance(raw, dict):
                raise SpecError(f"'config' must be an object, got {raw!r}")
            return run_config_from_dict(raw)
        options = {
            key: payload[key] for key in FLAT_CONFIG_FIELDS if key in payload
        }
        return run_config_from_options(**options)
    except (TypeError, ValueError) as error:
        raise SpecError(f"invalid run config: {error}") from error


def _parse_sim_specs(raw: object) -> tuple[SimulationSpec, ...]:
    if isinstance(raw, dict):
        raw = [raw]
    if not isinstance(raw, list) or not raw:
        raise SpecError("simulate jobs need 'specs': a non-empty list of spec objects")
    return tuple(_parse_sim_spec(spec) for spec in raw)


def _parse_sim_spec(spec: object) -> SimulationSpec:
    if not isinstance(spec, dict) or "algorithm" not in spec:
        raise SpecError(f"simulate spec must be an object with 'algorithm', got {spec!r}")
    data = dict(spec)
    faults = data.get("faults")
    if isinstance(faults, str):
        # The CLI's fault grammar, shared verbatim (satellite contract:
        # one parser for --faults and the wire field).
        try:
            data["faults"] = fault_plan_to_dict(parse_faults(faults))
        except ValueError as error:
            raise SpecError(f"invalid fault plan {faults!r}: {error}") from error
    churn = data.get("churn")
    if isinstance(churn, str):
        try:
            plan = parse_churn(churn)
            data["churn"] = None if plan is None else churn_plan_to_dict(plan)
        except ValueError as error:
            raise SpecError(f"invalid churn plan {churn!r}: {error}") from error
    byzantine = data.get("byzantine")
    if isinstance(byzantine, str):
        try:
            plan = parse_byzantine(byzantine)
            data["byzantine"] = None if plan is None else byzantine_plan_to_dict(plan)
        except ValueError as error:
            raise SpecError(
                f"invalid byzantine plan {byzantine!r}: {error}"
            ) from error
    try:
        return sim_spec_from_dict(data)
    except (KeyError, TypeError, ValueError) as error:
        raise SpecError(f"invalid simulate spec: {error}") from error
