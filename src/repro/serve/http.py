"""REST/JSON layer: stdlib ``ThreadingHTTPServer`` over the service.

Endpoints (all JSON; see the README "Serving" section for a session):

====== ==================== ===========================================
Method Path                 Meaning
====== ==================== ===========================================
POST   ``/jobs``            submit a job spec -> ``202`` + status
GET    ``/jobs/{id}``       status -> ``200`` (or ``404``)
GET    ``/jobs/{id}/result``reports -> ``200`` bare report list;
                            ``409`` + status while not completed
DELETE ``/jobs/{id}``       cancel -> ``200`` + status (or ``404``)
GET    ``/healthz``         liveness -> ``200``
GET    ``/stats``           queue/cache/result metrics -> ``200``
====== ==================== ===========================================

Error mapping: a payload the schema rejects is ``400`` with
``{"error": ...}``; a full queue is ``429`` with a ``Retry-After``
header (the service's queue-drain estimate); unknown ids are ``404``.
The ``/result`` body for a completed solve job is **exactly** the JSON
:func:`repro.io.save_run_reports` would write for the equivalent
direct ``solve_many`` call (and likewise simulate /
``save_sim_reports``) — byte-identical modulo ``wall_time`` — so a
client can treat the service as a drop-in remote batch runner.

Request handler threads only parse and enqueue; all solver work happens
on the resident worker pool, so a slow job never blocks health checks
or status polls.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.serve.jobs import QueueFullError
from repro.serve.schema import SpecError
from repro.serve.service import ReproService


class ReproHTTPServer(ThreadingHTTPServer):
    """The serve front door: one server bound to one :class:`ReproService`."""

    daemon_threads = True

    def __init__(self, address: tuple, service: ReproService) -> None:
        super().__init__(address, ReproRequestHandler)
        self.service = service


class ReproRequestHandler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    # -- plumbing -----------------------------------------------------------

    @property
    def service(self) -> ReproService:
        return self.server.service

    def log_message(self, format: str, *args) -> None:
        """Quiet by default: the service is driven by tests and benches."""

    def _send_json(
        self, code: int, payload: object, headers: dict | None = None
    ) -> None:
        body = json.dumps(payload, indent=1).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> object:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        try:
            return json.loads(raw or b"null")
        except json.JSONDecodeError as error:
            raise SpecError(f"request body is not valid JSON: {error}") from error

    def _job_id(self, parts: list[str]) -> str:
        return parts[1]

    # -- verbs --------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (stdlib handler API)
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        if parts == ["healthz"]:
            self._send_json(200, self.service.healthz())
        elif parts == ["stats"]:
            self._send_json(200, self.service.stats())
        elif len(parts) == 2 and parts[0] == "jobs":
            self._get_status(self._job_id(parts))
        elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "result":
            self._get_result(self._job_id(parts))
        else:
            self._send_json(404, {"error": f"no such resource: {self.path}"})

    def do_POST(self) -> None:  # noqa: N802
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        if parts != ["jobs"]:
            self._send_json(404, {"error": f"no such resource: {self.path}"})
            return
        try:
            status = self.service.submit(self._read_json())
        except SpecError as error:
            self._send_json(400, {"error": str(error)})
            return
        except QueueFullError as error:
            self._send_json(
                429,
                {"error": str(error), "retry_after": error.retry_after},
                headers={"Retry-After": str(error.retry_after)},
            )
            return
        self._send_json(
            202, status, headers={"Location": f"/jobs/{status['id']}"}
        )

    def do_DELETE(self) -> None:  # noqa: N802
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        if len(parts) == 2 and parts[0] == "jobs":
            status = self.service.cancel(self._job_id(parts))
            if status is None:
                self._send_json(404, {"error": f"unknown job {parts[1]!r}"})
            else:
                self._send_json(200, status)
        else:
            self._send_json(404, {"error": f"no such resource: {self.path}"})

    # -- endpoint bodies ----------------------------------------------------

    def _get_status(self, job_id: str) -> None:
        status = self.service.status(job_id)
        if status is None:
            self._send_json(404, {"error": f"unknown job {job_id!r}"})
        else:
            self._send_json(200, status)

    def _get_result(self, job_id: str) -> None:
        record = self.service.result(job_id)
        if record is None:
            self._send_json(404, {"error": f"unknown job {job_id!r}"})
            return
        status = record["job"]
        if status["state"] != "completed":
            self._send_json(
                409,
                {
                    "error": f"job {job_id} is {status['state']}, not completed",
                    "job": status,
                },
            )
            return
        # The bare report list: byte-compatible with save_run_reports /
        # save_sim_reports output for the equivalent direct batch call.
        self._send_json(200, record["reports"])
