"""Resident instance cache: the strong references that keep caches warm.

Every derived cache in the repo — the :func:`repro.graphs.kernel.kernel_for`
kernel cache, ball-mask arenas, the exact-OPT cache — is weak-keyed by
the ``nx.Graph`` object, so residency is precisely "someone holds a
strong reference to the graph".  This module is that someone: an LRU
map from a canonical instance key to the built graph, shared by every
worker thread of one :class:`~repro.serve.service.ReproService`.

Keys are canonical so repeat submissions resolve to the *same object*:

* family instances — ``("family", name, size, seed)``; the generators
  are deterministic, so equal keys mean equal graphs;
* inline graphs — ``("wire", digest)`` where the digest hashes the
  :class:`~repro.graphs.kernel.KernelWire` CSR bytes; two submissions
  of the same graph JSON produce the same wire and share one resident
  rebuild.

Evicting an entry (capacity bound) drops the strong reference, which
releases the kernel and every derived cache for that instance — the
service's memory bound is this cache's capacity.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

import networkx as nx

from repro.graphs.families import get_family

# wire_digest lives with the wire format now (the sweep layer needs it
# too); re-exported here because it grew up as serve vocabulary.
from repro.graphs.kernel import KernelWire, graph_from_wire, wire_digest  # noqa: F401

InstanceKey = tuple


class InstanceCache:
    """Thread-safe LRU of resolved instances (strong graph references)."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("instance cache capacity must be positive")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[InstanceKey, tuple[dict, nx.Graph]]" = OrderedDict()
        self._hits = 0
        self._misses = 0

    def resolve_family(
        self, family: str, size: int, seed: int
    ) -> tuple[dict, nx.Graph]:
        """The resident ``(meta, graph)`` for a generated family instance."""
        key: InstanceKey = ("family", family, size, seed)
        meta = {"family": family, "size": size, "seed": seed}
        return self._resolve(key, meta, lambda: get_family(family).make(size, seed))

    def resolve_wire(
        self, digest: str, wire: KernelWire, meta: dict
    ) -> tuple[dict, nx.Graph]:
        """The resident ``(meta, graph)`` for an inline-graph snapshot.

        The rebuild pre-seeds the kernel cache
        (:func:`~repro.graphs.kernel.graph_from_wire`), so even the cold
        path never re-derives the CSR from adjacency dicts.
        """
        key: InstanceKey = ("wire", digest)
        return self._resolve(key, dict(meta), lambda: graph_from_wire(wire))

    def _resolve(self, key: InstanceKey, meta: dict, build) -> tuple[dict, nx.Graph]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self._hits += 1
                return entry
            # Build under the lock: graph construction is linear in the
            # instance, and holding the lock guarantees one resident
            # object per key (two racing builders would each keep a
            # private graph and split the kernel/OPT caches).
            self._misses += 1
            entry = (meta, build())
            self._entries[key] = entry
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
            return entry

    def stats(self) -> dict:
        with self._lock:
            return {
                "resident": len(self._entries),
                "capacity": self.capacity,
                "hits": self._hits,
                "misses": self._misses,
            }
