"""`repro serve` — the resident job-queue service front door.

Every other entry point is a fresh CLI process, so the expensive state
the performance tiers built — the :func:`repro.graphs.kernel.kernel_for`
weak cache, per-kernel ball-mask arenas, and the exact-OPT cache
(:mod:`repro.solvers.opt_cache`) — dies with each invocation.  This
package keeps it alive: a stdlib-only HTTP/JSON service
(:class:`ReproHTTPServer`) in front of a bounded job queue and a
resident thread pool (:class:`ReproService`) that executes
``solve_many``/``simulate_many`` specs while instances stay resident in
an LRU :class:`~repro.serve.instances.InstanceCache`, so the second job
on the same instance family reuses warm kernels and cached optima
instead of rebuilding them.

API surface (see the README "Serving" section for a `curl` session)::

    POST   /jobs            submit a solve/simulate job spec
    GET    /jobs/{id}        job status (state, error, wall_time)
    GET    /jobs/{id}/result the report payload (byte-identical to the
                             direct solve_many/simulate_many JSON,
                             modulo ``wall_time``)
    DELETE /jobs/{id}        cancel (mid-queue, or cooperatively mid-run)
    GET    /healthz          liveness
    GET    /stats            queue/cache/result metrics

Threading and invalidation contract
-----------------------------------

Workers are **threads**, not processes, precisely so they share one
kernel cache and one OPT cache.  That is safe under the repo's caching
contract because of three properties, all of which this package must
preserve:

* **Resident graphs are never mutated.**  Jobs only read the graphs the
  :class:`~repro.serve.instances.InstanceCache` holds; nothing in the
  serve path calls a mutating ``nx.Graph`` method, so
  :func:`~repro.graphs.kernel.invalidate_kernel` is never required.
  Any future serve feature that mutates a resident graph must either
  invalidate (and accept losing residency for that instance) or copy.
* **Kernels and cached optima are immutable once built.**  Two workers
  that race on a cold instance may both build the kernel or both solve
  OPT; the loser's store overwrites the winner's with an identical
  value (all backends are deterministic), so duplicated work is the
  worst case — never a wrong answer.  The hit/miss counters themselves
  are lock-guarded (:func:`repro.solvers.opt_cache.snapshot`).
* **Residency is exactly the strong reference.**  ``kernel_for`` and
  the OPT cache are weak-keyed; they stay warm only while the instance
  cache holds the graph.  Evicting an instance (LRU capacity) releases
  every derived cache with it, which is the intended memory bound.

Inline graphs cross from the HTTP handler into the worker pool as
compact :class:`~repro.graphs.kernel.KernelWire` CSR snapshots (the
batch runner's wire format); the first worker to touch one rebuilds
graph + kernel in a single linear pass via
:func:`~repro.graphs.kernel.graph_from_wire`, after which the rebuilt
graph is resident like any family instance.
"""

from repro.serve.http import ReproHTTPServer
from repro.serve.jobs import JOB_STATES, QueueFullError
from repro.serve.schema import SpecError
from repro.serve.service import ReproService

__all__ = [
    "JOB_STATES",
    "QueueFullError",
    "ReproHTTPServer",
    "ReproService",
    "SpecError",
]
