"""Command-line interface: run the paper's algorithms on generated graphs.

Everything is driven by the :mod:`repro.api` registry — the
``--algorithm`` choices, the capability checks, and the ``compare``
sweep are all derived from the registered :class:`~repro.api.AlgorithmSpec`
records, so a newly registered algorithm appears here automatically.

Examples::

    python -m repro run --family fan --size 20 --algorithm algorithm1
    python -m repro run --family ladder --size 24 --algorithm algorithm1 --simulate
    python -m repro run --family fan --size 16 --algorithm d2_vc --json
    python -m repro compare --family outerplanar --size 18 --seed 3 --workers 2
    python -m repro compare --family fan --size 16 --problem mvc
    python -m repro simulate --family tree --size 15 --algorithm d2
    python -m repro simulate --family tree --size 8 --algorithm degree_two --model congest
    python -m repro simulate --family fan --size 12 --algorithm d2 --faults drop=0.2,crash=0 --json
    python -m repro sweep run --dir runs/night --families fan,tree --sizes 14,18 --algorithms greedy,d2
    python -m repro sweep resume --dir runs/night
    python -m repro sweep status --dir runs/night --json
    python -m repro algorithms
    python -m repro families
    python -m repro report --scale tiny
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import warnings

from repro.analysis.tables import format_table
from repro.api import (
    RunConfig,
    SimulationSpec,
    UnsupportedModeError,
    algorithm_names,
    engine_algorithm_names,
    list_algorithms,
    simulate,
    solve,
    solve_many,
)
from repro.api.config import (
    SOLVER_BACKENDS,
    parse_byzantine,
    parse_churn,
    parse_faults,
    run_config_from_options,
)
from repro.api.simulation import ID_SCHEMES
from repro.graphs.families import FAMILIES, get_family
from repro.io import run_report_to_dict, sim_report_to_dict
from repro.local_model.engine import MODELS, TRACE_POLICIES, MessageTooLargeError


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one algorithm on one instance")
    run.add_argument("--family", required=True, choices=sorted(FAMILIES))
    run.add_argument("--size", type=int, default=20)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--algorithm", required=True, choices=algorithm_names())
    run.add_argument(
        "--simulate",
        action="store_true",
        help="true per-node message-passing execution (capability-checked "
        "against the registry; unsupported algorithms are an error)",
    )
    run.add_argument("--json", action="store_true", help="emit the RunReport as JSON")

    compare = sub.add_parser("compare", help="run every algorithm on one instance")
    compare.add_argument("--family", required=True, choices=sorted(FAMILIES))
    compare.add_argument("--size", type=int, default=20)
    compare.add_argument("--seed", type=int, default=0)
    compare.add_argument("--problem", default="mds", choices=["mds", "mvc"])
    compare.add_argument(
        "--workers", type=int, default=None,
        help="process-parallel runs (deterministic ordering)",
    )
    compare.add_argument(
        "--solver", default="milp", choices=list(SOLVER_BACKENDS),
        help="exact backend for the shared ratio denominator "
        "(MDS only; MVC optima always use MILP)",
    )
    compare.add_argument(
        "--no-opt-cache", action="store_true",
        help="re-solve the exact optimum per run instead of sharing the "
        "per-instance cache (numbers are identical either way)",
    )
    compare.add_argument("--json", action="store_true", help="emit RunReports as JSON")

    simulate_p = sub.add_parser(
        "simulate",
        help="run an algorithm's message-passing protocol on the simulation engine",
    )
    simulate_p.add_argument("--family", required=True, choices=sorted(FAMILIES))
    simulate_p.add_argument("--size", type=int, default=20)
    simulate_p.add_argument(
        "--seed", type=int, default=0,
        help="instance seed; also drives the fault RNG and shuffled ids",
    )
    simulate_p.add_argument(
        "--algorithm", required=True, choices=engine_algorithm_names(),
        help="engine-capable algorithms only (see `repro algorithms`)",
    )
    simulate_p.add_argument(
        "--model", default="local", choices=list(MODELS),
        help="round model: LOCAL (unbounded), CONGEST (budgeted messages), "
        "async (seeded delivery delays), or adversarial (worst-case "
        "delays and reordering)",
    )
    simulate_p.add_argument(
        "--budget", type=int, default=4,
        help="CONGEST cap in identifier units per message",
    )
    simulate_p.add_argument(
        "--delay", type=int, default=2,
        help="per-message delay bound for --model async/adversarial",
    )
    simulate_p.add_argument("--max-rounds", type=int, default=10_000)
    simulate_p.add_argument(
        "--trace", default="stats", choices=list(TRACE_POLICIES),
        help="full per-round stats, aggregate totals, or no accounting",
    )
    simulate_p.add_argument(
        "--ids", default="identity", choices=list(ID_SCHEMES),
        help="identifier assignment scheme",
    )
    simulate_p.add_argument(
        "--faults", default=None, metavar="PLAN",
        help="fault plan, e.g. 'drop=0.2', 'drop=0.1,crash=0+4', or "
        "round-scoped 'crash=4@3' (vertex 4 crashes at round 3)",
    )
    simulate_p.add_argument(
        "--churn", default=None, metavar="PLAN",
        help="churn plan: 'rate=<p>,until=<r>' for seeded random edge "
        "flips and/or events 'add:u-v@r', 'del:u-v@r', 'join:v[-anchor]@r', "
        "'leave:v@r'",
    )
    simulate_p.add_argument(
        "--byzantine", default=None, metavar="PLAN",
        help="byzantine plan: '<behavior>=<v>+<v>' parts, behaviors "
        "silent/babble/equivocate/lie, e.g. 'babble=0+3,lie=7'",
    )
    simulate_p.add_argument(
        "--json", action="store_true", help="emit the SimReport as JSON"
    )

    lint = sub.add_parser(
        "lint",
        help="run the project's contract-enforcing static analysis "
        "(kernel invalidation, derived caches, determinism, registry "
        "hygiene, bitset discipline)",
    )
    lint.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to check (default: src/repro)",
    )
    lint.add_argument(
        "--select", default=None, metavar="RULES",
        help="comma-separated rule ids to run (e.g. RPR001,RPR003); "
        "default: all",
    )
    lint.add_argument(
        "--json", action="store_true",
        help="emit findings as JSON (the CI gate's format)",
    )
    lint.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )

    serve = sub.add_parser(
        "serve",
        help="run the resident job-queue service (REST/JSON API over "
        "solve_many/simulate_many; kernels and OPT caches stay warm "
        "across requests)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8008)
    serve.add_argument(
        "--workers", type=int, default=2,
        help="resident worker threads (threads share the kernel/OPT caches)",
    )
    serve.add_argument(
        "--queue-depth", type=int, default=32,
        help="bounded job queue; a full queue answers 429 + Retry-After",
    )
    serve.add_argument(
        "--job-timeout", type=float, default=None, metavar="SECONDS",
        help="default per-job execution budget (cooperative cancellation "
        "between instance x algorithm units; jobs may override it)",
    )
    serve.add_argument(
        "--result-capacity", type=int, default=256,
        help="finished jobs kept in the in-memory ring buffer",
    )
    serve.add_argument(
        "--result-dir", default=None, metavar="DIR",
        help="spill evicted results to this directory so they survive "
        "ring-buffer recycling",
    )
    serve.add_argument(
        "--journal-dir", default=None, metavar="DIR",
        help="durable job journal: accepted jobs are persisted here and "
        "re-enqueued on the next start, so queued work survives a "
        "service crash",
    )

    sweep = sub.add_parser(
        "sweep",
        help="crash-safe sharded sweeps: checkpointed shards with "
        "retry/backoff, poison-shard quarantine, and resume-after-crash",
    )
    sweep_sub = sweep.add_subparsers(dest="sweep_command", required=True)

    def _dispatch_options(p):
        p.add_argument(
            "--workers", type=int, default=2,
            help="pool worker processes executing shards",
        )
        p.add_argument(
            "--max-attempts", type=int, default=3,
            help="attempts before a shard is quarantined",
        )
        p.add_argument(
            "--shard-timeout", type=float, default=None, metavar="SECONDS",
            help="per-shard wall budget; a hung shard abandons the pool "
            "and retries",
        )
        p.add_argument("--json", action="store_true", help="emit the result as JSON")

    sweep_run = sweep_sub.add_parser(
        "run", help="plan a new sharded sweep under --dir and execute it"
    )
    sweep_run.add_argument(
        "--dir", required=True, dest="run_dir", metavar="DIR",
        help="run directory (manifest, checkpoints, merged reports)",
    )
    sweep_run.add_argument(
        "--families", default="fan",
        help="comma-separated graph families (cross product with sizes/seeds)",
    )
    sweep_run.add_argument("--sizes", default="16", help="comma-separated sizes")
    sweep_run.add_argument("--seeds", default="0", help="comma-separated seeds")
    sweep_run.add_argument(
        "--algorithms", default=None,
        help="comma-separated algorithms (default: every MDS algorithm)",
    )
    sweep_run.add_argument(
        "--solver", default="milp", choices=list(SOLVER_BACKENDS),
        help="exact backend for ratio denominators",
    )
    sweep_run.add_argument(
        "--shard-size", type=int, default=1,
        help="instances per shard (each shard runs every algorithm)",
    )
    sweep_run.add_argument(
        "--sweep-seed", type=int, default=0,
        help="sweep seed (drives backoff jitter; recorded in the manifest)",
    )
    _dispatch_options(sweep_run)

    sweep_resume = sweep_sub.add_parser(
        "resume",
        help="finish an interrupted sweep: verify checkpoints, run the rest",
    )
    sweep_resume.add_argument(
        "--dir", required=True, dest="run_dir", metavar="DIR"
    )
    _dispatch_options(sweep_resume)

    sweep_status = sweep_sub.add_parser(
        "status", help="report a run directory's progress without executing"
    )
    sweep_status.add_argument(
        "--dir", required=True, dest="run_dir", metavar="DIR"
    )
    sweep_status.add_argument(
        "--json", action="store_true", help="emit the status as JSON"
    )

    algorithms = sub.add_parser("algorithms", help="list registered algorithms")
    algorithms.add_argument("--problem", default=None, choices=["mds", "mvc"])
    algorithms.add_argument("--json", action="store_true", help="emit specs as JSON")

    sub.add_parser("families", help="list available graph families")

    report = sub.add_parser("report", help="regenerate every experiment table")
    report.add_argument("--scale", default="tiny", choices=["tiny", "small", "medium"])
    report.add_argument(
        "--workers", type=int, default=None,
        help="process-parallel Table 1 regeneration",
    )
    report.add_argument(
        "--solver", default="milp", choices=list(SOLVER_BACKENDS),
        help="exact backend for every ratio denominator in the report",
    )
    report.add_argument(
        "--no-opt-cache", action="store_true",
        help="re-solve exact optima per run instead of sharing the "
        "per-instance cache",
    )
    return parser


def _instance(args):
    graph = get_family(args.family).make(args.size, args.seed)
    meta = {"family": args.family, "size": args.size, "seed": args.seed}
    return graph, meta


def _cmd_run(args) -> int:
    graph, meta = _instance(args)
    config = run_config_from_options(simulate=args.simulate)
    try:
        report = solve(graph, args.algorithm, config, meta=meta)
    except UnsupportedModeError as error:
        print(f"error: {error}", file=sys.stderr)
        print(
            "hint: `python -m repro algorithms` lists per-algorithm "
            "capability flags",
            file=sys.stderr,
        )
        return 2
    if args.json:
        print(json.dumps(run_report_to_dict(report), indent=1))
        return 0 if report.valid else 1
    result = report.result
    print(f"family={args.family} n={graph.number_of_nodes()} m={graph.number_of_edges()}")
    print(f"algorithm={result.name} rounds={result.rounds}")
    print(f"solution ({result.size} vertices): {sorted(result.solution, key=repr)}")
    print(
        f"optimum: {report.optimum_size}  ratio: {report.ratio:.3f}  "
        f"valid: {report.valid}"
    )
    if result.phases:
        print(f"phases: {result.phase_sizes()}")
    return 0 if report.valid else 1


def _display_sorted(vertices) -> list:
    """Sort a vertex set naturally for display, repr-sorting mixed types."""
    try:
        return sorted(vertices)
    except TypeError:
        return sorted(vertices, key=repr)


def _cmd_simulate(args) -> int:
    graph, meta = _instance(args)
    try:
        faults = parse_faults(args.faults)
        spec = SimulationSpec(
            algorithm=args.algorithm,
            model=args.model,
            budget=args.budget,
            max_rounds=args.max_rounds,
            trace=args.trace,
            seed=args.seed,
            faults=faults,
            ids=args.ids,
            churn=parse_churn(args.churn),
            byzantine=parse_byzantine(args.byzantine),
            delay=args.delay,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    try:
        report = simulate(graph, spec, meta=meta)
    except ValueError as error:
        # e.g. a crash vertex that is not in the generated graph
        print(f"error: {error}", file=sys.stderr)
        return 2
    except MessageTooLargeError as error:
        print(f"error: {error}", file=sys.stderr)
        print(
            "hint: raise --budget, or pick a CONGEST-fit protocol "
            "(`python -m repro algorithms` lists capability flags)",
            file=sys.stderr,
        )
        return 1
    except RuntimeError as error:
        # the engine's round-limit trip ("did not halt within N rounds")
        print(f"error: {error}", file=sys.stderr)
        print("hint: raise --max-rounds", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(sim_report_to_dict(report), indent=1))
        return 0
    print(
        f"family={args.family} n={graph.number_of_nodes()} "
        f"m={graph.number_of_edges()} model={report.model}"
    )
    print(
        f"algorithm={report.algorithm} rounds={report.rounds} "
        f"messages={report.total_messages} payload={report.total_payload}"
    )
    if report.dropped_messages or report.crashed:
        print(
            f"faults: dropped={report.dropped_messages} "
            f"swallowed={report.swallowed_messages} "
            f"crashed={_display_sorted(report.crashed)}"
        )
    if report.churn_events or report.delayed_messages:
        print(
            f"adversary: churn_events={report.churn_events} "
            f"churn_lost={report.churn_lost_messages} "
            f"delayed={report.delayed_messages}"
        )
    for v in sorted(report.suspicion, key=repr):
        tallies = report.suspicion[v]
        print(
            f"byzantine {v}: behavior={tallies['behavior']} "
            f"deviations={tallies['deviations']} "
            f"detections={tallies['detections']}"
        )
    if report.failed:
        print(f"failed under attack: {_display_sorted(report.failed)}")
    if report.timed_out:
        print(f"timed out: honest nodes did not halt within {args.max_rounds} rounds")
    chosen = _display_sorted(report.chosen)
    print(f"halted {report.halted}/{graph.number_of_nodes()} nodes")
    print(f"chosen ({len(chosen)} vertices): {chosen}")
    if args.trace == "full" and report.round_stats:
        for stats in report.round_stats:
            print(
                f"  round {stats.round_index}: {stats.messages} messages, "
                f"{stats.payload_units} payload units"
            )
    return 0


def _cmd_compare(args) -> int:
    if args.problem == "mvc" and args.solver == "bnb":
        print(
            "error: no pure-Python MVC solver is shipped; "
            "--problem mvc requires --solver milp",
            file=sys.stderr,
        )
        return 2
    graph, meta = _instance(args)
    # The per-instance OPT cache inside solve_many shares one exact
    # solve across every algorithm — no hand-rolled reuse needed.
    config = run_config_from_options(
        solver=args.solver, opt_cache=not args.no_opt_cache
    )
    reports = solve_many(
        [(meta, graph)],
        algorithm_names(args.problem),
        config,
        workers=args.workers,
    )
    if args.json:
        print(json.dumps([run_report_to_dict(r) for r in reports], indent=1))
        return 0
    rows = [
        [r.algorithm, r.size, r.ratio, r.rounds, r.valid]
        for r in reports
    ]
    optimum = reports[0].optimum_size if reports else 0
    print(f"family={args.family} n={graph.number_of_nodes()} opt={optimum}")
    print(format_table(["algorithm", "size", "ratio", "rounds", "valid"], rows))
    return 0


def _cmd_lint(args) -> int:
    # Imported here so `repro run`/`simulate` never pay for the linter.
    from repro.lint import all_rules, lint_paths

    if args.list_rules:
        rows = [[rule_id, summary] for rule_id, summary in all_rules().items()]
        print(format_table(["rule", "checks"], rows))
        return 0
    select = None
    if args.select is not None:
        select = [part.strip() for part in args.select.split(",") if part.strip()]
        unknown = [rule_id for rule_id in select if rule_id not in all_rules()]
        if unknown:
            print(
                f"error: unknown rule id(s) {', '.join(unknown)}; "
                f"known: {', '.join(all_rules())}",
                file=sys.stderr,
            )
            return 2
    missing = [path for path in args.paths if not os.path.exists(path)]
    if missing:
        print(f"error: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2
    findings = lint_paths(args.paths, select=select)
    if args.json:
        from repro.io import counted_payload

        print(
            json.dumps(
                counted_payload("findings", [f.to_dict() for f in findings]),
                indent=1,
            )
        )
        return 2 if findings else 0
    for finding in findings:
        print(finding.render())
    if findings:
        print(
            f"{len(findings)} finding(s); suppress documented exceptions "
            f"inline with `# repro: ignore[RPRxxx] reason`"
        )
        return 2
    print(f"clean: {', '.join(args.paths)}")
    return 0


def _cmd_serve(args) -> int:
    # Imported here so every other subcommand stays a plain batch tool.
    from repro.serve import ReproHTTPServer, ReproService

    service = ReproService(
        workers=args.workers,
        queue_depth=args.queue_depth,
        job_timeout=args.job_timeout,
        result_capacity=args.result_capacity,
        result_dir=args.result_dir,
        journal_dir=args.journal_dir,
    )
    server = ReproHTTPServer((args.host, args.port), service)
    service.start()
    host, port = server.server_address[:2]
    print(
        f"repro serve listening on http://{host}:{port} "
        f"(workers={args.workers}, queue-depth={args.queue_depth})",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        service.stop()
    return 0


def _split_csv(text: str) -> list[str]:
    return [part.strip() for part in text.split(",") if part.strip()]


def _sweep_result_payload(result) -> dict:
    return {
        "run_dir": str(result.run_dir),
        "kind": result.kind,
        "complete": result.complete,
        "shards": result.total_shards,
        "executed": result.executed,
        "completed": result.completed,
        "quarantined": result.quarantined,
        "retries": result.retries,
        "attempts": result.attempts,
        "errors": result.errors,
        "reports": str(result.reports_path) if result.reports_path else None,
    }


def _print_sweep_result(result, as_json: bool) -> int:
    if as_json:
        print(json.dumps(_sweep_result_payload(result), indent=1))
    else:
        print(
            f"sweep {result.run_dir}: "
            f"{len(result.completed)}/{result.total_shards} shards complete "
            f"({len(result.executed)} executed now, {result.retries} retried)"
        )
        for shard_id in result.quarantined:
            messages = result.errors.get(shard_id, [])
            tail = f": {messages[-1]}" if messages else ""
            print(f"  quarantined {shard_id}{tail}")
        if result.reports_path:
            print(f"  merged reports: {result.reports_path}")
        elif not result.complete:
            print("  incomplete; finish with `repro sweep resume --dir "
                  f"{result.run_dir}`")
    return 0 if result.complete else 1


def _cmd_sweep(args) -> int:
    # Imported here so the batch subcommands never pay for the sweep stack.
    from repro.sweep import (
        CheckpointCorruptError,
        ManifestError,
        SimulatedProcessDeath,
        resume_sweep,
        run_sweep,
        sweep_status,
    )

    try:
        if args.sweep_command == "status":
            status = sweep_status(args.run_dir)
            if args.json:
                print(json.dumps(status, indent=1))
            else:
                print(
                    f"sweep {status['run_dir']} [{status['kind']}]: "
                    f"{len(status['completed'])}/{status['shards']} shards "
                    f"complete, {len(status['pending'])} pending, "
                    f"{len(status['quarantined'])} quarantined, "
                    f"merged={status['merged']}"
                )
                for shard_id, record in status["quarantined"].items():
                    errors = record.get("errors") or ["(no record)"]
                    print(f"  quarantined {shard_id}: {errors[-1]}")
            return 0 if not status["pending"] and not status["quarantined"] else 1

        options = {
            "workers": args.workers,
            "max_attempts": args.max_attempts,
            "shard_timeout": args.shard_timeout,
        }
        if args.sweep_command == "resume":
            return _print_sweep_result(resume_sweep(args.run_dir, **options), args.json)

        instances = []
        for family_name in _split_csv(args.families):
            family = get_family(family_name)
            for size in _split_csv(args.sizes):
                for seed in _split_csv(args.seeds):
                    meta = {
                        "family": family_name,
                        "size": int(size),
                        "seed": int(seed),
                    }
                    instances.append(
                        (meta, family.make(meta["size"], meta["seed"]))
                    )
        algorithms = (
            _split_csv(args.algorithms) if args.algorithms else algorithm_names("mds")
        )
        unknown = [name for name in algorithms if name not in algorithm_names()]
        if unknown:
            print(f"error: unknown algorithm(s): {', '.join(unknown)}", file=sys.stderr)
            return 2
        result = run_sweep(
            instances,
            run_dir=args.run_dir,
            algorithms=algorithms,
            config=run_config_from_options(solver=args.solver),
            shard_size=args.shard_size,
            seed=args.sweep_seed,
            **options,
        )
        return _print_sweep_result(result, args.json)
    except (ManifestError, ValueError, KeyError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except SimulatedProcessDeath as error:
        print(f"error: {error}", file=sys.stderr)
        return 3
    except CheckpointCorruptError as error:
        print(f"error: {error}", file=sys.stderr)
        return 4


def _cmd_algorithms(args) -> int:
    specs = list_algorithms(args.problem)
    if args.json:
        print(json.dumps([spec.describe() for spec in specs], indent=1))
        return 0
    rows = [
        [
            spec.name,
            spec.problem,
            "+".join(spec.modes),
            "yes" if spec.supports_engine else "-",
            spec.guarantee,
            spec.round_complexity,
            spec.assumes,
        ]
        for spec in specs
    ]
    print(
        format_table(
            [
                "algorithm", "problem", "modes", "engine",
                "paper ratio", "rounds", "assumes",
            ],
            rows,
        )
    )
    return 0


def _cmd_families() -> int:
    rows = [
        [family.name, family.table_row, family.minor_free_t or "-"]
        for family in FAMILIES.values()
    ]
    print(format_table(["family", "table-1 row", "K_2,t-free for t >="], rows))
    return 0


def _cmd_report(args) -> int:
    from repro.experiments.report import full_report

    print(
        full_report(
            args.scale,
            workers=args.workers,
            solver=args.solver,
            opt_cache=not args.no_opt_cache,
        )
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "algorithms":
        return _cmd_algorithms(args)
    if args.command == "families":
        return _cmd_families()
    if args.command == "report":
        return _cmd_report(args)
    return 2


def __getattr__(name: str):
    # Deprecation shim: the hand-maintained ALGORITHMS dict is gone; old
    # imports get a registry-derived equivalent (same call shape).
    if name == "ALGORITHMS":
        warnings.warn(
            "repro.cli.ALGORITHMS is deprecated; use repro.api.list_algorithms()"
            " / repro.api.solve() instead",
            DeprecationWarning,
            stacklevel=2,
        )
        def _runner(spec):
            def call(graph, simulate):
                mode = "simulate" if simulate and spec.supports_simulation else "fast"
                return spec.run(graph, RunConfig(mode=mode))
            return call
        return {spec.name: _runner(spec) for spec in list_algorithms("mds")}
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


if __name__ == "__main__":
    sys.exit(main())
