"""Command-line interface: run the paper's algorithms on generated graphs.

Examples::

    python -m repro run --family fan --size 20 --algorithm algorithm1
    python -m repro run --family ladder --size 24 --algorithm d2 --simulate
    python -m repro compare --family outerplanar --size 18 --seed 3
    python -m repro families
    python -m repro report --scale tiny
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.domination import is_dominating_set
from repro.analysis.ratio import measure_ratio
from repro.analysis.tables import format_table
from repro.core.algorithm1 import algorithm1
from repro.core.baselines import degree_two_dominating_set, full_gather_exact, take_all_vertices
from repro.core.d2 import d2_dominating_set
from repro.core.distributed_greedy import distributed_greedy_dominating_set
from repro.core.radii import RadiusPolicy
from repro.graphs.families import FAMILIES, get_family
from repro.solvers.exact import minimum_dominating_set

ALGORITHMS = {
    "algorithm1": lambda g, simulate: algorithm1(
        g, RadiusPolicy.practical(), mode="simulate" if simulate else "fast"
    ),
    "d2": lambda g, simulate: d2_dominating_set(g),
    "degree_two": lambda g, simulate: degree_two_dominating_set(g),
    "greedy": lambda g, simulate: distributed_greedy_dominating_set(g),
    "take_all": lambda g, simulate: take_all_vertices(g),
    "exact": lambda g, simulate: full_gather_exact(g),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one algorithm on one instance")
    run.add_argument("--family", required=True, choices=sorted(FAMILIES))
    run.add_argument("--size", type=int, default=20)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--algorithm", required=True, choices=sorted(ALGORITHMS))
    run.add_argument(
        "--simulate",
        action="store_true",
        help="true per-node message-passing execution (algorithm1 only)",
    )

    compare = sub.add_parser("compare", help="run every algorithm on one instance")
    compare.add_argument("--family", required=True, choices=sorted(FAMILIES))
    compare.add_argument("--size", type=int, default=20)
    compare.add_argument("--seed", type=int, default=0)

    sub.add_parser("families", help="list available graph families")

    report = sub.add_parser("report", help="regenerate every experiment table")
    report.add_argument("--scale", default="tiny", choices=["tiny", "small", "medium"])
    return parser


def _cmd_run(args) -> int:
    graph = get_family(args.family).make(args.size, args.seed)
    result = ALGORITHMS[args.algorithm](graph, args.simulate)
    optimum = minimum_dominating_set(graph)
    report = measure_ratio(graph, result.solution, optimum)
    print(f"family={args.family} n={graph.number_of_nodes()} m={graph.number_of_edges()}")
    print(f"algorithm={result.name} rounds={result.rounds}")
    print(f"solution ({result.size} vertices): {sorted(result.solution, key=repr)}")
    print(f"optimum: {len(optimum)}  ratio: {report.ratio:.3f}  valid: {report.valid}")
    if result.phases:
        print(f"phases: {result.phase_sizes()}")
    return 0 if report.valid else 1


def _cmd_compare(args) -> int:
    graph = get_family(args.family).make(args.size, args.seed)
    optimum = minimum_dominating_set(graph)
    rows = []
    for name in sorted(ALGORITHMS):
        result = ALGORITHMS[name](graph, False)
        report = measure_ratio(graph, result.solution, optimum)
        rows.append([name, result.size, report.ratio, result.rounds, report.valid])
    print(f"family={args.family} n={graph.number_of_nodes()} opt={len(optimum)}")
    print(format_table(["algorithm", "size", "ratio", "rounds", "valid"], rows))
    return 0


def _cmd_families() -> int:
    rows = [
        [family.name, family.table_row, family.minor_free_t or "-"]
        for family in FAMILIES.values()
    ]
    print(format_table(["family", "table-1 row", "K_2,t-free for t >="], rows))
    return 0


def _cmd_report(args) -> int:
    from repro.experiments.report import full_report

    print(full_report(args.scale))
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "families":
        return _cmd_families()
    if args.command == "report":
        return _cmd_report(args)
    return 2


if __name__ == "__main__":
    sys.exit(main())
