"""Command-line interface: run the paper's algorithms on generated graphs.

Everything is driven by the :mod:`repro.api` registry — the
``--algorithm`` choices, the capability checks, and the ``compare``
sweep are all derived from the registered :class:`~repro.api.AlgorithmSpec`
records, so a newly registered algorithm appears here automatically.

Examples::

    python -m repro run --family fan --size 20 --algorithm algorithm1
    python -m repro run --family ladder --size 24 --algorithm algorithm1 --simulate
    python -m repro run --family fan --size 16 --algorithm d2_vc --json
    python -m repro compare --family outerplanar --size 18 --seed 3 --workers 2
    python -m repro compare --family fan --size 16 --problem mvc
    python -m repro algorithms
    python -m repro families
    python -m repro report --scale tiny
"""

from __future__ import annotations

import argparse
import json
import sys
import warnings

from repro.analysis.tables import format_table
from repro.api import (
    RunConfig,
    UnsupportedModeError,
    algorithm_names,
    get_algorithm,
    list_algorithms,
    solve,
    solve_many,
)
from repro.api.config import measured_ratio
from repro.graphs.families import FAMILIES, get_family
from repro.io import run_report_to_dict
from repro.solvers.exact import minimum_dominating_set
from repro.solvers.vc import minimum_vertex_cover


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one algorithm on one instance")
    run.add_argument("--family", required=True, choices=sorted(FAMILIES))
    run.add_argument("--size", type=int, default=20)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--algorithm", required=True, choices=algorithm_names())
    run.add_argument(
        "--simulate",
        action="store_true",
        help="true per-node message-passing execution (capability-checked "
        "against the registry; unsupported algorithms are an error)",
    )
    run.add_argument("--json", action="store_true", help="emit the RunReport as JSON")

    compare = sub.add_parser("compare", help="run every algorithm on one instance")
    compare.add_argument("--family", required=True, choices=sorted(FAMILIES))
    compare.add_argument("--size", type=int, default=20)
    compare.add_argument("--seed", type=int, default=0)
    compare.add_argument("--problem", default="mds", choices=["mds", "mvc"])
    compare.add_argument(
        "--workers", type=int, default=None,
        help="process-parallel runs (deterministic ordering)",
    )
    compare.add_argument("--json", action="store_true", help="emit RunReports as JSON")

    algorithms = sub.add_parser("algorithms", help="list registered algorithms")
    algorithms.add_argument("--problem", default=None, choices=["mds", "mvc"])
    algorithms.add_argument("--json", action="store_true", help="emit specs as JSON")

    sub.add_parser("families", help="list available graph families")

    report = sub.add_parser("report", help="regenerate every experiment table")
    report.add_argument("--scale", default="tiny", choices=["tiny", "small", "medium"])
    report.add_argument(
        "--workers", type=int, default=None,
        help="process-parallel Table 1 regeneration",
    )
    return parser


def _instance(args):
    graph = get_family(args.family).make(args.size, args.seed)
    meta = {"family": args.family, "size": args.size, "seed": args.seed}
    return graph, meta


def _cmd_run(args) -> int:
    graph, meta = _instance(args)
    config = RunConfig(
        mode="simulate" if args.simulate else "fast", validate="ratio"
    )
    try:
        report = solve(graph, args.algorithm, config, meta=meta)
    except UnsupportedModeError as error:
        print(f"error: {error}", file=sys.stderr)
        print(
            "hint: `python -m repro algorithms` lists per-algorithm "
            "capability flags",
            file=sys.stderr,
        )
        return 2
    if args.json:
        print(json.dumps(run_report_to_dict(report), indent=1))
        return 0 if report.valid else 1
    result = report.result
    print(f"family={args.family} n={graph.number_of_nodes()} m={graph.number_of_edges()}")
    print(f"algorithm={result.name} rounds={result.rounds}")
    print(f"solution ({result.size} vertices): {sorted(result.solution, key=repr)}")
    print(
        f"optimum: {report.optimum_size}  ratio: {report.ratio:.3f}  "
        f"valid: {report.valid}"
    )
    if result.phases:
        print(f"phases: {result.phase_sizes()}")
    return 0 if report.valid else 1


def _cmd_compare(args) -> int:
    graph, meta = _instance(args)
    # One exact solve for the shared ratio denominator (validate="ratio"
    # inside solve_many would re-solve the same instance per algorithm).
    if args.problem == "mvc":
        optimum = len(minimum_vertex_cover(graph))
    else:
        optimum = len(minimum_dominating_set(graph))
    config = RunConfig(validate="valid")
    reports = solve_many(
        [(meta, graph)],
        algorithm_names(args.problem),
        config,
        workers=args.workers,
    )
    for report in reports:
        report.optimum_size = optimum
        report.ratio = measured_ratio(report.size, optimum)
        # The ratio fields were computed (against the same deterministic
        # exact optimum solve() would use), so record that level.
        report.config = config.with_(validate="ratio")
    if args.json:
        print(json.dumps([run_report_to_dict(r) for r in reports], indent=1))
        return 0
    rows = [
        [r.algorithm, r.size, r.ratio, r.rounds, r.valid]
        for r in reports
    ]
    print(f"family={args.family} n={graph.number_of_nodes()} opt={optimum}")
    print(format_table(["algorithm", "size", "ratio", "rounds", "valid"], rows))
    return 0


def _cmd_algorithms(args) -> int:
    specs = list_algorithms(args.problem)
    if args.json:
        print(json.dumps([spec.describe() for spec in specs], indent=1))
        return 0
    rows = [
        [
            spec.name,
            spec.problem,
            "+".join(spec.modes),
            spec.guarantee,
            spec.round_complexity,
            spec.assumes,
        ]
        for spec in specs
    ]
    print(
        format_table(
            ["algorithm", "problem", "modes", "paper ratio", "rounds", "assumes"],
            rows,
        )
    )
    return 0


def _cmd_families() -> int:
    rows = [
        [family.name, family.table_row, family.minor_free_t or "-"]
        for family in FAMILIES.values()
    ]
    print(format_table(["family", "table-1 row", "K_2,t-free for t >="], rows))
    return 0


def _cmd_report(args) -> int:
    from repro.experiments.report import full_report

    print(full_report(args.scale, workers=args.workers))
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "algorithms":
        return _cmd_algorithms(args)
    if args.command == "families":
        return _cmd_families()
    if args.command == "report":
        return _cmd_report(args)
    return 2


def __getattr__(name: str):
    # Deprecation shim: the hand-maintained ALGORITHMS dict is gone; old
    # imports get a registry-derived equivalent (same call shape).
    if name == "ALGORITHMS":
        warnings.warn(
            "repro.cli.ALGORITHMS is deprecated; use repro.api.list_algorithms()"
            " / repro.api.solve() instead",
            DeprecationWarning,
            stacklevel=2,
        )
        def _runner(spec):
            def call(graph, simulate):
                mode = "simulate" if simulate and spec.supports_simulation else "fast"
                return spec.run(graph, RunConfig(mode=mode))
            return call
        return {spec.name: _runner(spec) for spec in list_algorithms("mds")}
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


if __name__ == "__main__":
    sys.exit(main())
