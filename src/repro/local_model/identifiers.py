"""Identifier assignment schemes for the LOCAL simulator.

The model grants each processor a unique ``O(log n)``-bit identifier.
Deterministic LOCAL algorithms must work for *every* assignment, so the
test-suite runs the paper's algorithms under several schemes:

* :func:`identity_ids` — vertex label = identifier;
* :func:`shuffled_ids` — a seeded random permutation (adversarial-ish);
* :func:`spread_ids` — non-contiguous identifiers (multiples of a
  stride), checking that nothing assumes ids form ``0..n−1``.
"""

from __future__ import annotations

import random
from typing import Hashable

import networkx as nx

Vertex = Hashable


def identity_ids(graph: nx.Graph) -> dict[Vertex, int]:
    """Assign each integer-labelled vertex its own label as identifier."""
    ids = {}
    for i, v in enumerate(sorted(graph.nodes, key=repr)):
        ids[v] = v if isinstance(v, int) else i
    _check_unique(ids)
    return ids


def shuffled_ids(graph: nx.Graph, seed: int = 0) -> dict[Vertex, int]:
    """Assign a seeded random permutation of ``0..n−1``."""
    vertices = sorted(graph.nodes, key=repr)
    labels = list(range(len(vertices)))
    random.Random(seed).shuffle(labels)
    ids = dict(zip(vertices, labels))
    _check_unique(ids)
    return ids


def spread_ids(graph: nx.Graph, stride: int = 7, offset: int = 13) -> dict[Vertex, int]:
    """Assign non-contiguous identifiers ``offset + stride·i``."""
    if stride < 1:
        raise ValueError("stride must be positive")
    vertices = sorted(graph.nodes, key=repr)
    ids = {v: offset + stride * i for i, v in enumerate(vertices)}
    _check_unique(ids)
    return ids


def _check_unique(ids: dict[Vertex, int]) -> None:
    if len(set(ids.values())) != len(ids):
        raise ValueError("identifier assignment is not injective")
