"""Adversarial scenario plans: dynamic churn and Byzantine nodes.

The fault plans of :mod:`repro.local_model.engine` cover the *benign*
failure corner — seeded message loss and nodes that never start.  This
module holds the genuinely adversarial axis:

* :class:`ChurnPlan` — the graph changes *while the protocol runs*.
  Explicit :class:`ChurnEvent` records (edge add/remove, vertex
  join/leave, keyed by round) and/or a seeded random edge-flip process
  (``rate`` per round up to round ``until``).  The engine applies the
  events between rounds through the kernel's ``invalidate_kernel``
  contract and re-derives ports/adjacency incrementally — under
  ``REPRO_KERNEL_GUARD=1`` every post-churn cache hit re-verifies the
  structural fingerprint, so a stale kernel cannot survive a churn
  round silently.

* :class:`ByzantinePlan` — nodes that run the protocol *wrong on
  purpose*.  Behaviors (cf. the accountability taxonomy of the pod
  consensus line of work, arXiv 2501.14931): ``silent`` suppresses
  every outgoing message, ``babble`` floods every port every round and
  never halts, ``equivocate`` sends *different* payloads to different
  neighbors where the honest protocol would have sent one, and ``lie``
  forwards the honest payloads with the node's identity forged.  The
  engine wraps each Byzantine node's per-node algorithm in
  :class:`ByzantineShim`, which runs the *honest* protocol in shadow
  and corrupts its outbox — so every deviation is counted (suspicion)
  and every corrupted message that actually reaches an honest node is
  tallied (detection), giving the accountability report its per-node
  numbers.

Everything is seeded and consumed in deterministic order, so
adversarial runs reproduce exactly — including across worker processes
(``simulate_many(workers=4)`` stays byte-identical to serial).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Hashable

import networkx as nx

from repro.local_model.algorithm import LocalAlgorithm
from repro.local_model.node import Node, NodeContext

Vertex = Hashable

CHURN_KINDS = ("add_edge", "del_edge", "join", "leave")
BYZANTINE_BEHAVIORS = ("silent", "babble", "equivocate", "lie")

#: Offset added to a Byzantine node's uid to forge its wire identity
#: (``lie``/``babble``).  Large enough to never collide with the
#: identifier schemes the repo ships (identity/shuffled/spread are all
#: bounded by n or small multiples of it).
FAKE_UID_OFFSET = 1_000_000_000


@dataclass(frozen=True)
class ChurnEvent:
    """One topology change, applied before the given round executes.

    * ``add_edge``/``del_edge`` — ``u`` and ``v`` are the endpoints;
    * ``join`` — ``u`` is the new vertex, ``v`` an optional anchor
      neighbor it attaches to (``None`` joins it isolated);
    * ``leave`` — ``u`` departs with all incident edges (``v`` unused).
    """

    round: int
    kind: str
    u: Vertex
    v: Vertex | None = None

    def __post_init__(self) -> None:
        if self.kind not in CHURN_KINDS:
            raise ValueError(
                f"unknown churn kind {self.kind!r}; choose from {CHURN_KINDS}"
            )
        if self.round < 1:
            raise ValueError(f"churn rounds start at 1, got {self.round}")
        if self.kind in ("add_edge", "del_edge"):
            if self.v is None:
                raise ValueError(f"{self.kind} needs both endpoints")
            if self.u == self.v:
                raise ValueError("self-loops are not allowed")
        if self.kind == "leave" and self.v is not None:
            raise ValueError("leave takes a single vertex")


@dataclass(frozen=True)
class ChurnPlan:
    """A seeded schedule of topology changes, keyed by round.

    ``events`` are applied verbatim; ``rate``/``until`` add a random
    edge-flip process on top: each round ``1..until`` independently
    flips one random edge (remove an existing edge or add a missing
    one, evenly) with probability ``rate``, drawn from a RNG seeded by
    the run's seed — so the same (graph, spec) pair always churns the
    same way.  The random process only touches edges; vertex join/leave
    requires explicit events.
    """

    events: tuple = ()
    rate: float = 0.0
    until: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        for event in self.events:
            if not isinstance(event, ChurnEvent):
                raise ValueError(f"churn events must be ChurnEvent, got {event!r}")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"churn rate must be in [0, 1], got {self.rate}")
        if self.until < 0:
            raise ValueError(f"churn until must be >= 0, got {self.until}")
        if self.rate > 0.0 and self.until < 1:
            raise ValueError("churn rate > 0 needs until >= 1")

    @property
    def is_trivial(self) -> bool:
        return not self.events and self.rate == 0.0


@dataclass(frozen=True)
class ByzantinePlan:
    """Which vertices misbehave, and how.

    ``behaviors`` is a tuple of ``(vertex, behavior)`` pairs; behaviors
    come from :data:`BYZANTINE_BEHAVIORS`.  A vertex may appear once.
    """

    behaviors: tuple = ()

    def __post_init__(self) -> None:
        pairs = tuple((v, b) for v, b in self.behaviors)
        object.__setattr__(self, "behaviors", pairs)
        seen = set()
        for vertex, behavior in pairs:
            if behavior not in BYZANTINE_BEHAVIORS:
                raise ValueError(
                    f"unknown byzantine behavior {behavior!r}; "
                    f"choose from {BYZANTINE_BEHAVIORS}"
                )
            if vertex in seen:
                raise ValueError(f"vertex {vertex!r} has two byzantine behaviors")
            seen.add(vertex)

    @property
    def is_trivial(self) -> bool:
        return not self.behaviors

    def as_mapping(self) -> dict:
        return dict(self.behaviors)


def churn_rng(seed: int) -> random.Random:
    """The seeded RNG stream of a run's random churn process (distinct
    from the fault-drop and scheduler streams, so enabling one axis
    never re-pairs another axis's draws)."""
    return random.Random(seed ^ 0x5DEECE66D)


def byzantine_rng(seed: int, uid: int) -> random.Random:
    """The seeded RNG stream one Byzantine node's babble payloads draw
    from — keyed by (run seed, node uid) with pure integer arithmetic,
    so streams are independent per node and identical across worker
    processes (string/tuple hashes are salted per process and must not
    enter seed derivation)."""
    return random.Random((seed ^ 0x2545F491) + uid * 0x100000001B3)


def materialize_churn(
    plan: ChurnPlan, graph: nx.Graph, seed: int
) -> dict[int, tuple[ChurnEvent, ...]]:
    """Resolve a plan against a concrete graph: events grouped by round.

    Explicit events and the seeded random process are merged and
    validated against the *evolving* topology (an event that removes a
    missing edge, re-adds a present one, joins an existing vertex, or
    leaves the last vertex is a ``ValueError`` here, before any round
    runs).  The random process evolves the same simulated node/edge
    sets, so its draws are well-defined even when explicit events
    interleave.
    """
    nodes = set(graph.nodes)
    edges = {_edge_key(u, v) for u, v in graph.edges}
    by_round: dict[int, list[ChurnEvent]] = {}
    for event in plan.events:
        by_round.setdefault(event.round, []).append(event)
    rng = churn_rng(seed) if plan.rate > 0.0 else None

    last_round = max(
        [plan.until if rng is not None else 0]
        + [event.round for event in plan.events]
    )
    out: dict[int, tuple[ChurnEvent, ...]] = {}
    for round_index in range(1, last_round + 1):
        events = list(by_round.get(round_index, ()))
        if rng is not None and round_index <= plan.until:
            if rng.random() < plan.rate:
                events.append(_random_flip(round_index, nodes, edges, rng))
        for event in events:
            _apply_to_sets(event, nodes, edges)
        if events:
            out[round_index] = tuple(events)
    return out


def _edge_key(u: Vertex, v: Vertex) -> tuple:
    return (u, v) if repr(u) <= repr(v) else (v, u)


def _random_flip(
    round_index: int, nodes: set, edges: set, rng: random.Random
) -> ChurnEvent:
    """One seeded edge flip on the evolving topology (remove or add)."""
    ordered = sorted(nodes, key=repr)
    complete = len(ordered) * (len(ordered) - 1) // 2
    remove = bool(edges) and (len(edges) >= complete or rng.random() < 0.5)
    if remove:
        u, v = sorted(edges, key=repr)[rng.randrange(len(edges))]
        return ChurnEvent(round_index, "del_edge", u, v)
    # Rejection-sample a missing pair; the loop terminates because the
    # branch is only taken while some non-edge exists.
    while True:
        u = ordered[rng.randrange(len(ordered))]
        v = ordered[rng.randrange(len(ordered))]
        if u != v and _edge_key(u, v) not in edges:
            return ChurnEvent(round_index, "add_edge", u, v)


def _apply_to_sets(event: ChurnEvent, nodes: set, edges: set) -> None:
    """Validate + apply one event to the simulated node/edge sets."""
    kind, u, v = event.kind, event.u, event.v
    if kind == "add_edge":
        if u not in nodes or v not in nodes:
            raise ValueError(
                f"churn round {event.round}: add_edge {u!r}-{v!r} "
                f"references a vertex not in the graph"
            )
        key = _edge_key(u, v)
        if key in edges:
            raise ValueError(
                f"churn round {event.round}: edge {u!r}-{v!r} already exists"
            )
        edges.add(key)
    elif kind == "del_edge":
        key = _edge_key(u, v)
        if key not in edges:
            raise ValueError(
                f"churn round {event.round}: edge {u!r}-{v!r} does not exist"
            )
        edges.discard(key)
    elif kind == "join":
        if u in nodes:
            raise ValueError(
                f"churn round {event.round}: vertex {u!r} already in the graph"
            )
        if v is not None and v not in nodes:
            raise ValueError(
                f"churn round {event.round}: join anchor {v!r} not in the graph"
            )
        nodes.add(u)
        if v is not None:
            edges.add(_edge_key(u, v))
    else:  # leave
        if u not in nodes:
            raise ValueError(
                f"churn round {event.round}: vertex {u!r} not in the graph"
            )
        if len(nodes) == 1:
            raise ValueError(
                f"churn round {event.round}: cannot remove the last vertex"
            )
        nodes.discard(u)
        for key in [key for key in edges if u in key]:
            edges.discard(key)


def churned_graph(
    graph: nx.Graph, plan: ChurnPlan | None, seed: int, upto_round: int
) -> nx.Graph:
    """The topology after every churn event with ``round <= upto_round``.

    A fresh copy — the input graph is never mutated.  This is how
    degradation metrics recover the *final* graph a report was measured
    against: churn materialization is a pure function of (plan, graph,
    seed), so replaying it up to ``report.rounds`` reproduces exactly
    what the engine ran on.
    """
    final = graph.copy()
    if plan is None or plan.is_trivial:
        return final
    for round_index, events in sorted(materialize_churn(plan, graph, seed).items()):
        if round_index > upto_round:
            break
        for event in events:
            if event.kind == "add_edge":
                final.add_edge(event.u, event.v)
            elif event.kind == "del_edge":
                final.remove_edge(event.u, event.v)
            elif event.kind == "join":
                final.add_node(event.u)
                if event.v is not None:
                    final.add_edge(event.u, event.v)
            else:
                final.remove_node(event.u)
    return final


# -- the Byzantine wrapper ----------------------------------------------------


class _ShadowContext:
    """A :class:`NodeContext` stand-in that captures halt() instead of
    committing it to the node — the honest protocol runs against this,
    and the shim decides what actually goes on the wire."""

    def __init__(self, node: Node):
        self._node = node
        self.outbox: dict[int, Any] = {}
        self.halted = False
        self.output: Any = None

    @property
    def uid(self) -> int:
        return self._node.uid

    @property
    def degree(self) -> int:
        return self._node.degree

    @property
    def inbox(self) -> dict[int, Any]:
        return self._node.inbox

    @property
    def state(self) -> dict[str, Any]:
        return self._node.state

    def send(self, port: int, payload: Any) -> None:
        if not 0 <= port < self._node.degree:
            raise ValueError(f"node {self.uid} has no port {port}")
        self.outbox[port] = payload

    def broadcast(self, payload: Any) -> None:
        for port in range(self._node.degree):
            self.outbox[port] = payload

    def halt(self, output: Any) -> None:
        self.halted = True
        self.output = output


def _forge(payload: Any, uid: int, fake_uid: int) -> Any:
    """Recursively replace the sender's identifier inside a payload.

    Protocol payloads in this repo are tuples/frozensets of small values
    — the forgery walks those containers and swaps every occurrence of
    the real uid for the fake one, which is exactly the
    lying-membership attack: the node participates, but under an
    identity no honest node has.
    """
    if isinstance(payload, int) and not isinstance(payload, bool) and payload == uid:
        return fake_uid
    if isinstance(payload, tuple):
        return tuple(_forge(item, uid, fake_uid) for item in payload)
    if isinstance(payload, (frozenset, set)):
        return frozenset(_forge(item, uid, fake_uid) for item in payload)
    if isinstance(payload, list):
        return [_forge(item, uid, fake_uid) for item in payload]
    return payload


class ByzantineShim(LocalAlgorithm):
    """Runs the honest protocol in shadow; corrupts what goes out.

    The engine reads two things back per acting round: ``deviations``
    (cumulative count of messages suppressed, forged, or fabricated —
    the ground-truth suspicion tally) and ``last_changed`` (the ports
    whose outgoing payload differs from the honest one this round — the
    engine marks those deliveries so receivers count as detections
    when a corrupted message actually lands).
    """

    def __init__(self, inner: LocalAlgorithm, behavior: str, rng: random.Random):
        self.inner = inner
        self.behavior = behavior
        self.rng = rng
        self.inner_halted = False
        self.deviations = 0
        self.last_changed: frozenset[int] = frozenset()

    def on_init(self, ctx: NodeContext) -> None:
        self._act(ctx, init=True)

    def on_round(self, ctx: NodeContext) -> None:
        self._act(ctx, init=False)

    def _act(self, ctx: NodeContext, *, init: bool) -> None:
        node = ctx._node
        honest: dict[int, Any] = {}
        halted = self.inner_halted
        output = None
        if not self.inner_halted:
            shadow = _ShadowContext(node)
            if init:
                self.inner.on_init(shadow)
            else:
                self.inner.on_round(shadow)
            honest = shadow.outbox
            halted = shadow.halted
            output = shadow.output
        outbox, changed = self._corrupt(honest, node)
        for port, payload in outbox.items():
            ctx.send(port, payload)
        self.deviations += len(changed)
        self.last_changed = frozenset(changed)
        if halted:
            if self.behavior == "babble":
                # A babbler never goes quiet: remember the honest halt
                # (so the shadow protocol is not run past its end) but
                # keep the node acting every round.
                self.inner_halted = True
            else:
                ctx.halt(output)

    def _corrupt(self, honest: dict[int, Any], node: Node) -> tuple[dict, set]:
        behavior = self.behavior
        fake_uid = node.uid + FAKE_UID_OFFSET
        if behavior == "silent":
            return {}, set(honest)
        if behavior == "babble":
            outbox = {
                port: ("byz", fake_uid, self.rng.randrange(1 << 30))
                for port in range(node.degree)
            }
            return outbox, set(outbox)
        if behavior == "equivocate":
            ports = sorted(honest)
            if len(ports) >= 2:
                # Rotate the honest payloads one port over: every
                # neighbor gets a message the protocol meant for a
                # different neighbor — mutually inconsistent views.
                rotated = {
                    port: honest[ports[(i + 1) % len(ports)]]
                    for i, port in enumerate(ports)
                }
                changed = {p for p in ports if rotated[p] != honest[p]}
                return rotated, changed
            # Degenerate single-message case: forge instead.
            behavior = "lie"
        # lie (and the equivocate fallback): forward honest payloads
        # under a forged identity.
        outbox = {
            port: _forge(payload, node.uid, fake_uid)
            for port, payload in honest.items()
        }
        changed = {port for port in outbox if outbox[port] != honest[port]}
        return outbox, changed
