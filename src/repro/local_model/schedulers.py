"""Adversarial round models: asynchronous and worst-case delivery.

LOCAL and CONGEST (in :mod:`repro.local_model.engine`) are *admission*
policies: every queued message is delivered in the very next round, the
only question being whether it fits the bandwidth budget.  The two
schedulers here relax the other half of the synchronous contract —
*when* and *in what order* messages arrive:

* :class:`AsyncScheduler` — each message is independently delayed by a
  seeded number of rounds in ``[0, delay_bound]``; due messages arrive
  FIFO (by queueing round, then queueing order).  This is the classic
  "asynchronous network simulated in rounds" model: the algorithm still
  runs in lock-step, but its inputs can be stale.

* :class:`AdversarialScheduler` — a deterministic worst-case adversary.
  Messages crossing an identifier gradient (lower uid → higher uid) are
  held for the full ``delay_bound``; everything else flies.  Due
  messages are delivered newest-first, so when two messages land on the
  same port in the same round, the *stalest* payload wins the slot —
  the adversary always shows a node the oldest view it is allowed to.

Both implement the engine's :class:`~repro.local_model.engine.Scheduler`
admission protocol (they admit everything — bandwidth is LOCAL-like)
and additionally set ``plans_delivery = True``, which moves the engine
onto its pending-queue delivery path.  Determinism contract: the async
delay stream is ``random.Random`` seeded from the run seed by pure
integer arithmetic (no hashing of strings or tuples — those are salted
per process and would break ``workers=4`` byte-identity), and the
adversarial policy uses no randomness at all.
"""

from __future__ import annotations

import random
from typing import Any, Hashable, NamedTuple

Vertex = Hashable

#: Mixed into the run seed to decouple the scheduler's delay stream from
#: the fault plan's drop stream (both are Random(seed)-style consumers).
_DELAY_STREAM_SALT = 0x9E3779B9


class PendingMessage(NamedTuple):
    """One in-flight message on the engine's delayed-delivery queue."""

    queued_round: int
    """Round whose act phase produced the message (0 = on_init)."""
    seq: int
    """Queueing order within the round (deterministic outbox walk)."""
    sender: Vertex
    port: int
    payload: Any
    due_round: int
    """First round whose delivery phase may hand the message over."""
    tainted: bool = False
    """Whether a Byzantine shim corrupted this payload (detection tally)."""


class AsyncScheduler:
    """Seeded asynchronous delivery: per-message delay in [0, bound]."""

    model = "async"
    enforces = False
    needs_units = False
    plans_delivery = True

    def __init__(self, delay_bound: int = 2, seed: int = 0):
        if delay_bound < 0:
            raise ValueError(f"delay bound must be >= 0, got {delay_bound}")
        self.delay_bound = delay_bound
        self.seed = seed
        self._rng = random.Random(seed ^ _DELAY_STREAM_SALT)

    def admit(self, round_index: int, sender: int, receiver: int, units: int) -> None:
        return None

    def delay(self, round_index: int, seq: int, sender_uid: int, receiver_uid: int) -> int:
        """Rounds to hold this message; one seeded draw per message.

        Draws are consumed in queueing order (the engine walks outboxes
        in node order, ports ascending), so the delay stream — like the
        fault plan's drop stream — is a pure function of the run seed.
        """
        if self.delay_bound == 0:
            return 0
        return self._rng.randrange(self.delay_bound + 1)

    @staticmethod
    def order(due: list[PendingMessage]) -> list[PendingMessage]:
        """FIFO: older messages first, queueing order within a round."""
        return sorted(due, key=lambda m: (m.queued_round, m.seq))


class AdversarialScheduler:
    """Deterministic worst-case delivery: maximal delay and stale-wins.

    No randomness: the adversary's choices are a pure function of the
    topology and identifiers, so a run reproduces bit-for-bit with no
    seed bookkeeping, and tightening ``delay_bound`` to 0 recovers
    synchronous LOCAL delivery exactly.
    """

    model = "adversarial"
    enforces = False
    needs_units = False
    plans_delivery = True

    def __init__(self, delay_bound: int = 2):
        if delay_bound < 0:
            raise ValueError(f"delay bound must be >= 0, got {delay_bound}")
        self.delay_bound = delay_bound

    def admit(self, round_index: int, sender: int, receiver: int, units: int) -> None:
        return None

    def delay(self, round_index: int, seq: int, sender_uid: int, receiver_uid: int) -> int:
        """Hold messages flowing up the identifier order for the full
        bound — the symmetry-breaking direction most paper protocols
        lean on — and deliver the rest immediately."""
        return self.delay_bound if sender_uid < receiver_uid else 0

    @staticmethod
    def order(due: list[PendingMessage]) -> list[PendingMessage]:
        """Newest first — so on a port collision the *stalest* payload
        is written last and wins the inbox slot."""
        return sorted(due, key=lambda m: (m.queued_round, m.seq), reverse=True)
