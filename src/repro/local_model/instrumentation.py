"""Round and message accounting for simulator runs."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class RoundStats:
    """Per-round accounting: message count and total payload size.

    Payload size is measured in abstract units (entries of the encoded
    message); the LOCAL model has no bandwidth limit, but reporting the
    volume makes the contrast with CONGEST visible in experiments.
    """

    round_index: int
    messages: int
    payload_units: int


@dataclass
class Trace:
    """Full accounting of one simulation."""

    rounds: list[RoundStats] = field(default_factory=list)

    @property
    def round_count(self) -> int:
        return len(self.rounds)

    @property
    def total_messages(self) -> int:
        return sum(r.messages for r in self.rounds)

    @property
    def total_payload(self) -> int:
        return sum(r.payload_units for r in self.rounds)


def payload_size(payload: object) -> int:
    """Rough size of a message payload in units.

    Counts leaves of nested containers; opaque objects count as 1.
    """
    if isinstance(payload, (list, tuple, set, frozenset)):
        return sum(payload_size(item) for item in payload) or 1
    if isinstance(payload, dict):
        return sum(payload_size(k) + payload_size(v) for k, v in payload.items()) or 1
    return 1
