"""A simulated processor: identifier, ports, per-round mailboxes.

A node initially knows only its own identifier and its *ports*
(numbered 0..deg−1, one per incident link) — not its neighbors'
identifiers; those must be learned by exchanging messages, exactly as in
the model.  The vertex labels of the underlying graph are simulation
bookkeeping and are never exposed to algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable

Vertex = Hashable


@dataclass
class Node:
    """Simulation-side state of one processor."""

    vertex: Vertex
    """Underlying graph vertex (simulator bookkeeping only)."""
    uid: int
    """The unique identifier the algorithm sees."""
    ports: list[Vertex]
    """Port p connects to ports[p]; algorithms see only port numbers."""
    inbox: dict[int, Any] = field(default_factory=dict)
    """Messages received this round, keyed by port."""
    state: dict[str, Any] = field(default_factory=dict)
    """Algorithm-private storage."""
    output: Any = None
    """Final per-node output once the algorithm halts."""
    halted: bool = False

    @property
    def degree(self) -> int:
        return len(self.ports)


class NodeContext:
    """The API surface an algorithm sees for one node — no graph access.

    Exposes identifier, degree, per-round inbox (port → payload), and an
    outbox.  Anything else (neighbor identifiers, topology) must be
    learned through messages.

    Payloads are **immutable by convention**: the engine moves them from
    outbox to inbox by reference, without defensive copies.  Do not
    mutate a payload after sending it, and treat received payloads as
    read-only — build a new object to forward modified knowledge.  (The
    engine rebinds a fresh inbox dict each round, so *holding on to* an
    inbox mapping across rounds is safe; mutating its values is not.)
    """

    def __init__(self, node: Node):
        self._node = node
        self.outbox: dict[int, Any] = {}

    @property
    def uid(self) -> int:
        return self._node.uid

    @property
    def degree(self) -> int:
        return self._node.degree

    @property
    def inbox(self) -> dict[int, Any]:
        """This round's messages (port → payload).  Read-only by the
        immutability convention; returned by reference, not copied."""
        return self._node.inbox

    @property
    def state(self) -> dict[str, Any]:
        return self._node.state

    def send(self, port: int, payload: Any) -> None:
        """Queue a message on one port for delivery next round."""
        if not 0 <= port < self._node.degree:
            raise ValueError(f"node {self.uid} has no port {port}")
        self.outbox[port] = payload

    def broadcast(self, payload: Any) -> None:
        """Queue the same message on every port."""
        for port in range(self._node.degree):
            self.outbox[port] = payload

    def halt(self, output: Any) -> None:
        """Stop participating; ``output`` is the node's final answer."""
        self._node.output = output
        self._node.halted = True
