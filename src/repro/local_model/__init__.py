"""Deterministic synchronous LOCAL-model simulator (Linial's model).

The network is an undirected connected graph whose vertices are
processors with unique ``O(log n)``-bit identifiers.  Computation
proceeds in synchronous rounds; in each round every vertex may send an
arbitrarily large message to each neighbor, receive its neighbors'
messages, and update its state.  The complexity measure is the number of
rounds (Section 1 of the paper).

Layers:

* :mod:`repro.local_model.network` / :mod:`node` — the simulated
  processors and links;
* :mod:`repro.local_model.engine` — the unified simulation engine:
  one synchronous round loop with pluggable model schedulers (LOCAL /
  CONGEST), fault plans (message drops, node crashes), and trace
  policies (``full``/``stats``/``off``);
* :mod:`repro.local_model.runtime` / :mod:`congest_runtime` — thin
  deprecated wrappers keeping the historical ``SynchronousRuntime`` /
  ``CongestRuntime`` names alive on top of the engine;
* :mod:`repro.local_model.algorithm` — the per-node algorithm interface;
* :mod:`repro.local_model.gather` — the radius-r *view gathering*
  primitive: after ``r + 1`` rounds every vertex knows the induced
  subgraph ``G[N^r[v]]`` exactly (it has heard every edge incident to a
  vertex at distance ≤ r); every algorithm in the paper reduces to
  "gather, then decide";
* :mod:`repro.local_model.views` — the knowledge object handed to
  decision functions.
"""

from repro.local_model.algorithm import LocalAlgorithm, ViewAlgorithm
from repro.local_model.engine import (
    CongestScheduler,
    EngineResult,
    FaultPlan,
    LocalScheduler,
    MessageTooLargeError,
    Scheduler,
    SimulationEngine,
    scheduler_for,
)
from repro.local_model.gather import gather_views, rounds_for_radius
from repro.local_model.identifiers import (
    identity_ids,
    shuffled_ids,
    spread_ids,
)
from repro.local_model.network import Network
from repro.local_model.runtime import RunResult, SynchronousRuntime

from repro.local_model.views import View

__all__ = [
    "CongestScheduler",
    "EngineResult",
    "FaultPlan",
    "LocalAlgorithm",
    "LocalScheduler",
    "MessageTooLargeError",
    "Network",
    "RunResult",
    "Scheduler",
    "SimulationEngine",
    "SynchronousRuntime",
    "View",
    "ViewAlgorithm",
    "gather_views",
    "identity_ids",
    "rounds_for_radius",
    "scheduler_for",
    "shuffled_ids",
    "spread_ids",
]
