"""View gathering under CONGEST: pipelined flooding with capped messages.

In LOCAL, radius-r gathering costs ``r + 1`` rounds because a node may
forward *everything it knows* in one message.  Under CONGEST the same
knowledge must trickle through ``O(log n)``-bit messages, so each round
a node forwards at most ``budget`` new items per edge and the round
count inflates to roughly ``r + (knowledge volume) / budget``.

:class:`CongestGatherAlgorithm` implements that pipeline: every node
maintains a queue of not-yet-forwarded facts (vertex ids and edges) and
drains it ``budget`` items per round per port.  Termination is
detected by quiescence counting: after ``r + ceil(worst-ball / budget)
+ slack`` silent rounds nothing new can arrive (the driver, which knows
the graph, supplies the deadline — the per-node logic only uses the
message stream).

:func:`congest_gather_views` runs it and reports both the views and the
round inflation relative to LOCAL gathering — the quantitative form of
the paper's "messages have no size limit, in contrast to CONGEST".
"""

from __future__ import annotations

from typing import Hashable

import networkx as nx

from repro.graphs.util import distances_from
from repro.local_model.algorithm import LocalAlgorithm
from repro.local_model.instrumentation import Trace
from repro.local_model.network import Network
from repro.local_model.node import NodeContext
from repro.local_model.runtime import SynchronousRuntime
from repro.local_model.views import View

Vertex = Hashable

Fact = tuple
"""Either ("v", uid) or ("e", uid, uid) — one identifier-sized item each."""


class CongestGatherAlgorithm(LocalAlgorithm):
    """Pipelined flooding with at most ``budget`` facts per message."""

    def __init__(self, radius: int, budget: int, deadline: int):
        if radius < 0 or budget < 1 or deadline < 1:
            raise ValueError("radius >= 0, budget >= 1, deadline >= 1 required")
        self.radius = radius
        self.budget = budget
        self.deadline = deadline

    def on_init(self, ctx: NodeContext) -> None:
        ctx.state["verts"] = {ctx.uid}
        ctx.state["edges"] = set()
        ctx.state["queues"] = {port: [("v", ctx.uid)] for port in range(ctx.degree)}
        ctx.state["round"] = 0
        self._drain(ctx)

    def _learn(self, ctx: NodeContext, fact: Fact, from_port: int) -> None:
        verts: set[int] = ctx.state["verts"]
        edges: set[frozenset[int]] = ctx.state["edges"]
        if fact[0] == "v":
            uid = fact[1]
            new = uid not in verts
            verts.add(uid)
            if new:
                self._enqueue(ctx, fact, from_port)
        else:
            _, a, b = fact
            key = frozenset((a, b))
            if key not in edges:
                edges.add(key)
                verts.add(a)
                verts.add(b)
                self._enqueue(ctx, fact, from_port)

    def _enqueue(self, ctx: NodeContext, fact: Fact, from_port: int) -> None:
        for port, queue in ctx.state["queues"].items():
            if port != from_port:
                queue.append(fact)

    def _drain(self, ctx: NodeContext) -> None:
        for port, queue in ctx.state["queues"].items():
            if queue:
                batch = queue[: self.budget]
                del queue[: self.budget]
                ctx.send(port, tuple(batch))

    def on_round(self, ctx: NodeContext) -> None:
        ctx.state["round"] += 1
        for port, payload in ctx.inbox.items():
            for fact in payload:
                if fact[0] == "v" and self._is_direct_hello(ctx, port, fact[1]):
                    # The first id on a port is the link endpoint's own
                    # hello: record the incident edge implicitly.
                    uid = fact[1]
                    edge = ("e", min(ctx.uid, uid), max(ctx.uid, uid))
                    self._learn(ctx, edge, port)
                self._learn(ctx, fact, port)
        if ctx.state["round"] >= self.deadline:
            ctx.halt(self._build_view(ctx))
            return
        self._drain(ctx)

    def _is_direct_hello(self, ctx: NodeContext, port: int, uid: int) -> bool:
        known = ctx.state.setdefault("port_uid", {})
        if port not in known:
            known[port] = uid
            return True
        return False

    def _build_view(self, ctx: NodeContext) -> View:
        known = nx.Graph()
        known.add_nodes_from(ctx.state["verts"])
        known.add_edges_from(tuple(e) for e in ctx.state["edges"])
        dist = distances_from(known, ctx.uid)
        reachable = {u: d for u, d in dist.items() if d <= self.radius}
        trimmed = known.subgraph(reachable).copy()
        return View(
            center=ctx.uid,
            graph=trimmed,
            complete_radius=self.radius,
            dist=reachable,
        )


def congest_gather_views(
    graph: nx.Graph, radius: int, budget: int, ids=None
) -> tuple[dict[int, View], Trace]:
    """Gather radius-r views under a CONGEST budget; driver sets deadline.

    The deadline is computed from the graph (worst ball volume over the
    budget, plus the radius and slack); per-node logic never reads the
    graph.  Round inflation vs LOCAL is ``trace.round_count − (r + 1)``.
    """
    from repro.graphs.util import ball

    worst_volume = 0
    for v in graph.nodes:
        reach = ball(graph, v, radius)
        volume = len(reach) + graph.subgraph(reach).number_of_edges()
        worst_volume = max(worst_volume, volume)
    deadline = radius + 1 + (worst_volume + budget - 1) // budget + 2

    network = Network(graph, ids)
    runtime = SynchronousRuntime(network, max_rounds=deadline + 2)
    result = runtime.run(lambda: CongestGatherAlgorithm(radius, budget, deadline))
    views = {network.ids[v]: view for v, view in result.outputs.items()}
    return views, result.trace
