"""The unified simulation engine: one round loop, pluggable policies.

Every round-model experiment in the repo runs on this engine.  What used
to be two hand-wired runtimes (``SynchronousRuntime`` for LOCAL,
``CongestRuntime`` as an enforcement subclass) is now a single
:class:`SimulationEngine` parameterised along three axes:

* **scheduler** — the round model as an admission policy.
  :class:`LocalScheduler` admits everything (unbounded messages);
  :class:`CongestScheduler` rejects any message above its
  ``ids_per_message`` budget with :class:`MessageTooLargeError`.  New
  models plug in by implementing the :class:`Scheduler` protocol, no
  engine subclassing.
* **faults** — a :class:`FaultPlan` of probabilistic message drops and
  crashed nodes, applied at delivery time from a seeded RNG so runs are
  reproducible (and identical across worker processes).
* **trace policy** — ``"full"`` keeps per-round :class:`RoundStats`,
  ``"stats"`` keeps only aggregate totals, ``"off"`` records nothing;
  large sweeps need not hold per-round lists (or even compute payload
  sizes) in memory.

Delivery is *immutable-by-convention*: payloads move from outbox to
inbox **by reference**, never copied.  The contract for algorithm
authors: a payload must not be mutated after it is sent, and a received
payload must be treated as read-only (build a new object to forward
modified knowledge).  Every protocol in the repo already follows this —
dropping the defensive copies is what makes the hot path cheap (see
``benchmarks/bench_engine.py`` for the measured win).

Routing uses an adjacency-indexed buffer built once per engine:
``routes[v][port] == (receiver node, back port)``, so delivering a
message is a single list index instead of the port→neighbor→back-port
dictionary chain the old runtime walked for every message of every
round.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Hashable, Protocol, runtime_checkable

from repro.local_model.algorithm import LocalAlgorithm
from repro.local_model.instrumentation import RoundStats, Trace, payload_size
from repro.local_model.network import Network
from repro.local_model.node import Node, NodeContext

Vertex = Hashable

MODELS = ("local", "congest")
TRACE_POLICIES = ("full", "stats", "off")


class MessageTooLargeError(RuntimeError):
    """A message exceeded the CONGEST budget.

    Carries everything needed to act on a failure deep inside a sweep:
    the offending sender *and receiver* identifiers, the round in which
    the message was queued, its size, and the budget it broke.
    """

    def __init__(
        self,
        sender: int,
        units: int,
        budget: int,
        round_index: int | None = None,
        receiver: int | None = None,
    ):
        to = f" to node {receiver}" if receiver is not None else ""
        where = f" in round {round_index}" if round_index is not None else ""
        super().__init__(
            f"node {sender} sent a message of {units} units{to}{where}; "
            f"CONGEST budget is {budget} units per message"
        )
        self.sender = sender
        self.units = units
        self.budget = budget
        self.round_index = round_index
        self.receiver = receiver


@runtime_checkable
class Scheduler(Protocol):
    """A round model as an admission policy.

    While ``enforces`` is true the engine calls :meth:`admit` once per
    queued message, with the full round snapshot validated *before* any
    delivery — a rejected round leaves no partially-delivered state.
    Set ``enforces = False`` only for pass-through policies (LOCAL)
    that admit everything; their ``admit`` is never invoked, which
    keeps the hot path free of per-message calls.  ``needs_units``
    tells the engine whether to compute payload sizes even when the
    trace policy would skip them; when neither the scheduler nor the
    trace policy asks for sizes, ``admit`` receives ``units=0`` (a
    count-limiting policy, for example, needs none).
    """

    model: str
    enforces: bool
    needs_units: bool

    def admit(self, round_index: int, sender: int, receiver: int, units: int) -> None:
        """Validate one queued message; raise to reject the run."""


class LocalScheduler:
    """The LOCAL model: messages of unbounded size, everything admitted."""

    model = "local"
    enforces = False
    needs_units = False

    def admit(self, round_index: int, sender: int, receiver: int, units: int) -> None:
        return None


class CongestScheduler:
    """The CONGEST model: at most ``ids_per_message`` units per message."""

    model = "congest"
    enforces = True
    needs_units = True

    def __init__(self, ids_per_message: int = 4):
        if ids_per_message < 1:
            raise ValueError("budget must allow at least one identifier")
        self.ids_per_message = ids_per_message

    def admit(self, round_index: int, sender: int, receiver: int, units: int) -> None:
        if units > self.ids_per_message:
            raise MessageTooLargeError(
                sender,
                units,
                self.ids_per_message,
                round_index=round_index,
                receiver=receiver,
            )


@dataclass(frozen=True)
class FaultPlan:
    """Scenario knobs the pre-engine API could not express.

    * ``drop_probability`` — each delivered message is independently
      lost with this probability (seeded RNG, so runs reproduce);
    * ``crashed`` — vertices (simulator-side labels) that never start:
      a crashed node runs no algorithm, sends nothing, and swallows
      anything addressed to it (tallied separately from drops, in
      ``EngineResult.swallowed_messages``).

    Protocol *correctness* under faults is not guaranteed — that is the
    point: the engine reports what a protocol actually does when the
    network misbehaves.
    """

    drop_probability: float = 0.0
    crashed: tuple = ()

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_probability <= 1.0:
            raise ValueError(
                f"drop_probability must be in [0, 1], got {self.drop_probability}"
            )
        object.__setattr__(self, "crashed", tuple(self.crashed))

    @property
    def is_trivial(self) -> bool:
        return self.drop_probability == 0.0 and not self.crashed


@dataclass
class EngineResult:
    """Everything one engine run produced.

    ``round_stats`` is ``None`` unless the trace policy was ``"full"``;
    with policy ``"off"`` the message/payload totals are not collected
    and stay zero.
    """

    outputs: dict[Vertex, object]
    rounds: int
    total_messages: int
    total_payload: int
    round_stats: list[RoundStats] | None
    dropped_messages: int = 0
    """Messages lost to the fault plan's ``drop_probability`` RNG."""
    swallowed_messages: int = 0
    """Messages addressed to crashed nodes (never delivered)."""
    crashed: tuple = ()

    @property
    def trace(self) -> Trace:
        """Compatibility view for consumers of the old ``Trace`` shape."""
        return Trace(rounds=list(self.round_stats or []))


class SimulationEngine:
    """Synchronous round loop over a :class:`Network`, policy-driven.

    Semantics (identical to the historical runtime for fault-free LOCAL
    runs): every round, all non-halted nodes act on the previous round's
    inbox, then all queued messages are delivered simultaneously; the
    run ends when every live node has halted.  Exceeding ``max_rounds``
    raises — an algorithm that cannot bound its rounds is not a LOCAL
    algorithm.
    """

    def __init__(
        self,
        network: Network,
        scheduler: Scheduler | None = None,
        *,
        max_rounds: int = 10_000,
        faults: FaultPlan | None = None,
        trace: str = "full",
        seed: int = 0,
    ):
        if trace not in TRACE_POLICIES:
            raise ValueError(
                f"unknown trace policy {trace!r}; choose from {TRACE_POLICIES}"
            )
        if max_rounds < 1:
            raise ValueError("max_rounds must be positive")
        self.network = network
        self.scheduler = scheduler if scheduler is not None else LocalScheduler()
        self.max_rounds = max_rounds
        self.faults = faults if faults is not None else FaultPlan()
        self.trace_policy = trace
        self.seed = seed
        unknown = [v for v in self.faults.crashed if v not in network.nodes]
        if unknown:
            raise ValueError(f"crashed vertices not in the network: {unknown!r}")
        # Adjacency-indexed delivery buffer: routes[v][port] is the
        # (receiver, back port) pair the message on that port lands on.
        # Built straight off the graph kernel's CSR rows: the neighbor
        # on port p of v is indices[indptr[i] + p], and the back port
        # comes from the kernel's precomputed reverse-slot array — no
        # per-edge dictionary chains.
        kernel = network.kernel
        indptr, indices = kernel.indptr, kernel.indices
        back = kernel.back_ports()
        labels = kernel.labels
        nodes = network.nodes
        self._routes: dict[Vertex, list[tuple[Node, int]]] = {
            v: [
                (nodes[labels[indices[s]]], back[s])
                for s in range(indptr[i], indptr[i + 1])
            ]
            for i, v in enumerate(labels)
        }

    def run(self, algorithm_factory: Callable[[], LocalAlgorithm]) -> EngineResult:
        """Run to completion; returns outputs plus the configured trace."""
        crashed = set(self.faults.crashed)
        live = {
            v: node for v, node in self.network.nodes.items() if v not in crashed
        }
        algorithms = {v: algorithm_factory() for v in live}
        ids = self.network.ids
        routes = self._routes
        enforce = (
            self.scheduler.admit
            if getattr(self.scheduler, "enforces", True)
            else None
        )
        record = self.trace_policy != "off"
        need_units = record or self.scheduler.needs_units
        round_stats: list[RoundStats] | None = (
            [] if self.trace_policy == "full" else None
        )
        drop_p = self.faults.drop_probability
        rng = random.Random(self.seed) if drop_p > 0.0 else None

        rounds = 0
        total_messages = 0
        total_payload = 0
        dropped = 0
        swallowed = 0
        received: list[Node] = []

        outboxes: dict[Vertex, dict[int, object]] = {}
        for v, node in live.items():
            ctx = NodeContext(node)
            algorithms[v].on_init(ctx)
            if ctx.outbox:
                outboxes[v] = ctx.outbox

        for round_index in range(1, self.max_rounds + 1):
            if all(node.halted for node in live.values()):
                break

            # Accounting + admission on the full round snapshot, before
            # any delivery — a rejected round leaves no partial state.
            messages = 0
            units_this_round = 0
            for v, outbox in outboxes.items():
                messages += len(outbox)
                if need_units or enforce is not None:
                    sender_routes = routes[v]
                    sender_uid = ids[v]
                    for port, payload in outbox.items():
                        units = payload_size(payload) if need_units else 0
                        units_this_round += units
                        if enforce is not None:
                            enforce(
                                round_index,
                                sender_uid,
                                sender_routes[port][0].uid,
                                units,
                            )

            # Delivery: rebind fresh inboxes for last round's receivers,
            # then move payloads by reference through the route index.
            for node in received:
                node.inbox = {}
            received = []
            for v, outbox in outboxes.items():
                sender_routes = routes[v]
                for port, payload in outbox.items():
                    if rng is not None and rng.random() < drop_p:
                        dropped += 1
                        continue
                    receiver, back_port = sender_routes[port]
                    if receiver.vertex in crashed:
                        swallowed += 1
                        continue
                    if not receiver.inbox:
                        received.append(receiver)
                    receiver.inbox[back_port] = payload

            rounds = round_index
            if record:
                total_messages += messages
                total_payload += units_this_round
                if round_stats is not None:
                    round_stats.append(
                        RoundStats(
                            round_index=round_index,
                            messages=messages,
                            payload_units=units_this_round,
                        )
                    )

            outboxes = {}
            for v, node in live.items():
                if node.halted:
                    continue
                ctx = NodeContext(node)
                algorithms[v].on_round(ctx)
                if ctx.outbox and not node.halted:
                    outboxes[v] = ctx.outbox
        else:
            raise RuntimeError(
                f"algorithm did not halt within {self.max_rounds} rounds"
            )

        return EngineResult(
            outputs=self.network.outputs(),
            rounds=rounds,
            total_messages=total_messages,
            total_payload=total_payload,
            round_stats=round_stats,
            dropped_messages=dropped,
            swallowed_messages=swallowed,
            crashed=tuple(self.faults.crashed),
        )


def scheduler_for(model: str, budget: int = 4) -> Scheduler:
    """Build the scheduler for a model name (``"local"``/``"congest"``)."""
    if model == "local":
        return LocalScheduler()
    if model == "congest":
        return CongestScheduler(budget)
    raise ValueError(f"unknown model {model!r}; choose from {MODELS}")
