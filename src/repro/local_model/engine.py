"""The unified simulation engine: one round loop, pluggable policies.

Every round-model experiment in the repo runs on this engine.  What used
to be two hand-wired runtimes (``SynchronousRuntime`` for LOCAL,
``CongestRuntime`` as an enforcement subclass) is now a single
:class:`SimulationEngine` parameterised along three axes:

* **scheduler** — the round model as an admission policy.
  :class:`LocalScheduler` admits everything (unbounded messages);
  :class:`CongestScheduler` rejects any message above its
  ``ids_per_message`` budget with :class:`MessageTooLargeError`.  New
  models plug in by implementing the :class:`Scheduler` protocol, no
  engine subclassing.
* **faults** — a :class:`FaultPlan` of probabilistic message drops and
  crashed nodes, applied at delivery time from a seeded RNG so runs are
  reproducible (and identical across worker processes).
* **trace policy** — ``"full"`` keeps per-round :class:`RoundStats`,
  ``"stats"`` keeps only aggregate totals, ``"off"`` records nothing;
  large sweeps need not hold per-round lists (or even compute payload
  sizes) in memory.

Delivery is *immutable-by-convention*: payloads move from outbox to
inbox **by reference**, never copied.  The contract for algorithm
authors: a payload must not be mutated after it is sent, and a received
payload must be treated as read-only (build a new object to forward
modified knowledge).  Every protocol in the repo already follows this —
dropping the defensive copies is what makes the hot path cheap (see
``benchmarks/bench_engine.py`` for the measured win).

Routing uses an adjacency-indexed buffer built once per engine:
``routes[v][port] == (receiver node, back port)``, so delivering a
message is a single list index instead of the port→neighbor→back-port
dictionary chain the old runtime walked for every message of every
round.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Hashable, Mapping, Protocol, runtime_checkable

from repro.local_model.adversary import ByzantineShim, byzantine_rng
from repro.local_model.algorithm import LocalAlgorithm
from repro.local_model.instrumentation import RoundStats, Trace, payload_size
from repro.local_model.network import Network
from repro.local_model.node import Node, NodeContext
from repro.local_model.schedulers import (
    AdversarialScheduler,
    AsyncScheduler,
    PendingMessage,
)

Vertex = Hashable

MODELS = ("local", "congest", "async", "adversarial")
TRACE_POLICIES = ("full", "stats", "off")


class MessageTooLargeError(RuntimeError):
    """A message exceeded the CONGEST budget.

    Carries everything needed to act on a failure deep inside a sweep:
    the offending sender *and receiver* identifiers, the round in which
    the message was queued, its size, and the budget it broke.
    """

    def __init__(
        self,
        sender: int,
        units: int,
        budget: int,
        round_index: int | None = None,
        receiver: int | None = None,
    ):
        to = f" to node {receiver}" if receiver is not None else ""
        where = f" in round {round_index}" if round_index is not None else ""
        super().__init__(
            f"node {sender} sent a message of {units} units{to}{where}; "
            f"CONGEST budget is {budget} units per message"
        )
        self.sender = sender
        self.units = units
        self.budget = budget
        self.round_index = round_index
        self.receiver = receiver


@runtime_checkable
class Scheduler(Protocol):
    """A round model as an admission policy.

    While ``enforces`` is true the engine calls :meth:`admit` once per
    queued message, with the full round snapshot validated *before* any
    delivery — a rejected round leaves no partially-delivered state.
    Set ``enforces = False`` only for pass-through policies (LOCAL)
    that admit everything; their ``admit`` is never invoked, which
    keeps the hot path free of per-message calls.  ``needs_units``
    tells the engine whether to compute payload sizes even when the
    trace policy would skip them; when neither the scheduler nor the
    trace policy asks for sizes, ``admit`` receives ``units=0`` (a
    count-limiting policy, for example, needs none).
    """

    model: str
    enforces: bool
    needs_units: bool

    def admit(self, round_index: int, sender: int, receiver: int, units: int) -> None:
        """Validate one queued message; raise to reject the run."""


class LocalScheduler:
    """The LOCAL model: messages of unbounded size, everything admitted."""

    model = "local"
    enforces = False
    needs_units = False

    def admit(self, round_index: int, sender: int, receiver: int, units: int) -> None:
        return None


class CongestScheduler:
    """The CONGEST model: at most ``ids_per_message`` units per message."""

    model = "congest"
    enforces = True
    needs_units = True

    def __init__(self, ids_per_message: int = 4):
        if ids_per_message < 1:
            raise ValueError("budget must allow at least one identifier")
        self.ids_per_message = ids_per_message

    def admit(self, round_index: int, sender: int, receiver: int, units: int) -> None:
        if units > self.ids_per_message:
            raise MessageTooLargeError(
                sender,
                units,
                self.ids_per_message,
                round_index=round_index,
                receiver=receiver,
            )


@dataclass(frozen=True)
class FaultPlan:
    """Scenario knobs the pre-engine API could not express.

    * ``drop_probability`` — each delivered message is independently
      lost with this probability (seeded RNG, so runs reproduce);
    * ``crashed`` — vertices (simulator-side labels) that never start:
      a crashed node runs no algorithm, sends nothing, and swallows
      anything addressed to it (tallied separately from drops, in
      ``EngineResult.swallowed_messages``);
    * ``crash_schedule`` — ``(vertex, round)`` pairs for *mid-run*
      crashes: at the start of the given round (1-based) the vertex
      stops acting, its queued outbound messages are swallowed in the
      same round, and from then on it behaves like a ``crashed`` node.
      A scheduled crash of a vertex that is not present when its round
      comes (it left via churn, or already crashed) is a no-op.

    Protocol *correctness* under faults is not guaranteed — that is the
    point: the engine reports what a protocol actually does when the
    network misbehaves.
    """

    drop_probability: float = 0.0
    crashed: tuple = ()
    crash_schedule: tuple = ()

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_probability <= 1.0:
            raise ValueError(
                f"drop_probability must be in [0, 1], got {self.drop_probability}"
            )
        object.__setattr__(self, "crashed", tuple(self.crashed))
        schedule = []
        for entry in self.crash_schedule:
            vertex, when = entry
            if not isinstance(when, int) or isinstance(when, bool) or when < 1:
                raise ValueError(
                    f"scheduled crash rounds are integers >= 1, got {when!r} "
                    f"for vertex {vertex!r} (round-0 crashes go in 'crashed')"
                )
            schedule.append((vertex, when))
        object.__setattr__(self, "crash_schedule", tuple(schedule))

    @property
    def is_trivial(self) -> bool:
        return (
            self.drop_probability == 0.0
            and not self.crashed
            and not self.crash_schedule
        )


@dataclass
class EngineResult:
    """Everything one engine run produced.

    ``round_stats`` is ``None`` unless the trace policy was ``"full"``;
    with policy ``"off"`` the message/payload totals are not collected
    and stay zero.
    """

    outputs: dict[Vertex, object]
    rounds: int
    total_messages: int
    total_payload: int
    round_stats: list[RoundStats] | None
    dropped_messages: int = 0
    """Messages lost to the fault plan's ``drop_probability`` RNG."""
    swallowed_messages: int = 0
    """Messages addressed to crashed nodes, plus outbound messages a
    scheduled crash caught in a node's queue (never delivered)."""
    crashed: tuple = ()
    """Every vertex that was crashed by the end of the run: the plan's
    round-0 crashes plus scheduled crashes that actually fired."""
    delayed_messages: int = 0
    """Messages an async/adversarial scheduler held for >= 1 round."""
    churn_events: int = 0
    """Topology-change events the churn plan applied during the run."""
    churn_lost_messages: int = 0
    """In-flight messages invalidated by churn (sender left, or its
    queued port no longer exists after an adjacency change)."""
    suspicion: dict = field(default_factory=dict)
    """Accountability tallies, keyed by Byzantine vertex (repr-sorted):
    ``{"behavior", "deviations", "detections"}`` — messages the node
    suppressed/forged, and how many corrupted messages honest nodes
    actually received."""
    failed: tuple = ()
    """Vertices whose protocol raised while the run was adversarial
    (churn, Byzantine peers, or a delivery-planning scheduler active):
    stale or forged inputs paper protocols never planned for.  A failed
    node stops participating — it is the protocol breaking under
    attack, recorded instead of raised.  On benign runs exceptions
    propagate unchanged."""
    timed_out: bool = False
    """An adversarial run exhausted ``max_rounds`` without all honest
    nodes halting (e.g. they waited forever on a silent Byzantine
    peer).  Recorded instead of raised — non-termination under attack
    is a result.  Benign runs still raise ``RuntimeError``."""

    @property
    def trace(self) -> Trace:
        """Compatibility view for consumers of the old ``Trace`` shape."""
        return Trace(rounds=list(self.round_stats or []))


class SimulationEngine:
    """Synchronous round loop over a :class:`Network`, policy-driven.

    Semantics (identical to the historical runtime for fault-free LOCAL
    runs): every round, all non-halted nodes act on the previous round's
    inbox, then all queued messages are delivered simultaneously; the
    run ends when every live node has halted.  Exceeding ``max_rounds``
    raises — an algorithm that cannot bound its rounds is not a LOCAL
    algorithm.
    """

    def __init__(
        self,
        network: Network,
        scheduler: Scheduler | None = None,
        *,
        max_rounds: int = 10_000,
        faults: FaultPlan | None = None,
        trace: str = "full",
        seed: int = 0,
        churn: Mapping[int, tuple] | None = None,
        byzantine: Mapping[Vertex, str] | None = None,
    ):
        if trace not in TRACE_POLICIES:
            raise ValueError(
                f"unknown trace policy {trace!r}; choose from {TRACE_POLICIES}"
            )
        if max_rounds < 1:
            raise ValueError("max_rounds must be positive")
        self.network = network
        self.scheduler = scheduler if scheduler is not None else LocalScheduler()
        self.max_rounds = max_rounds
        self.faults = faults if faults is not None else FaultPlan()
        self.trace_policy = trace
        self.seed = seed
        # churn arrives pre-materialized (round -> events), the shape
        # adversary.materialize_churn produces — the engine applies, it
        # does not plan.
        self.churn: dict[int, tuple] = {
            r: tuple(events) for r, events in (churn or {}).items() if events
        }
        self.byzantine: dict[Vertex, str] = dict(byzantine or {})
        joins = {
            e.u for events in self.churn.values() for e in events if e.kind == "join"
        }
        unknown = [v for v in self.faults.crashed if v not in network.nodes]
        if unknown:
            raise ValueError(f"crashed vertices not in the network: {unknown!r}")
        allowed = set(network.nodes) | joins
        unknown = [v for v, _ in self.faults.crash_schedule if v not in allowed]
        if unknown:
            raise ValueError(
                f"scheduled-crash vertices never in the network: {unknown!r}"
            )
        unknown = [v for v in self.byzantine if v not in allowed]
        if unknown:
            raise ValueError(f"byzantine vertices never in the network: {unknown!r}")
        overlap = [v for v in self.byzantine if v in self.faults.crashed]
        if overlap:
            raise ValueError(
                f"vertices cannot be both byzantine and crashed: {overlap!r}"
            )
        self._shims: dict[Vertex, ByzantineShim] = {}
        # Adjacency-indexed delivery buffer: routes[v][port] is the
        # (receiver, back port) pair the message on that port lands on.
        # Built straight off the graph kernel's CSR rows: the neighbor
        # on port p of v is indices[indptr[i] + p], and the back port
        # comes from the kernel's precomputed reverse-slot array — no
        # per-edge dictionary chains.
        self._routes: dict[Vertex, list[tuple[Node, int]]] = {}
        self._route_rows(network.kernel.labels)

    def _route_rows(self, vertices) -> None:
        """(Re)build the delivery routes of the given vertices from the
        network's *current* kernel — the whole graph at construction,
        just the affected rows after a churn round."""
        kernel = self.network.kernel
        indptr, indices = kernel.indptr, kernel.indices
        back = kernel.back_ports()
        labels = kernel.labels
        nodes = self.network.nodes
        index_of = kernel.index_of
        for v in vertices:
            i = index_of[v]
            self._routes[v] = [
                (nodes[labels[indices[s]]], back[s])
                for s in range(indptr[i], indptr[i + 1])
            ]

    def _make_algorithm(
        self, factory: Callable[[], LocalAlgorithm], vertex: Vertex, uid: int
    ) -> LocalAlgorithm:
        """One per-node algorithm instance, Byzantine-wrapped if planned."""
        inner = factory()
        behavior = self.byzantine.get(vertex)
        if behavior is None:
            return inner
        shim = ByzantineShim(inner, behavior, byzantine_rng(self.seed, uid))
        self._shims[vertex] = shim
        return shim

    def _churn_step(
        self,
        events: tuple,
        live: dict,
        algorithms: dict,
        outboxes: dict,
        pending: list,
        taint: dict,
        crashed: set,
        failed: list,
        factory: Callable[[], LocalAlgorithm],
    ) -> int:
        """Apply one round's churn events; returns messages lost to it.

        Beyond the network's own port re-derivation, the engine must (a)
        rebuild delivery routes for every vertex whose CSR row changed
        *and their neighbors* (a changed row moves the back ports of
        every edge into it), (b) retire in-flight messages whose sender
        left or whose queued port fell off a shrunken adjacency
        (surviving ports are re-routed by number — the link is whatever
        that port points at now), and (c) boot joined vertices through
        ``on_init`` so they participate from this round on.
        """
        network = self.network
        changed, joined, left = network.apply_churn(events)
        lost = 0
        for v in left:
            live.pop(v, None)
            algorithms.pop(v, None)
            self._routes.pop(v, None)
            stale = outboxes.pop(v, None)
            if stale:
                lost += len(stale)
        rebuild = set(changed)
        for v in changed:
            rebuild.update(network.graph.neighbors(v))
        rebuild &= set(network.nodes)
        self._route_rows(sorted(rebuild, key=repr))
        for v in sorted(changed, key=repr):
            outbox = outboxes.get(v)
            if not outbox:
                continue
            degree = network.nodes[v].degree
            stale_ports = [p for p in outbox if p >= degree]
            for p in stale_ports:
                del outbox[p]
            lost += len(stale_ports)
            if not outbox:
                del outboxes[v]
        if pending:
            kept = []
            for message in pending:
                node = network.nodes.get(message.sender)
                if node is None or message.port >= node.degree:
                    lost += 1
                else:
                    kept.append(message)
            pending[:] = kept
        for v in joined:
            node = network.nodes[v]
            live[v] = node
            algorithms[v] = self._make_algorithm(factory, v, node.uid)
            ctx = NodeContext(node)
            try:
                algorithms[v].on_init(ctx)
            except Exception:
                failed.append(v)
                crashed.add(v)
                live.pop(v)
                algorithms.pop(v, None)
                continue
            if ctx.outbox:
                outboxes[v] = ctx.outbox
            if v in self.byzantine:
                taint[v] = self._shims[v].last_changed
        return lost

    def run(self, algorithm_factory: Callable[[], LocalAlgorithm]) -> EngineResult:
        """Run to completion; returns outputs plus the configured trace."""
        self._shims.clear()
        crashed = set(self.faults.crashed)
        live = {
            v: node for v, node in self.network.nodes.items() if v not in crashed
        }
        ids = self.network.ids
        byz = self.byzantine
        algorithms = {
            v: self._make_algorithm(algorithm_factory, v, ids[v]) for v in live
        }
        routes = self._routes
        enforce = (
            self.scheduler.admit
            if getattr(self.scheduler, "enforces", True)
            else None
        )
        # A delivery-planning scheduler (async/adversarial) moves the
        # engine onto the pending-queue path; LOCAL/CONGEST keep the
        # direct outbox-to-inbox hot path, bit-for-bit as before.
        planner = (
            self.scheduler
            if getattr(self.scheduler, "plans_delivery", False)
            else None
        )
        churn = self.churn
        # Under adversarial conditions a protocol may legitimately blow
        # up on inputs it never planned for (stale phases, forged
        # payloads); the engine records the node as failed instead of
        # aborting the run.  Benign runs keep raise-through semantics.
        shielded = planner is not None or bool(byz) or bool(churn)
        crash_rounds: dict[int, list[Vertex]] = {}
        for v, when in self.faults.crash_schedule:
            crash_rounds.setdefault(when, []).append(v)
        record = self.trace_policy != "off"
        need_units = record or self.scheduler.needs_units
        round_stats: list[RoundStats] | None = (
            [] if self.trace_policy == "full" else None
        )
        drop_p = self.faults.drop_probability
        rng = random.Random(self.seed) if drop_p > 0.0 else None

        rounds = 0
        total_messages = 0
        total_payload = 0
        dropped = 0
        swallowed = 0
        delayed = 0
        churn_events = 0
        churn_lost = 0
        crash_fired: list[Vertex] = []
        failed: list[Vertex] = []
        timed_out = False
        detections: dict[Vertex, int] = {v: 0 for v in byz}
        taint: dict[Vertex, frozenset] = {}
        pending: list[PendingMessage] = []
        seq = 0
        received: list[Node] = []

        outboxes: dict[Vertex, dict[int, object]] = {}
        for v, node in list(live.items()) if shielded else live.items():
            ctx = NodeContext(node)
            if shielded:
                try:
                    algorithms[v].on_init(ctx)
                except Exception:
                    failed.append(v)
                    crashed.add(v)
                    live.pop(v)
                    algorithms.pop(v, None)
                    continue
            else:
                algorithms[v].on_init(ctx)
            if ctx.outbox:
                outboxes[v] = ctx.outbox
            if v in byz:
                taint[v] = self._shims[v].last_changed

        for round_index in range(1, self.max_rounds + 1):
            if churn:
                events = churn.get(round_index)
                if events:
                    churn_events += len(events)
                    churn_lost += self._churn_step(
                        events,
                        live,
                        algorithms,
                        outboxes,
                        pending,
                        taint,
                        crashed,
                        failed,
                        algorithm_factory,
                    )
            if crash_rounds:
                for v in crash_rounds.get(round_index, ()):
                    if v not in live:
                        continue
                    crashed.add(v)
                    crash_fired.append(v)
                    live.pop(v)
                    algorithms.pop(v, None)
                    stale = outboxes.pop(v, None)
                    if stale:
                        # A mid-run crash swallows the node's queued
                        # outbound messages in the same round.
                        swallowed += len(stale)
                    if pending:
                        kept = [m for m in pending if m.sender != v]
                        swallowed += len(pending) - len(kept)
                        pending[:] = kept

            # Byzantine nodes never count toward termination: a babbler
            # keeps acting forever, so the run ends when every *honest*
            # live node has halted.
            if byz:
                if all(node.halted for v, node in live.items() if v not in byz):
                    break
            elif all(node.halted for node in live.values()):
                break

            # Accounting + admission on the full round snapshot, before
            # any delivery — a rejected round leaves no partial state.
            messages = 0
            units_this_round = 0
            for v, outbox in outboxes.items():
                messages += len(outbox)
                if need_units or enforce is not None:
                    sender_routes = routes[v]
                    sender_uid = ids[v]
                    for port, payload in outbox.items():
                        units = payload_size(payload) if need_units else 0
                        units_this_round += units
                        if enforce is not None:
                            enforce(
                                round_index,
                                sender_uid,
                                sender_routes[port][0].uid,
                                units,
                            )

            # Delivery: rebind fresh inboxes for last round's receivers,
            # then move payloads by reference through the route index.
            for node in received:
                node.inbox = {}
            received = []
            if planner is None:
                for v, outbox in outboxes.items():
                    sender_routes = routes[v]
                    changed_ports = taint.get(v)
                    for port, payload in outbox.items():
                        if rng is not None and rng.random() < drop_p:
                            dropped += 1
                            continue
                        receiver, back_port = sender_routes[port]
                        if receiver.vertex in crashed:
                            swallowed += 1
                            continue
                        if (
                            changed_ports is not None
                            and port in changed_ports
                            and receiver.vertex not in byz
                        ):
                            detections[v] += 1
                        if not receiver.inbox:
                            received.append(receiver)
                        receiver.inbox[back_port] = payload
            else:
                # Planned delivery: queue this round's sends with their
                # scheduler-chosen delays, then hand over everything due
                # in the scheduler's chosen order.
                for v, outbox in outboxes.items():
                    sender_routes = routes[v]
                    sender_uid = ids[v]
                    changed_ports = taint.get(v)
                    for port, payload in outbox.items():
                        wait = planner.delay(
                            round_index, seq, sender_uid, sender_routes[port][0].uid
                        )
                        if wait > 0:
                            delayed += 1
                        pending.append(
                            PendingMessage(
                                queued_round=round_index,
                                seq=seq,
                                sender=v,
                                port=port,
                                payload=payload,
                                due_round=round_index + wait,
                                tainted=bool(
                                    changed_ports is not None
                                    and port in changed_ports
                                ),
                            )
                        )
                        seq += 1
                due = [m for m in pending if m.due_round <= round_index]
                if due:
                    pending[:] = [m for m in pending if m.due_round > round_index]
                for message in planner.order(due):
                    if rng is not None and rng.random() < drop_p:
                        dropped += 1
                        continue
                    receiver, back_port = routes[message.sender][message.port]
                    if receiver.vertex in crashed:
                        swallowed += 1
                        continue
                    if message.tainted and receiver.vertex not in byz:
                        detections[message.sender] += 1
                    if not receiver.inbox:
                        received.append(receiver)
                    receiver.inbox[back_port] = message.payload

            rounds = round_index
            if record:
                total_messages += messages
                total_payload += units_this_round
                if round_stats is not None:
                    round_stats.append(
                        RoundStats(
                            round_index=round_index,
                            messages=messages,
                            payload_units=units_this_round,
                        )
                    )

            outboxes = {}
            if byz:
                taint = {}
            for v, node in list(live.items()) if shielded else live.items():
                if node.halted:
                    continue
                ctx = NodeContext(node)
                if shielded:
                    try:
                        algorithms[v].on_round(ctx)
                    except Exception:
                        failed.append(v)
                        crashed.add(v)
                        live.pop(v)
                        algorithms.pop(v, None)
                        continue
                else:
                    algorithms[v].on_round(ctx)
                if ctx.outbox and not node.halted:
                    outboxes[v] = ctx.outbox
                if v in byz:
                    taint[v] = self._shims[v].last_changed
        else:
            if not shielded:
                raise RuntimeError(
                    f"algorithm did not halt within {self.max_rounds} rounds"
                )
            timed_out = True

        suspicion: dict[Vertex, dict] = {}
        for v in sorted(byz, key=repr):
            shim = self._shims.get(v)
            suspicion[v] = {
                "behavior": byz[v],
                "deviations": shim.deviations if shim is not None else 0,
                "detections": detections.get(v, 0),
            }
        return EngineResult(
            outputs=self.network.outputs(),
            rounds=rounds,
            total_messages=total_messages,
            total_payload=total_payload,
            round_stats=round_stats,
            dropped_messages=dropped,
            swallowed_messages=swallowed,
            crashed=tuple(self.faults.crashed) + tuple(crash_fired),
            delayed_messages=delayed,
            churn_events=churn_events,
            churn_lost_messages=churn_lost,
            suspicion=suspicion,
            failed=tuple(failed),
            timed_out=timed_out,
        )


def scheduler_for(
    model: str, budget: int = 4, *, delay: int = 2, seed: int = 0
) -> Scheduler:
    """Build the scheduler for a model name.

    ``budget`` only matters under ``"congest"``; ``delay`` (the
    per-message delay bound) and ``seed`` only under ``"async"`` /
    ``"adversarial"`` (the adversarial policy is deterministic and
    ignores the seed).
    """
    if model == "local":
        return LocalScheduler()
    if model == "congest":
        return CongestScheduler(budget)
    if model == "async":
        return AsyncScheduler(delay, seed)
    if model == "adversarial":
        return AdversarialScheduler(delay)
    raise ValueError(f"unknown model {model!r}; choose from {MODELS}")
