"""View gathering: the universal primitive of LOCAL algorithms.

Protocol (full-information flooding):

* round 1 — every node says *hello* with its identifier; afterwards a
  node knows its incident edges in identifier space;
* round k ≥ 2 — every node broadcasts everything it knows (vertex ids,
  edges, and the set of vertices whose edge lists it knows completely);

after ``k`` rounds the center's knowledge contains ``G[N^{k−1}[v]]``
exactly, so gathering for decision radius ``r`` costs ``r + 1`` rounds.
Message sizes are unbounded — that is the LOCAL model; the trace records
their volume for comparison purposes.
"""

from __future__ import annotations

from typing import Hashable

import networkx as nx

from repro.local_model.algorithm import LocalAlgorithm
from repro.local_model.instrumentation import Trace
from repro.local_model.network import Network
from repro.local_model.node import NodeContext
from repro.local_model.runtime import SynchronousRuntime
from repro.local_model.views import View
from repro.graphs.util import distances_from

Vertex = Hashable


def rounds_for_radius(radius: int) -> int:
    """Communication rounds needed for an exact radius-``radius`` view."""
    if radius < 0:
        raise ValueError("radius must be non-negative")
    return radius + 1


class GatherAlgorithm(LocalAlgorithm):
    """Flood knowledge for ``radius + 1`` rounds, output a :class:`View`."""

    def __init__(self, radius: int):
        if radius < 0:
            raise ValueError("radius must be non-negative")
        self.radius = radius

    def on_init(self, ctx: NodeContext) -> None:
        ctx.state["verts"] = {ctx.uid}
        ctx.state["edges"] = set()
        ctx.state["full"] = set()
        ctx.state["round"] = 0
        ctx.broadcast(("hello", ctx.uid))

    def on_round(self, ctx: NodeContext) -> None:
        ctx.state["round"] += 1
        round_index = ctx.state["round"]
        verts: set[int] = ctx.state["verts"]
        edges: set[frozenset[int]] = ctx.state["edges"]
        full: set[int] = ctx.state["full"]

        if round_index == 1:
            for _, payload in ctx.inbox.items():
                _, neighbor_uid = payload
                verts.add(neighbor_uid)
                edges.add(frozenset((ctx.uid, neighbor_uid)))
            full.add(ctx.uid)
        else:
            for payload in ctx.inbox.values():
                other_verts, other_edges, other_full = payload
                verts |= other_verts
                edges |= other_edges
                full |= other_full

        if round_index >= rounds_for_radius(self.radius):
            ctx.halt(self._build_view(ctx.uid, verts, edges))
            return
        ctx.broadcast((set(verts), set(edges), set(full)))

    def _build_view(self, uid: int, verts: set[int], edges: set[frozenset[int]]) -> View:
        known = nx.Graph()
        known.add_nodes_from(verts)
        known.add_edges_from(tuple(e) for e in edges)
        dist = distances_from(known, uid)
        return View(center=uid, graph=known, complete_radius=self.radius, dist=dist)


def gather_views(
    graph: nx.Graph,
    radius: int,
    ids: dict[Vertex, int] | None = None,
    max_rounds: int | None = None,
) -> tuple[dict[int, View], Trace]:
    """Simulate gathering on ``graph``; returns uid-keyed views and the trace."""
    network = Network(graph, ids)
    limit = max_rounds if max_rounds is not None else rounds_for_radius(radius) + 1
    runtime = SynchronousRuntime(network, max_rounds=limit)
    result = runtime.run(lambda: GatherAlgorithm(radius))
    views = {network.ids[v]: view for v, view in result.outputs.items()}
    return views, result.trace
