"""The simulated network: nodes plus port-level connectivity."""

from __future__ import annotations

from typing import Hashable

import networkx as nx

from repro.graphs.kernel import GraphKernel, invalidate_kernel, kernel_for
from repro.local_model.identifiers import identity_ids
from repro.local_model.node import Node

Vertex = Hashable


class Network:
    """Port-numbered network built from an undirected graph.

    Port order is the sorted order of neighbor labels — any fixed order
    is fine in the LOCAL model; sorting keeps simulations reproducible.
    The ordering comes from the graph's :class:`GraphKernel` (kernel
    index order *is* repr-sorted order), so ports are read straight off
    the CSR rows instead of re-sorting every adjacency list.
    """

    def __init__(self, graph: nx.Graph, ids: dict[Vertex, int] | None = None):
        if graph.number_of_nodes() == 0:
            raise ValueError("network needs at least one node")
        if any(u == v for u, v in graph.edges):
            raise ValueError("self-loops are not allowed")
        self.graph = graph
        self.kernel: GraphKernel = kernel_for(graph)
        self.ids = ids if ids is not None else identity_ids(graph)
        if set(self.ids) != set(graph.nodes):
            raise ValueError("identifier assignment must cover exactly V(G)")
        if len(set(self.ids.values())) != len(self.ids):
            raise ValueError("identifiers must be unique")
        labels = self.kernel.labels
        index_of = self.kernel.index_of
        self.nodes: dict[Vertex, Node] = {}
        # graph.nodes order (not kernel order) keeps the node-dict
        # iteration order — and with it the fault-plan RNG pairing —
        # identical to the historical runtime.
        for v in graph.nodes:
            ports = [labels[j] for j in self.kernel.neighbor_row(index_of[v])]
            self.nodes[v] = Node(vertex=v, uid=self.ids[v], ports=ports)
        # port_back[v][u] = the port of u that leads back to v; built
        # lazily — the engine routes through the kernel's CSR reverse
        # slots and never touches these dictionaries.
        self._port_of: dict[Vertex, dict[Vertex, int]] | None = None

    @property
    def size(self) -> int:
        return len(self.nodes)

    def port_toward(self, node: Vertex, neighbor: Vertex) -> int:
        """The port of ``node`` whose link leads to ``neighbor``."""
        if self._port_of is None:
            self._port_of = {
                v: {u: p for p, u in enumerate(n.ports)}
                for v, n in self.nodes.items()
            }
        return self._port_of[node][neighbor]

    def deliver(self, outboxes: dict[Vertex, dict[int, object]]) -> int:
        """Move queued messages into destination inboxes; returns count.

        All deliveries are simultaneous (synchronous rounds): inboxes are
        cleared first, then filled from the snapshot of outboxes.
        """
        for node in self.nodes.values():
            node.inbox = {}
        delivered = 0
        for vertex, outbox in outboxes.items():
            sender = self.nodes[vertex]
            for port, payload in outbox.items():
                neighbor = sender.ports[port]
                back_port = self.port_toward(neighbor, vertex)
                self.nodes[neighbor].inbox[back_port] = payload
                delivered += 1
        return delivered

    def apply_churn(self, events) -> tuple[set, list, list]:
        """Apply one round's churn events; returns (changed, joined, left).

        Mutates the underlying graph, then goes through the kernel
        mutation contract — ``invalidate_kernel`` on every exit path,
        fresh ``kernel_for`` — so under ``REPRO_KERNEL_GUARD=1`` no
        stale CSR can survive a churn round.  Port lists are re-derived
        *incrementally*: only vertices whose adjacency actually changed
        (``changed``) get their ports rebuilt, in place on the existing
        :class:`Node` objects, so untouched delivery routes stay valid.

        ``joined`` vertices get fresh nodes with new unique identifiers
        (allocated past the current maximum, in event order); ``left``
        vertices are removed from the network entirely — their outputs,
        if any, no longer exist.  The caller (the engine) owns route
        rebuilding and message cleanup.
        """
        graph = self.graph
        changed: set[Vertex] = set()
        joined: list[Vertex] = []
        left: list[Vertex] = []
        try:
            for event in events:
                kind = event.kind
                if kind == "add_edge":
                    graph.add_edge(event.u, event.v)
                    changed.update((event.u, event.v))
                elif kind == "del_edge":
                    graph.remove_edge(event.u, event.v)
                    changed.update((event.u, event.v))
                elif kind == "join":
                    graph.add_node(event.u)
                    joined.append(event.u)
                    changed.add(event.u)
                    if event.v is not None:
                        graph.add_edge(event.u, event.v)
                        changed.add(event.v)
                else:  # leave
                    changed.update(graph.neighbors(event.u))
                    graph.remove_node(event.u)
                    left.append(event.u)
                    changed.discard(event.u)
        finally:
            invalidate_kernel(graph)
        self.kernel = kernel_for(graph)
        changed.difference_update(set(left) - set(joined))
        for v in left:
            self.nodes.pop(v, None)
            self.ids.pop(v, None)
        next_uid = max(self.ids.values(), default=-1) + 1
        for v in joined:
            self.ids[v] = next_uid
            next_uid += 1
        labels = self.kernel.labels
        index_of = self.kernel.index_of
        for v in joined:
            ports = [labels[j] for j in self.kernel.neighbor_row(index_of[v])]
            self.nodes[v] = Node(vertex=v, uid=self.ids[v], ports=ports)
        for v in changed:
            if v in self.nodes and v not in joined:
                self.nodes[v].ports = [
                    labels[j] for j in self.kernel.neighbor_row(index_of[v])
                ]
        self._port_of = None
        return changed, joined, left

    def outputs(self) -> dict[Vertex, object]:
        """Per-vertex outputs of halted nodes."""
        return {v: node.output for v, node in self.nodes.items() if node.halted}

    def uid_to_vertex(self) -> dict[int, Vertex]:
        return {uid: v for v, uid in self.ids.items()}
