"""Deprecated CONGEST-runtime wrapper over the unified engine.

The CONGEST cap is now a pluggable policy —
:class:`repro.local_model.engine.CongestScheduler` — on the same
:class:`~repro.local_model.engine.SimulationEngine` that runs LOCAL,
instead of a ``deliver``-patching subclass of the old runtime.
:class:`CongestRuntime` remains as a thin backward-compatible wrapper;
new code should use the engine directly or the
:func:`repro.api.simulate` front door with ``model="congest"``.

Running a LOCAL-hungry protocol under the cap fails fast with
:class:`MessageTooLargeError` (which reports sender, receiver, round,
size, and budget), while genuinely CONGEST-fit protocols (the degree
rule, distributed greedy) run unchanged.
"""

from __future__ import annotations

from typing import Hashable

from repro.local_model.engine import (
    CongestScheduler,
    MessageTooLargeError,
    SimulationEngine,
)
from repro.local_model.network import Network
from repro.local_model.runtime import RunResult, SynchronousRuntime

Vertex = Hashable

__all__ = ["CongestRuntime", "MessageTooLargeError", "runs_in_congest"]


class CongestRuntime(SynchronousRuntime):
    """Deprecated: synchronous rounds with per-message size enforcement."""

    def __init__(self, network: Network, ids_per_message: int = 4, max_rounds: int = 10_000):
        super().__init__(network, max_rounds=max_rounds)
        self._scheduler = CongestScheduler(ids_per_message)

    @property
    def ids_per_message(self) -> int:
        return self._scheduler.ids_per_message

    def _engine(self) -> SimulationEngine:
        return SimulationEngine(
            self.network, self._scheduler, max_rounds=self.max_rounds
        )


def runs_in_congest(
    graph, algorithm_factory, ids_per_message: int = 4, ids=None
) -> tuple[bool, RunResult | None]:
    """Try a protocol under CONGEST; returns (fits, result-or-None)."""
    network = Network(graph, ids)
    runtime = CongestRuntime(network, ids_per_message=ids_per_message)
    try:
        return True, runtime.run(algorithm_factory)
    except MessageTooLargeError:
        return False, None
