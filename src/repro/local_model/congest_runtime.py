"""A CONGEST-enforcing runtime: the LOCAL scheduler plus message caps.

The paper's algorithms assume LOCAL (unbounded messages).  To make the
contrast executable rather than rhetorical, this runtime *rejects* any
message whose payload exceeds the per-round budget of
``ids_per_message`` identifiers — running a LOCAL-hungry protocol under
it fails fast with :class:`MessageTooLargeError`, while genuinely
CONGEST-fit protocols (the degree rule, distributed greedy) run
unchanged.

This is an enforcement shim around :class:`SynchronousRuntime`; the
network, node and algorithm interfaces are identical.
"""

from __future__ import annotations

from typing import Callable, Hashable

from repro.local_model.instrumentation import payload_size
from repro.local_model.network import Network
from repro.local_model.node import NodeContext
from repro.local_model.runtime import RunResult, SynchronousRuntime

Vertex = Hashable


class MessageTooLargeError(RuntimeError):
    """A message exceeded the CONGEST budget."""

    def __init__(self, sender: int, units: int, budget: int):
        super().__init__(
            f"node {sender} sent a message of {units} units; CONGEST budget "
            f"is {budget} units per message"
        )
        self.sender = sender
        self.units = units
        self.budget = budget


class CongestRuntime(SynchronousRuntime):
    """Synchronous rounds with per-message size enforcement."""

    def __init__(self, network: Network, ids_per_message: int = 4, max_rounds: int = 10_000):
        super().__init__(network, max_rounds=max_rounds)
        if ids_per_message < 1:
            raise ValueError("budget must allow at least one identifier")
        self.ids_per_message = ids_per_message

    def run(self, algorithm_factory: Callable[[], object]) -> RunResult:
        original_deliver = self.network.deliver

        def checked_deliver(outboxes):
            for vertex, outbox in outboxes.items():
                for payload in outbox.values():
                    units = payload_size(payload)
                    if units > self.ids_per_message:
                        raise MessageTooLargeError(
                            self.network.ids[vertex], units, self.ids_per_message
                        )
            return original_deliver(outboxes)

        self.network.deliver = checked_deliver  # type: ignore[method-assign]
        try:
            return super().run(algorithm_factory)
        finally:
            self.network.deliver = original_deliver  # type: ignore[method-assign]


def runs_in_congest(
    graph, algorithm_factory, ids_per_message: int = 4, ids=None
) -> tuple[bool, RunResult | None]:
    """Try a protocol under CONGEST; returns (fits, result-or-None)."""
    network = Network(graph, ids)
    runtime = CongestRuntime(network, ids_per_message=ids_per_message)
    try:
        return True, runtime.run(algorithm_factory)
    except MessageTooLargeError:
        return False, None
