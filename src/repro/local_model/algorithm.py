"""Per-node algorithm interfaces for the LOCAL simulator.

:class:`LocalAlgorithm` is the raw interface: per-node ``on_init`` and
``on_round`` callbacks that see only a :class:`~repro.local_model.node.
NodeContext` (identifier, degree, mailboxes).

:class:`ViewAlgorithm` is the pattern every algorithm in the paper fits:
*gather the radius-r view, then decide locally*.  Subclasses declare a
radius and implement ``decide(view)``; the harness composes them with
the gathering protocol and charges ``r + 1`` communication rounds (the
``+1`` pays for learning the edges among the outermost vertices, cf.
footnote 3 of the paper: even "0-round" statements need a round for a
vertex to count its neighbors).
"""

from __future__ import annotations

import abc
from typing import Any

from repro.local_model.node import NodeContext
from repro.local_model.views import View


class LocalAlgorithm(abc.ABC):
    """Raw synchronous message-passing algorithm, instantiated per node."""

    @abc.abstractmethod
    def on_init(self, ctx: NodeContext) -> None:
        """Round 0 setup: may queue the first messages via ``ctx``."""

    @abc.abstractmethod
    def on_round(self, ctx: NodeContext) -> None:
        """One synchronous round: read ``ctx.inbox``, update state, send.

        Call ``ctx.halt(output)`` to finish; a round where every node has
        halted ends the simulation.
        """


class ViewAlgorithm(abc.ABC):
    """Gather-then-decide algorithm: the shape of all paper algorithms."""

    @property
    @abc.abstractmethod
    def radius(self) -> int:
        """View radius r: the node decides from ``G[N^r[v]]`` plus ids."""

    @abc.abstractmethod
    def decide(self, view: View) -> Any:
        """Pure local decision given the gathered view.

        Must be deterministic and depend only on the view (the model's
        consistency requirement: two nodes with the same view decide the
        same way).
        """

    def run_on_views(self, views: dict[int, View]) -> dict[int, Any]:
        """Apply :meth:`decide` to each node's view (uid-keyed)."""
        return {uid: self.decide(view) for uid, view in views.items()}
