"""CONGEST-model accounting: would a protocol fit in O(log n) bits?

The paper works in LOCAL, where messages are unbounded; the CONGEST
model caps each message at ``B = O(log n)`` bits.  The simulator's
traces record payload volume, so we can report *which* of the
reproduced algorithms would survive the cap:

* the 3-round D2 protocol sends closed neighborhoods — Θ(Δ log n) bits,
  CONGEST-feasible only for bounded degree;
* the degree rule sends O(log n) — CONGEST-feasible outright;
* view gathering for radius r sends whole subgraphs — firmly LOCAL.

:func:`congest_report` quantifies this per protocol run.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.local_model.instrumentation import Trace


@dataclass(frozen=True)
class CongestReport:
    """Worst-round message volume against the CONGEST budget."""

    n: int
    rounds: int
    max_message_units: float
    """Max per-message payload units in any round (units ≈ ids)."""
    budget_units: float
    """CONGEST allows O(log n) bits ≈ c identifiers per message."""

    @property
    def congest_feasible(self) -> bool:
        return self.max_message_units <= self.budget_units

    @property
    def overshoot(self) -> float:
        if self.budget_units == 0:
            return float("inf")
        return self.max_message_units / self.budget_units


def congest_budget_units(n: int, ids_per_message: int = 1) -> float:
    """The CONGEST cap, measured in identifiers per message.

    A message of ``B = c·log₂ n`` bits carries ``c`` identifiers of
    ``log₂ n`` bits; we use ``c = ids_per_message`` (default 1, the
    strictest classical reading).
    """
    if n < 2:
        return float(ids_per_message)
    return float(ids_per_message)


def trace_congest_report(
    graph: nx.Graph, trace: Trace, ids_per_message: int = 1
) -> CongestReport:
    """Build a report from a simulation trace.

    Per-message volume is approximated as the round's payload divided by
    its message count (the gathering protocol broadcasts uniformly, so
    the average is the maximum up to boundary effects).
    """
    n = graph.number_of_nodes()
    worst = 0.0
    for stats in trace.rounds:
        if stats.messages:
            worst = max(worst, stats.payload_units / stats.messages)
    return CongestReport(
        n=n,
        rounds=trace.round_count,
        max_message_units=worst,
        budget_units=congest_budget_units(n, ids_per_message),
    )


def gather_volume_model(n: int, radius: int, max_degree: int) -> float:
    """Analytic upper bound on per-message units for view gathering.

    After k rounds a node's knowledge holds at most ``Δ^k`` vertices and
    ``Δ^{k+1}`` edge entries; the final broadcast dominates.
    """
    if max_degree <= 1:
        return float(radius + 2)
    return float(min(n, max_degree ** radius) * (max_degree + 1))
