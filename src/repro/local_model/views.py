"""The knowledge object produced by view gathering.

After ``k`` communication rounds a vertex has heard, transitively, the
identifiers and incident-edge lists of all vertices at distance at most
``k − 1``; hence it knows

* every vertex id within distance ``k``, and
* every edge with at least one endpoint at distance ≤ ``k − 1``,

which determines the induced subgraph ``G[N^r[v]]`` exactly for every
``r ≤ k − 1``.  A :class:`View` records that knowledge in *identifier
space* — views never contain simulator vertex labels, so decision
functions cannot cheat.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.graphs.util import ball


@dataclass
class View:
    """Radius-``complete_radius`` knowledge of one node, in id space."""

    center: int
    """The owning node's identifier."""
    graph: nx.Graph
    """All vertices/edges heard of (ids).  Edges incident to vertices at
    distance exactly ``complete_radius + 1`` may be missing — use
    :meth:`known_ball` for exact induced subgraphs."""
    complete_radius: int
    """Largest r such that G[N^r[center]] is known exactly."""
    dist: dict[int, int] = field(default_factory=dict)
    """Distances from the center (within the known graph)."""

    def known_ball(self, r: int) -> nx.Graph:
        """Exact induced subgraph ``G[N^r[center]]`` for ``r ≤ complete_radius``."""
        if r > self.complete_radius:
            raise ValueError(
                f"view of radius {self.complete_radius} cannot answer radius {r}"
            )
        return self.graph.subgraph(ball(self.graph, self.center, r))

    def knows_whole_component(self) -> bool:
        """True when the view provably contains its entire component.

        Holds when every known vertex is strictly inside the complete
        radius — then nothing new can hang off the boundary.
        """
        return all(d < self.complete_radius for d in self.dist.values())

    def neighbors(self) -> set[int]:
        return set(self.graph.neighbors(self.center))
