"""Deprecated LOCAL-runtime wrapper over the unified engine.

The synchronous round loop now lives in
:class:`repro.local_model.engine.SimulationEngine`, where LOCAL and
CONGEST are pluggable :class:`~repro.local_model.engine.Scheduler`
policies of one engine.  :class:`SynchronousRuntime` is kept as a thin
backward-compatible wrapper (LOCAL scheduler, full trace); new code
should drive the engine directly or go through the
:func:`repro.api.simulate` front door.

Delivery is immutable-by-convention: payloads move by reference with no
per-round defensive copies — see the contract in
:mod:`repro.local_model.engine` and :class:`~repro.local_model.node.
NodeContext`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable

from repro.local_model.algorithm import LocalAlgorithm
from repro.local_model.engine import SimulationEngine
from repro.local_model.instrumentation import Trace
from repro.local_model.network import Network

Vertex = Hashable


@dataclass
class RunResult:
    """Outcome of one simulation."""

    outputs: dict[Vertex, object]
    """Per-vertex final outputs (vertex labels are simulator-side)."""
    trace: Trace

    @property
    def rounds(self) -> int:
        return self.trace.round_count


class SynchronousRuntime:
    """Deprecated: the LOCAL-model engine behind the historical name.

    Equivalent to ``SimulationEngine(network, LocalScheduler(),
    trace="full")``; behavior (round semantics, trace accounting, the
    round-limit raise) is unchanged.
    """

    def __init__(self, network: Network, max_rounds: int = 10_000):
        self.network = network
        self.max_rounds = max_rounds

    def _engine(self) -> SimulationEngine:
        return SimulationEngine(self.network, max_rounds=self.max_rounds)

    def run(self, algorithm_factory: Callable[[], LocalAlgorithm]) -> RunResult:
        """Run to completion; returns outputs and the round/message trace."""
        result = self._engine().run(algorithm_factory)
        return RunResult(outputs=result.outputs, trace=result.trace)


def run_algorithm(
    network: Network,
    algorithm_factory: Callable[[], LocalAlgorithm],
    max_rounds: int = 10_000,
) -> RunResult:
    """One-shot convenience wrapper around :class:`SynchronousRuntime`."""
    return SynchronousRuntime(network, max_rounds=max_rounds).run(algorithm_factory)
