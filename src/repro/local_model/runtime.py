"""Synchronous scheduler for the LOCAL simulator.

Executes a :class:`~repro.local_model.algorithm.LocalAlgorithm` on a
:class:`~repro.local_model.network.Network`: every round, all nodes act
on the previous round's inbox, then messages are delivered
simultaneously.  The run ends when every node has halted (or the round
limit trips, which raises — an algorithm that cannot bound its rounds is
not a LOCAL algorithm).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Callable, Hashable

from repro.local_model.algorithm import LocalAlgorithm
from repro.local_model.instrumentation import RoundStats, Trace, payload_size
from repro.local_model.network import Network
from repro.local_model.node import NodeContext

Vertex = Hashable


@dataclass
class RunResult:
    """Outcome of one simulation."""

    outputs: dict[Vertex, object]
    """Per-vertex final outputs (vertex labels are simulator-side)."""
    trace: Trace

    @property
    def rounds(self) -> int:
        return self.trace.round_count


class SynchronousRuntime:
    """Drives one algorithm instance per node through synchronous rounds."""

    def __init__(self, network: Network, max_rounds: int = 10_000):
        self.network = network
        self.max_rounds = max_rounds

    def run(self, algorithm_factory: Callable[[], LocalAlgorithm]) -> RunResult:
        """Run to completion; returns outputs and the round/message trace."""
        algorithms = {v: algorithm_factory() for v in self.network.nodes}
        trace = Trace()

        # Initialisation (round 0 messages are queued here).
        outboxes: dict[Vertex, dict[int, object]] = {}
        for v, node in self.network.nodes.items():
            ctx = NodeContext(node)
            algorithms[v].on_init(ctx)
            if ctx.outbox:
                outboxes[v] = ctx.outbox

        for round_index in range(1, self.max_rounds + 1):
            if all(node.halted for node in self.network.nodes.values()):
                break
            messages = sum(len(box) for box in outboxes.values())
            units = sum(
                payload_size(payload)
                for box in outboxes.values()
                for payload in box.values()
            )
            self.network.deliver(outboxes)
            trace.rounds.append(
                RoundStats(round_index=round_index, messages=messages, payload_units=units)
            )
            outboxes = {}
            for v, node in self.network.nodes.items():
                if node.halted:
                    continue
                ctx = NodeContext(node)
                algorithms[v].on_round(ctx)
                if ctx.outbox and not node.halted:
                    outboxes[v] = ctx.outbox
        else:
            raise RuntimeError(
                f"algorithm did not halt within {self.max_rounds} rounds"
            )
        return RunResult(outputs=self.network.outputs(), trace=trace)


def run_algorithm(
    network: Network,
    algorithm_factory: Callable[[], LocalAlgorithm],
    max_rounds: int = 10_000,
) -> RunResult:
    """One-shot convenience wrapper around :class:`SynchronousRuntime`."""
    return SynchronousRuntime(network, max_rounds=max_rounds).run(algorithm_factory)
