"""Hand-rolled message-passing protocols for the constant-round algorithms.

The view-gathering reduction ("collect ``G[N^r[v]]``, then decide") is
the standard executable semantics of a LOCAL algorithm, but the paper's
constant-round results deserve protocols written the way a systems
implementation would send them — explicit messages per round, no
generic flooding.  This module implements them:

* :class:`TakeAllProtocol` — the 0-round "every vertex joins" baseline;

* :class:`DegreeTwoProtocol` — the folklore tree rule (footnote 3),
  2 rounds: round 1 *hello*, round 2 decide by received-message count;
* :class:`D2Protocol` — Theorem 4.4 in exactly 3 rounds: round 1
  exchange identifiers, round 2 exchange closed neighborhoods (which
  also runs the twin election), round 3 decide ``γ(v) ≥ 2`` against the
  surviving neighbors;
* :class:`TwinElectionProtocol` — just the twin election: after 2
  rounds each vertex knows whether it is its twin class's
  minimum-identifier representative.

Each protocol's output is tested against the centralized reference
implementation on every family.
"""

from __future__ import annotations

from typing import Hashable

from repro.local_model.algorithm import LocalAlgorithm
from repro.local_model.node import NodeContext

Vertex = Hashable


class TakeAllProtocol(LocalAlgorithm):
    """The 0-round folklore baseline: every vertex joins immediately.

    Halts at initialisation without sending anything — the executable
    form of Table 1's "take all" row (``t``-approximation on
    ``K_{1,t}``-minor-free graphs).
    """

    def on_init(self, ctx: NodeContext) -> None:
        ctx.halt(True)

    def on_round(self, ctx: NodeContext) -> None:  # pragma: no cover
        pass


class DegreeTwoProtocol(LocalAlgorithm):
    """Output ``True`` iff the node has degree ≥ 2 (else the smallest id
    of its component when it can tell it is in a K_1/K_2 component).

    On trees with ≥ 3 vertices this is the 3-approximation of Table 1's
    first row.  Components of size ≤ 2 are detected locally: degree 0,
    or degree 1 with a degree-1 neighbor.
    """

    def on_init(self, ctx: NodeContext) -> None:
        ctx.broadcast(("hello", ctx.uid, ctx.degree))

    def on_round(self, ctx: NodeContext) -> None:
        if ctx.degree >= 2:
            ctx.halt(True)
            return
        if ctx.degree == 0:
            ctx.halt(True)  # isolated vertex must dominate itself
            return
        hello = next(iter(ctx.inbox.values()), None)
        if hello is None:
            # The neighbor's hello was lost (fault injection): join
            # conservatively instead of guessing the component shape.
            ctx.halt(True)
            return
        (_, neighbor_uid, neighbor_degree) = hello
        if neighbor_degree == 1:
            # K_2 component: the smaller identifier joins.
            ctx.halt(ctx.uid < neighbor_uid)
        else:
            ctx.halt(False)


class TwinElectionProtocol(LocalAlgorithm):
    """Two rounds: learn ``N[u]`` of every neighbor, elect per-class rep.

    Output: ``(is_representative, representative_uid)``.  True twins are
    adjacent and share closed neighborhoods, so one exchange of id-lists
    suffices; the minimum identifier in the class wins.
    """

    def on_init(self, ctx: NodeContext) -> None:
        ctx.broadcast(("id", ctx.uid))

    def on_round(self, ctx: NodeContext) -> None:
        round_no = ctx.state.setdefault("round", 0) + 1
        ctx.state["round"] = round_no
        if round_no == 1:
            neighbor_ids = {port: payload[1] for port, payload in ctx.inbox.items()}
            ctx.state["neighbor_ids"] = neighbor_ids
            closed = frozenset(neighbor_ids.values()) | {ctx.uid}
            ctx.state["closed"] = closed
            ctx.broadcast(("nbhd", ctx.uid, closed))
            return
        closed = ctx.state["closed"]
        twin_class = {ctx.uid}
        for _, (_, neighbor_uid, neighbor_closed) in ctx.inbox.items():
            if neighbor_closed == closed:
                twin_class.add(neighbor_uid)
        representative = min(twin_class)
        ctx.halt((representative == ctx.uid, representative))


class D2Protocol(LocalAlgorithm):
    """Theorem 4.4 in three explicit rounds.

    Round 1: exchange identifiers.  Round 2: exchange closed
    neighborhoods; each node now knows its twin class and every
    neighbor's ``N[u]``.  Round 3: exchange the twin-election outcome so
    the γ-test runs against the *twin-free* graph; then decide
    ``γ(v) ≥ 2``: ``v`` joins unless some surviving ``u ∈ N(v)`` has
    ``N[v] ⊆ N[u]`` in the reduced graph.

    Output: ``True``/``False`` membership in the dominating set.
    Non-representative twins always output ``False``.
    """

    def on_init(self, ctx: NodeContext) -> None:
        ctx.broadcast(("id", ctx.uid))

    def on_round(self, ctx: NodeContext) -> None:
        round_no = ctx.state.setdefault("round", 0) + 1
        ctx.state["round"] = round_no

        if round_no == 1:
            neighbor_ids = {port: payload[1] for port, payload in ctx.inbox.items()}
            ctx.state["neighbor_ids"] = neighbor_ids
            closed = frozenset(neighbor_ids.values()) | {ctx.uid}
            ctx.state["closed"] = closed
            ctx.broadcast(("nbhd", ctx.uid, closed))
            return

        if round_no == 2:
            closed = ctx.state["closed"]
            neighbor_closed: dict[int, frozenset[int]] = {}
            twin_class = {ctx.uid}
            for _, (_, neighbor_uid, nc) in ctx.inbox.items():
                neighbor_closed[neighbor_uid] = nc
                if nc == closed:
                    twin_class.add(neighbor_uid)
            ctx.state["neighbor_closed"] = neighbor_closed
            representative = min(twin_class)
            ctx.state["is_rep"] = representative == ctx.uid
            # Share which of my twin class survived, plus my own class,
            # so neighbors can compute reduced neighborhoods.
            ctx.broadcast(("twins", ctx.uid, frozenset(twin_class)))
            return

        # Round 3: compute the γ-test on the twin-reduced graph.
        if not ctx.state["is_rep"]:
            ctx.halt(False)
            return
        removed: set[int] = set()
        for _, (_, neighbor_uid, twin_class) in ctx.inbox.items():
            representative = min(twin_class)
            removed |= {u for u in twin_class if u != representative}
        my_closed = ctx.state["closed"] - removed
        for neighbor_uid, neighbor_closed in ctx.state["neighbor_closed"].items():
            if neighbor_uid in removed:
                continue
            if my_closed <= (neighbor_closed - removed):
                ctx.halt(False)
                return
        ctx.halt(True)


def run_protocol_dominating_set(graph, protocol_factory, ids=None):
    """Run a membership protocol; return (chosen vertices, rounds)."""
    from repro.local_model.network import Network
    from repro.local_model.runtime import SynchronousRuntime

    network = Network(graph, ids)
    result = SynchronousRuntime(network, max_rounds=20).run(protocol_factory)
    chosen = {v for v, output in result.outputs.items() if output is True}
    return chosen, result.rounds
