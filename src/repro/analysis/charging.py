"""The explicit charging function of Lemma 3.3's proof (Claim 5.10/5.11).

The proof maps every interesting vertex ``u ∉ D`` to a dominator
``q(u) ∈ D`` that lies within distance 5 and "below" ``u`` in the 2-cut
forest, then bounds the in-degree of ``q``.  This module constructs a
concrete such map on real graphs and measures its profile:

* :func:`build_charging` — greedy realisation of ``q``: each interesting
  vertex charges its nearest dominator (ties to the smallest id);
* :func:`charging_profile` — the quantities the proof bounds: the
  maximum charge any dominator receives and the maximum charging
  distance (Claim 5.11: ≤ 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

import networkx as nx

from repro.core.interesting import globally_interesting_vertices
from repro.graphs.util import distances_from
from repro.solvers.exact import minimum_dominating_set

Vertex = Hashable


@dataclass(frozen=True)
class ChargingProfile:
    """Measured charging statistics for one graph."""

    interesting_count: int
    dominator_count: int
    max_charge: int
    max_distance: int

    @property
    def average_charge(self) -> float:
        if not self.dominator_count:
            return 0.0
        return self.interesting_count / self.dominator_count


def build_charging(
    graph: nx.Graph, dominating_set: set[Vertex] | None = None
) -> dict[Vertex, Vertex]:
    """Map every interesting vertex to its nearest dominator.

    Vertices already in the dominating set charge themselves (the proof
    handles them separately via ``|C ∩ D| ≤ |D|``).
    """
    if dominating_set is None:
        dominating_set = minimum_dominating_set(graph)
    charging: dict[Vertex, Vertex] = {}
    for u in sorted(globally_interesting_vertices(graph), key=repr):
        if u in dominating_set:
            charging[u] = u
            continue
        dist = distances_from(graph, u)
        best = min(
            dominating_set,
            key=lambda d: (dist.get(d, float("inf")), repr(d)),
        )
        charging[u] = best
    return charging


def charging_profile(
    graph: nx.Graph, dominating_set: set[Vertex] | None = None
) -> ChargingProfile:
    """Measure the charge map's in-degree and reach."""
    if dominating_set is None:
        dominating_set = minimum_dominating_set(graph)
    charging = build_charging(graph, dominating_set)
    in_degree: dict[Vertex, int] = {}
    max_distance = 0
    for u, d in charging.items():
        in_degree[d] = in_degree.get(d, 0) + 1
        if u != d:
            dist = distances_from(graph, u)
            max_distance = max(max_distance, dist[d])
    return ChargingProfile(
        interesting_count=len(charging),
        dominator_count=len(dominating_set),
        max_charge=max(in_degree.values(), default=0),
        max_distance=max_distance,
    )
