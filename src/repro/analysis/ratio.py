"""Approximation-ratio measurement against exact optima."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable

import networkx as nx

from repro.analysis.domination import is_dominating_set
from repro.solvers.exact import minimum_dominating_set
from repro.solvers.vc import is_vertex_cover, minimum_vertex_cover

Vertex = Hashable


@dataclass(frozen=True)
class RatioReport:
    """Outcome of one ratio measurement."""

    algorithm_size: int
    optimum_size: int
    valid: bool

    @property
    def ratio(self) -> float:
        """|ALG| / |OPT| (1.0 when both are empty)."""
        if self.optimum_size == 0:
            return 1.0 if self.algorithm_size == 0 else float("inf")
        return self.algorithm_size / self.optimum_size


def measure_ratio(
    graph: nx.Graph,
    solution: Iterable[Vertex],
    optimum: set[Vertex] | None = None,
) -> RatioReport:
    """Measure a dominating-set solution against the exact optimum.

    ``optimum`` can be precomputed (Table 1 reuses it across algorithms).
    """
    solution_set = set(solution)
    if optimum is None:
        optimum = minimum_dominating_set(graph)
    return RatioReport(
        algorithm_size=len(solution_set),
        optimum_size=len(optimum),
        valid=is_dominating_set(graph, solution_set),
    )


def measure_vc_ratio(
    graph: nx.Graph,
    solution: Iterable[Vertex],
    optimum: set[Vertex] | None = None,
) -> RatioReport:
    """Measure a vertex-cover solution against the exact optimum."""
    solution_set = set(solution)
    if optimum is None:
        optimum = minimum_vertex_cover(graph)
    return RatioReport(
        algorithm_size=len(solution_set),
        optimum_size=len(optimum),
        valid=is_vertex_cover(graph, solution_set),
    )
