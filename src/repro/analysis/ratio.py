"""Approximation-ratio measurement against exact optima."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable

import networkx as nx

from repro.analysis.domination import is_dominating_set
from repro.solvers.opt_cache import optimum_solution
from repro.solvers.vc import is_vertex_cover

Vertex = Hashable


@dataclass(frozen=True)
class RatioReport:
    """Outcome of one ratio measurement."""

    algorithm_size: int
    optimum_size: int
    valid: bool

    @property
    def ratio(self) -> float:
        """|ALG| / |OPT| (1.0 when both are empty)."""
        if self.optimum_size == 0:
            return 1.0 if self.algorithm_size == 0 else float("inf")
        return self.algorithm_size / self.optimum_size


def measure_ratio(
    graph: nx.Graph,
    solution: Iterable[Vertex],
    optimum: set[Vertex] | None = None,
) -> RatioReport:
    """Measure a dominating-set solution against the exact optimum.

    ``optimum`` can be passed in precomputed; when omitted it comes from
    the per-instance OPT cache (:mod:`repro.solvers.opt_cache`), so
    repeated measurements on the same graph solve exactly once.
    """
    solution_set = set(solution)
    if optimum is None:
        optimum = optimum_solution(graph, "mds")
    return RatioReport(
        algorithm_size=len(solution_set),
        optimum_size=len(optimum),
        valid=is_dominating_set(graph, solution_set),
    )


def measure_vc_ratio(
    graph: nx.Graph,
    solution: Iterable[Vertex],
    optimum: set[Vertex] | None = None,
) -> RatioReport:
    """Measure a vertex-cover solution against the exact optimum (cached)."""
    solution_set = set(solution)
    if optimum is None:
        optimum = optimum_solution(graph, "mvc")
    return RatioReport(
        algorithm_size=len(solution_set),
        optimum_size=len(optimum),
        valid=is_vertex_cover(graph, solution_set),
    )
