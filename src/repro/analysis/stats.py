"""Tiny summary statistics for experiment series (no pandas)."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable


@dataclass(frozen=True)
class Summary:
    count: int
    mean: float
    maximum: float
    minimum: float
    stddev: float

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.3f} max={self.maximum:.3f} "
            f"min={self.minimum:.3f} sd={self.stddev:.3f}"
        )


def summarize(values: Iterable[float]) -> Summary:
    """Mean / extremes / standard deviation of a numeric series."""
    data = [float(v) for v in values]
    if not data:
        return Summary(count=0, mean=0.0, maximum=0.0, minimum=0.0, stddev=0.0)
    mean = sum(data) / len(data)
    variance = sum((v - mean) ** 2 for v in data) / len(data)
    return Summary(
        count=len(data),
        mean=mean,
        maximum=max(data),
        minimum=min(data),
        stddev=math.sqrt(variance),
    )
