"""Plain-text table rendering for experiment reports (no plotting deps)."""

from __future__ import annotations

from typing import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned monospace table.

    Numbers are formatted compactly (floats to 2 decimals); all columns
    are left-aligned except numeric ones, which are right-aligned.
    """

    def cell(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.2f}"
        return str(value)

    rendered = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, value in enumerate(row):
            widths[i] = max(widths[i], len(value))

    numeric = [
        all(
            isinstance(row[i], (int, float)) and not isinstance(row[i], bool)
            for row in rows
        )
        and bool(rows)
        for i in range(len(headers))
    ]

    def fmt_row(cells: Sequence[str]) -> str:
        parts = []
        for i, value in enumerate(cells):
            parts.append(value.rjust(widths[i]) if numeric[i] else value.ljust(widths[i]))
        return "  ".join(parts).rstrip()

    lines = [fmt_row(headers), fmt_row(["-" * w for w in widths])]
    lines.extend(fmt_row(row) for row in rendered)
    return "\n".join(lines)
