"""Validity checks, ratio measurement, and empirical lemma verification."""

from repro.analysis.domination import (
    is_dominating_set,
    is_b_dominating_set,
    undominated_vertices,
)
from repro.analysis.ratio import RatioReport, measure_ratio, measure_vc_ratio
from repro.analysis.lemmas import (
    lemma_3_2_report,
    lemma_3_3_report,
    lemma_4_2_report,
    lemma_5_17_minor,
    verify_lemma_5_18,
)
from repro.analysis.tables import format_table
from repro.analysis.stats import summarize

__all__ = [
    "is_dominating_set",
    "is_b_dominating_set",
    "undominated_vertices",
    "RatioReport",
    "measure_ratio",
    "measure_vc_ratio",
    "lemma_3_2_report",
    "lemma_3_3_report",
    "lemma_4_2_report",
    "lemma_5_17_minor",
    "verify_lemma_5_18",
    "format_table",
    "summarize",
]
