"""Executable verification of the paper's counting lemmas.

These turn the analysis (Sections 3 and 5) into measurements:

* :func:`lemma_3_2_report` — number of r-local 1-cuts vs the proven
  ``3(d+1)·MDS(G)`` budget;
* :func:`lemma_3_3_report` — number of r-interesting vertices vs
  ``22(d+1)·MDS(G)``;
* :func:`lemma_4_2_report` — diameters of the residual components the
  brute-force step must solve;
* :func:`lemma_5_17_minor` — the constructive minor ``H = (A ⊔ B)`` of
  Lemma 5.17 (branch sets around a dominating set, triangle pruning,
  Ore contraction), with its properties checked programmatically;
* :func:`verify_lemma_5_18` — the extremal inequality
  ``|A| ≤ (t−1)·|B|`` for ``K_{2,t}``-minor-free bipartite-minor
  instances (the content of Figure 1's preprocessing).

The proven budgets hold for the paper's radii; the reports also apply to
practical radii, where they answer "how tight are the constants
really?" (EXPERIMENTS.md collects the numbers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

import networkx as nx

from repro.core.d2 import d2_set
from repro.core.radii import RadiusPolicy
from repro.graphs.local_cuts import (
    interesting_vertices_of_cuts,
    local_one_cuts,
    local_two_cuts,
)
from repro.graphs.minors import largest_k2t_minor_singleton_hubs
from repro.graphs.twins import remove_true_twins
from repro.graphs.util import closed_neighborhood, closed_neighborhood_of_set, weak_diameter
from repro.solvers.exact import minimum_b_dominating_set, minimum_dominating_set
from repro.solvers.greedy import greedy_dominating_set

Vertex = Hashable


@dataclass(frozen=True)
class CountReport:
    """A measured count against a proven linear-in-MDS budget."""

    count: int
    mds: int
    budget_constant: int

    @property
    def budget(self) -> int:
        return self.budget_constant * self.mds

    @property
    def within_budget(self) -> bool:
        return self.count <= self.budget

    @property
    def constant_used(self) -> float:
        """The empirical constant ``count / MDS`` (0 when MDS is 0)."""
        return self.count / self.mds if self.mds else 0.0


def lemma_3_2_report(graph: nx.Graph, r: int, dimension: int = 1) -> CountReport:
    """Count r-local minimal 1-cuts; budget ``c_3.2(d) = 3(d+1)``."""
    count = len(local_one_cuts(graph, r))
    mds = len(minimum_dominating_set(graph))
    return CountReport(count=count, mds=mds, budget_constant=3 * (dimension + 1))


def lemma_3_3_report(graph: nx.Graph, r: int, dimension: int = 1) -> CountReport:
    """Count r-interesting vertices; budget ``c_3.3(d) = 22(d+1)``."""
    cuts = local_two_cuts(graph, r, minimal=True)
    count = len(interesting_vertices_of_cuts(graph, cuts, r))
    mds = len(minimum_dominating_set(graph))
    return CountReport(count=count, mds=mds, budget_constant=22 * (dimension + 1))


def lemma_5_2_check(graph: nx.Graph, regions: list[set[Vertex]]) -> bool:
    """Lemma 5.2: if the ``N[R_i]`` are pairwise disjoint then
    ``Σ MDS(G, R_i) ≤ MDS(G)``.

    Checks the premise and the inequality on concrete regions; raises
    ``ValueError`` when the premise fails (caller's bug, not a lemma
    violation).
    """
    neighborhoods = [closed_neighborhood_of_set(graph, region) for region in regions]
    for i, a in enumerate(neighborhoods):
        for b in neighborhoods[i + 1 :]:
            if a & b:
                raise ValueError("closed neighborhoods of the regions intersect")
    total = sum(len(minimum_b_dominating_set(graph, region)) for region in regions)
    return total <= len(minimum_dominating_set(graph))


def claim_5_3_report(graph: nx.Graph, probe: set[Vertex]) -> CountReport:
    """Claim 5.3: global minimal 1-cuts inside ``S`` number at most
    ``3 · MDS(G, N[S])`` (the block-cut-tree charging step)."""
    from repro.graphs.cuts import cut_vertices

    cuts_in_probe = cut_vertices(graph) & probe
    local_opt = minimum_b_dominating_set(
        graph, closed_neighborhood_of_set(graph, probe)
    )
    return CountReport(count=len(cuts_in_probe), mds=len(local_opt), budget_constant=3)


def vc_two_cut_report(graph: nx.Graph, r: int, dimension: int = 1) -> CountReport:
    """The MVC variant of Lemma 3.3 (Section 4's closing remark).

    Counts *all* vertices of r-local minimal 2-cuts — no interesting
    filter — against the minimum vertex cover.  The paper asserts a
    linear bound without stating its constant; we mirror ``22(d+1)``
    and record the measured constant (EXPERIMENTS.md reports it).
    """
    from repro.solvers.vc import minimum_vertex_cover

    cuts = local_two_cuts(graph, r, minimal=True)
    vertices = set().union(*cuts) if cuts else set()
    mvc = len(minimum_vertex_cover(graph))
    return CountReport(count=len(vertices), mds=mvc, budget_constant=22 * (dimension + 1))


def vc_one_cut_report(graph: nx.Graph, r: int, dimension: int = 1) -> CountReport:
    """The MVC variant of Lemma 3.2: local 1-cuts against MVC(G)."""
    from repro.solvers.vc import minimum_vertex_cover

    count = len(local_one_cuts(graph, r))
    mvc = len(minimum_vertex_cover(graph))
    return CountReport(count=count, mds=mvc, budget_constant=3 * (dimension + 1))


@dataclass(frozen=True)
class ResidualReport:
    """Lemma 4.2 measurement: the brute-force step's component geometry."""

    component_count: int
    max_diameter: int
    component_sizes: tuple[int, ...]


def lemma_4_2_report(graph: nx.Graph, policy: RadiusPolicy) -> ResidualReport:
    """Diameters of the components of ``G − (X ∪ I ∪ U)`` (twin-free)."""
    reduced, _ = remove_true_twins(graph)
    x_set = local_one_cuts(reduced, policy.one_cut_radius)
    cuts = local_two_cuts(reduced, policy.two_cut_radius, minimal=True)
    i_set = interesting_vertices_of_cuts(reduced, cuts, policy.two_cut_radius)
    taken = x_set | i_set
    dominated = closed_neighborhood_of_set(reduced, taken) if taken else set()
    u_set = {
        u for u in dominated - taken
        if closed_neighborhood(reduced, u) <= dominated
    }
    residual = set(reduced.nodes) - taken - u_set
    sizes, worst = [], 0
    components = list(nx.connected_components(reduced.subgraph(residual)))
    for component in components:
        sizes.append(len(component))
        worst = max(worst, weak_diameter(reduced.subgraph(component), component))
    return ResidualReport(
        component_count=len(components),
        max_diameter=worst,
        component_sizes=tuple(sorted(sizes)),
    )


@dataclass
class MinorReport:
    """The Lemma 5.17 construction and its verified properties."""

    minor: nx.Graph
    part_a: set[Vertex]
    part_b: set[Vertex]
    a_edgeless: bool
    min_degree_ok: bool
    size_guarantee_ok: bool
    d2_excess: int
    """``|(D2 ∩ S) - D|`` — the quantity ``|A|`` must be at least half of."""


def lemma_5_17_minor(graph: nx.Graph, targets: set[Vertex] | None = None) -> MinorReport:
    """Build the Lemma 5.17 minor ``H`` with parts ``A`` and ``B``.

    ``targets`` plays the role of ``S`` (defaults to ``V(G)``).  Branch
    sets grow around an exact minimum dominating set ``D``; triangles
    ``u, v, d`` with ``u, v ∈ A`` lose their ``uv`` edge; Ore's lemma
    (5.16) contracts a dominating half of the non-isolated part of
    ``H[A]`` into adjacent branch sets.  Properties are verified on the
    result rather than assumed.
    """
    if targets is None:
        targets = set(graph.nodes)
    d_set = sorted(minimum_dominating_set(graph), key=repr)
    d2 = d2_set(graph)
    a_initial = sorted((d2 & targets) - set(d_set), key=repr)

    # Branch sets b_i around each dominator, avoiding A and other dominators.
    assignment: dict[Vertex, int] = {}
    for i, d in enumerate(d_set):
        assignment[d] = i
    for i, d in enumerate(d_set):
        for w in sorted(graph.neighbors(d), key=repr):
            if w not in assignment and w not in a_initial:
                assignment[w] = i

    minor = nx.Graph()
    b_names = [("B", i) for i in range(len(d_set))]
    minor.add_nodes_from(b_names)
    minor.add_nodes_from(a_initial)
    for u, v in graph.edges:
        u_name = ("B", assignment[u]) if u in assignment else u
        v_name = ("B", assignment[v]) if v in assignment else v
        if u_name == v_name:
            continue
        if u_name in minor.nodes and v_name in minor.nodes:
            minor.add_edge(u_name, v_name)

    # Ore step: dominate the non-isolated part J of H[A], contract the
    # dominators into an adjacent branch set each.
    sub_a = minor.subgraph(a_initial)
    j_vertices = {v for v in a_initial if sub_a.degree(v) > 0}
    dominating_j = greedy_dominating_set(minor.subgraph(j_vertices)) if j_vertices else set()
    part_a = set(a_initial)
    for j in sorted(dominating_j, key=repr):
        b_neighbors = [n for n in minor.neighbors(j) if isinstance(n, tuple)]
        if b_neighbors:
            target = min(b_neighbors, key=repr)
            for n in list(minor.neighbors(j)):
                if n != target:
                    minor.add_edge(target, n)
        minor.remove_node(j)
        part_a.discard(j)

    # Delete remaining A–A edges (the paper's final cleanup).
    for u in sorted(part_a, key=repr):
        for v in sorted(part_a, key=repr):
            if minor.has_edge(u, v):
                minor.remove_edge(u, v)

    part_b = set(b_names)
    a_edgeless = not any(minor.has_edge(u, v) for u in part_a for v in part_a)
    min_degree_ok = all(minor.degree(a) >= 2 for a in part_a)
    size_ok = 2 * len(part_a) >= len(a_initial)
    return MinorReport(
        minor=minor,
        part_a=part_a,
        part_b=part_b,
        a_edgeless=a_edgeless,
        min_degree_ok=min_degree_ok,
        size_guarantee_ok=size_ok,
        d2_excess=len(a_initial),
    )


@dataclass(frozen=True)
class Lemma518Report:
    """Verification record for ``|A| ≤ (t−1)|B|``."""

    a_size: int
    b_size: int
    t: int
    premises_ok: bool
    inequality_ok: bool


def verify_lemma_5_18(
    minor: nx.Graph, part_a: set[Vertex], part_b: set[Vertex], t: int
) -> Lemma518Report:
    """Check the Lemma 5.18 inequality on a concrete ``(A ⊔ B)`` minor.

    Premises: ``H[A]`` edgeless, every ``a ∈ A`` of degree ≥ 2, and ``H``
    ``K_{2,t}``-minor-free (checked with the singleton-hub detector — a
    failed check means the instance is out of the lemma's scope, not
    that the lemma failed).
    """
    a_edgeless = not any(minor.has_edge(u, v) for u in part_a for v in part_a)
    degrees_ok = all(minor.degree(a) >= 2 for a in part_a)
    free_ok = largest_k2t_minor_singleton_hubs(minor) < t
    premises = a_edgeless and degrees_ok and free_ok
    inequality = len(part_a) <= (t - 1) * len(part_b)
    return Lemma518Report(
        a_size=len(part_a),
        b_size=len(part_b),
        t=t,
        premises_ok=premises,
        inequality_ok=inequality,
    )
