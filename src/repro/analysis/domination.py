"""Validity checkers for dominating sets and their B-restricted variants."""

from __future__ import annotations

from typing import Hashable, Iterable

import networkx as nx

from repro.graphs.kernel import kernel_for

Vertex = Hashable


def undominated_vertices(graph: nx.Graph, candidate: Iterable[Vertex]) -> set[Vertex]:
    """Vertices of ``graph`` not dominated by ``candidate``.

    Runs on the graph's bitset kernel: one OR per candidate vertex, one
    complement — no per-call ``set(graph.nodes)`` materialisation, and
    only the actually-undominated bits are converted back to labels.
    """
    kernel = kernel_for(graph)
    return kernel.labels_of(kernel.full_mask & ~kernel.union_closed_bits(candidate))


def is_dominating_set(graph: nx.Graph, candidate: Iterable[Vertex]) -> bool:
    """Return whether ``candidate`` dominates all of ``graph``.

    Fast path: one closed-bitset OR per candidate vertex and a single
    integer comparison — a dominating candidate never pays for
    materialising the undominated remainder (the kernel's ``dominates``
    check, label-direct).
    """
    return kernel_for(graph).dominates_vertices(candidate)


def is_b_dominating_set(
    graph: nx.Graph, candidate: Iterable[Vertex], targets: Iterable[Vertex]
) -> bool:
    """Return whether ``candidate`` dominates every vertex of ``targets``.

    A target that is not a vertex of ``graph`` is simply not dominated
    (the answer is ``False``, matching the historical set-inclusion
    semantics), whereas an unknown *candidate* vertex is an error.

    Backend-generic: the target mask is built through the kernel's own
    ``bits_of`` (a Python int or a packed word array, matching
    ``union_closed_bits``), never by hand-assembling int bits.
    """
    kernel = kernel_for(graph)
    dominated = kernel.union_closed_bits(candidate)
    index_of = kernel.index_of
    known: list[Vertex] = []
    for v in targets:
        if v not in index_of:  # a target outside V(G) cannot be dominated
            return False
        known.append(v)
    return not (kernel.bits_of(known) & ~dominated)
