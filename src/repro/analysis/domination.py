"""Validity checkers for dominating sets and their B-restricted variants."""

from __future__ import annotations

from typing import Hashable, Iterable

import networkx as nx

from repro.graphs.util import closed_neighborhood_of_set

Vertex = Hashable


def undominated_vertices(graph: nx.Graph, candidate: Iterable[Vertex]) -> set[Vertex]:
    """Vertices of ``graph`` not dominated by ``candidate``."""
    dominated = closed_neighborhood_of_set(graph, candidate)
    return set(graph.nodes) - dominated


def is_dominating_set(graph: nx.Graph, candidate: Iterable[Vertex]) -> bool:
    """Return whether ``candidate`` dominates all of ``graph``."""
    return not undominated_vertices(graph, candidate)


def is_b_dominating_set(
    graph: nx.Graph, candidate: Iterable[Vertex], targets: Iterable[Vertex]
) -> bool:
    """Return whether ``candidate`` dominates every vertex of ``targets``."""
    dominated = closed_neighborhood_of_set(graph, candidate)
    return set(targets) <= dominated
