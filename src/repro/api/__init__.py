"""`repro.api` — the unified front door over every shipped algorithm.

One registry, one config, one runner::

    from repro.api import RunConfig, solve, solve_many, list_algorithms

    report = solve(graph, "algorithm1", RunConfig(validate="ratio"))
    print(report.size, report.ratio, report.rounds)

    reports = solve_many(
        [graph_a, graph_b], ["d2", "algorithm1"],
        RunConfig(validate="ratio"), workers=2,
    )

All entry points (CLI, experiments, benchmarks, examples) go through
this package, so registering a new algorithm once makes it appear in
the CLI choices, `repro algorithms`, Table 1 suites, and sweeps.
"""

from repro.api import algorithms as _builtin  # noqa: F401  (registers specs)
from repro.api.config import RunConfig, RunReport, instance_meta
from repro.api.registry import (
    AlgorithmSpec,
    UnknownAlgorithmError,
    UnsupportedModeError,
    algorithm_names,
    get_algorithm,
    list_algorithms,
    register_algorithm,
)
from repro.api.runner import solve, solve_many

__all__ = [
    "AlgorithmSpec",
    "RunConfig",
    "RunReport",
    "UnknownAlgorithmError",
    "UnsupportedModeError",
    "algorithm_names",
    "get_algorithm",
    "instance_meta",
    "list_algorithms",
    "register_algorithm",
    "solve",
    "solve_many",
]
