"""`repro.api` — the unified front door over every shipped algorithm.

One registry, one config, one runner::

    from repro.api import RunConfig, solve, solve_many, list_algorithms

    report = solve(graph, "algorithm1", RunConfig(validate="ratio"))
    print(report.size, report.ratio, report.rounds)

    reports = solve_many(
        [graph_a, graph_b], ["d2", "algorithm1"],
        RunConfig(validate="ratio"), workers=2,
    )

The distributed counterpart goes through the same door: a
:class:`SimulationSpec` routes a registered algorithm's message-passing
protocol onto the unified simulation engine (LOCAL or CONGEST, fault
plans, trace policies)::

    from repro.api import FaultPlan, SimulationSpec, simulate

    sim = simulate(graph, SimulationSpec(
        algorithm="d2", model="congest", budget=8,
        faults=FaultPlan(drop_probability=0.1, crashed=(0,)),
    ))
    print(sim.rounds, sim.total_messages, sorted(sim.chosen))

All entry points (CLI, experiments, benchmarks, examples) go through
this package, so registering a new algorithm once makes it appear in
the CLI choices, `repro algorithms`, Table 1 suites, and sweeps.
"""

from repro.api import algorithms as _builtin  # noqa: F401  (registers specs)
from repro.api.config import (
    RunConfig,
    RunReport,
    instance_meta,
    parse_byzantine,
    parse_churn,
    parse_faults,
)
from repro.api.registry import (
    AlgorithmSpec,
    UnknownAlgorithmError,
    UnsupportedModeError,
    algorithm_names,
    engine_algorithm_names,
    get_algorithm,
    list_algorithms,
    register_algorithm,
)
from repro.api.runner import WorkerCrashError, solve, solve_many
from repro.api.simulation import (
    FaultPlan,
    SimReport,
    SimulationSpec,
    adversarial_degradation,
    simulate,
    simulate_many,
)
from repro.local_model.adversary import (
    BYZANTINE_BEHAVIORS,
    ByzantinePlan,
    ChurnEvent,
    ChurnPlan,
)

__all__ = [
    "AlgorithmSpec",
    "BYZANTINE_BEHAVIORS",
    "ByzantinePlan",
    "ChurnEvent",
    "ChurnPlan",
    "FaultPlan",
    "RunConfig",
    "RunReport",
    "SimReport",
    "SimulationSpec",
    "UnknownAlgorithmError",
    "UnsupportedModeError",
    "WorkerCrashError",
    "adversarial_degradation",
    "algorithm_names",
    "engine_algorithm_names",
    "get_algorithm",
    "instance_meta",
    "list_algorithms",
    "parse_byzantine",
    "parse_churn",
    "parse_faults",
    "register_algorithm",
    "simulate",
    "simulate_many",
    "solve",
    "solve_many",
]
