"""`solve` / `solve_many`: the uniform front door over the registry.

:func:`solve` runs one registered algorithm on one graph and returns a
:class:`~repro.api.config.RunReport`; :func:`solve_many` fans a batch of
``instances x algorithms`` out over a :class:`concurrent.futures.\
ProcessPoolExecutor` while keeping the result order deterministic
(instance-major, then the algorithm order as given) — the parallel run
returns exactly the serial run's reports, in the same order.

Batch structure
---------------

Tasks are grouped **instance-major**: one parallel task is one instance
together with *every* algorithm in the batch.  That shape is what makes
``validate="ratio"`` sweeps cheap — the exact optimum depends only on
the instance, so each task computes OPT once (through
:mod:`repro.solvers.opt_cache`) and every algorithm's ratio shares it,
in the serial path and inside each worker process alike.  Instances
cross the process boundary as :class:`~repro.graphs.kernel.KernelWire`
CSR snapshots instead of pickled ``nx.Graph`` adjacency dicts: each
instance is serialised once per batch (not once per algorithm), and the
worker rebuilds graph + kernel in one linear pass.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Iterable, Mapping, Sequence

import networkx as nx

import repro.api.algorithms  # noqa: F401  (populates the registry)
from repro.api.config import RunConfig, RunReport, instance_meta, measured_ratio
from repro.api.registry import AlgorithmSpec, get_algorithm
from repro.analysis.domination import is_dominating_set
from repro.graphs.kernel import KernelView, KernelWire, instance_from_wire, kernel_for
from repro.solvers.opt_cache import optimum_size
from repro.solvers.vc import is_vertex_cover


class WorkerCrashError(RuntimeError):
    """A pool worker died mid-batch (OOM kill, SIGKILL, interpreter abort).

    Raised in place of the raw :class:`concurrent.futures.process.\
    BrokenProcessPool` so callers get an actionable record instead of a
    bare "pool is not usable anymore": ``completed`` tasks already
    yielded their reports in order, ``in_flight`` names the first
    unfinished chunk (its instance metadata), and the whole batch can be
    re-run — or, better, routed through :mod:`repro.sweep`, whose
    dispatcher catches exactly this error, rebuilds the pool, and
    retries only the unfinished shards.
    """

    def __init__(self, kind: str, completed: int, total: int, in_flight: object):
        self.kind = kind
        self.completed = completed
        self.total = total
        self.in_flight = in_flight
        super().__init__(
            f"a {kind} pool worker crashed after {completed}/{total} tasks; "
            f"first unfinished chunk: {in_flight!r} (re-run, or use "
            f"repro.sweep for checkpointed retry)"
        )


def _optimum_size(graph: nx.Graph, spec: AlgorithmSpec, config: RunConfig) -> int:
    """|OPT| for the spec's problem kind, via the per-instance cache.

    ``config.solver`` selects the MDS backend only; MVC optima always
    use the MILP backend (no pure-Python MVC solver is shipped).
    """
    solver = "milp" if spec.problem == "mvc" else config.solver
    return optimum_size(graph, spec.problem, solver, use_cache=config.opt_cache)


def _check_valid(graph: nx.Graph, spec: AlgorithmSpec, solution: set) -> bool:
    if spec.problem == "mvc":
        return is_vertex_cover(graph, solution)
    return is_dominating_set(graph, solution)


def solve(
    graph: nx.Graph,
    algorithm: str,
    config: RunConfig | None = None,
    *,
    meta: Mapping | None = None,
) -> RunReport:
    """Run one registered algorithm on one graph.

    ``meta`` (e.g. ``{"family": "fan", "size": 20, "seed": 0}``) is
    merged into the report's instance record for provenance.  Raises
    :class:`repro.api.registry.UnsupportedModeError` when ``config.mode``
    is not in the algorithm's capability flags, and
    :class:`repro.api.registry.UnknownAlgorithmError` on a bad name.
    """
    config = config or RunConfig()
    spec = get_algorithm(algorithm)
    spec.check_mode(config.mode)

    start = time.perf_counter()
    result = spec.run(graph, config)
    wall_time = time.perf_counter() - start

    valid: bool | None = None
    optimum_size: int | None = None
    ratio: float | None = None
    if config.validate != "none":
        valid = _check_valid(graph, spec, result.solution)
    if config.validate == "ratio":
        optimum_size = _optimum_size(graph, spec, config)
        ratio = measured_ratio(result.size, optimum_size)

    return RunReport(
        algorithm=spec.name,
        problem=spec.problem,
        instance=instance_meta(graph, meta),
        result=result,
        config=config,
        wall_time=wall_time,
        valid=valid,
        optimum_size=optimum_size,
        ratio=ratio,
    )


def _normalise_instances(
    instances: Iterable,
) -> list[tuple[dict, nx.Graph]]:
    """Accept graphs/:class:`KernelView`s, ``(meta, graph)`` pairs, or a mix.

    A :class:`~repro.graphs.kernel.KernelView` counts as a bare
    instance — the packed large-graph path never builds an
    ``nx.Graph``, and everything downstream (kernel primitives,
    validity checks, ``instance_meta``) runs on the view's kernel.
    """
    out: list[tuple[dict, nx.Graph]] = []
    for item in instances:
        if isinstance(item, (nx.Graph, KernelView)):
            out.append(({}, item))
        else:
            meta, graph = item
            out.append((dict(meta), graph))
    return out


def _run_instance(
    meta: dict, graph: nx.Graph, algorithms: Sequence[str], config: RunConfig
) -> list[RunReport]:
    """Every algorithm on one instance; OPT is shared through the cache."""
    return [solve(graph, name, config, meta=meta) for name in algorithms]


def _solve_instance_task(
    task: tuple[dict, KernelWire, Sequence[str], RunConfig],
) -> list[RunReport]:
    """Module-level worker so ProcessPoolExecutor can pickle it.

    Rebuilds the instance from the CSR wire once — an ``nx.Graph`` with
    a pre-seeded kernel below the packed threshold, a
    :class:`~repro.graphs.kernel.KernelView` over a packed kernel at or
    above it — then runs the whole algorithm list on it: one
    deserialisation and (for ratio runs) one exact solve per instance,
    regardless of how many algorithms ride.
    """
    meta, wire, algorithms, config = task
    return _run_instance(meta, instance_from_wire(wire), algorithms, config)


def solve_many(
    instances: Iterable,
    algorithms: str | Sequence[str],
    config: RunConfig | None = None,
    *,
    workers: int | None = None,
) -> list[RunReport]:
    """Run a batch of ``instances x algorithms`` through :func:`solve`.

    ``instances`` may be bare graphs or ``(meta, graph)`` pairs (the
    shape :func:`repro.io.read_corpus` returns).  ``workers`` > 1 runs
    the batch in a process pool, one instance-major chunk of tasks per
    dispatch; ordering is deterministic either way: instance-major,
    algorithms in the order given.  Capability checks run *before* any
    work starts, so a bad mode/name fails fast instead of mid-sweep.
    """
    config = config or RunConfig()
    if isinstance(algorithms, str):
        algorithm_list = [algorithms]
    else:
        algorithm_list = list(algorithms)
    for name in algorithm_list:
        get_algorithm(name).check_mode(config.mode)

    pairs = _normalise_instances(instances)
    if not pairs or not algorithm_list:
        return []
    if workers is None or workers <= 1:
        reports: list[RunReport] = []
        for meta, graph in pairs:
            reports.extend(_run_instance(meta, graph, algorithm_list, config))
        return reports
    tasks = [
        (meta, kernel_for(graph).to_wire(), algorithm_list, config)
        for meta, graph in pairs
    ]
    chunksize = max(1, len(tasks) // (workers * 4))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        # Executor.map preserves submission order, giving parallel runs
        # the exact serial ordering.
        batches = pool.map(_solve_instance_task, tasks, chunksize=chunksize)
        reports: list[RunReport] = []
        done = 0
        try:
            for batch in batches:
                reports.extend(batch)
                done += 1
        except BrokenProcessPool as error:
            raise WorkerCrashError(
                "solve", done, len(tasks), tasks[done][0]
            ) from error
        return reports
